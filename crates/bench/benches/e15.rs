//! E15 — bounded model checking as a deployment gate (DESIGN §4.13,
//! EXPERIMENTS §E15).
//!
//! Every schedule-checkable lint verdict on the shipped applications is
//! adjudicated by `ncmc`: the checker either finds a machine-shrunk
//! counterexample schedule or certifies the hazard absent within the
//! stated bounds. Three gates run here:
//!
//! 1. **Shipped apps certify.** The replay-filtered AllReduce (Fig. 4)
//!    and the KVS cache (Fig. 5) get a conclusive report — every lint
//!    item resolved, the whole-program convergence obligation a
//!    bounded-absence certificate — within the wall-clock budget.
//! 2. **Known-bad yields a witness.** The unfiltered accumulating
//!    AllReduce diverges: the convergence check must produce a concrete
//!    shrunk schedule (an RTO duplicate double-adds), the same artifact
//!    the deploy gate refuses on.
//! 3. **DPOR earns its keep.** On a four-kernel commuting-alias
//!    scenario the sleep-set DPOR explorer must reach the *identical
//!    verdict* as the naive ground-truth enumeration while completing
//!    at least 5x fewer maximal schedules at the same bounds.
//!
//! Doubles as the CI acceptance gate: each assertion exits nonzero on
//! failure, and the re-derived overflow counterexample is compared
//! byte-for-byte against the committed corpus entry
//! (`tests/corpus/ncmc/`). Writes `target/e15-metrics.json` (bench
//! binaries run with cwd at the package root, so it lands under
//! crates/bench/).

use ncl_core::apps::{allreduce_source, kvs_source};
use ncl_core::mc::{check_code, convergence_check, model_check_switch, McConfig, McItem, Outcome};
use ncl_core::nclc::{LintCode, LintLevel, ReplayFilter};
use ncl_core::{compile, CompileConfig, CompiledProgram};
use ncmc::{corpus_entry, corpus_file_name, Reduction};
use std::time::Instant;

const AND: &str = "hosts worker 2\nswitch s1\nlink worker* s1\n";

/// Wall-clock budget for certifying both shipped apps (gate 1). CI
/// runs release builds; the margin covers slow shared runners.
const APP_BUDGET_S: f64 = 300.0;

/// Required schedule-count ratio, naive over DPOR, at identical bounds
/// and identical verdicts (gate 3).
const PRUNE_RATIO: f64 = 5.0;

/// Four kernels all commutatively bumping one shared cell: the
/// cross-kernel-alias lint flags the sharing, and the checker's alias
/// scenario interleaves the flagged kernel with every writing partner
/// — four windows, pure reorderings. Rich enough interleaving space
/// for the reduction ablation, small enough for naive ground truth.
const COMMUTING4: &str = r#"
_net_ _at_("s1") unsigned shared[4] = {0};
_net_ _out_ void bump(unsigned *data) {
    shared[0] += data[0];
    _reflect();
}
_net_ _out_ void bump2(unsigned *data) {
    shared[0] += data[0];
    _reflect();
}
_net_ _out_ void bump3(unsigned *data) {
    shared[0] += data[0];
    _reflect();
}
_net_ _out_ void bump4(unsigned *data) {
    shared[0] += data[0];
    _reflect();
}
"#;

/// The overflow kernel the committed corpus witness was minted on
/// (tests/lint_witness.rs WRAPPING): two near-max deliveries wrap the
/// monotone total.
const WRAPPING: &str = r#"
_net_ _at_("s1") unsigned total[1] = {0};
_net_ _out_ void tally(unsigned *data) {
    total[0] += data[0];
    _reflect();
}
"#;

fn compile_allowing(
    src: &str,
    masks: &[(&str, Vec<u16>)],
    model: pisa::ResourceModel,
) -> CompiledProgram {
    let mut cfg = CompileConfig::default();
    for (k, m) in masks {
        cfg.masks.insert((*k).to_string(), m.clone());
    }
    for &c in LintCode::ALL {
        cfg.lint_levels.insert(c, LintLevel::Allow);
    }
    cfg.model = model;
    compile(src, AND, &cfg).expect("compiles with lints allowed")
}

/// A roomier stateful-ALU budget for the four-kernel ablation program:
/// eight accesses to `shared` across the four fused RegisterActions
/// (the scenario needs the kernels co-resident, not a placement
/// stress test).
fn ablation_chip() -> pisa::ResourceModel {
    pisa::ResourceModel {
        reg_accesses_per_pass: 16,
        ..pisa::ResourceModel::default()
    }
}

/// The shipped AllReduce (Fig. 4), replay-filtered as deployed — or
/// deliberately unfiltered for the known-bad gate.
fn allreduce_program(filtered: bool) -> CompiledProgram {
    let src = allreduce_source(8, 4);
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![4]);
    cfg.masks.insert("result".into(), vec![4]);
    if filtered {
        cfg.replay_filters.insert(
            "allreduce".into(),
            ReplayFilter {
                senders: 4,
                slots: 4,
            },
        );
    } else {
        cfg.lint_levels
            .insert(LintCode::ReplayUnsafeNoFilter, LintLevel::Warn);
    }
    compile(&src, AND, &cfg).expect("allreduce compiles")
}

/// The shipped KVS (Fig. 5).
fn kvs_program() -> CompiledProgram {
    let src = kvs_source(3, 4, 2);
    let and = "hosts client 2\nswitch s1\nhost server\nlink client* s1\nlink server s1\n";
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("query".into(), vec![1, 2, 1]);
    compile(&src, and, &cfg).expect("kvs compiles")
}

/// One metrics row: an adjudicated obligation plus its wall time.
fn item_json(item: &McItem, wall_ms: f64) -> String {
    let code = item
        .code
        .map(|c| c.name().to_string())
        .unwrap_or_else(|| "convergence".to_string());
    let outcome = match &item.result.outcome {
        Outcome::Witness(w) => format!(
            "\"witness\",\"schedule_len\":{},\"deliveries\":{}",
            w.schedule.len(),
            w.deliveries
        ),
        Outcome::Certificate(_) => "\"certificate\"".to_string(),
        Outcome::Inconclusive { .. } => "\"inconclusive\"".to_string(),
    };
    format!(
        "{{\"code\":\"{}\",\"kernel\":\"{}\",\"property\":\"{}\",\"windows\":{},\
         \"outcome\":{},\"states\":{},\"schedules\":{},\"wall_ms\":{:.1}}}",
        code,
        item.kernel,
        item.property,
        item.windows,
        outcome,
        item.result.stats.states,
        item.result.stats.schedules,
        wall_ms,
    )
}

fn main() {
    let cfg = McConfig::default();
    let mut app_rows = Vec::new();

    // Gate 1: both shipped apps must certify conclusively in budget.
    let apps_start = Instant::now();
    for (name, program) in [
        ("allreduce-filtered", allreduce_program(true)),
        ("kvs", kvs_program()),
    ] {
        let start = Instant::now();
        let report = model_check_switch(&program, "s1", &cfg).expect("model check runs");
        let wall = start.elapsed().as_secs_f64();
        println!("== {name} ({wall:.1}s) ==");
        for item in &report.items {
            println!("  {}", item.summary());
        }
        assert!(
            report.conclusive(),
            "{name}: every obligation must resolve (no state-cap truncation)"
        );
        let conv = report.convergence().expect("convergence item present");
        assert!(
            conv.result.outcome.is_certificate(),
            "{name}: shipped app must be certified convergent"
        );
        let per_item = wall * 1000.0 / report.items.len() as f64;
        let rows: Vec<String> = report
            .items
            .iter()
            .map(|i| item_json(i, per_item))
            .collect();
        app_rows.push(format!(
            "{{\"app\":\"{name}\",\"wall_s\":{wall:.2},\"items\":[{}]}}",
            rows.join(",")
        ));
    }
    let apps_wall = apps_start.elapsed().as_secs_f64();
    assert!(
        apps_wall < APP_BUDGET_S,
        "shipped-app certification took {apps_wall:.1}s (budget {APP_BUDGET_S}s)"
    );
    println!("shipped apps certified in {apps_wall:.1}s (budget {APP_BUDGET_S}s)");

    // Gate 2: the unfiltered accumulator must yield a convergence
    // witness — the artifact the deploy gate refuses on.
    let start = Instant::now();
    let bad = convergence_check(&allreduce_program(false), "s1", &cfg).expect("check runs");
    let bad_ms = start.elapsed().as_secs_f64() * 1000.0;
    println!("== allreduce-unfiltered ==");
    println!("  {}", bad.summary());
    let Outcome::Witness(w) = &bad.result.outcome else {
        panic!("unfiltered allreduce must produce a convergence witness");
    };
    for line in w.schedule.render().lines() {
        println!("    | {line}");
    }
    let bad_row = item_json(&bad, bad_ms);

    // Gate 3: reduction ablation on the commuting-alias scenario —
    // identical verdicts, >= PRUNE_RATIO fewer schedules under DPOR.
    let masks: Vec<(&str, Vec<u16>)> = vec![
        ("bump", vec![1]),
        ("bump2", vec![1]),
        ("bump3", vec![1]),
        ("bump4", vec![1]),
    ];
    let program = compile_allowing(COMMUTING4, &masks, ablation_chip());
    println!("== reduction ablation (cross-kernel-alias, 4 windows) ==");
    let mut ablation = Vec::new();
    for reduction in [Reduction::Naive, Reduction::Dedup, Reduction::Dpor] {
        let cfg = McConfig {
            reduction,
            model: ablation_chip(),
            ..McConfig::default()
        };
        let start = Instant::now();
        let item = check_code(
            &program,
            "s1",
            LintCode::CrossKernelAlias,
            "bump",
            Some("shared"),
            &cfg,
        )
        .expect("check runs")
        .expect("alias is schedule-checkable");
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        println!("  {:>5}: {} ({ms:.0}ms)", reduction.name(), item.summary());
        assert!(
            item.result.outcome.is_certificate(),
            "{}: commuting kernels must certify order-invariant",
            reduction.name()
        );
        ablation.push((reduction.name(), item, ms));
    }
    let naive = &ablation[0].1.result.stats;
    let dpor = &ablation[2].1.result.stats;
    let ratio = naive.schedules as f64 / dpor.schedules as f64;
    println!(
        "  prune ratio: {} naive schedules / {} dpor schedules = {ratio:.1}x",
        naive.schedules, dpor.schedules
    );
    assert!(
        ratio >= PRUNE_RATIO,
        "DPOR must prune >= {PRUNE_RATIO}x the naive schedule count (got {ratio:.1}x)"
    );

    // Corpus snapshot: re-derive the overflow counterexample and hold
    // it byte-for-byte against the committed entry.
    let program = compile_allowing(
        WRAPPING,
        &[("tally", vec![1])],
        pisa::ResourceModel::default(),
    );
    let item = check_code(
        &program,
        "s1",
        LintCode::UnguardedOverflow,
        "tally",
        Some("total"),
        &McConfig::default(),
    )
    .expect("check runs")
    .expect("overflow is schedule-checkable");
    let Outcome::Witness(w) = &item.result.outcome else {
        panic!("wrapping tally must produce an overflow witness");
    };
    let file = corpus_file_name(item.code, &item.kernel, &w.schedule);
    let entry = corpus_entry("program@s1", item.code, &item.kernel, item.property, w);
    let committed = std::fs::read_to_string(format!("../../tests/corpus/ncmc/{file}"))
        .expect("committed corpus entry exists");
    assert_eq!(
        entry, committed,
        "re-derived overflow witness must match the committed corpus entry byte-for-byte"
    );
    println!("corpus snapshot stable: {file}");

    let ablation_rows: Vec<String> = ablation
        .iter()
        .map(|(name, item, ms)| {
            format!(
                "{{\"reduction\":\"{}\",\"states\":{},\"schedules\":{},\"dedup_hits\":{},\
                 \"sleep_skips\":{},\"probe_execs\":{},\"wall_ms\":{:.1}}}",
                name,
                item.result.stats.states,
                item.result.stats.schedules,
                item.result.stats.dedup_hits,
                item.result.stats.sleep_skips,
                item.result.stats.probe_execs,
                ms,
            )
        })
        .collect();
    let json = format!(
        "{{\"experiment\":\"e15\",\"apps\":[{}],\"known_bad\":{},\
         \"ablation\":[{}],\"prune_ratio\":{:.2},\
         \"corpus_snapshot\":\"{}\"}}\n",
        app_rows.join(","),
        bad_row,
        ablation_rows.join(","),
        ratio,
        file,
    );
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/e15-metrics.json", &json).expect("write target/e15-metrics.json");
    println!("wrote target/e15-metrics.json ({} bytes)", json.len());
}
