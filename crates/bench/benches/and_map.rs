//! E7 — Fig. 3c, AND overlay embedding: mapping quality and speed on
//! spine-leaf fabrics, plus the `_bcast()` fan-out cost measured on the
//! deployed network.

use criterion::{criterion_group, criterion_main, Criterion};
use ncl_and::{parse, PhysTopology};
use ncl_bench::run_allreduce_inc;
use std::hint::black_box;

fn overlay(workers: usize) -> ncl_and::Overlay {
    parse(&format!(
        "hosts worker {workers}\nswitch agg\nhost sink\nlink worker* agg\nlink sink agg\n"
    ))
    .expect("valid AND")
}

fn quality_table() {
    println!("\nE7: overlay → physical embedding quality");
    println!(
        "{:>9} {:>22} {:>10} {:>12}",
        "overlay", "fabric", "cost", "ideal"
    );
    for (workers, spines, leaves, hpl) in [
        (4usize, 2usize, 2usize, 4usize),
        (4, 2, 4, 2),
        (8, 2, 4, 4),
        (16, 4, 8, 4),
    ] {
        let ov = overlay(workers);
        let phys = PhysTopology::spine_leaf(spines, leaves, hpl);
        match ov.embed(&phys) {
            Ok(assignment) => {
                let cost = ov.embedding_cost(&phys, &assignment);
                // Ideal: every overlay edge realized as one physical hop
                // (possible only if all workers fit under one leaf).
                let ideal = ov.edges.len() as u64;
                println!(
                    "{:>7}+2 {:>14}({spines},{leaves},{hpl}) {:>10} {:>12}",
                    workers, "spine-leaf", cost, ideal
                );
            }
            Err(e) => println!("{workers:>7}+2 infeasible: {e}"),
        }
    }
}

fn bcast_table() {
    println!("\nE7b: _bcast() fan-out cost (AllReduce result distribution)");
    println!(
        "{:>8} {:>14} {:>16}",
        "workers", "bcast copies", "completion µs"
    );
    for n in [2usize, 4, 8, 16] {
        let r = run_allreduce_inc(n, 4096, 8);
        println!(
            "{:>8} {:>14} {:>16.1}",
            n,
            n * (4096 / 8),
            r.completion as f64 / 1000.0
        );
    }
}

fn bench_embedding(c: &mut Criterion) {
    quality_table();
    bcast_table();

    for (workers, spines, leaves, hpl) in [
        (8usize, 2usize, 4usize, 4usize),
        (32, 4, 16, 8),
        (64, 8, 32, 8),
    ] {
        let ov = overlay(workers);
        let phys = PhysTopology::spine_leaf(spines, leaves, hpl);
        c.bench_function(
            format!("embed/{workers}w-into-{}nodes", phys.nodes.len()),
            |b| b.iter(|| ov.embed(black_box(&phys)).expect("embeds")),
        );
    }
    let big = "hosts h 64\nswitch s1\nlink h* s1\n";
    c.bench_function("and_parse/64-hosts", |b| {
        b.iter(|| parse(black_box(big)).expect("parses"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_embedding
}
criterion_main!(benches);
