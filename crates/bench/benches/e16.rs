//! E16 — streaming SLO engine, anomaly detection, and auto-captured
//! incident reports (DESIGN §4.14, EXPERIMENTS §E16).
//!
//! Five fault campaigns drive the ncwatch engine against a two-tenant
//! paced AllReduce fabric:
//!
//! 1. **healthy control** — the watch rides a clean run end to end and
//!    must stay silent (zero false positives) at ≤ 2% goodput overhead
//!    versus the same run without a watch;
//! 2. **degrading link** — `worker1<->s1` starts dropping every other
//!    frame mid-run; the retransmit-rate SLO must fire within the tick
//!    budget and the auto-captured incident must name the *same* faulty
//!    link the offline ncscope diagnosis blames;
//! 3. **loss burst** — a bursty link under tenant `ar-b` from t=0,
//!    attributed to the right tenant and link;
//! 4. **over-quota tenant** — an admission rejection surfaces as a
//!    tick-0 incident carrying the machine-readable cost report;
//! 5. **upgrade drain** — an e14-style hitless upgrade mid-run fires
//!    nothing (an upgrade is not an incident).
//!
//! The degrading-link campaign runs twice: the two incident JSONL logs
//! must be byte-identical (same simulated run ⇒ same reports, same
//! content-hash ids). Writes `target/e16-metrics.json` and
//! `target/e16-incidents.jsonl` (bench cwd is the package root, so
//! both land under crates/bench/).

use c3::{HostId, NodeId, ScalarType, Value};
use ncl_bench::rule;
use ncl_core::apps::allreduce_source;
use ncl_core::deploy::{DeployOptions, SwitchBackend};
use ncl_core::{
    compile, CompileConfig, CompiledProgram, MultiDeployment, NclHost, OutInvocation, TenantDeploy,
    TypedArray,
};
use ncp::reliable::ReliableConfig;
use ncsched::{TenantQuota, TenantSpec};
use nctel::scope::analysis::{diagnose, DiagnosisConfig};
use nctel::{Scope, WindowTrace};
use ncwatch::{link_name, IncidentReport, Objective, SloSpec, WatchConfig};
use netsim::{CtrlOp, HostApp, LinkSpec};
use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

/// Six workers, one switch: tenant `ar-a` on worker1-3, `ar-b` on
/// worker4-6.
const AND: &str = "hosts worker 6\nswitch s1\nlink worker* s1\n";
const DATA_LEN: usize = 256;
const WIN: usize = 4;
/// Pacing gap between windows, ns — stretches each run over many
/// evaluation ticks so the streaming engine sees a real time series.
const GAP: u64 = 1_500;
/// Watch evaluation cadence, simulated ns.
const TICK_NS: u64 = 4_000;
/// Degrading-link fault injection instant, ns.
const T_FAULT: u64 = 40_000;
/// Watched horizon, ns (generous; healthy runs finish well before).
const T_END: u64 = 600_000;
/// Detection-latency gate: first incident within this many ticks of
/// the fault.
const DETECT_BUDGET: u64 = 8;

fn ar_program(base: u16) -> CompiledProgram {
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![WIN as u16]);
    cfg.masks.insert("result".into(), vec![WIN as u16]);
    cfg.kernel_id_base = base;
    compile(&allreduce_source(DATA_LEN, WIN), AND, &cfg).expect("allreduce compiles")
}

/// Paced AllReduce workers `lo..=hi` for one tenant: NCP-R on,
/// full-rate telemetry, scoped.
fn ar_apps(
    program: &CompiledProgram,
    lo: u16,
    hi: u16,
    scope: &Scope,
) -> HashMap<String, Box<dyn HostApp>> {
    let kid = program.kernel_ids["allreduce"];
    let n = hi - lo + 1;
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in lo..=hi {
        let mut host = NclHost::new(program);
        // A recovery clock scaled to the watched horizon: the stock 2ms
        // RTO would never fire inside the 600μs campaigns, hiding loss
        // from the retransmit-rate SLO entirely.
        host.enable_reliability(ReliableConfig {
            rto: 12_000,
            max_rto: 48_000,
            ..ReliableConfig::default()
        });
        host.enable_telemetry(1.0, 65_536);
        host.enable_scope(scope);
        let data: Vec<i32> = vec![w as i32; DATA_LEN];
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId((w - lo + 1) % n + lo)),
            start: 0,
            gap: GAP,
        })
        .expect("valid invocation");
        host.bind_incoming(
            program,
            "allreduce",
            "result",
            &[(ScalarType::I32, DATA_LEN), (ScalarType::Bool, 1)],
        )
        .expect("paired");
        host.done_on_flag(kid, 1);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    apps
}

struct Fixture {
    dep: MultiDeployment,
    scope: Scope,
}

/// Builds the two-tenant fabric; `greedy` adds the over-quota tenant.
fn build(overrides: Vec<(String, String, LinkSpec)>, greedy: bool) -> Fixture {
    let scope = Scope::new(1 << 16);
    let pa = ar_program(0);
    let pb = ar_program(100);
    let mut tenants = vec![
        TenantDeploy {
            spec: TenantSpec::new("ar-a"),
            apps: ar_apps(&pa, 1, 3, &scope),
            program: pa,
        },
        TenantDeploy {
            spec: TenantSpec::new("ar-b"),
            apps: ar_apps(&pb, 4, 6, &scope),
            program: pb,
        },
    ];
    if greedy {
        tenants.push(TenantDeploy {
            spec: TenantSpec::with_quota("greedy", TenantQuota::new(0, usize::MAX, usize::MAX)),
            program: ar_program(300),
            apps: HashMap::new(),
        });
    }
    let opts = DeployOptions {
        backend: SwitchBackend::FastPath,
        scope: Some(scope.clone()),
        link_overrides: overrides,
        ..DeployOptions::default()
    };
    let mut dep = ncl_core::deploy_tenants(tenants, opts).expect("structurally sound");
    for tenant in ["ar-a", "ar-b"] {
        let op = CtrlOp::RegWrite {
            name: "nworkers".into(),
            index: 0,
            value: Value::u32(3),
        };
        let mux = dep.mux_mut("s1").expect("s1 is multiplexed");
        assert!(mux.ctrl_for(tenant, &op), "{tenant}: nworkers write routed");
    }
    Fixture { dep, scope }
}

/// The campaign SLO set: a retransmit-rate ceiling and the
/// unknown-kernel guard per tenant.
fn watch_cfg() -> WatchConfig {
    let mut slos = Vec::new();
    for t in ["ar-a", "ar-b"] {
        slos.push(SloSpec::new(
            &format!("{t}.retransmit_rate"),
            t,
            Objective::RetransmitCeiling { max_per_mille: 250 },
        ));
        slos.push(SloSpec::new(
            &format!("{t}.unknown_kernel"),
            t,
            Objective::UnknownKernelZero,
        ));
    }
    WatchConfig {
        tick_ns: TICK_NS,
        slos,
        ..WatchConfig::default()
    }
}

fn total_acked(dep: &MultiDeployment) -> u64 {
    (1..=6u16)
        .map(|w| {
            dep.dep_host(w)
                .sender_stats()
                .expect("reliability on")
                .acked
        })
        .sum()
}

trait HostAt {
    fn dep_host(&self, w: u16) -> &NclHost;
}

impl HostAt for MultiDeployment {
    fn dep_host(&self, w: u16) -> &NclHost {
        self.net.host_app::<NclHost>(HostId(w)).expect("worker app")
    }
}

fn assert_sums(dep: &MultiDeployment, kid: u16, lo: u16, hi: u16, sum: i32) {
    for w in lo..=hi {
        let host = dep.dep_host(w);
        assert!(host.done_at.is_some(), "worker {w} never completed");
        let mem = host.memory(kid).expect("result memory");
        for i in 0..DATA_LEN {
            assert_eq!(mem.arrays[0][i], Value::i32(sum), "worker {w} elem {i}");
        }
    }
}

// ---------------------------------------------------------------- 1

struct HealthyRun {
    wall_ms: f64,
    goodput: u64,
    incidents: usize,
    ticks: u64,
}

/// One clean end-to-end run, with or without the watch attached.
fn run_healthy(with_watch: bool) -> HealthyRun {
    let Fixture { mut dep, scope } = build(Vec::new(), false);
    let t = Instant::now();
    let (incidents, ticks) = if with_watch {
        let mut fw = dep.watch(watch_cfg(), Some(scope));
        let fired = fw.run_watched(&mut dep.net, T_END);
        (fired.len(), fw.engine().ticks())
    } else {
        dep.net.run_until(T_END);
        (0, 0)
    };
    dep.net.run();
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_sums(&dep, 1, 1, 3, 6);
    assert_sums(&dep, 101, 4, 6, 15);
    HealthyRun {
        wall_ms,
        goodput: total_acked(&dep),
        incidents,
        ticks,
    }
}

// ---------------------------------------------------------------- 2

struct DegradeRun {
    fault_tick: u64,
    detect_ticks: u64,
    suspected: String,
    offline_suspect: String,
    incidents: usize,
    jsonl: String,
}

/// The degrading-link campaign: clean until `T_FAULT`, then
/// `worker1<->s1` drops every other frame.
fn run_degrading(log_path: &str) -> DegradeRun {
    let Fixture { mut dep, scope } = build(Vec::new(), false);
    let mut fw = dep.watch(watch_cfg(), Some(scope.clone()));
    std::fs::remove_file(log_path).ok();
    fw.engine_mut().arm(log_path);

    let pre = fw.run_watched(&mut dep.net, T_FAULT);
    assert!(pre.is_empty(), "fired before the fault: {pre:?}");
    let fault_tick = fw.engine().ticks();
    let degraded = LinkSpec {
        drop_every: 2,
        ..LinkSpec::default()
    };
    assert!(
        dep.net
            .set_link_spec(dep.node("worker1"), dep.node("s1"), degraded),
        "link worker1<->s1 exists"
    );
    fw.run_watched(&mut dep.net, T_END);

    let incidents = fw.engine().incidents().to_vec();
    assert!(!incidents.is_empty(), "degrading link never detected");
    let first = &incidents[0];
    assert!(first.tick >= fault_tick, "incident precedes the fault");
    let detect_ticks = first.tick - fault_tick + 1;

    // The streaming verdict must agree with the offline workflow: feed
    // the same capture through `ncscope`'s diagnosis after the fact.
    let mut traces: Vec<WindowTrace> = Vec::new();
    for w in 1..=6u16 {
        let host = dep.net.host_app_mut::<NclHost>(HostId(w)).expect("worker");
        traces.extend(host.take_traces());
    }
    let offline = diagnose(
        &scope.decoded(),
        &traces,
        &DiagnosisConfig {
            expected_path: Vec::new(),
            deployed_versions: dep.deployed_versions(),
        },
    );
    let (lo, hi) = offline
        .primary_loss_locus()
        .expect("offline diagnosis finds the lossy link");
    let offline_suspect = format!("link {}", link_name(lo, hi));

    DegradeRun {
        fault_tick,
        detect_ticks,
        suspected: first.suspected.clone(),
        offline_suspect,
        incidents: incidents.len(),
        jsonl: std::fs::read_to_string(log_path).expect("armed log written"),
    }
}

// ---------------------------------------------------------------- 3

/// The loss-burst campaign: `worker4<->s1` bursts from t=0; the
/// incident must land on tenant `ar-b` and the right link.
fn run_loss_burst() -> IncidentReport {
    let burst = LinkSpec {
        drop_every: 4,
        burst_len: 2,
        ..LinkSpec::default()
    };
    let overrides = vec![("worker4".to_string(), "s1".to_string(), burst)];
    let Fixture { mut dep, scope } = build(overrides, false);
    let mut fw = dep.watch(watch_cfg(), Some(scope));
    fw.run_watched(&mut dep.net, T_END);
    let expected_link = format!(
        "link {}",
        link_name(dep.node("worker4").to_wire(), dep.node("s1").to_wire())
    );
    let hit = fw
        .engine()
        .incidents()
        .iter()
        .find(|i| i.tenant == "ar-b" && i.suspected == expected_link)
        .unwrap_or_else(|| {
            panic!(
                "no ar-b incident names {expected_link}; got {:?}",
                fw.engine()
                    .incidents()
                    .iter()
                    .map(|i| (&i.tenant, &i.suspected))
                    .collect::<Vec<_>>()
            )
        });
    hit.clone()
}

// ---------------------------------------------------------------- 4

/// The over-quota campaign: rejection at admission, incident at tick 0.
fn run_over_quota() -> IncidentReport {
    let Fixture { dep, scope } = build(Vec::new(), true);
    assert_eq!(dep.tenants(), vec!["ar-a", "ar-b"]);
    assert_eq!(dep.rejections.len(), 1, "exactly the greedy tenant");
    let fw = dep.watch(watch_cfg(), Some(scope));
    let incidents = fw.engine().incidents();
    assert_eq!(incidents.len(), 1, "one admission incident");
    let i = incidents[0].clone();
    assert_eq!((i.kind.as_str(), i.tick), ("admission", 0));
    assert_eq!(i.tenant, "greedy");
    assert!(i.exemplars[0].1.contains("\"budget\":\"tenant_quota\""));
    i
}

// ---------------------------------------------------------------- 5

/// The upgrade-drain campaign: a hitless e14-style upgrade under the
/// watch fires nothing.
fn run_upgrade() -> (u64, usize) {
    let Fixture { mut dep, scope } = build(Vec::new(), false);
    let mut fw = dep.watch(watch_cfg(), Some(scope));
    fw.run_watched(&mut dep.net, 20_000);
    let mut drain: BTreeSet<(u16, u32)> = BTreeSet::new();
    for w in 1..=3u16 {
        drain.extend(dep.dep_host(w).in_flight_keys());
    }
    let drain: Vec<(u16, u32)> = drain.into_iter().collect();
    let mut upgrade = dep
        .begin_upgrade("ar-a", &ar_program(0), drain.clone())
        .expect("upgrade admits");
    fw.run_watched(&mut dep.net, T_END);
    dep.net.run();
    assert_sums(&dep, 1, 1, 3, 6);
    assert_sums(&dep, 101, 4, 6, 15);
    for &(k, s) in &drain {
        upgrade.acked(k, s);
    }
    assert!(upgrade.is_complete(), "drain set fully acked");
    dep.finish_upgrade(&upgrade).expect("reclaims v1");
    (fw.engine().ticks(), fw.engine().incidents().len())
}

fn main() {
    println!("E16: streaming SLO engine, anomaly detection, auto-captured incidents");
    println!(
        "2 paced allreduce tenants, tick {TICK_NS}ns; degrade at t={T_FAULT}ns, \
         detection budget {DETECT_BUDGET} ticks\n"
    );

    // 1 — healthy control + overhead (best of 3 each way).
    let mut bare_ms = f64::MAX;
    let mut watched_ms = f64::MAX;
    let mut bare_goodput = 0;
    let mut watched = None;
    for _ in 0..3 {
        let b = run_healthy(false);
        bare_ms = bare_ms.min(b.wall_ms);
        bare_goodput = b.goodput;
        let w = run_healthy(true);
        watched_ms = watched_ms.min(w.wall_ms);
        watched = Some(w);
    }
    let watched = watched.unwrap();
    assert_eq!(watched.incidents, 0, "false positives on the healthy run");
    assert!(
        watched.goodput * 50 >= bare_goodput * 49,
        "watch cost goodput: {} vs {bare_goodput}",
        watched.goodput
    );
    let wall_overhead_pct = (watched_ms / bare_ms - 1.0) * 100.0;
    println!(
        "healthy control: {} windows acked, {} ticks, 0 incidents; \
         wall {watched_ms:.1}ms watched vs {bare_ms:.1}ms bare ({wall_overhead_pct:+.1}%)",
        watched.goodput, watched.ticks
    );

    // 2 — degrading link, twice for byte-identical reports.
    let d1 = run_degrading("target/e16-incidents.jsonl");
    let d2 = run_degrading("target/e16-incidents-rerun.jsonl");
    assert_eq!(
        d1.jsonl, d2.jsonl,
        "identical runs must mint byte-identical incident logs"
    );
    let byte_identical = d1.jsonl == d2.jsonl;
    assert_eq!(
        d1.suspected, d1.offline_suspect,
        "streaming verdict disagrees with offline ncscope diagnosis"
    );
    assert!(
        d1.detect_ticks <= DETECT_BUDGET,
        "detection took {} ticks (budget {DETECT_BUDGET})",
        d1.detect_ticks
    );
    println!(
        "degrading link: detected in {} tick(s) after fault (tick {}), suspected '{}' \
         == offline diagnosis; {} incident(s), byte-identical across reruns",
        d1.detect_ticks, d1.fault_tick, d1.suspected, d1.incidents
    );

    // 3 — loss burst under ar-b.
    let burst = run_loss_burst();
    println!(
        "loss burst: [{}] {} blamed '{}' (tenant {})",
        burst.kind, burst.source, burst.suspected, burst.tenant
    );

    // 4 — over-quota tenant.
    let adm = run_over_quota();
    println!(
        "over-quota: [{}] tick {} tenant {} → {}",
        adm.kind, adm.tick, adm.tenant, adm.suspected
    );

    // 5 — upgrade drain.
    let (upgrade_ticks, upgrade_incidents) = run_upgrade();
    assert_eq!(upgrade_incidents, 0, "a hitless upgrade is not an incident");
    println!("upgrade drain: {upgrade_ticks} ticks watched, 0 incidents (hitless)\n");

    rule(72);
    println!(
        "{:>16} {:>10} {:>12} {:>10} {:>10}",
        "campaign", "incidents", "detect", "gate", "status"
    );
    rule(72);
    println!(
        "{:>16} {:>10} {:>12} {:>10} {:>10}",
        "healthy", watched.incidents, "-", "0 false+", "pass"
    );
    println!(
        "{:>16} {:>10} {:>12} {:>10} {:>10}",
        "degrading-link",
        d1.incidents,
        format!("{} ticks", d1.detect_ticks),
        format!("<= {DETECT_BUDGET}"),
        "pass"
    );
    println!(
        "{:>16} {:>10} {:>12} {:>10} {:>10}",
        "loss-burst", 1, "-", "link named", "pass"
    );
    println!(
        "{:>16} {:>10} {:>12} {:>10} {:>10}",
        "over-quota", 1, "tick 0", "report", "pass"
    );
    println!(
        "{:>16} {:>10} {:>12} {:>10} {:>10}",
        "upgrade-drain", upgrade_incidents, "-", "0 fired", "pass"
    );
    rule(72);

    let json = format!(
        "{{\"experiment\":\"e16\",\"tick_ns\":{TICK_NS},\"detect_budget_ticks\":{DETECT_BUDGET},\
         \"healthy\":{{\"incidents\":{},\"ticks\":{},\"goodput\":{},\"goodput_bare\":{},\
         \"wall_ms_watched\":{:.3},\"wall_ms_bare\":{:.3},\"wall_overhead_pct\":{:.2}}},\
         \"degrading_link\":{{\"fault_tick\":{},\"detect_ticks\":{},\"incidents\":{},\
         \"suspected\":\"{}\",\"offline_suspect\":\"{}\",\"byte_identical_reruns\":{}}},\
         \"loss_burst\":{{\"tenant\":\"{}\",\"suspected\":\"{}\",\"source\":\"{}\"}},\
         \"over_quota\":{{\"tenant\":\"{}\",\"tick\":{},\"id\":\"{}\"}},\
         \"upgrade_drain\":{{\"ticks\":{},\"incidents\":{}}}}}\n",
        watched.incidents,
        watched.ticks,
        watched.goodput,
        bare_goodput,
        watched_ms,
        bare_ms,
        wall_overhead_pct,
        d1.fault_tick,
        d1.detect_ticks,
        d1.incidents,
        d1.suspected,
        d1.offline_suspect,
        byte_identical,
        burst.tenant,
        burst.suspected,
        burst.source,
        adm.tenant,
        adm.tick,
        adm.id,
        upgrade_ticks,
        upgrade_incidents,
    );
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/e16-metrics.json", &json).expect("write target/e16-metrics.json");
    println!("\nwrote target/e16-metrics.json ({} bytes)", json.len());
    println!(
        "wrote target/e16-incidents.jsonl ({} bytes)",
        d1.jsonl.len()
    );
}
