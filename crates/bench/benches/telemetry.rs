//! E11 — in-band window telemetry overhead (DESIGN §4.9). Regenerates
//! the EXPERIMENTS.md §E11 table: completion time, wire bytes and
//! goodput for sampling 0.0 (telemetry compiled in but never sampled —
//! the baseline), 0.5 and 1.0, plus the headline acceptance number —
//! the goodput cost of tracing *every* window at 0% loss (budget:
//! ≤5%). Runs on a 2 KiB-PHV chip profile so the 256-element windows
//! that amortize the fixed 33-byte section fit in one parse; the
//! deterministic simulation makes the sampling-0.0 arm bit-identical
//! to an untraced run. Writes the sampling-1.0 run's metrics
//! registries to `target/e11-metrics.json` (the CI artifact).

use ncl_bench::{rule, run_allreduce_telemetry};
use pisa::ResourceModel;

fn main() {
    let nworkers = 4usize;
    let elements = 8192usize;
    let win = 256usize;
    // A larger-PHV chip generation: default Tofino-ish profile except
    // the parser budgets, so a 1 KiB window payload is parseable.
    let model = ResourceModel {
        stages: 48,
        phv_header_bytes: 2048,
        phv_metadata_bytes: 2048,
        ..ResourceModel::default()
    };
    println!(
        "E11: in-band telemetry — AllReduce ({nworkers} workers, {elements} × int32, win {win})"
    );
    println!("star topology; 10 Gb/s, 1 µs links; 33-byte section per sampled frame\n");

    let base = run_allreduce_telemetry(nworkers, elements, win, 0.0, &model);
    let half = run_allreduce_telemetry(nworkers, elements, win, 0.5, &model);
    let full = run_allreduce_telemetry(nworkers, elements, win, 1.0, &model);

    // Goodput ∝ payload / completion; payload is identical across arms,
    // so the goodput overhead is the completion-time stretch.
    let overhead = |t: u64| 100.0 * (1.0 - base.completion as f64 / t as f64);
    rule(74);
    println!(
        "{:>14} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "arm", "compl µs", "wire KiB", "overhead%", "traces", "hops"
    );
    rule(74);
    for (name, r) in [
        ("sampling 0.0", &base),
        ("sampling 0.5", &half),
        ("sampling 1.0", &full),
    ] {
        println!(
            "{:>14} {:>12.1} {:>12.1} {:>10.2} {:>10} {:>10}",
            name,
            r.completion as f64 / 1000.0,
            r.bytes_on_wire as f64 / 1024.0,
            overhead(r.completion),
            r.traces,
            r.hop_records
        );
    }
    rule(74);

    let nwindows = (nworkers * elements / win) as u64;
    assert_eq!(base.traces, 0, "sampling 0.0 traces nothing");
    assert_eq!(full.traces, nwindows, "sampling 1.0 traces every window");
    assert_eq!(full.hop_records, nwindows, "one on-path switch per trace");
    assert!(
        half.traces < full.traces && half.traces > 0,
        "sampling 0.5 traces a strict subset"
    );
    let full_overhead = overhead(full.completion);
    println!(
        "\nacceptance: goodput overhead at sampling 1.0, 0% loss = {full_overhead:.2}% \
         (budget <= 5%)"
    );
    assert!(
        full_overhead <= 5.0,
        "telemetry goodput overhead {full_overhead:.2}% exceeds the 5% budget"
    );

    std::fs::create_dir_all("target").ok();
    std::fs::write("target/e11-metrics.json", &full.metrics_json)
        .expect("write target/e11-metrics.json");
    println!(
        "wrote target/e11-metrics.json ({} bytes)",
        full.metrics_json.len()
    );
}
