//! E13 — the ncvec width-specialized SIMD execution tier (DESIGN
//! §4.11). Regenerates the EXPERIMENTS.md §E13 table: three columns —
//! tree-walking interpreter, scalar micro-op fast path, ncvec SIMD —
//! over the example kernels, headlined by the wide (1024-element)
//! AllReduce windows the tier is built for, plus the end-to-end
//! wall-clock of the netsim AllReduce and KVS workloads on the FastPath
//! vs the Simd deploy backend.
//!
//! Doubles as the CI acceptance gate: on a host with AVX2, the SIMD
//! tier must beat the scalar fast path by ≥2x on the 1024-element
//! AllReduce accumulate (the PR's acceptance floor is 3x, measured on
//! quiet hardware; the CI gate leaves headroom for noisy shared
//! runners). On hosts without AVX2 the gate is informational — the
//! tier's contract there is bit-identical fallback, which this bench
//! asserts on every arm regardless. Writes `target/e13-metrics.json`
//! (the CI artifact; bench binaries run with cwd at the package root,
//! so it lands under crates/bench/).

use c3::{Chunk, HostId, KernelId, NodeId, ScalarType, Value, Window};
use ncl_bench::{rule, run_allreduce_e2e, run_kvs_on};
use ncl_core::apps::{allreduce_source, kvs_source};
use ncl_core::deploy::SwitchBackend;
use ncl_core::{compile, CompileConfig, CompiledProgram};
use ncl_ir::ir::KernelIr;
use ncl_ir::{ncvec, CompiledKernel, ExecScratch, Interpreter, MapId, SwitchState};
use std::hint::black_box;
use std::time::Instant;

struct Case {
    name: &'static str,
    program: CompiledProgram,
    kernel: &'static str,
    windows: Vec<Window>,
}

/// An allreduce case with `win` elements per window — the same shape as
/// E9's, with the chip budgets lifted for the software tiers.
fn allreduce_case(name: &'static str, win: usize) -> Case {
    let and = "hosts worker 3\nswitch s1\nlink worker* s1\n";
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    cfg.model.stages = 64;
    cfg.model.ops_per_stage = 8192;
    cfg.model.phv_header_bytes = 1 << 14;
    cfg.model.phv_metadata_bytes = 1 << 14;
    let program = compile(&allreduce_source(8 * win, win), and, &cfg).expect("compiles");
    let kid = program.kernel_ids["allreduce"];
    let mut windows = Vec::new();
    for seq in 0..8u32 {
        for worker in 1..=3u16 {
            windows.push(Window {
                kernel: KernelId(kid),
                seq,
                sender: HostId(worker),
                from: NodeId::Host(HostId(worker)),
                last: seq == 7,
                chunks: vec![Chunk {
                    offset: seq * 4 * win as u32,
                    data: (0..win as i32)
                        .flat_map(|i| (worker as i32 * 10 + i).to_be_bytes())
                        .collect(),
                }],
                ext: vec![],
            });
        }
    }
    Case {
        name,
        program,
        kernel: "allreduce",
        windows,
    }
}

fn kvs_case() -> Case {
    let and = "hosts client 2\nswitch s1\nhost server\nlink client* s1\nlink server s1\n";
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("query".into(), vec![1, 8, 1]);
    let program = compile(&kvs_source(3, 64, 8), and, &cfg).expect("compiles");
    let kid = program.kernel_ids["query"];
    let windows = (0..24u64)
        .map(|i| Window {
            kernel: KernelId(kid),
            seq: i as u32,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: false,
            chunks: vec![
                Chunk {
                    offset: 0,
                    data: (i * 5).to_be_bytes().to_vec(),
                },
                Chunk {
                    offset: 0,
                    data: (0..8u32).flat_map(|v| v.to_be_bytes()).collect(),
                },
                Chunk {
                    offset: 0,
                    data: vec![0],
                },
            ],
            ext: vec![],
        })
        .collect();
    Case {
        name: "kvs_query",
        program,
        kernel: "query",
        windows,
    }
}

fn fresh_state(case: &Case) -> SwitchState {
    let module = case.program.module("s1").expect("versioned module");
    let mut state = SwitchState::from_module(module);
    state.location_id = case.program.overlay.node("s1").unwrap().id;
    if case.kernel == "allreduce" {
        state.ctrl_write(ncl_ir::CtrlId(0), Value::u32(3));
    } else {
        for key in 0..32u64 {
            state.map_insert(MapId(0), key * 5, Value::new(ScalarType::U8, key));
            let n = state.registers[1].len();
            state.registers[1][key as usize % n] = Value::bool(true);
        }
    }
    state
}

fn kir(case: &Case) -> &KernelIr {
    case.program
        .module("s1")
        .unwrap()
        .kernel(case.kernel)
        .unwrap()
}

/// Median-of-7 ns/window for one executor closure over the case's
/// window set.
fn median_ns(case: &Case, f: &mut dyn FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..7)
        .map(|_| {
            let reps = 100;
            let t = Instant::now();
            for _ in 0..reps {
                f();
            }
            t.elapsed().as_nanos() as u64 / (reps * case.windows.len()) as u64
        })
        .collect();
    samples.sort_unstable();
    samples[3]
}

struct Row {
    name: &'static str,
    vec_runs: usize,
    interp_ns: u64,
    fast_ns: u64,
    simd_ns: u64,
}

fn measure(case: &Case) -> Row {
    let k = kir(case);
    let module = case.program.module("s1").unwrap();
    let scalar = CompiledKernel::compile_for(k, module).with_simd(false);
    let simd = CompiledKernel::compile_for(k, module);
    let it = Interpreter::default();
    let mut scratch = ExecScratch::new();

    let mut s_i = fresh_state(case);
    let mut w_i = case.windows.clone();
    let interp_ns = median_ns(case, &mut || {
        for w in &mut w_i {
            let _ = black_box(it.run_outgoing(k, w, &mut s_i));
        }
    });
    let mut s_f = fresh_state(case);
    let mut w_f = case.windows.clone();
    let fast_ns = median_ns(case, &mut || {
        for w in &mut w_f {
            let _ = black_box(scalar.run_outgoing(w, &mut s_f, &mut scratch));
        }
    });
    let mut s_v = fresh_state(case);
    let mut w_v = case.windows.clone();
    let simd_ns = median_ns(case, &mut || {
        for w in &mut w_v {
            let _ = black_box(simd.run_outgoing(w, &mut s_v, &mut scratch));
        }
    });

    // Bit-identity across tiers: one fresh differential pass. The
    // timed loops above mutate state freely; this pass is the check.
    let mut d_i = fresh_state(case);
    let mut d_f = fresh_state(case);
    let mut d_v = fresh_state(case);
    for w in &case.windows {
        let mut a = w.clone();
        let mut b = w.clone();
        let mut c = w.clone();
        let f_i = it.run_outgoing(k, &mut a, &mut d_i);
        let f_f = scalar.run_outgoing(&mut b, &mut d_f, &mut scratch);
        let f_v = simd.run_outgoing(&mut c, &mut d_v, &mut scratch);
        assert_eq!(f_i, f_f, "{}: scalar verdict diverged", case.name);
        assert_eq!(f_i, f_v, "{}: simd verdict diverged", case.name);
        assert_eq!(a, b, "{}: scalar window diverged", case.name);
        assert_eq!(a, c, "{}: simd window diverged", case.name);
    }
    assert_eq!(d_i.registers, d_f.registers, "{}: scalar state", case.name);
    assert_eq!(d_i.registers, d_v.registers, "{}: simd state", case.name);

    Row {
        name: case.name,
        vec_runs: simd.vec_runs(),
        interp_ns,
        fast_ns,
        simd_ns,
    }
}

fn main() {
    let level = ncvec::level();
    println!("E13: three-tier kernel execution — interpreter vs scalar fast path vs ncvec");
    println!("simd level: {level} (NCVEC_FORCE_SCALAR overrides; bit-identity asserted per arm)\n");

    let cases = [
        allreduce_case("allreduce64", 64),
        allreduce_case("allreduce256", 256),
        allreduce_case("allreduce1024", 1024),
        kvs_case(),
    ];
    let rows: Vec<Row> = cases.iter().map(measure).collect();

    rule(86);
    println!(
        "{:>14} {:>8} {:>12} {:>12} {:>12} {:>11} {:>11}",
        "kernel", "vec runs", "interp ns", "fastpath ns", "simd ns", "simd/interp", "simd/fast"
    );
    rule(86);
    for r in &rows {
        println!(
            "{:>14} {:>8} {:>12} {:>12} {:>12} {:>10.1}x {:>10.2}x",
            r.name,
            r.vec_runs,
            r.interp_ns,
            r.fast_ns,
            r.simd_ns,
            r.interp_ns as f64 / r.simd_ns.max(1) as f64,
            r.fast_ns as f64 / r.simd_ns.max(1) as f64,
        );
    }
    rule(86);

    // End-to-end: identical simulated outcomes, wall-clock difference
    // is the execution tier. Warm one throwaway run per arm to settle
    // allocator state before the measured one.
    println!("\nend-to-end netsim wall-clock (simulated results bit-identical by construction):");
    let (ar_f0, _) = run_allreduce_e2e(3, 16384, 1024, SwitchBackend::FastPath);
    let (_, ar_fast_ms) = run_allreduce_e2e(3, 16384, 1024, SwitchBackend::FastPath);
    let (ar_v0, _) = run_allreduce_e2e(3, 16384, 1024, SwitchBackend::Simd);
    let (_, ar_simd_ms) = run_allreduce_e2e(3, 16384, 1024, SwitchBackend::Simd);
    assert_eq!(ar_f0.completion, ar_v0.completion, "sim results diverged");
    assert_eq!(ar_f0.bytes_on_wire, ar_v0.bytes_on_wire);
    let (kv_f0, _) = run_kvs_on(2, 200, 1.1, 64, 16, 8, SwitchBackend::FastPath);
    let (_, kv_fast_ms) = run_kvs_on(2, 200, 1.1, 64, 16, 8, SwitchBackend::FastPath);
    let (kv_v0, _) = run_kvs_on(2, 200, 1.1, 64, 16, 8, SwitchBackend::Simd);
    let (_, kv_simd_ms) = run_kvs_on(2, 200, 1.1, 64, 16, 8, SwitchBackend::Simd);
    assert_eq!(kv_f0.server_ops, kv_v0.server_ops, "kvs results diverged");
    assert!((kv_f0.hit_rate - kv_v0.hit_rate).abs() < 1e-12);
    rule(66);
    println!(
        "{:>22} {:>14} {:>14} {:>10}",
        "workload", "fastpath ms", "simd ms", "speedup"
    );
    rule(66);
    println!(
        "{:>22} {:>14.1} {:>14.1} {:>9.2}x",
        "allreduce 1024x16Ki",
        ar_fast_ms,
        ar_simd_ms,
        ar_fast_ms / ar_simd_ms.max(1e-9)
    );
    println!(
        "{:>22} {:>14.1} {:>14.1} {:>9.2}x",
        "kvs zipf(1.1)",
        kv_fast_ms,
        kv_simd_ms,
        kv_fast_ms / kv_simd_ms.max(1e-9)
    );
    rule(66);

    // Acceptance gate: ≥2x over the scalar fast path on the wide
    // AllReduce, enforced where AVX2 is available.
    let wide = rows
        .iter()
        .find(|r| r.name == "allreduce1024")
        .expect("wide row");
    let gate = wide.fast_ns as f64 / wide.simd_ns.max(1) as f64;
    let enforced = level == ncvec::SimdLevel::Avx2;
    println!(
        "\nacceptance: simd vs fastpath on allreduce1024 = {gate:.2}x \
         (gate >= 2x, {})",
        if enforced {
            "enforced: avx2 detected"
        } else {
            "informational: no avx2 on this host"
        }
    );
    assert!(
        !enforced || gate >= 2.0,
        "ncvec SIMD tier only {gate:.2}x over the scalar fast path on allreduce1024"
    );

    let kernels_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"{}\",\"vec_runs\":{},\"interp_ns\":{},\"fastpath_ns\":{},\
                 \"simd_ns\":{},\"simd_vs_fastpath\":{:.3}}}",
                r.name,
                r.vec_runs,
                r.interp_ns,
                r.fast_ns,
                r.simd_ns,
                r.fast_ns as f64 / r.simd_ns.max(1) as f64
            )
        })
        .collect();
    let json = format!(
        "{{\"experiment\":\"e13\",\"simd_level\":\"{level}\",\"kernels\":[{}],\
         \"gate\":{{\"kernel\":\"allreduce1024\",\"required\":2.0,\"measured\":{gate:.3},\
         \"enforced\":{enforced}}},\"e2e\":[{{\"workload\":\"allreduce\",\
         \"fastpath_ms\":{ar_fast_ms:.3},\"simd_ms\":{ar_simd_ms:.3}}},{{\"workload\":\"kvs\",\
         \"fastpath_ms\":{kv_fast_ms:.3},\"simd_ms\":{kv_simd_ms:.3}}}]}}\n",
        kernels_json.join(",")
    );
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/e13-metrics.json", &json).expect("write target/e13-metrics.json");
    println!("wrote target/e13-metrics.json ({} bytes)", json.len());
}
