//! E2 — Fig. 5 KVS cache: in-network cache vs server-only. Sweeps Zipf
//! skew and cache size; reports mean/p99 GET latency, switch hit rate
//! and server load. The headline shape: under skew the cache absorbs
//! the hot head of the distribution, collapsing server load; the
//! crossover sits where the hit rate no longer pays for the extra
//! pipeline traversal on misses.

use ncl_bench::run_kvs;

fn main() {
    let clients = 3usize;
    let ops = 250usize;
    let keyspace = 400u64;
    let val_words = 8usize;

    println!("E2: KVS — in-network cache vs server-only");
    println!(
        "{clients} clients × {ops} ops, {keyspace}-key space, {}B values, 2% PUTs\n",
        val_words * 4
    );

    println!("-- skew sweep (64-slot cache) --");
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>12} {:>11} {:>8}",
        "zipf", "cache", "mean µs", "p99 µs", "base mean", "base p99", "server ops", "hit %"
    );
    for skew in [0.6, 0.9, 1.1, 1.3] {
        let base = run_kvs(clients, ops, skew, keyspace, 0, val_words);
        let inc = run_kvs(clients, ops, skew, keyspace, 64, val_words);
        println!(
            "{:>6.1} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>5}/{:<5} {:>7.0}%",
            skew,
            64,
            inc.mean_latency / 1000.0,
            inc.p99_latency as f64 / 1000.0,
            base.mean_latency / 1000.0,
            base.p99_latency as f64 / 1000.0,
            inc.server_ops,
            base.server_ops,
            inc.hit_rate * 100.0,
        );
    }

    println!("\n-- cache-size sweep (zipf 1.2) --");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>8}",
        "slots", "mean µs", "p99 µs", "server ops", "hit %"
    );
    let base = run_kvs(clients, ops, 1.2, keyspace, 0, val_words);
    println!(
        "{:>8} {:>12.1} {:>12.1} {:>12} {:>8}",
        "none",
        base.mean_latency / 1000.0,
        base.p99_latency as f64 / 1000.0,
        base.server_ops,
        "—"
    );
    for slots in [8usize, 16, 32, 64, 128] {
        let inc = run_kvs(clients, ops, 1.2, keyspace, slots, val_words);
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>12} {:>7.0}%",
            slots,
            inc.mean_latency / 1000.0,
            inc.p99_latency as f64 / 1000.0,
            inc.server_ops,
            inc.hit_rate * 100.0,
        );
    }
    println!("\nShape check: hit rate and server-load relief grow with skew");
    println!("and cache size; at near-uniform access (zipf 0.6) the cache");
    println!("stops paying — the crossover the paper's caching citations");
    println!("(NetCache) report.");
}
