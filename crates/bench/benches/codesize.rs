//! E3 — the paper's §2 complexity claim, quantified: lines and tokens
//! of NCL source vs the P4 nclc generates vs handwritten P4 (the
//! NetCache-style program of `ncl_core::baseline`). "Programmers are
//! thus forced to encode application logic in unfamiliar terms" — this
//! table is the factor between the two encodings.

use ncl_core::apps::{allreduce_source, kvs_source};
use ncl_core::baseline::handwritten_netcache_p4;
use ncl_core::nclc::{compile, CompileConfig};
use ncl_p4::p4emit::effective_lines;

fn tokens(src: &str) -> usize {
    // Crude but uniform across languages: alphanumeric runs + punct.
    let mut count = 0;
    let mut in_word = false;
    for c in src.chars() {
        if c.is_alphanumeric() || c == '_' {
            if !in_word {
                count += 1;
                in_word = true;
            }
        } else {
            in_word = false;
            if !c.is_whitespace() {
                count += 1;
            }
        }
    }
    count
}

struct Case {
    name: &'static str,
    ncl: String,
    masks: Vec<(&'static str, Vec<u16>)>,
    and: &'static str,
}

fn main() {
    let cases = vec![
        Case {
            name: "increment (micro)",
            ncl: "_net_ _out_ void inc(int *d) { d[0] += 1; }".to_string(),
            masks: vec![("inc", vec![1])],
            and: "host a\nhost b\nswitch s1\nlink a s1\nlink b s1\n",
        },
        Case {
            name: "threshold-filter (micro)",
            ncl: "_net_ _ctrl_ _at_(\"s1\") unsigned limit = 100;\n\
                  _net_ _out_ void filt(uint32_t *d) {\n\
                      if (d[0] > limit) { _drop(); }\n\
                  }"
            .to_string(),
            masks: vec![("filt", vec![1])],
            and: "host a\nhost b\nswitch s1\nlink a s1\nlink b s1\n",
        },
        Case {
            name: "per-flow counter (micro)",
            ncl: "_net_ _at_(\"s1\") unsigned hits[256] = {0};\n\
                  _net_ _out_ void count(uint32_t *d) {\n\
                      hits[d[0] & 255] += 1;\n\
                  }"
            .to_string(),
            masks: vec![("count", vec![1])],
            and: "host a\nhost b\nswitch s1\nlink a s1\nlink b s1\n",
        },
        Case {
            name: "AllReduce (Fig. 4)",
            ncl: allreduce_source(1024, 32),
            masks: vec![("allreduce", vec![32]), ("result", vec![32])],
            and: "hosts worker 4\nswitch s1\nlink worker* s1\n",
        },
        Case {
            name: "KVS cache (Fig. 5)",
            ncl: kvs_source(3, 256, 32),
            masks: vec![("query", vec![1, 32, 1])],
            and: "hosts client 2\nswitch s1\nhost server\nlink client* s1\nlink server s1\n",
        },
    ];

    println!("E3: code size — NCL source vs generated P4");
    println!(
        "{:<24} {:>9} {:>10} {:>9} {:>10} {:>8}",
        "program", "NCL lines", "NCL toks", "P4 lines", "P4 toks", "factor"
    );
    for case in &cases {
        let mut cfg = CompileConfig::default();
        for (k, m) in &case.masks {
            cfg.masks.insert(k.to_string(), m.clone());
        }
        let program =
            compile(&case.ncl, case.and, &cfg).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let p4 = &program.switches[0].1.p4_source;
        let (nl, nt) = (effective_lines(&case.ncl), tokens(&case.ncl));
        let (pl, pt) = (effective_lines(p4), tokens(p4));
        println!(
            "{:<24} {:>9} {:>10} {:>9} {:>10} {:>7.1}x",
            case.name,
            nl,
            nt,
            pl,
            pt,
            pl as f64 / nl as f64
        );
    }

    // Handwritten comparison: what a P4 programmer writes for the same
    // cache (256 items, 128 B values → 32 u32 words, Fig. 1b style).
    let hand = handwritten_netcache_p4(256, 32);
    println!(
        "{:<24} {:>9} {:>10} {:>9} {:>10} {:>8}",
        "KVS handwritten P4",
        "—",
        "—",
        effective_lines(&hand),
        tokens(&hand),
        "—"
    );
    println!("\nShape check: each NCL kernel is ~10-20 lines; every P4");
    println!("realization (generated or handwritten) is an order of");
    println!("magnitude larger — §2's 'obnoxious control flow' claim.");
}
