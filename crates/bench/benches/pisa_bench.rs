//! E6 — Fig. 1a, the PISA simulator: packet-processing rate vs program
//! size under Criterion, plus the stage-occupancy and recirculation-
//! onset tables (what the paper's "arch-specific transformations …
//! decide if recirculation is required" stage produces).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ncl_core::nclc::{compile, CompileConfig};
use pisa::{Pipeline, ResourceModel};
use std::hint::black_box;

const AND: &str = "host a\nhost b\nswitch s1\nlink a s1\nlink b s1\n";

/// A synthetic kernel with `depth` dependent arithmetic steps over a
/// `width`-element window.
fn synth_kernel(depth: usize, width: usize) -> (String, Vec<u16>) {
    let mut body = String::from("    int acc = data[0];\n");
    for i in 0..depth {
        body.push_str(&format!("    acc = acc * 3 + data[{}];\n", i % width));
    }
    body.push_str("    data[0] = acc;\n");
    (
        format!("_net_ _out_ void k(int *data) {{\n{body}}}\n"),
        vec![width as u16],
    )
}

fn build(src: &str, mask: Vec<u16>) -> Option<(Pipeline, Vec<u8>, pisa::ResourceReport)> {
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("k".into(), mask.clone());
    let program = compile(src, AND, &cfg).ok()?;
    let compiled = program.switch("s1").unwrap();
    let report = compiled.report.clone();
    let pipe = Pipeline::load(compiled.pipeline.clone(), ResourceModel::default()).unwrap();
    let kid = program.kernel_ids["k"];
    let w = c3::Window {
        kernel: c3::KernelId(kid),
        seq: 0,
        sender: c3::HostId(1),
        from: c3::NodeId::Host(c3::HostId(1)),
        last: false,
        chunks: vec![c3::Chunk {
            offset: 0,
            data: (0..mask[0] as u32).flat_map(|v| v.to_be_bytes()).collect(),
        }],
        ext: vec![],
    };
    let pkt = ncp::codec::encode_window(&w, 0);
    Some((pipe, pkt, report))
}

fn occupancy_table() {
    println!("\nE6b: stage occupancy & recirculation onset (12-stage chip)");
    println!(
        "{:>14} {:>8} {:>8} {:>10} {:>12}",
        "kernel", "stages", "passes", "max ops", "PHV meta B"
    );
    for depth in [1usize, 2, 4, 8, 16, 24, 32] {
        let (src, mask) = synth_kernel(depth, 8);
        let mut cfg = CompileConfig::default();
        cfg.masks.insert("k".into(), mask);
        match compile(&src, AND, &cfg) {
            Ok(p) => {
                let r = &p.switches[0].1.report;
                println!(
                    "{:>11}-op {:>8} {:>8} {:>10} {:>12}",
                    depth,
                    r.stages_used,
                    r.recirc_passes + 1,
                    r.ops_by_stage.iter().max().unwrap_or(&0),
                    r.phv_metadata_bytes
                );
            }
            Err(e) => {
                let msg = e.to_string();
                let first = msg.lines().nth(1).unwrap_or("rejected").trim();
                println!("{:>11}-op rejected: {first}", depth);
            }
        }
    }
}

fn bench_pipeline(c: &mut Criterion) {
    occupancy_table();

    let mut g = c.benchmark_group("pisa_process");
    for (name, depth) in [("small", 2usize), ("medium", 8), ("large", 16)] {
        let (src, mask) = synth_kernel(depth, 8);
        let Some((mut pipe, pkt, report)) = build(&src, mask) else {
            println!("{name}: rejected by the resource model, skipping");
            continue;
        };
        g.throughput(Throughput::Elements(1));
        g.bench_function(format!("{name}-{}stages", report.stages_used), |b| {
            b.iter(|| pipe.process(black_box(&pkt)).expect("processes"))
        });
    }
    g.finish();

    // Parse-only cost (non-NCP fast path, Fig. 3b).
    let (src, mask) = synth_kernel(4, 8);
    let (mut pipe, pkt, _) = build(&src, mask).expect("small kernel fits");
    let mut garbage = pkt.clone();
    garbage[0] = 0; // break the magic
    c.bench_function("pisa_reject_non_ncp", |b| {
        b.iter(|| pipe.process(black_box(&garbage)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_pipeline
}
criterion_main!(benches);
