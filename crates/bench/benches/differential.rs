//! E8 — the cost of PISA: the same kernel executed by the free-form IR
//! interpreter vs the compiled match-action pipeline (parse, staged
//! predicated VLIW ops, deparse). The gap is the price of the
//! architecture the paper compiles onto — and the differential pair is
//! also the compiler's correctness oracle.

use c3::{Chunk, HostId, KernelId, NodeId, Value};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ncl_core::apps::allreduce_source;
use ncl_ir::lower::{lower, LoweringConfig};
use ncl_ir::{Interpreter, SwitchState};
use pisa::{Pipeline, ResourceModel};
use std::hint::black_box;

fn setup() -> (ncl_ir::ir::Module, Pipeline, Vec<u8>, c3::Window) {
    let src = allreduce_source(1024, 32);
    let mut lcfg = LoweringConfig::default();
    lcfg.masks.insert("allreduce".into(), vec![32]);
    lcfg.masks.insert("result".into(), vec![32]);
    let checked = ncl_lang::frontend(&src, "bench.ncl").expect("frontend");
    let mut module = lower(&checked, &lcfg).expect("lower");
    ncl_ir::passes::optimize(&mut module);
    let mut opts = ncl_p4::CompileOptions::default();
    opts.kernel_ids.insert("allreduce".into(), 1);
    let compiled =
        ncl_p4::compile_module(&module, &ResourceModel::default(), &opts).expect("compiles");
    let pipe = Pipeline::load(compiled.pipeline, ResourceModel::default()).expect("loads");
    let w = c3::Window {
        kernel: KernelId(1),
        seq: 0,
        sender: HostId(1),
        from: NodeId::Host(HostId(1)),
        last: false,
        chunks: vec![Chunk {
            offset: 0,
            data: (0..32u32).flat_map(|v| v.to_be_bytes()).collect(),
        }],
        ext: vec![],
    };
    let pkt = ncp::codec::encode_window(&w, 0);
    (module, pipe, pkt, w)
}

fn bench_differential(c: &mut Criterion) {
    let (module, mut pipe, pkt, w) = setup();
    let kir = module.kernel("allreduce").expect("kernel").clone();
    let mut state = SwitchState::from_module(&module);
    state.ctrl_write(ncl_ir::CtrlId(0), Value::u32(1_000_000_000)); // never bcast

    let mut g = c.benchmark_group("execution");
    g.throughput(Throughput::Elements(1));
    let it = Interpreter::default();
    g.bench_function("interpreter/allreduce-window", |b| {
        b.iter(|| {
            let mut win = w.clone();
            it.run_outgoing(black_box(&kir), &mut win, &mut state)
                .expect("runs")
        })
    });
    g.bench_function("pipeline/allreduce-window", |b| {
        b.iter(|| pipe.process(black_box(&pkt)).expect("processes"))
    });
    g.finish();

    println!(
        "\nE8 note: kernel {} IR instructions → {} pipeline stages; the",
        kir.inst_count(),
        pipe.config().stages.len()
    );
    println!("pipeline additionally parses and deparses each packet, which");
    println!("is the honest per-packet cost of a PISA realization.");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_differential
}
criterion_main!(benches);
