//! E4 — nclc compile-time, per Fig. 6 stage, measured with Criterion:
//! frontend (lex/parse/sema), lowering, optimization, versioning, and
//! backend codegen; plus a conformance-rejection coverage table.

use criterion::{criterion_group, criterion_main, Criterion};
use ncl_core::apps::{allreduce_source, kvs_source};
use ncl_core::nclc::{compile, CompileConfig};
use ncl_ir::lower::{lower, LoweringConfig};
use ncl_ir::version::{version_modules, LocationInfo};
use std::hint::black_box;

fn sources() -> Vec<(&'static str, String, LoweringConfig)> {
    let mut ar_cfg = LoweringConfig::default();
    ar_cfg.masks.insert("allreduce".into(), vec![32]);
    ar_cfg.masks.insert("result".into(), vec![32]);
    let mut kvs_cfg = LoweringConfig::default();
    kvs_cfg.masks.insert("query".into(), vec![1, 32, 1]);
    vec![
        ("allreduce", allreduce_source(1024, 32), ar_cfg),
        ("kvs", kvs_source(3, 256, 32), kvs_cfg),
    ]
}

fn bench_stages(c: &mut Criterion) {
    for (name, src, lcfg) in sources() {
        c.bench_function(format!("frontend/{name}"), |b| {
            b.iter(|| ncl_lang::frontend(black_box(&src), "bench.ncl").expect("frontend"))
        });
        let checked = ncl_lang::frontend(&src, "bench.ncl").expect("frontend");
        c.bench_function(format!("lower/{name}"), |b| {
            b.iter(|| lower(black_box(&checked), &lcfg).expect("lower"))
        });
        let module = lower(&checked, &lcfg).expect("lower");
        c.bench_function(format!("optimize/{name}"), |b| {
            b.iter(|| {
                let mut m = module.clone();
                ncl_ir::passes::optimize(&mut m)
            })
        });
        let mut optimized = module.clone();
        ncl_ir::passes::optimize(&mut optimized);
        let locations = vec![LocationInfo {
            label: c3::Label::new("s1"),
            id: 1,
        }];
        c.bench_function(format!("version/{name}"), |b| {
            b.iter(|| version_modules(black_box(&optimized), &locations))
        });
        let versions = version_modules(&optimized, &locations);
        let opts = ncl_p4::CompileOptions::default();
        c.bench_function(format!("codegen/{name}"), |b| {
            b.iter(|| {
                ncl_p4::compile_module(
                    black_box(&versions[0]),
                    &pisa::ResourceModel::default(),
                    &opts,
                )
                .expect("codegen")
            })
        });
    }
}

fn bench_end_to_end(c: &mut Criterion) {
    let and = "hosts worker 4\nswitch s1\nlink worker* s1\n";
    let src = allreduce_source(1024, 32);
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![32]);
    cfg.masks.insert("result".into(), vec![32]);
    c.bench_function("nclc/end-to-end/allreduce", |b| {
        b.iter(|| compile(black_box(&src), and, &cfg).expect("compiles"))
    });
}

/// Conformance-rejection coverage: every reject class the paper's
/// Fig. 6 describes, demonstrated.
fn rejection_table() {
    println!("\nE4b: conformance/backed rejection coverage");
    type RejectCase = (&'static str, &'static str, Vec<(&'static str, Vec<u16>)>);
    let cases: Vec<RejectCase> = vec![
        (
            "unbounded loop",
            "_net_ _out_ void k(int *d) { while (d[0] > 0) { d[0] -= 1; } }",
            vec![("k", vec![1])],
        ),
        (
            "misplaced memory",
            "_net_ _at_(\"s2\") int m[4];\n_net_ _out_ _at_(\"s1\") void k(int *d) { m[0] += d[0]; }",
            vec![("k", vec![1])],
        ),
        (
            "unknown location",
            "_net_ _out_ _at_(\"nowhere\") void k(int *d) { _drop(); }",
            vec![("k", vec![1])],
        ),
        (
            "too many stateful micro-ops",
            "_net_ _at_(\"s1\") int m[4];\n_net_ _out_ void k(int *d) {\n  m[d[0]] += 1; m[d[1]] += 1; m[d[2]] += 1; m[d[3]] += 1;\n}",
            vec![("k", vec![4])],
        ),
    ];
    let and = "host a\nhost b\nswitch s1\nswitch s2\nlink a s1\nlink s1 s2\nlink s2 b\n";
    for (name, src, masks) in cases {
        let mut cfg = CompileConfig::default();
        for (k, m) in masks {
            cfg.masks.insert(k.to_string(), m);
        }
        match compile(src, and, &cfg) {
            Ok(_) => println!("  {name:<32} UNEXPECTEDLY ACCEPTED"),
            Err(e) => {
                let first = e.to_string();
                let first = first.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
                println!("  {name:<32} rejected: {}", first.trim());
            }
        }
    }
}

fn table_then_bench(c: &mut Criterion) {
    rejection_table();
    bench_stages(c);
    bench_end_to_end(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = table_then_bench
}
criterion_main!(benches);
