//! Topology building, routing, and the simulation run loop.

use crate::event::{EventQueue, Time};
use crate::link::{LinkDir, LinkSpec};
use crate::node::{ncp_scope_key, CtrlOp, HostApp, HostCtx, SwitchCfg, SwitchStats};
use c3::{HostId, NodeId, SwitchId};
use ncp::NcpPacket;
use nctel::hop::{section_append, section_valid, HopRecord, HOP_FORWARDED_ONLY};
use nctel::{Counter, Registry, Scope, ScopeEvent};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A packet in flight: explicit src/dst (the IP encapsulation) plus the
/// payload bytes (NCP or anything else).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Packet {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

enum NodeKind {
    Host {
        id: HostId,
        app: Box<dyn HostApp>,
    },
    Switch {
        id: SwitchId,
        cfg: Box<SwitchCfg>,
        stats: SwitchStats,
    },
}

/// Builds a topology, then [`NetworkBuilder::build`]s the runnable
/// [`Network`].
#[derive(Default)]
pub struct NetworkBuilder {
    nodes: Vec<NodeKind>,
    links: Vec<(usize, usize, LinkSpec)>,
    next_host: u16,
    next_switch: u16,
    registry: Option<Arc<Registry>>,
    scope: Option<Scope>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Uses `reg` as the network's metrics registry instead of a fresh
    /// one, so the simulator's counters land next to the caller's
    /// (e.g. `ncl-core`'s deploy gate) in one exporter.
    pub fn with_metrics(&mut self, reg: Arc<Registry>) -> &mut Self {
        self.registry = Some(reg);
        self
    }

    /// Attaches an ncscope event sink: link-level drops and switch
    /// executions/forwards/dup-suppressions are emitted with simulated
    /// timestamps, keyed by the NCP window identity parsed from each
    /// packet. Non-NCP packets emit nothing.
    pub fn with_scope(&mut self, scope: &Scope) -> &mut Self {
        self.scope = Some(scope.clone());
        self
    }

    /// Adds a host running `app`; ids are assigned sequentially from 1.
    pub fn add_host(&mut self, app: Box<dyn HostApp>) -> HostId {
        self.next_host += 1;
        let id = HostId(self.next_host);
        self.nodes.push(NodeKind::Host { id, app });
        id
    }

    /// Adds a switch.
    pub fn add_switch(&mut self, cfg: SwitchCfg) -> SwitchId {
        self.next_switch += 1;
        let id = SwitchId(self.next_switch);
        self.nodes.push(NodeKind::Switch {
            id,
            cfg: Box::new(cfg),
            stats: SwitchStats::default(),
        });
        id
    }

    /// Connects two nodes with a bidirectional link.
    pub fn link(&mut self, a: impl Into<NodeId>, b: impl Into<NodeId>, spec: LinkSpec) {
        let ai = self.index_of(a.into());
        let bi = self.index_of(b.into());
        self.links.push((ai, bi, spec));
    }

    fn index_of(&self, n: NodeId) -> usize {
        self.nodes
            .iter()
            .position(|node| node_id(node) == n)
            .unwrap_or_else(|| panic!("unknown node {n}"))
    }

    /// Finalizes the topology: computes BFS shortest-path routing and
    /// returns the runnable network.
    pub fn build(self) -> Network {
        let n = self.nodes.len();
        let mut adj: Vec<Vec<(usize, bool, usize)>> = vec![vec![]; n]; // (link, a->b?, peer)
        let mut links = Vec::new();
        for (li, (a, b, spec)) in self.links.iter().enumerate() {
            adj[*a].push((li, true, *b));
            adj[*b].push((li, false, *a));
            links.push(RuntimeLink {
                a: *a,
                b: *b,
                ab: LinkDir::new(*spec, (li as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ba: LinkDir::new(*spec, (li as u64 + 1).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)),
            });
        }
        // All-pairs next hop by BFS from every destination.
        let mut next_hop: Vec<HashMap<NodeId, (usize, bool)>> = vec![HashMap::new(); n];
        for dst in 0..n {
            let dst_id = node_id(&self.nodes[dst]);
            let mut dist = vec![usize::MAX; n];
            let mut q = VecDeque::new();
            dist[dst] = 0;
            q.push_back(dst);
            while let Some(x) = q.pop_front() {
                for &(li, a_to_b, peer) in &adj[x] {
                    if dist[peer] == usize::MAX {
                        dist[peer] = dist[x] + 1;
                        // peer reaches dst through x via link li; the
                        // direction peer→x is the reverse of x's view.
                        next_hop[peer].insert(dst_id, (li, !a_to_b));
                        q.push_back(peer);
                    }
                }
            }
        }
        let registry = self.registry.unwrap_or_else(|| Arc::new(Registry::new()));
        let counters = SimCounters::new(&registry);
        Network {
            nodes: self.nodes,
            links,
            next_hop,
            queue: EventQueue::new(),
            now: 0,
            started: false,
            ctrl_latency: 50_000, // 50 µs controller RTT
            registry,
            counters,
            scope: self.scope,
        }
    }
}

struct RuntimeLink {
    a: usize,
    b: usize,
    ab: LinkDir,
    ba: LinkDir,
}

fn node_id(n: &NodeKind) -> NodeId {
    match n {
        NodeKind::Host { id, .. } => NodeId::Host(*id),
        NodeKind::Switch { id, .. } => NodeId::Switch(*id),
    }
}

/// Point-in-time snapshot of the aggregate simulation counters (which
/// live on the network's `nctel` [`Registry`]; see
/// [`Network::metrics`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SimStats {
    /// Packets delivered to host applications.
    pub delivered: u64,
    /// Packets lost on links.
    pub link_drops: u64,
    /// Extra deliveries injected by link duplication
    /// ([`LinkSpec::dup_every`]).
    pub link_dups: u64,
    /// Packets with no route to their destination.
    pub unroutable: u64,
    /// Events processed.
    pub events: u64,
    /// Total bytes offered to links.
    pub bytes_sent: u64,
    /// NCP windows that reached a computing switch naming a kernel id
    /// it has no deployed kernel for (forwarded unharmed, never
    /// silently dropped — see `SwitchStats::unknown_kernel`).
    pub unknown_kernel: u64,
}

/// The registry-backed cells behind [`SimStats`].
struct SimCounters {
    delivered: Counter,
    link_drops: Counter,
    link_dups: Counter,
    unroutable: Counter,
    events: Counter,
    bytes_sent: Counter,
    unknown_kernel: Counter,
}

impl SimCounters {
    fn new(reg: &Registry) -> Self {
        SimCounters {
            delivered: reg.counter("sim.delivered"),
            link_drops: reg.counter("sim.link_drops"),
            link_dups: reg.counter("sim.link_dups"),
            unroutable: reg.counter("sim.unroutable"),
            events: reg.counter("sim.events"),
            bytes_sent: reg.counter("sim.bytes_sent"),
            unknown_kernel: reg.counter("sim.unknown_kernel"),
        }
    }
}

enum Event {
    Start,
    Arrive { node: usize, pkt: Packet },
    Timer { node: usize, token: u64 },
    Ctrl { switch: SwitchId, op: CtrlOp },
}

/// The runnable network simulation.
pub struct Network {
    nodes: Vec<NodeKind>,
    links: Vec<RuntimeLink>,
    next_hop: Vec<HashMap<NodeId, (usize, bool)>>,
    queue: EventQueue<Event>,
    now: Time,
    started: bool,
    /// Latency of control-plane operations (host → controller → switch).
    pub ctrl_latency: Time,
    registry: Arc<Registry>,
    counters: SimCounters,
    scope: Option<Scope>,
}

impl Network {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Snapshot of the aggregate counters (compat shim over the nctel
    /// cells).
    pub fn stats(&self) -> SimStats {
        SimStats {
            delivered: self.counters.delivered.get(),
            link_drops: self.counters.link_drops.get(),
            link_dups: self.counters.link_dups.get(),
            unroutable: self.counters.unroutable.get(),
            events: self.counters.events.get(),
            bytes_sent: self.counters.bytes_sent.get(),
            unknown_kernel: self.counters.unknown_kernel.get(),
        }
    }

    /// The metrics registry every simulator counter lives on.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Replaces both directions' [`LinkSpec`] of the `a`↔`b` link
    /// mid-run: bandwidth, latency, and the deterministic loss / dup /
    /// jitter processes all switch to the new parameters for subsequent
    /// transmissions (packets already in flight keep the timings they
    /// were emitted under, and the per-direction drop/dup phase
    /// counters are preserved so the change is purely a parameter
    /// swap). This is the fault-injection hook ncwatch's degrading-link
    /// campaigns use. Returns `false` when no such link exists.
    pub fn set_link_spec(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> bool {
        let idx = |id: NodeId| self.nodes.iter().position(|n| node_id(n) == id);
        let (Some(ai), Some(bi)) = (idx(a), idx(b)) else {
            return false;
        };
        for l in &mut self.links {
            if (l.a == ai && l.b == bi) || (l.a == bi && l.b == ai) {
                l.ab.spec = spec;
                l.ba.spec = spec;
                return true;
            }
        }
        false
    }

    /// Runs until the event queue drains or `deadline` passes. Returns
    /// the final time.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        if !self.started {
            self.started = true;
            self.queue.push(0, Event::Start);
        }
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked");
            self.now = t;
            self.counters.events.inc();
            self.dispatch(ev);
        }
        self.now
    }

    /// Runs to quiescence.
    pub fn run(&mut self) -> Time {
        self.run_until(Time::MAX)
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Start => {
                for i in 0..self.nodes.len() {
                    if matches!(self.nodes[i], NodeKind::Host { .. }) {
                        self.with_host(i, |app, ctx| app.on_start(ctx));
                    }
                }
            }
            Event::Arrive { node, pkt } => match &self.nodes[node] {
                NodeKind::Host { .. } => {
                    self.counters.delivered.inc();
                    self.with_host(node, |app, ctx| app.on_packet(ctx, &pkt));
                }
                NodeKind::Switch { .. } => self.switch_process(node, pkt),
            },
            Event::Timer { node, token } => {
                self.with_host(node, |app, ctx| app.on_timer(ctx, token));
            }
            Event::Ctrl { switch, op } => self.apply_ctrl(switch, op),
        }
    }

    fn apply_ctrl(&mut self, switch: SwitchId, op: CtrlOp) {
        // Fast-path switches take control operations directly.
        if let Some(fp) = self.switch_fastpath_mut(switch) {
            fp.ctrl(&op);
            return;
        }
        let Some(pipe) = self.switch_pipeline_mut(switch) else {
            return;
        };
        match op {
            CtrlOp::TableInsert { table, entry } => {
                let _ = pipe.table_insert(&table, entry);
            }
            CtrlOp::TableRemove { table, patterns } => {
                pipe.table_remove(&table, &patterns);
            }
            CtrlOp::RegWrite { name, index, value } => {
                pipe.register_write(&name, index, value);
            }
        }
    }

    /// Runs a host callback and flushes its sends/timers.
    fn with_host(&mut self, node: usize, f: impl FnOnce(&mut dyn HostApp, &mut HostCtx)) {
        let mut out = Vec::new();
        let mut timers = Vec::new();
        let mut ctrl = Vec::new();
        let now = self.now;
        let NodeKind::Host { id, app } = &mut self.nodes[node] else {
            return; // timers for removed/foreign nodes are ignored
        };
        let host = *id;
        {
            let mut ctx = HostCtx {
                now,
                host,
                out: &mut out,
                timers: &mut timers,
                ctrl: &mut ctrl,
            };
            f(app.as_mut(), &mut ctx);
        }
        for (delay, token) in timers {
            self.queue.push(now + delay, Event::Timer { node, token });
        }
        for (switch, op) in ctrl {
            self.queue
                .push(now + self.ctrl_latency, Event::Ctrl { switch, op });
        }
        for pkt in out {
            self.route_out(node, pkt);
        }
    }

    /// Sends a packet out of `node` towards `pkt.dst`.
    fn route_out(&mut self, node: usize, pkt: Packet) {
        if node_id(&self.nodes[node]) == pkt.dst {
            // Loopback: deliver immediately.
            self.queue.push(self.now, Event::Arrive { node, pkt });
            return;
        }
        let Some(&(li, a_to_b)) = self.next_hop[node].get(&pkt.dst) else {
            self.counters.unroutable.inc();
            return;
        };
        let link = &mut self.links[li];
        let (dir, peer) = if a_to_b {
            (&mut link.ab, link.b)
        } else {
            (&mut link.ba, link.a)
        };
        self.counters.bytes_sent.add(pkt.payload.len() as u64);
        // +42: Ethernet+IP+UDP encapsulation overhead.
        let outcome = dir.transmit_outcome(self.now, pkt.payload.len() + 42);
        let Some(arrival) = outcome.arrival else {
            self.counters.link_drops.inc();
            // Ground truth for the diagnosis engine: the sim *knows*
            // which link ate the frame, so say so.
            if let Some(scope) = &self.scope {
                if let Some((key, ctrl)) = ncp_scope_key(&pkt.payload) {
                    let from = node_id(&self.nodes[node]).to_wire();
                    let to = node_id(&self.nodes[peer]).to_wire();
                    scope.emit(
                        self.now,
                        from,
                        key,
                        ScopeEvent::FragmentDropped {
                            from,
                            to,
                            ctrl,
                            burst: outcome.burst,
                        },
                    );
                }
            }
            return;
        };
        if let Some(dup) = outcome.dup {
            self.counters.link_dups.inc();
            self.queue.push(
                dup,
                Event::Arrive {
                    node: peer,
                    pkt: pkt.clone(),
                },
            );
        }
        self.queue.push(arrival, Event::Arrive { node: peer, pkt });
    }

    /// NCP-aware switch processing (paper Fig. 3b).
    fn switch_process(&mut self, node: usize, pkt: Packet) {
        // Cloned before the node borrow: emissions happen while `cfg`
        // and `stats` are still mutably borrowed.
        let scope = self.scope.clone();
        let NodeKind::Switch { id, cfg, stats } = &mut self.nodes[node] else {
            unreachable!("switch_process on a host");
        };
        let my_wire = NodeId::Switch(*id).to_wire();
        let pipeline_latency = cfg.pipeline_latency;
        let fwd_latency = cfg.fwd_latency;

        // Previous hop before we rewrite it (for _reflect()), the flags
        // for the NCP-R control-frame check, and the kernel id, payload
        // length and window identity for telemetry/scope stamping.
        let (incoming_from, incoming_flags, ncp_meta) =
            match NcpPacket::new_checked(&pkt.payload[..]) {
                Ok(p) => (
                    Some(p.from()),
                    p.flags(),
                    Some((p.kernel(), p.total_len(), p.sender(), p.seq())),
                ),
                Err(_) => (None, 0, None),
            };
        let scope_key = ncp_meta
            .map(|(kernel, _, sender, seq)| nctel::WindowKey::new(sender, kernel, seq))
            .filter(|_| scope.is_some());

        // NCP-R ACK/NACK frames are host-to-host control traffic: they
        // name a kernel but must never execute it (an ACK has no data
        // chunks). Forward them like non-NCP packets.
        if incoming_flags & (ncp::FLAG_ACK | ncp::FLAG_NACK) != 0 {
            stats.forwarded += 1;
            stats.acks_forwarded += 1;
            if let (Some(scope), Some(key)) = (&scope, scope_key) {
                let t = self.now + fwd_latency;
                scope.emit(
                    t,
                    my_wire,
                    key,
                    ScopeEvent::SwitchForwarded { switch: my_wire },
                );
            }
            self.delayed_route(node, pkt, fwd_latency);
            return;
        }

        // In-band telemetry (DESIGN.md §4.9): a frame flagged with
        // FLAG_TELEMETRY carries a hop-record section after the encoded
        // window. Strip it before the datapath runs — neither the
        // generated PISA parser nor the fast-path window codec knows
        // about it — then stamp our record and re-append on egress.
        let mut pkt = pkt;
        let mut tel_section: Option<Vec<u8>> = None;
        if incoming_flags & ncp::FLAG_TELEMETRY != 0 {
            if let Some((_, total, _, _)) = ncp_meta {
                if total <= pkt.payload.len() && section_valid(&pkt.payload[total..]) {
                    tel_section = Some(pkt.payload.split_off(total));
                }
            }
        }
        let ticks_in = self.now;
        // Replay-filter duplicate count before execution: the delta
        // after the datapath ran tells whether *this* window was
        // suppressed as an NCP-R replay (state evolves bit-identically
        // across the interpreter / fast-path / PISA tiers, so the flag
        // does too). Tracked for in-band stamping and for the scope's
        // DupSuppressed events alike.
        let track_dups = (tel_section.is_some() && cfg.telemetry.is_some()) || scope_key.is_some();
        let dups_before = if track_dups { cfg_dup_sum(cfg) } else { 0 };

        // (payload, fwd_code, fwd_label, passes, parsed_bytes) from
        // whichever datapath the switch runs: the compiled fast path
        // executes windows directly (always one pass, whole payload);
        // the PISA pipeline models the hardware pass structure.
        let result = if let Some(fp) = cfg.fastpath.as_mut() {
            fp.process(&pkt.payload).map(|v| {
                (
                    v.payload,
                    v.fwd_code,
                    v.fwd_label,
                    1usize,
                    pkt.payload.len(),
                    v.version,
                )
            })
        } else {
            cfg.pipeline
                .as_mut()
                .and_then(|pipe| pipe.process(&pkt.payload))
                .map(|o| {
                    (
                        o.packet,
                        o.fwd_code,
                        o.fwd_label,
                        o.passes,
                        o.parsed_bytes,
                        0u16,
                    )
                })
        };
        let Some((mut payload, fwd_code, fwd_label, passes, parsed_bytes, verdict_version)) =
            result
        else {
            // Not NCP (or no datapath): plain forwarding. A stripped
            // telemetry section is re-appended; a telemetry-aware
            // switch stamps a forwarded-only record, one without the
            // deploy-time identity passes it through untouched.
            stats.forwarded += 1;
            // A computing switch declining a well-formed, non-fragment
            // data window means the named kernel id is not deployed
            // here — the failure mode upgrades and multi-tenant routing
            // expose. Count it (per switch and fabric-wide) and tell
            // the scope; the window itself is forwarded unharmed.
            let has_datapath = cfg.fastpath.is_some() || cfg.pipeline.is_some();
            if let (Some((kernel, ..)), Some(tel)) = (ncp_meta, cfg.telemetry.as_ref()) {
                if has_datapath
                    && incoming_flags & ncp::FLAG_FRAGMENT == 0
                    && !tel.kernels.contains_key(&kernel)
                {
                    stats.unknown_kernel += 1;
                    self.counters.unknown_kernel.inc();
                    if let (Some(scope), Some(key)) = (&scope, scope_key) {
                        scope.emit(
                            ticks_in + fwd_latency,
                            my_wire,
                            key,
                            ScopeEvent::UnknownKernel { switch: my_wire },
                        );
                    }
                }
            }
            if let Some(mut section) = tel_section {
                if let Some(tel) = cfg.telemetry.as_ref() {
                    let rec = HopRecord {
                        switch: tel.switch_id,
                        kernel: ncp_meta.map(|(k, _, _, _)| k).unwrap_or(0),
                        flags: HOP_FORWARDED_ONLY,
                        ticks_in,
                        ticks_out: ticks_in + fwd_latency,
                        ..HopRecord::default()
                    };
                    section_append(&mut section, &rec);
                }
                pkt.payload.extend_from_slice(&section);
            }
            if let (Some(scope), Some(key)) = (&scope, scope_key) {
                scope.emit(
                    ticks_in + fwd_latency,
                    my_wire,
                    key,
                    ScopeEvent::SwitchForwarded { switch: my_wire },
                );
            }
            let delay = fwd_latency;
            self.delayed_route(node, pkt, delay);
            return;
        };
        stats.ncp_processed += 1;
        stats.recirculations += (passes - 1) as u64;
        let delay = pipeline_latency * passes as Time;
        let dups_after = if track_dups { cfg_dup_sum(cfg) } else { 0 };
        if let (Some(scope), Some(key)) = (&scope, scope_key) {
            // A datapath that knows which version ran (a tenant mux
            // dual-running an upgrade) overrides the static deploy-time
            // identity.
            let version = if verdict_version != 0 {
                verdict_version
            } else {
                cfg.telemetry
                    .as_ref()
                    .and_then(|tel| tel.kernels.get(&key.kernel).map(|kt| kt.version))
                    .unwrap_or(0)
            };
            let t = ticks_in + delay;
            scope.emit(
                t,
                my_wire,
                key,
                ScopeEvent::SwitchExecuted {
                    switch: my_wire,
                    version,
                    fwd: fwd_code,
                },
            );
            if dups_after > dups_before {
                scope.emit(t, my_wire, key, ScopeEvent::DupSuppressed { at: my_wire });
            }
        }

        if fwd_code == 3 {
            // _drop(): consumed here; nothing to rewrite or route.
            stats.kernel_drops += 1;
            return;
        }
        // Rebuild the payload: deparsed headers plus any bytes the
        // parser never consumed.
        if parsed_bytes < pkt.payload.len() {
            payload.extend_from_slice(&pkt.payload[parsed_bytes..]);
        }
        // Rewrite the previous hop to ourselves.
        {
            let mut p = NcpPacket::new_unchecked(&mut payload[..]);
            p.set_from(my_wire);
        }
        // Stamp our hop record and re-append the telemetry section.
        // The fast path re-encodes flags from the window (dropping the
        // telemetry bit) while the PISA deparser echoes them; restore
        // the bit unconditionally so both tiers emit identical frames.
        if let Some(mut section) = tel_section {
            if let Some(tel) = cfg.telemetry.as_ref() {
                let kernel = ncp_meta.map(|(k, _, _, _)| k).unwrap_or(0);
                let kt = tel.kernels.get(&kernel).copied().unwrap_or_default();
                let rec = HopRecord {
                    switch: tel.switch_id,
                    kernel,
                    version: if verdict_version != 0 {
                        verdict_version
                    } else {
                        kt.version
                    },
                    stages: kt.stages,
                    uops: kt.uops,
                    flags: if dups_after > dups_before {
                        nctel::hop::HOP_DUP_SUPPRESSED
                    } else {
                        0
                    },
                    ticks_in,
                    ticks_out: ticks_in + delay,
                };
                section_append(&mut section, &rec);
            }
            payload[3] |= ncp::FLAG_TELEMETRY;
            payload.extend_from_slice(&section);
        }

        match fwd_code {
            0 => {
                // _pass(): continue towards the original destination.
                let fwd = Packet {
                    src: pkt.src,
                    dst: pkt.dst,
                    payload,
                };
                self.delayed_route(node, fwd, delay);
            }
            1 => {
                // _reflect(): back to the previous hop.
                stats.reflected += 1;
                let back = incoming_from.map(NodeId::from_wire).unwrap_or(pkt.src);
                let fwd = Packet {
                    src: pkt.src,
                    dst: back,
                    payload,
                };
                self.delayed_route(node, fwd, delay);
            }
            2 => {
                // _bcast(): all overlay neighbours.
                stats.broadcast += 1;
                let targets = cfg.bcast.clone();
                for t in targets {
                    let fwd = Packet {
                        src: pkt.src,
                        dst: t,
                        payload: payload.clone(),
                    };
                    self.delayed_route(node, fwd, delay);
                }
            }
            4 => {
                // _pass(label).
                let dst = cfg.labels.get(&fwd_label).copied();
                match dst {
                    Some(dst) => {
                        let fwd = Packet {
                            src: pkt.src,
                            dst,
                            payload,
                        };
                        self.delayed_route(node, fwd, delay);
                    }
                    None => self.counters.unroutable.inc(),
                }
            }
            _ => {
                // Unknown decision: forward conservatively.
                let fwd = Packet {
                    src: pkt.src,
                    dst: pkt.dst,
                    payload,
                };
                self.delayed_route(node, fwd, delay);
            }
        }
    }

    /// Routes `pkt` out of `node` after `delay` of local processing.
    fn delayed_route(&mut self, node: usize, pkt: Packet, delay: Time) {
        // Model processing delay by shifting the send time: we enqueue a
        // zero-payload timer-like event via the link's queue by
        // advancing now artificially. Simplest faithful approach:
        // temporarily bump `now` for the transmit computation.
        let saved = self.now;
        self.now = saved + delay;
        self.route_out(node, pkt);
        self.now = saved;
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Borrows a host application, downcast to its concrete type.
    pub fn host_app<T: 'static>(&self, id: HostId) -> Option<&T> {
        self.nodes.iter().find_map(|n| match n {
            NodeKind::Host { id: hid, app } if *hid == id => app.as_any().downcast_ref(),
            _ => None,
        })
    }

    /// Mutably borrows a host application.
    pub fn host_app_mut<T: 'static>(&mut self, id: HostId) -> Option<&mut T> {
        self.nodes.iter_mut().find_map(|n| match n {
            NodeKind::Host { id: hid, app } if *hid == id => app.as_any_mut().downcast_mut(),
            _ => None,
        })
    }

    /// A switch's counters.
    pub fn switch_stats(&self, id: SwitchId) -> Option<SwitchStats> {
        self.nodes.iter().find_map(|n| match n {
            NodeKind::Switch { id: sid, stats, .. } if *sid == id => Some(*stats),
            _ => None,
        })
    }

    /// Mutable access to a switch's pipeline (control-plane operations
    /// mid-simulation).
    pub fn switch_pipeline_mut(&mut self, id: SwitchId) -> Option<&mut pisa::Pipeline> {
        self.nodes.iter_mut().find_map(|n| match n {
            NodeKind::Switch { id: sid, cfg, .. } if *sid == id => cfg.pipeline.as_mut(),
            _ => None,
        })
    }

    /// Mutable access to a switch's compiled fast-path datapath, when it
    /// runs one (configuration and post-run inspection).
    pub fn switch_fastpath_mut(
        &mut self,
        id: SwitchId,
    ) -> Option<&mut (dyn crate::node::FastDatapath + 'static)> {
        for n in self.nodes.iter_mut() {
            if let NodeKind::Switch { id: sid, cfg, .. } = n {
                if *sid == id {
                    return cfg.fastpath.as_deref_mut();
                }
            }
        }
        None
    }

    /// Mutable access to a switch's telemetry identity (the control
    /// plane updates per-kernel version facts when a hitless upgrade
    /// finishes and the old version's identity is reclaimed).
    pub fn switch_telemetry_mut(
        &mut self,
        id: SwitchId,
    ) -> Option<&mut crate::node::SwitchTelemetry> {
        self.nodes.iter_mut().find_map(|n| match n {
            NodeKind::Switch { id: sid, cfg, .. } if *sid == id => cfg.telemetry.as_mut(),
            _ => None,
        })
    }

    /// Duplicate windows suppressed by a switch's compiler-lowered
    /// NCP-R replay filters: the sum of its `__nclr_dups_*` registers,
    /// read from whichever datapath (fast path or PISA pipeline)
    /// executes them. A gauge over live switch state, not a sim
    /// counter.
    pub fn switch_dup_suppressed(&mut self, id: SwitchId) -> u64 {
        if let Some(fp) = self.switch_fastpath_mut(id) {
            return fp.register_prefix_sum(c3::ncpr::REPLAY_DUPS_PREFIX);
        }
        let Some(pipe) = self.switch_pipeline_mut(id) else {
            return 0;
        };
        let names: Vec<String> = pipe
            .config()
            .registers
            .iter()
            .filter(|r| r.name.starts_with(c3::ncpr::REPLAY_DUPS_PREFIX))
            .map(|r| r.name.clone())
            .collect();
        names
            .iter()
            .map(|n| pipe.register_read(n, 0).map(|v| v.bits()).unwrap_or(0))
            .sum()
    }

    /// Total bytes carried over a node's links, per direction, summed.
    pub fn node_ingress_bytes(&self, id: NodeId) -> u64 {
        let idx = self
            .nodes
            .iter()
            .position(|n| node_id(n) == id)
            .expect("known node");
        self.links
            .iter()
            .map(|l| {
                if l.b == idx {
                    l.ab.bytes
                } else if l.a == idx {
                    l.ba.bytes
                } else {
                    0
                }
            })
            .sum()
    }
}

/// Sum of a switch's `__nclr_dups_*` replay-filter registers, read from
/// whichever datapath it runs (mirrors [`Network::switch_dup_suppressed`]
/// but borrows only the [`SwitchCfg`], so `switch_process` can take the
/// reading mid-flight).
fn cfg_dup_sum(cfg: &mut SwitchCfg) -> u64 {
    if let Some(fp) = cfg.fastpath.as_ref() {
        return fp.register_prefix_sum(c3::ncpr::REPLAY_DUPS_PREFIX);
    }
    let Some(pipe) = cfg.pipeline.as_mut() else {
        return 0;
    };
    let names: Vec<String> = pipe
        .config()
        .registers
        .iter()
        .filter(|r| r.name.starts_with(c3::ncpr::REPLAY_DUPS_PREFIX))
        .map(|r| r.name.clone())
        .collect();
    names
        .iter()
        .map(|n| pipe.register_read(n, 0).map(|v| v.bits()).unwrap_or(0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MICROS;
    use std::any::Any;

    /// Echoes every payload back to the sender, once.
    struct Echo {
        seen: Vec<Vec<u8>>,
    }

    impl HostApp for Echo {
        fn on_packet(&mut self, ctx: &mut HostCtx, pkt: &Packet) {
            self.seen.push(pkt.payload.clone());
            if pkt.payload != b"echo" {
                ctx.send(pkt.src, b"echo".to_vec());
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends one message to a destination at start.
    struct Pinger {
        dst: NodeId,
        replies: u32,
    }

    impl HostApp for Pinger {
        fn on_start(&mut self, ctx: &mut HostCtx) {
            ctx.send(self.dst, b"ping".to_vec());
        }
        fn on_packet(&mut self, _ctx: &mut HostCtx, _pkt: &Packet) {
            self.replies += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn ping_through_a_switch() {
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host(Box::new(Pinger {
            dst: NodeId::Host(HostId(2)),
            replies: 0,
        }));
        let h2 = b.add_host(Box::new(Echo { seen: vec![] }));
        let s1 = b.add_switch(SwitchCfg::default());
        b.link(h1, s1, LinkSpec::default());
        b.link(h2, s1, LinkSpec::default());
        let mut net = b.build();
        net.run();
        let echo = net.host_app::<Echo>(h2).unwrap();
        assert_eq!(echo.seen, vec![b"ping".to_vec()]);
        let pinger = net.host_app::<Pinger>(h1).unwrap();
        assert_eq!(pinger.replies, 1);
        assert_eq!(net.stats().delivered, 2);
        let st = net.switch_stats(s1).unwrap();
        assert_eq!(st.forwarded, 2);
    }

    #[test]
    fn multi_hop_routing() {
        // h1 - s1 - s2 - h2
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host(Box::new(Pinger {
            dst: NodeId::Host(HostId(2)),
            replies: 0,
        }));
        let h2 = b.add_host(Box::new(Echo { seen: vec![] }));
        let s1 = b.add_switch(SwitchCfg::default());
        let s2 = b.add_switch(SwitchCfg::default());
        b.link(h1, s1, LinkSpec::default());
        b.link(s1, s2, LinkSpec::default());
        b.link(s2, h2, LinkSpec::default());
        let mut net = b.build();
        net.run();
        assert_eq!(net.host_app::<Pinger>(h1).unwrap().replies, 1);
    }

    #[test]
    fn latency_accumulates() {
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host(Box::new(Pinger {
            dst: NodeId::Host(HostId(2)),
            replies: 0,
        }));
        let h2 = b.add_host(Box::new(Echo { seen: vec![] }));
        let s1 = b.add_switch(SwitchCfg::default());
        let slow = LinkSpec {
            latency: 100 * MICROS,
            ..Default::default()
        };
        b.link(h1, s1, slow);
        b.link(h2, s1, slow);
        let mut net = b.build();
        let end = net.run();
        // Four link traversals at 100 µs each, minimum.
        assert!(end >= 400 * MICROS, "end {end}");
    }

    #[test]
    fn unroutable_counted() {
        let mut b = NetworkBuilder::new();
        let _h1 = b.add_host(Box::new(Pinger {
            dst: NodeId::Host(HostId(99)),
            replies: 0,
        }));
        let mut net = b.build();
        net.run();
        assert_eq!(net.stats().unroutable, 1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timers {
            fired: Vec<u64>,
        }
        impl HostApp for Timers {
            fn on_start(&mut self, ctx: &mut HostCtx) {
                ctx.set_timer(300, 3);
                ctx.set_timer(100, 1);
                ctx.set_timer(200, 2);
            }
            fn on_packet(&mut self, _: &mut HostCtx, _: &Packet) {}
            fn on_timer(&mut self, _: &mut HostCtx, token: u64) {
                self.fired.push(token);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut b = NetworkBuilder::new();
        let h = b.add_host(Box::new(Timers { fired: vec![] }));
        let mut net = b.build();
        net.run();
        assert_eq!(net.host_app::<Timers>(h).unwrap().fired, vec![1, 2, 3]);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut b = NetworkBuilder::new();
            let h1 = b.add_host(Box::new(Pinger {
                dst: NodeId::Host(HostId(2)),
                replies: 0,
            }));
            let h2 = b.add_host(Box::new(Echo { seen: vec![] }));
            let s1 = b.add_switch(SwitchCfg::default());
            b.link(h1, s1, LinkSpec::default());
            b.link(h2, s1, LinkSpec::default());
            let mut net = b.build();
            let end = net.run();
            (end, net.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn link_loss_drops_packets() {
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host(Box::new(Pinger {
            dst: NodeId::Host(HostId(2)),
            replies: 0,
        }));
        let h2 = b.add_host(Box::new(Echo { seen: vec![] }));
        b.link(
            h1,
            h2,
            LinkSpec {
                drop_every: 1, // drop everything
                ..Default::default()
            },
        );
        let mut net = b.build();
        net.run();
        assert_eq!(net.stats().delivered, 0);
        assert_eq!(net.stats().link_drops, 1);
    }
}
