//! Node types: the host-application trait and the switch configuration.

use crate::event::Time;
use crate::sim::Packet;
use c3::{HostId, NodeId, SwitchId, Value};
use std::any::Any;
use std::collections::HashMap;

/// An out-of-band control-plane operation a host can request against a
/// switch pipeline (the paper's "transparent control-plane interaction",
/// §3.2 — e.g. `ncl::ctrl_wr` or NetCache-style map management).
#[derive(Clone, Debug)]
pub enum CtrlOp {
    /// Install a table entry.
    TableInsert {
        /// Target table.
        table: String,
        /// The entry.
        entry: pisa::Entry,
    },
    /// Remove entries matching the patterns.
    TableRemove {
        /// Target table.
        table: String,
        /// Patterns to remove.
        patterns: Vec<pisa::MatchPattern>,
    },
    /// Write a register element (control variables).
    RegWrite {
        /// Register name.
        name: String,
        /// Element index.
        index: usize,
        /// New value.
        value: Value,
    },
}

/// Context handed to host applications: send packets, arm timers, read
/// the clock. Sends are routed by the simulator's shortest-path tables.
pub struct HostCtx<'a> {
    /// Current simulated time.
    pub now: Time,
    /// This host's id.
    pub host: HostId,
    pub(crate) out: &'a mut Vec<Packet>,
    pub(crate) timers: &'a mut Vec<(Time, u64)>,
    pub(crate) ctrl: &'a mut Vec<(SwitchId, CtrlOp)>,
}

impl HostCtx<'_> {
    /// Sends `payload` towards `dst`.
    pub fn send(&mut self, dst: NodeId, payload: Vec<u8>) {
        self.out.push(Packet {
            src: NodeId::Host(self.host),
            dst,
            payload,
        });
    }

    /// Arms a timer to fire `delay` from now with the given token.
    pub fn set_timer(&mut self, delay: Time, token: u64) {
        self.timers.push((delay, token));
    }

    /// Requests an out-of-band control-plane operation against a switch.
    /// Applied after the control-plane RTT configured on the network
    /// (out-of-band: it does not consume data-plane bandwidth).
    pub fn ctrl(&mut self, switch: SwitchId, op: CtrlOp) {
        self.ctrl.push((switch, op));
    }
}

/// A host application driving one simulated host.
///
/// Implementations live in `ncl-core` (the libncrt worker/server apps)
/// and in the examples; the simulator only calls these hooks.
pub trait HostApp {
    /// Called once at simulation start.
    fn on_start(&mut self, _ctx: &mut HostCtx) {}
    /// Called for every packet delivered to this host.
    fn on_packet(&mut self, ctx: &mut HostCtx, pkt: &Packet);
    /// Called when a timer armed with [`HostCtx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut HostCtx, _token: u64) {}
    /// Downcast support (inspect application state after a run).
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Parses the ncscope identity of a raw payload: the window key
/// `(sender, kernel, seq)` plus whether the frame is NCP-R control
/// traffic (ACK/NACK). `None` when the payload is not NCP — such
/// packets carry no window identity and are invisible to ncscope.
pub fn ncp_scope_key(payload: &[u8]) -> Option<(nctel::WindowKey, bool)> {
    let p = ncp::NcpPacket::new_checked(payload).ok()?;
    let ctrl = p.flags() & (ncp::FLAG_ACK | ncp::FLAG_NACK) != 0;
    Some((nctel::WindowKey::new(p.sender(), p.kernel(), p.seq()), ctrl))
}

/// The outcome of one [`FastDatapath`] pass over an NCP payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FastVerdict {
    /// The (possibly rewritten) packet payload. May be empty when the
    /// forwarding code is 3 (`_drop()`) — dropped windows are never
    /// re-encoded.
    pub payload: Vec<u8>,
    /// Forwarding decision, PISA convention: 0 `_pass()`, 1
    /// `_reflect()`, 2 `_bcast()`, 3 `_drop()`, 4 `_pass(label)`.
    pub fwd_code: u8,
    /// `_pass(label)` target id (meaningful when `fwd_code == 4`).
    pub fwd_label: u16,
    /// Version of the kernel that executed this window, when the
    /// datapath knows it (multi-tenant muxes running two versions of a
    /// kernel side by side during a hitless upgrade). `0` means "use
    /// the switch's static deploy-time telemetry".
    pub version: u16,
}

/// An alternative switch datapath that executes windows directly —
/// the compiled fast-path kernel executor — instead of the modeled PISA
/// pipeline. A switch configured with one bypasses its `pipeline` for
/// packet processing and control-plane operations.
pub trait FastDatapath {
    /// Processes one payload. `None` means "not NCP traffic I compute
    /// on" — the switch plainly forwards the original packet.
    fn process(&mut self, payload: &[u8]) -> Option<FastVerdict>;
    /// Applies a control-plane operation; `false` when the target is
    /// unknown to this datapath.
    fn ctrl(&mut self, op: &CtrlOp) -> bool;
    /// Sums element 0 of every register array whose source name starts
    /// with `prefix` (NCP-R observability: the compiler-lowered replay
    /// filters keep their duplicate counts in `__nclr_dups_*`
    /// registers).
    fn register_prefix_sum(&self, _prefix: &str) -> u64 {
        0
    }
    /// Downcast support (inspect datapath state after a run).
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Deploy-time telemetry metadata for one kernel at one switch: the
/// static fields a hop record carries (`nctel::hop`). Kept static so
/// the interpreter, fast-path, and PISA executions of the same window
/// stamp bit-identical records.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelTelemetry {
    /// Deployed kernel version at this switch (1-based module index).
    pub version: u16,
    /// PISA stages the kernel's program occupies at this switch.
    pub stages: u16,
    /// Fast-path micro-op count for the kernel at this switch.
    pub uops: u32,
}

/// Telemetry identity of a switch: enables in-band hop-record stamping
/// on frames carrying `FLAG_TELEMETRY`. Switches without one pass
/// telemetry sections through untouched (version negotiation: only
/// telemetry-aware deployments stamp).
#[derive(Clone, Debug, Default)]
pub struct SwitchTelemetry {
    /// The switch id stamped into hop records.
    pub switch_id: u16,
    /// Per-kernel static record fields.
    pub kernels: HashMap<u16, KernelTelemetry>,
}

/// Configuration of a simulated switch.
pub struct SwitchCfg {
    /// The loaded PISA pipeline; `None` makes a plain forwarder (the
    /// baseline switches of E1/E2).
    pub pipeline: Option<pisa::Pipeline>,
    /// Compiled fast-path executor; when set it handles NCP processing
    /// and control-plane operations instead of `pipeline`.
    pub fastpath: Option<Box<dyn FastDatapath>>,
    /// `_pass(label)` target resolution: label id → node.
    pub labels: HashMap<u16, NodeId>,
    /// `_bcast()` targets — the overlay neighbours one hop away from
    /// this location in the AND (paper §4.1).
    pub bcast: Vec<NodeId>,
    /// Latency of one pipeline pass.
    pub pipeline_latency: Time,
    /// Latency of plain (non-NCP) forwarding.
    pub fwd_latency: Time,
    /// In-band telemetry identity; `None` disables hop stamping.
    pub telemetry: Option<SwitchTelemetry>,
}

impl Default for SwitchCfg {
    fn default() -> Self {
        SwitchCfg {
            pipeline: None,
            fastpath: None,
            labels: HashMap::new(),
            bcast: Vec::new(),
            pipeline_latency: 600, // ~600 ns per pass, Tofino-ish
            fwd_latency: 400,
            telemetry: None,
        }
    }
}

/// Per-switch runtime counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SwitchStats {
    /// Packets that executed a kernel.
    pub ncp_processed: u64,
    /// Packets plainly forwarded (not NCP / no pipeline).
    pub forwarded: u64,
    /// Windows dropped by `_drop()`.
    pub kernel_drops: u64,
    /// Windows reflected.
    pub reflected: u64,
    /// Windows broadcast (counted once per ingress window).
    pub broadcast: u64,
    /// Recirculation passes beyond the first.
    pub recirculations: u64,
    /// NCP-R ACK/NACK control frames forwarded without execution.
    pub acks_forwarded: u64,
    /// Well-formed NCP windows naming a kernel id this switch has no
    /// deployed kernel for (the failure mode upgrades expose). They are
    /// forwarded, not dropped, and counted here plus in the network's
    /// `sim.unknown_kernel` counter.
    pub unknown_kernel: u64,
}
