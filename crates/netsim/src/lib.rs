#![warn(missing_docs)]

//! # netsim — a deterministic discrete-event network simulator
//!
//! The testbed substrate for every quantitative experiment: hosts,
//! PISA switches and links with bandwidth + propagation delay, driven by
//! a single event queue with nanosecond timestamps. Determinism is a
//! design goal (no wall-clock, no global RNG): the same inputs produce
//! the same packet trace, which the differential tests and benchmarks
//! rely on.
//!
//! * [`event`] — the time-ordered event queue;
//! * [`link`] — store-and-forward links: serialization delay from
//!   bandwidth, propagation delay, optional deterministic loss;
//! * [`node`] — the [`node::HostApp`] trait applications
//!   implement, and the switch node embedding a [`pisa::Pipeline`] with
//!   NCP-aware forwarding (Fig. 3b: *"A switch executes a kernel only
//!   when the NCP protocol has been recognized"* — everything else is
//!   forwarded untouched);
//! * [`sim`] — topology building, BFS routing, and the run loop.
//!
//! Packets carry an explicit `(src, dst)` node pair modelling the
//! underlying IP encapsulation; NCP bytes are the payload. Switch
//! forwarding decisions map onto it: `_pass()` keeps the destination,
//! `_pass(label)`/`_reflect()`/`_bcast()` rewrite it, `_drop()` consumes
//! the packet.

pub mod event;
pub mod link;
pub mod node;
pub mod sim;

pub use event::Time;
pub use link::LinkSpec;
pub use node::{
    CtrlOp, FastDatapath, FastVerdict, HostApp, HostCtx, KernelTelemetry, SwitchCfg, SwitchStats,
    SwitchTelemetry,
};
pub use sim::{Network, NetworkBuilder, Packet, SimStats};
