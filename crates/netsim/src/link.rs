//! Store-and-forward links.
//!
//! A link direction is a FIFO transmitter: a packet of `n` bytes starts
//! serializing when the transmitter frees up, takes `n·8/bandwidth`
//! to put on the wire, and arrives `latency` later. Deterministic loss
//! (`drop_every`) and probabilistic loss (seeded xorshift) support the
//! failure-injection tests.

use crate::event::{Time, SECONDS};

/// Static link parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LinkSpec {
    /// Bits per second.
    pub bandwidth_bps: u64,
    /// Propagation delay.
    pub latency: Time,
    /// Drop every n-th packet (deterministic loss; 0 = never).
    pub drop_every: u64,
    /// Probabilistic loss in [0, 1] (applied with a per-link seeded
    /// PRNG; 0.0 = never).
    pub loss: f64,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            bandwidth_bps: 10_000_000_000, // 10 Gb/s
            latency: 1_000,                // 1 µs
            drop_every: 0,
            loss: 0.0,
        }
    }
}

impl LinkSpec {
    /// A datacenter-ish 100 Gb/s / 1 µs link.
    pub fn dc_100g() -> Self {
        LinkSpec {
            bandwidth_bps: 100_000_000_000,
            latency: 1_000,
            ..Default::default()
        }
    }

    /// Serialization time for `bytes`.
    pub fn ser_time(&self, bytes: usize) -> Time {
        (bytes as u128 * 8 * SECONDS as u128 / self.bandwidth_bps as u128) as Time
    }
}

/// One direction of a link at runtime.
#[derive(Clone, Debug)]
pub struct LinkDir {
    /// Parameters.
    pub spec: LinkSpec,
    /// When the transmitter is next free.
    pub free_at: Time,
    /// Packets sent.
    pub packets: u64,
    /// Bytes sent.
    pub bytes: u64,
    /// Packets dropped by loss injection.
    pub dropped: u64,
    rng: u64,
}

impl LinkDir {
    /// Creates a direction with a seed for probabilistic loss.
    pub fn new(spec: LinkSpec, seed: u64) -> Self {
        LinkDir {
            spec,
            free_at: 0,
            packets: 0,
            bytes: 0,
            dropped: 0,
            rng: seed | 1,
        }
    }

    fn next_rand(&mut self) -> f64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Attempts to transmit `bytes` at time `now`. Returns the arrival
    /// time at the far end, or `None` when loss injection eats the
    /// packet (which still counts the serialization — the bits were
    /// sent).
    pub fn transmit(&mut self, now: Time, nbytes: usize) -> Option<Time> {
        let start = now.max(self.free_at);
        let ser = self.spec.ser_time(nbytes);
        self.free_at = start + ser;
        self.packets += 1;
        self.bytes += nbytes as u64;
        if self.spec.drop_every > 0 && self.packets.is_multiple_of(self.spec.drop_every) {
            self.dropped += 1;
            return None;
        }
        if self.spec.loss > 0.0 && self.next_rand() < self.spec.loss {
            self.dropped += 1;
            return None;
        }
        Some(start + ser + self.spec.latency)
    }

    /// Queueing delay a packet sent at `now` would currently see.
    pub fn backlog(&self, now: Time) -> Time {
        self.free_at.saturating_sub(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time() {
        let spec = LinkSpec {
            bandwidth_bps: 1_000_000_000, // 1 Gb/s
            latency: 500,
            ..Default::default()
        };
        // 1250 bytes = 10_000 bits @1Gb/s = 10 µs.
        assert_eq!(spec.ser_time(1250), 10_000);
    }

    #[test]
    fn fifo_queueing() {
        let spec = LinkSpec {
            bandwidth_bps: 1_000_000_000,
            latency: 0,
            ..Default::default()
        };
        let mut dir = LinkDir::new(spec, 1);
        let a1 = dir.transmit(0, 1250).unwrap();
        let a2 = dir.transmit(0, 1250).unwrap();
        assert_eq!(a1, 10_000);
        assert_eq!(a2, 20_000, "second packet queues behind the first");
        assert_eq!(dir.backlog(0), 20_000);
        // After the queue drains, no backlog.
        let a3 = dir.transmit(50_000, 1250).unwrap();
        assert_eq!(a3, 60_000);
    }

    #[test]
    fn latency_added_after_serialization() {
        let spec = LinkSpec {
            bandwidth_bps: 1_000_000_000,
            latency: 7_000,
            ..Default::default()
        };
        let mut dir = LinkDir::new(spec, 1);
        assert_eq!(dir.transmit(0, 1250), Some(17_000));
    }

    #[test]
    fn deterministic_loss() {
        let spec = LinkSpec {
            drop_every: 3,
            ..Default::default()
        };
        let mut dir = LinkDir::new(spec, 1);
        let outcomes: Vec<bool> = (0..9).map(|_| dir.transmit(0, 100).is_some()).collect();
        assert_eq!(
            outcomes,
            vec![true, true, false, true, true, false, true, true, false]
        );
        assert_eq!(dir.dropped, 3);
    }

    #[test]
    fn probabilistic_loss_is_seeded() {
        let spec = LinkSpec {
            loss: 0.5,
            ..Default::default()
        };
        let run = |seed: u64| -> Vec<bool> {
            let mut dir = LinkDir::new(spec, seed);
            (0..32).map(|_| dir.transmit(0, 100).is_some()).collect()
        };
        assert_eq!(run(42), run(42), "same seed, same trace");
        let drops = run(42).iter().filter(|ok| !**ok).count();
        assert!(drops > 4 && drops < 28, "loss roughly half, got {drops}/32");
    }
}
