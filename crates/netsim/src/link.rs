//! Store-and-forward links.
//!
//! A link direction is a FIFO transmitter: a packet of `n` bytes starts
//! serializing when the transmitter frees up, takes `n·8/bandwidth`
//! to put on the wire, and arrives `latency` later. Deterministic loss
//! (`drop_every`) and probabilistic loss (seeded xorshift) support the
//! failure-injection tests.

use crate::event::{Time, SECONDS};

/// Static link parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LinkSpec {
    /// Bits per second.
    pub bandwidth_bps: u64,
    /// Propagation delay.
    pub latency: Time,
    /// Drop every n-th packet (deterministic loss; 0 = never).
    pub drop_every: u64,
    /// Probabilistic loss in [0, 1] (applied with a per-link seeded
    /// PRNG; 0.0 = never).
    pub loss: f64,
    /// Deliver every n-th successfully transmitted packet twice
    /// (deterministic duplication; 0 = never). The copy trails the
    /// original by one serialization time, as a link-layer retransmit
    /// would.
    pub dup_every: u64,
    /// When a loss fires, also drop the following `burst_len - 1`
    /// packets (correlated loss; 0 or 1 = independent single drops).
    pub burst_len: u64,
    /// Delay every n-th delivered packet by an extra [`LinkSpec::jitter`]
    /// (deterministic reordering; 0 = never).
    pub jitter_every: u64,
    /// Extra propagation delay applied by `jitter_every`.
    pub jitter: Time,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            bandwidth_bps: 10_000_000_000, // 10 Gb/s
            latency: 1_000,                // 1 µs
            drop_every: 0,
            loss: 0.0,
            dup_every: 0,
            burst_len: 0,
            jitter_every: 0,
            jitter: 0,
        }
    }
}

impl LinkSpec {
    /// A datacenter-ish 100 Gb/s / 1 µs link.
    pub fn dc_100g() -> Self {
        LinkSpec {
            bandwidth_bps: 100_000_000_000,
            latency: 1_000,
            ..Default::default()
        }
    }

    /// Serialization time for `bytes`.
    pub fn ser_time(&self, bytes: usize) -> Time {
        (bytes as u128 * 8 * SECONDS as u128 / self.bandwidth_bps as u128) as Time
    }
}

/// What one [`LinkDir::transmit_outcome`] call did to a packet, in full:
/// arrival times (if any), whether loss injection ate it, and whether
/// that loss was part of a correlated burst. The ncscope event path
/// needs the drop/burst facts that the `Option<Time>` API erases.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TransmitOutcome {
    /// Arrival time at the far end (`None` when the packet was lost).
    pub arrival: Option<Time>,
    /// Trailing duplicate's arrival, when duplication injection fired.
    pub dup: Option<Time>,
    /// Loss injection ate the packet.
    pub dropped: bool,
    /// The drop rode an in-progress correlated loss burst (rather than
    /// being a fresh trigger).
    pub burst: bool,
}

/// One direction of a link at runtime.
#[derive(Clone, Debug)]
pub struct LinkDir {
    /// Parameters.
    pub spec: LinkSpec,
    /// When the transmitter is next free.
    pub free_at: Time,
    /// Packets sent.
    pub packets: u64,
    /// Bytes sent.
    pub bytes: u64,
    /// Packets dropped by loss injection.
    pub dropped: u64,
    /// Packets delivered twice by duplication injection.
    pub duplicated: u64,
    /// Remaining packets of an in-progress loss burst.
    burst_left: u64,
    /// Packets that made it onto the wire (denominator for `dup_every`
    /// and `jitter_every` cadences, which apply to delivered packets).
    delivered: u64,
    rng: u64,
}

impl LinkDir {
    /// Creates a direction with a seed for probabilistic loss.
    pub fn new(spec: LinkSpec, seed: u64) -> Self {
        LinkDir {
            spec,
            free_at: 0,
            packets: 0,
            bytes: 0,
            dropped: 0,
            duplicated: 0,
            burst_left: 0,
            delivered: 0,
            rng: seed | 1,
        }
    }

    fn next_rand(&mut self) -> f64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Attempts to transmit `bytes` at time `now`. Returns the arrival
    /// time at the far end, or `None` when loss injection eats the
    /// packet (which still counts the serialization — the bits were
    /// sent). Duplication injection is only visible through
    /// [`LinkDir::transmit_all`]; this wrapper keeps single-delivery
    /// callers unchanged.
    pub fn transmit(&mut self, now: Time, nbytes: usize) -> Option<Time> {
        self.transmit_outcome(now, nbytes).arrival
    }

    /// Like [`LinkDir::transmit`], but returns up to two arrival times:
    /// the packet itself and, when duplication injection fires, its
    /// trailing copy.
    pub fn transmit_all(&mut self, now: Time, nbytes: usize) -> [Option<Time>; 2] {
        let o = self.transmit_outcome(now, nbytes);
        [o.arrival, o.dup]
    }

    /// The full-fidelity transmit: everything `transmit`/`transmit_all`
    /// report, plus whether (and how) loss injection fired.
    pub fn transmit_outcome(&mut self, now: Time, nbytes: usize) -> TransmitOutcome {
        let start = now.max(self.free_at);
        let ser = self.spec.ser_time(nbytes);
        self.free_at = start + ser;
        self.packets += 1;
        self.bytes += nbytes as u64;
        if self.burst_left > 0 {
            self.burst_left -= 1;
            self.dropped += 1;
            return TransmitOutcome {
                arrival: None,
                dup: None,
                dropped: true,
                burst: true,
            };
        }
        let lost = (self.spec.drop_every > 0 && self.packets.is_multiple_of(self.spec.drop_every))
            || (self.spec.loss > 0.0 && self.next_rand() < self.spec.loss);
        if lost {
            self.dropped += 1;
            self.burst_left = self.spec.burst_len.saturating_sub(1);
            return TransmitOutcome {
                arrival: None,
                dup: None,
                dropped: true,
                burst: false,
            };
        }
        self.delivered += 1;
        let mut delay = self.spec.latency;
        if self.spec.jitter_every > 0 && self.delivered.is_multiple_of(self.spec.jitter_every) {
            delay += self.spec.jitter;
        }
        let arrival = start + ser + delay;
        let dup = if self.spec.dup_every > 0 && self.delivered.is_multiple_of(self.spec.dup_every) {
            self.duplicated += 1;
            Some(arrival + ser.max(1))
        } else {
            None
        };
        TransmitOutcome {
            arrival: Some(arrival),
            dup,
            dropped: false,
            burst: false,
        }
    }

    /// Queueing delay a packet sent at `now` would currently see.
    pub fn backlog(&self, now: Time) -> Time {
        self.free_at.saturating_sub(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time() {
        let spec = LinkSpec {
            bandwidth_bps: 1_000_000_000, // 1 Gb/s
            latency: 500,
            ..Default::default()
        };
        // 1250 bytes = 10_000 bits @1Gb/s = 10 µs.
        assert_eq!(spec.ser_time(1250), 10_000);
    }

    #[test]
    fn fifo_queueing() {
        let spec = LinkSpec {
            bandwidth_bps: 1_000_000_000,
            latency: 0,
            ..Default::default()
        };
        let mut dir = LinkDir::new(spec, 1);
        let a1 = dir.transmit(0, 1250).unwrap();
        let a2 = dir.transmit(0, 1250).unwrap();
        assert_eq!(a1, 10_000);
        assert_eq!(a2, 20_000, "second packet queues behind the first");
        assert_eq!(dir.backlog(0), 20_000);
        // After the queue drains, no backlog.
        let a3 = dir.transmit(50_000, 1250).unwrap();
        assert_eq!(a3, 60_000);
    }

    #[test]
    fn latency_added_after_serialization() {
        let spec = LinkSpec {
            bandwidth_bps: 1_000_000_000,
            latency: 7_000,
            ..Default::default()
        };
        let mut dir = LinkDir::new(spec, 1);
        assert_eq!(dir.transmit(0, 1250), Some(17_000));
    }

    #[test]
    fn deterministic_loss() {
        let spec = LinkSpec {
            drop_every: 3,
            ..Default::default()
        };
        let mut dir = LinkDir::new(spec, 1);
        let outcomes: Vec<bool> = (0..9).map(|_| dir.transmit(0, 100).is_some()).collect();
        assert_eq!(
            outcomes,
            vec![true, true, false, true, true, false, true, true, false]
        );
        assert_eq!(dir.dropped, 3);
    }

    #[test]
    fn deterministic_duplication() {
        let spec = LinkSpec {
            dup_every: 3,
            latency: 0,
            bandwidth_bps: 1_000_000_000,
            ..Default::default()
        };
        let mut dir = LinkDir::new(spec, 1);
        let mut arrivals = Vec::new();
        for _ in 0..6 {
            arrivals.push(dir.transmit_all(0, 1250));
        }
        let dups: Vec<bool> = arrivals.iter().map(|a| a[1].is_some()).collect();
        assert_eq!(dups, vec![false, false, true, false, false, true]);
        assert_eq!(dir.duplicated, 2);
        // The copy trails its original by one serialization time.
        let [Some(first), Some(second)] = arrivals[2] else {
            panic!("expected duplicate");
        };
        assert_eq!(second, first + spec.ser_time(1250));
    }

    #[test]
    fn burst_loss_extends_a_drop() {
        let spec = LinkSpec {
            drop_every: 4,
            burst_len: 3,
            ..Default::default()
        };
        let mut dir = LinkDir::new(spec, 1);
        let outcomes: Vec<bool> = (0..10).map(|_| dir.transmit(0, 100).is_some()).collect();
        // Packet 4 triggers, packets 5 and 6 ride the burst; packet 8
        // is both a multiple of 4 and a fresh trigger.
        assert_eq!(
            outcomes,
            vec![true, true, true, false, false, false, true, false, false, false]
        );
        assert_eq!(dir.dropped, 6);
    }

    #[test]
    fn jitter_reorders_deterministically() {
        let spec = LinkSpec {
            jitter_every: 2,
            jitter: 50_000,
            latency: 1_000,
            bandwidth_bps: 10_000_000_000,
            ..Default::default()
        };
        let mut dir = LinkDir::new(spec, 1);
        let a1 = dir.transmit(0, 100).unwrap();
        let a2 = dir.transmit(0, 100).unwrap();
        let a3 = dir.transmit(0, 100).unwrap();
        assert!(a2 > a3, "jittered packet 2 arrives after packet 3");
        assert!(a1 < a3);
    }

    #[test]
    fn probabilistic_loss_is_seeded() {
        let spec = LinkSpec {
            loss: 0.5,
            ..Default::default()
        };
        let run = |seed: u64| -> Vec<bool> {
            let mut dir = LinkDir::new(spec, seed);
            (0..32).map(|_| dir.transmit(0, 100).is_some()).collect()
        };
        assert_eq!(run(42), run(42), "same seed, same trace");
        let drops = run(42).iter().filter(|ok| !**ok).count();
        assert!(drops > 4 && drops < 28, "loss roughly half, got {drops}/32");
    }
}
