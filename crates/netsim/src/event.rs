//! The time-ordered event queue.
//!
//! Events at equal timestamps pop in insertion order (a monotone
//! sequence number breaks ties), which keeps runs reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in nanoseconds since simulation start.
pub type Time = u64;

/// One nanosecond in [`Time`] units.
pub const NANOS: Time = 1;
/// One microsecond.
pub const MICROS: Time = 1_000;
/// One millisecond.
pub const MILLIS: Time = 1_000_000;
/// One second.
pub const SECONDS: Time = 1_000_000_000;

/// A priority queue of `(time, payload)` events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Time, u64, usize)>>,
    payloads: Vec<Option<E>>,
    seq: u64,
    free: Vec<usize>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            seq: 0,
            free: Vec::new(),
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Time, event: E) {
        let slot = match self.free.pop() {
            Some(i) => {
                self.payloads[i] = Some(event);
                i
            }
            None => {
                self.payloads.push(Some(event));
                self.payloads.len() - 1
            }
        };
        self.heap.push(Reverse((time, self.seq, slot)));
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse((time, _, slot)) = self.heap.pop()?;
        let event = self.payloads[slot].take().expect("slot holds the event");
        self.free.push(slot);
        Some((time, event))
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn slots_recycle() {
        let mut q = EventQueue::new();
        for round in 0..3 {
            for i in 0..100u64 {
                q.push(i, i + round);
            }
            for _ in 0..100 {
                q.pop();
            }
        }
        // Payload storage stays bounded by the high-water mark.
        assert!(q.payloads.len() <= 100);
    }
}
