//! Smoke tests of the `nclc` command-line compiler.

use std::process::Command;

fn nclc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nclc"))
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> std::path::PathBuf {
    let p = dir.join(name);
    std::fs::write(&p, content).expect("write temp file");
    p
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("nclc-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

const PROG: &str = r#"
_net_ _at_("s1") int total[1] = {0};
_net_ _out_ void count(int *data) { total[0] += data[0]; _drop(); }
"#;
const AND: &str = "host a\nhost b\nswitch s1\nlink a s1\nlink b s1\n";

#[test]
fn compiles_and_emits_p4() {
    let dir = tmpdir("ok");
    let prog = write(&dir, "prog.ncl", PROG);
    let and = write(&dir, "net.and", AND);
    let out = dir.join("out");
    let result = nclc()
        .arg(&prog)
        .args(["--and"])
        .arg(&and)
        .args([
            "--mask", "count=1", "--emit", "p4", "--emit", "report", "-o",
        ])
        .arg(&out)
        .output()
        .expect("runs");
    assert!(
        result.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&result.stderr)
    );
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("accepted"), "{stdout}");
    let p4 = std::fs::read_to_string(out.join("s1.p4")).expect("P4 written");
    assert!(p4.contains("V1Switch"));
}

#[test]
fn reports_frontend_errors_with_location() {
    let dir = tmpdir("err");
    let prog = write(&dir, "bad.ncl", "_net_ _out_ void k(int *d) { goto x; }");
    let and = write(&dir, "net.and", AND);
    let result = nclc()
        .arg(&prog)
        .args(["--and"])
        .arg(&and)
        .output()
        .expect("runs");
    assert!(!result.status.success());
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(
        stderr.contains("error") && stderr.contains(":1:"),
        "{stderr}"
    );
}

#[test]
fn missing_files_fail_cleanly() {
    let result = nclc()
        .arg("/nonexistent.ncl")
        .args(["--and", "/nonexistent.and"])
        .output()
        .expect("runs");
    assert!(!result.status.success());
    assert!(String::from_utf8_lossy(&result.stderr).contains("cannot read"));
}
