//! ncwatch — incident-log inspection and fabric health summaries, as a
//! command-line tool.
//!
//! ```text
//! ncwatch --incidents <FILE.jsonl> [--last N] [--json]
//! ncwatch --health    <FILE.jsonl>
//! ```
//!
//! `--incidents` reads an append-only incident log (JSONL, one
//! [`ncwatch::IncidentReport`] per line, written by an armed
//! [`ncwatch::Watch`]) and pretty-prints each incident: firing signal,
//! burn rates, suspected component, correlated exemplars, capture
//! sizes. `--last N` keeps only the N most recent; `--json` re-emits
//! the canonical single-line JSON instead (useful to re-seal-check or
//! pipe into `jq`).
//!
//! `--health` renders a one-shot summary of the same log: incident
//! counts by class, by tenant, and by suspected component — the
//! 30-second "is the fabric ok" view.

use ncwatch::IncidentReport;
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Args {
    incidents: Option<String>,
    health: Option<String>,
    last: Option<usize>,
    json: bool,
}

fn usage() -> ! {
    eprintln!("usage: ncwatch (--incidents FILE [--last N] [--json] | --health FILE)");
    eprintln!("  FILE: ncwatch incident log (JSONL, one incident per line)");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        incidents: None,
        health: None,
        last: None,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--incidents" => args.incidents = it.next(),
            "--health" => args.health = it.next(),
            "--json" => args.json = true,
            "--last" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--last expects a count");
                    usage();
                };
                args.last = Some(n);
            }
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unexpected argument '{other}'");
                usage();
            }
        }
    }
    if args.incidents.is_some() == args.health.is_some() {
        eprintln!("exactly one of --incidents / --health is required");
        usage();
    }
    args
}

/// Loads every incident from a JSONL log, strict per line.
fn load(file: &str) -> Result<Vec<IncidentReport>, String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let r = IncidentReport::parse(line).map_err(|e| format!("{file}:{}: {e}", i + 1))?;
        out.push(r);
    }
    Ok(out)
}

/// Renders the aggregate health view of an incident log.
fn render_health(incidents: &[IncidentReport]) -> String {
    let mut out = String::new();
    if incidents.is_empty() {
        out.push_str("healthy: no incidents on record\n");
        return out;
    }
    let mut by_class: BTreeMap<&str, u64> = BTreeMap::new();
    let mut by_tenant: BTreeMap<&str, u64> = BTreeMap::new();
    let mut by_suspect: BTreeMap<&str, u64> = BTreeMap::new();
    for i in incidents {
        *by_class.entry(&i.kind).or_default() += 1;
        let tenant = if i.tenant.is_empty() {
            "(fabric)"
        } else {
            &i.tenant
        };
        *by_tenant.entry(tenant).or_default() += 1;
        *by_suspect.entry(&i.suspected).or_default() += 1;
    }
    let span = (incidents.first().unwrap(), incidents.last().unwrap());
    out.push_str(&format!(
        "{} incident(s), tick {} .. tick {}\n",
        incidents.len(),
        span.0.tick,
        span.1.tick
    ));
    let section = |out: &mut String, title: &str, map: &BTreeMap<&str, u64>| {
        out.push_str(&format!("{title}:\n"));
        for (k, v) in map {
            out.push_str(&format!("  {v:>4}  {k}\n"));
        }
    };
    section(&mut out, "by class", &by_class);
    section(&mut out, "by tenant", &by_tenant);
    section(&mut out, "by suspected component", &by_suspect);
    out
}

fn run(args: &Args) -> Result<(), String> {
    if let Some(file) = &args.incidents {
        let mut incidents = load(file)?;
        if let Some(n) = args.last {
            let skip = incidents.len().saturating_sub(n);
            incidents.drain(..skip);
        }
        if incidents.is_empty() {
            println!("no incidents in {file}");
            return Ok(());
        }
        for (i, r) in incidents.iter().enumerate() {
            if args.json {
                println!("{}", r.render_json());
            } else {
                if i > 0 {
                    println!();
                }
                print!("{}", r.render_text());
            }
        }
    } else if let Some(file) = &args.health {
        print!("{}", render_health(&load(file)?));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ncwatch: {e}");
            ExitCode::FAILURE
        }
    }
}
