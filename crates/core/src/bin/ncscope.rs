//! ncscope — window-level flight-recorder inspection and network
//! diagnosis, as a command-line tool.
//!
//! ```text
//! ncscope --from <FILE>  [--trace <OUT.json>] [--path NODE[,NODE...]]
//! ncscope --live <ADDR>  [--trace <OUT.json>] [--path NODE[,NODE...]]
//!         [--timeout MS]
//! ```
//!
//! `--from` reads a dumped artifact: either an ncscope flight-recorder
//! snapshot (`"kind":"ncscope-flight"`, written by an armed
//! [`nctel::Scope`] on a failure path or on demand) or a plain metrics
//! registry dump (e.g. the CI's `target/e11-metrics.json`). Flight
//! artifacts run through the diagnosis engine and print per-window
//! verdicts — loss loci, dup heatmaps, per-switch residence — while
//! metrics dumps render as a table.
//!
//! `--live` queries the ncscope beacon of a running backend (see
//! `nctel::scope::beacon`) and renders the snapshot it returns.
//!
//! `--trace` additionally exports the snapshot as Chrome `trace_event`
//! JSON, openable in Perfetto / `chrome://tracing`.
//!
//! `--path` supplies the deployed AND path (sender→receiver switch
//! order) for last-witness loss inference when the artifact alone
//! cannot name a link; nodes are written `s1`, `h2`, or raw wire ids.

use nctel::scope::{analysis, chrome_trace, json, parse_flight, FlightArtifact, Json};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    from: Option<String>,
    live: Option<String>,
    trace: Option<String>,
    path: Vec<u16>,
    timeout_ms: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: ncscope (--from FILE | --live ADDR) [--trace OUT.json] \
         [--path NODE[,NODE...]] [--timeout MS]"
    );
    eprintln!("  FILE: ncscope flight artifact or metrics registry JSON dump");
    eprintln!("  ADDR: host:port of a running backend's ncscope beacon");
    eprintln!("  NODE: s<n> (switch), h<n> (host), or a raw wire id");
    std::process::exit(2);
}

/// Parses `s3` / `h2` / raw wire-id node spellings (the inverse of the
/// report's formatter; the switch bit is 0x8000).
fn parse_node(s: &str) -> Option<u16> {
    if let Some(n) = s.strip_prefix('s') {
        return n.parse::<u16>().ok().map(|n| n | 0x8000);
    }
    if let Some(n) = s.strip_prefix('h') {
        return n.parse::<u16>().ok();
    }
    s.parse::<u16>().ok()
}

fn parse_args() -> Args {
    let mut args = Args {
        from: None,
        live: None,
        trace: None,
        path: Vec::new(),
        timeout_ms: 2000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--from" => args.from = it.next(),
            "--live" => args.live = it.next(),
            "--trace" => args.trace = it.next(),
            "--timeout" => {
                let Some(ms) = it.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--timeout expects milliseconds");
                    usage();
                };
                args.timeout_ms = ms;
            }
            "--path" => {
                let Some(spec) = it.next() else { usage() };
                for node in spec.split(',') {
                    match parse_node(node) {
                        Some(id) => args.path.push(id),
                        None => {
                            eprintln!("bad node '{node}' in --path");
                            usage();
                        }
                    }
                }
            }
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unexpected argument '{other}'");
                usage();
            }
        }
    }
    if args.from.is_some() == args.live.is_some() {
        eprintln!("exactly one of --from / --live is required");
        usage();
    }
    args
}

/// Renders one metrics-registry JSON object as an aligned table.
/// Handles both a bare registry (`{"name": value, ...}`) and the
/// nested multi-registry dumps the bench harness writes
/// (`{"sim": {...}, "worker1": {...}}`).
fn render_metrics(doc: &Json, indent: &str, out: &mut String) {
    let Some(obj) = doc.as_obj() else {
        out.push_str(&format!("{indent}{}\n", doc.render()));
        return;
    };
    let width = obj.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (key, value) in obj {
        match value {
            Json::Num(n) => out.push_str(&format!("{indent}{key:width$}  {n}\n")),
            Json::Obj(_) if value.get("count").is_some() && value.get("p50").is_some() => {
                let f = |k: &str| value.get(k).and_then(Json::as_u64).unwrap_or(0);
                out.push_str(&format!(
                    "{indent}{key:width$}  count {} sum {} p50 {} p99 {} p999 {}\n",
                    f("count"),
                    f("sum"),
                    f("p50"),
                    f("p99"),
                    f("p999")
                ));
            }
            Json::Obj(_) => {
                // A nested registry section (e.g. "sim" / "worker1").
                out.push_str(&format!("{indent}[{key}]\n"));
                render_metrics(value, &format!("{indent}  "), out);
            }
            other => out.push_str(&format!("{indent}{key:width$}  {}\n", other.render())),
        }
    }
}

/// Renders a flight artifact: snapshot header, diagnosis report,
/// metrics table.
fn render_flight(art: &FlightArtifact, path: &[u16]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "ncscope flight snapshot: reason {}, t={}ns\n\
         events: {} in snapshot ({} logged, {} lost to ring wrap/cap), \
         {} window trace(s)\n\n",
        art.reason,
        art.now,
        art.events.len(),
        art.events_logged,
        art.events_dropped,
        art.traces.len()
    ));
    let cfg = analysis::DiagnosisConfig {
        expected_path: path.to_vec(),
        ..analysis::DiagnosisConfig::default()
    };
    out.push_str(&analysis::diagnose(&art.events, &art.traces, &cfg).render_report());
    if let Some(metrics) = &art.metrics {
        out.push_str("\nmetrics at snapshot:\n");
        render_metrics(metrics, "  ", &mut out);
    }
    out
}

fn run(args: &Args) -> Result<(), String> {
    let (text, source) = match (&args.from, &args.live) {
        (Some(file), _) => (
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?,
            file.clone(),
        ),
        (_, Some(addr)) => (
            nctel::scope::beacon::query(addr.as_str(), Duration::from_millis(args.timeout_ms))
                .map_err(|e| format!("beacon query to {addr} failed: {e}"))?,
            addr.clone(),
        ),
        _ => unreachable!("parse_args enforces one source"),
    };
    let doc = json::parse(&text).map_err(|e| format!("{source}: invalid JSON: {e}"))?;
    if doc.get("kind").and_then(Json::as_str) == Some("ncscope-flight") {
        let art = parse_flight(&text).map_err(|e| format!("{source}: {e}"))?;
        print!("{}", render_flight(&art, &args.path));
        if let Some(out) = &args.trace {
            // A bare artifact carries no compile spans; the timeline
            // still gets every window lifecycle and switch slice.
            let trace = chrome_trace(&[], &art.events, &art.traces);
            std::fs::write(out, &trace).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote Chrome trace to {out} (open in Perfetto / chrome://tracing)");
        }
    } else {
        println!("metrics dump {source}:");
        let mut out = String::new();
        render_metrics(&doc, "  ", &mut out);
        print!("{out}");
        if args.trace.is_some() {
            return Err("--trace needs a flight artifact, not a metrics dump".into());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ncscope: {e}");
            ExitCode::FAILURE
        }
    }
}
