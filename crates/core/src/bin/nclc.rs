//! nclc — the Net Compute Language compiler, as a command-line tool.
//!
//! ```text
//! nclc <program.ncl> --and <overlay.and> [--mask kernel=8,8]...
//!      [--lint allow|warn|deny=CODE[,CODE...]]...
//!      [--emit p4|ir|report|cost|timing|mc|all] [-o out-dir]
//! ```
//!
//! Takes an NCL C/C++ program and an AND file and produces "a program
//! for every switch in the AND file" (paper §3.2): `<location>.p4` for
//! inspection plus a resource report. `--emit ir` dumps the optimized
//! per-location IR and `--emit trace` pushes a zero-filled test window
//! through each compiled pipeline, printing the per-stage execution
//! trace (the debugging aids the paper lists as future work, §6).
//!
//! Static analysis (`ncl-lint`) runs on every compile: switch-state
//! hazards and replay-unsafe updates are errors by default and the
//! early resource estimate prints with `--emit cost`. `--lint
//! allow=replay-unsafe` (etc.) downgrades a finding after you have
//! understood the interleaving it describes. `--emit timing` prints the
//! wall-time of every compiler stage (nctel spans).
//!
//! `--emit mc` (never implied by `all` — it explores exhaustively) runs
//! the ncmc bounded model checker on every switch: each surviving
//! schedule-checkable lint warning and the whole-program convergence
//! obligation is adjudicated with a shrunk counterexample schedule or a
//! bounded-absence certificate (DESIGN.md §4.13).

use ncl_core::nclc::{compile, CompileConfig, LintCode, LintLevel, NclcError};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    program: PathBuf,
    and: PathBuf,
    masks: Vec<(String, Vec<u16>)>,
    lints: Vec<(LintCode, LintLevel)>,
    emit: Vec<String>,
    out: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: nclc <program.ncl> --and <overlay.and> \
         [--mask kernel=N[,N...]]... \
         [--lint allow|warn|deny=CODE[,CODE...]]... \
         [--emit p4|ir|report|cost|timing|mc|all] [-o DIR]"
    );
    eprintln!(
        "lint codes: {}",
        LintCode::ALL
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut program = None;
    let mut and = None;
    let mut masks = Vec::new();
    let mut lints = Vec::new();
    let mut emit = Vec::new();
    let mut out = PathBuf::from(".");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--and" => and = it.next().map(PathBuf::from),
            "--mask" => {
                let Some(spec) = it.next() else { usage() };
                let Some((k, counts)) = spec.split_once('=') else {
                    eprintln!("--mask expects kernel=N[,N...], got '{spec}'");
                    usage();
                };
                let counts: Result<Vec<u16>, _> = counts.split(',').map(str::parse).collect();
                match counts {
                    Ok(c) => masks.push((k.to_string(), c)),
                    Err(_) => {
                        eprintln!("bad mask counts in '{spec}'");
                        usage();
                    }
                }
            }
            "--lint" => {
                let Some(spec) = it.next() else { usage() };
                let Some((level, codes)) = spec.split_once('=') else {
                    eprintln!("--lint expects allow|warn|deny=CODE[,CODE...], got '{spec}'");
                    usage();
                };
                let level = match level {
                    "allow" => LintLevel::Allow,
                    "warn" => LintLevel::Warn,
                    "deny" => LintLevel::Deny,
                    other => {
                        eprintln!("--lint level must be allow, warn, or deny, got '{other}'");
                        usage();
                    }
                };
                for code in codes.split(',') {
                    match LintCode::parse(code) {
                        Some(c) => lints.push((c, level)),
                        None => {
                            eprintln!("unknown lint code '{code}'");
                            usage();
                        }
                    }
                }
            }
            "--emit" => {
                let Some(what) = it.next() else { usage() };
                emit.push(what);
            }
            "-o" => out = it.next().map(PathBuf::from).unwrap_or(out),
            "-h" | "--help" => usage(),
            _ if program.is_none() => program = Some(PathBuf::from(a)),
            other => {
                eprintln!("unexpected argument '{other}'");
                usage();
            }
        }
    }
    let (Some(program), Some(and)) = (program, and) else {
        usage();
    };
    if emit.is_empty() {
        emit.push("all".to_string());
    }
    Args {
        program,
        and,
        masks,
        lints,
        emit,
        out,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let src = match std::fs::read_to_string(&args.program) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("nclc: cannot read {}: {e}", args.program.display());
            return ExitCode::FAILURE;
        }
    };
    let and_src = match std::fs::read_to_string(&args.and) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("nclc: cannot read {}: {e}", args.and.display());
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = CompileConfig::default();
    for (k, m) in &args.masks {
        cfg.masks.insert(k.clone(), m.clone());
    }
    for &(code, level) in &args.lints {
        cfg.lint_levels.insert(code, level);
    }
    // The frontend names the translation unit "program.ncl" in spans.
    let lookup = |f: &str| (f == "program.ncl").then_some(src.as_str());
    let program = match compile(&src, &and_src, &cfg) {
        Ok(p) => p,
        Err(NclcError::Frontend(d)) | Err(NclcError::Lowering(d)) => {
            eprint!("{}", ncl_lang::diag::render_with_source(&d, lookup));
            return ExitCode::FAILURE;
        }
        Err(NclcError::Lint {
            location,
            diagnostics,
        }) => {
            eprintln!("nclc: lint denied program for \"{location}\":");
            let diags: Vec<_> = diagnostics.iter().map(|d| d.to_diagnostic()).collect();
            eprint!("{}", ncl_lang::diag::render_with_source(&diags, lookup));
            eprintln!(
                "nclc: downgrade a finding with --lint allow=CODE once the \
                 interleaving it describes is understood"
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("nclc: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Non-fatal findings still print, with carets into the source.
    for d in program.lint_warnings() {
        eprint!(
            "{}",
            ncl_lang::diag::render_with_source(&[d.to_diagnostic()], lookup)
        );
    }

    let emit_all = args.emit.iter().any(|e| e == "all");
    let wants = |what: &str| emit_all || args.emit.iter().any(|e| e == what);

    if std::fs::create_dir_all(&args.out).is_err() {
        eprintln!("nclc: cannot create {}", args.out.display());
        return ExitCode::FAILURE;
    }
    for (label, compiled) in &program.switches {
        if wants("p4") {
            let path = args.out.join(format!("{label}.p4"));
            if let Err(e) = std::fs::write(&path, &compiled.p4_source) {
                eprintln!("nclc: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
        }
        if wants("report") {
            let r = &compiled.report;
            println!(
                "{label}: {} stages, {} pass(es), PHV {}B hdr + {}B meta, \
                 max {} ops/stage — {}",
                r.stages_used,
                r.recirc_passes + 1,
                r.phv_header_bytes,
                r.phv_metadata_bytes,
                r.ops_by_stage.iter().max().unwrap_or(&0),
                if r.accepted() { "accepted" } else { "REJECTED" }
            );
        }
        if wants("cost") {
            match program.estimate(label.as_str()) {
                Some(est) => print!("{}", est.render()),
                None => println!("{label}: no pre-mapping estimate available"),
            }
        }
    }
    if wants("trace") {
        for (label, compiled) in &program.switches {
            let Ok(mut pipe) =
                pisa::Pipeline::load(compiled.pipeline.clone(), pisa::ResourceModel::default())
            else {
                continue;
            };
            for (kname, &kid) in &compiled.kernel_ids {
                let Some(kinfo) = program.checked.kernel(kname) else {
                    continue;
                };
                let Some(kir) = program.generic.kernel(kname) else {
                    continue;
                };
                if kir.mask.is_empty() {
                    continue;
                }
                let chunks: Vec<c3::Chunk> = kinfo
                    .window_params()
                    .zip(&kir.mask)
                    .map(|(p, &elems)| c3::Chunk {
                        offset: 0,
                        data: vec![0u8; p.elem.size() * elems as usize],
                    })
                    .collect();
                let w = c3::Window {
                    kernel: c3::KernelId(kid),
                    seq: 0,
                    sender: c3::HostId(1),
                    from: c3::NodeId::Host(c3::HostId(1)),
                    last: false,
                    chunks,
                    ext: vec![],
                };
                let pkt = ncp::codec::encode_window(&w, program.checked.window_ext.size());
                println!("== trace: kernel '{kname}' at {label} (zero window) ==");
                match pipe.process_traced(&pkt) {
                    Some((out, traces)) => {
                        for t in traces {
                            if !t.hits.is_empty() || !t.changed.is_empty() {
                                println!("  {t}");
                            }
                        }
                        println!(
                            "  decision code {} after {} pass(es)",
                            out.fwd_code, out.passes
                        );
                    }
                    None => println!("  (window not recognized)"),
                }
            }
        }
    }
    // Model checking is opt-in (`--emit mc` explicitly, not `all`):
    // exhaustive bounded exploration is orders of magnitude slower than
    // any other emit target.
    if args.emit.iter().any(|e| e == "mc") {
        let mc_cfg = ncl_core::mc::McConfig::default();
        for (label, _) in &program.switches {
            match ncl_core::mc::model_check_switch(&program, label.as_str(), &mc_cfg) {
                Ok(report) => {
                    println!("== model check: {label} ==");
                    for item in &report.items {
                        println!("  {}", item.summary());
                        match &item.result.outcome {
                            ncmc::Outcome::Witness(w) => {
                                for line in w.schedule.render().lines() {
                                    println!("    | {line}");
                                }
                            }
                            ncmc::Outcome::Certificate(c) => {
                                println!("    {}", c.to_json());
                            }
                            ncmc::Outcome::Inconclusive { .. } => {}
                        }
                    }
                }
                Err(e) => {
                    eprintln!("nclc: model check failed for {label}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if wants("timing") {
        print!("{}", program.timings.render());
    }
    if wants("ir") {
        let locations: Vec<_> = program
            .overlay
            .switches()
            .map(|s| ncl_ir::version::LocationInfo {
                label: s.label.clone(),
                id: s.id,
            })
            .collect();
        for module in ncl_ir::version_modules(&program.generic, &locations) {
            println!("{module}");
        }
    }
    println!(
        "nclc: {} kernel(s), {} switch program(s), host side retains {} incoming kernel(s)",
        program.kernel_ids.len(),
        program.switches.len(),
        program
            .checked
            .kernels
            .iter()
            .filter(|k| k.kind == ncl_lang::ast::KernelKind::Incoming)
            .count()
    );
    ExitCode::SUCCESS
}
