#![warn(missing_docs)]

//! # ncl-core — the NCL programming system
//!
//! The paper's primary contribution, assembled: *"a domain-specific
//! language for programming network kernels, its compiler and supporting
//! libraries"* (§3.2). This crate is the public API a downstream user
//! programs against:
//!
//! * [`nclc`] — the compiler driver (Fig. 6): NCL source + AND file →
//!   per-switch PISA pipelines + P4 sources + host-side kernel IR;
//! * [`runtime`] — libncrt: typed arrays, window specs, the
//!   [`runtime::NclHost`] application that implements `ncl::out` /
//!   `ncl::in` over the simulated network, and window encode/decode;
//! * [`control`] — the transparent control-plane interaction:
//!   `ncl::ctrl_wr`, map management (NetCache-style inserts/evictions);
//! * [`mod@deploy`] — maps the AND overlay onto a simulated network
//!   (Fig. 3c) and loads every switch with its compiled pipeline;
//! * [`fastpath`] — the compiled fast-path switch executor: versioned
//!   IR lowered to linear micro-op programs, cached per
//!   `(kernel, location)` and run allocation-free against persistent
//!   switch state (an alternative [`mod@deploy`] backend);
//! * [`baseline`] — the comparison points the evaluation needs: a
//!   handwritten NetCache-style pipeline (Fig. 1b) and host-only
//!   AllReduce/KVS applications that use switches as plain forwarders;
//! * [`mc`] — the model-checking driver: every schedule-checkable lint
//!   verdict (and a whole-program convergence obligation) adjudicated
//!   by the `ncmc` bounded model checker against the compiled pipeline
//!   — a machine-found counterexample schedule or a bounded-absence
//!   certificate (DESIGN.md §4.13).
//!
//! ## Quickstart
//!
//! ```
//! use ncl_core::nclc::{compile, CompileConfig};
//!
//! let src = r#"
//!     _net_ _at_("s1") int total[1] = {0};
//!     _net_ _out_ void count(int *data) { total[0] += data[0]; }
//! "#;
//! let and = "host h1\nhost h2\nswitch s1\nlink h1 s1\nlink h2 s1\n";
//! let mut cfg = CompileConfig::default();
//! cfg.masks.insert("count".into(), vec![1]);
//! let program = compile(src, and, &cfg).expect("compiles");
//! assert_eq!(program.switches.len(), 1);
//! assert!(program.switches[0].1.p4_source.contains("V1Switch"));
//! ```

pub mod apps;
pub mod baseline;
pub mod control;
pub mod deploy;
pub mod fastpath;
pub mod interp_switch;
pub mod mc;
pub mod mux;
pub mod nclc;
pub mod runtime;
pub mod tenants;
pub mod watch;

pub use control::ControlPlane;
pub use deploy::{
    and_switch_path, deploy, deploy_full, deploy_opts, deploy_with, deployed_versions,
    DeployOptions, Deployment, SwitchBackend,
};
pub use fastpath::FastPathSwitch;
pub use interp_switch::InterpSwitch;
pub use mux::TenantMux;
pub use nclc::{compile, CompileConfig, CompiledProgram, NclcError};
pub use runtime::{NclHost, OutInvocation, TypedArray};
pub use tenants::{deploy_tenants, MultiDeployError, MultiDeployment, TenantDeploy};
pub use watch::{FabricWatch, FabricWatchParts};
