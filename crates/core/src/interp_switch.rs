//! The interpreter-backed switch datapath — the third execution tier.
//!
//! [`InterpSwitch`] runs a location's versioned IR kernels through the
//! reference [`Interpreter`] instead of the compiled micro-op executor
//! ([`crate::fastpath::FastPathSwitch`]) or the modeled PISA pipeline.
//! It exists for differential testing: all three tiers must produce the
//! same verdicts, output windows, register state — and, with in-band
//! telemetry enabled, bit-identical hop records (`tests/differential.rs`,
//! DESIGN.md §4.9). Control-plane operations and state layout are
//! delegated to an embedded [`FastPathSwitch`] so the tiers cannot
//! drift in anything but the execution engine itself.

use crate::fastpath::FastPathSwitch;
use crate::nclc::CompiledProgram;
use c3::{Forward, Window};
use ncl_ir::interp::Interpreter;
use ncl_ir::ir::KernelIr;
use ncp::codec::{decode_window_into, encode_window_into};
use ncp::{NcpPacket, FLAG_ACK, FLAG_FRAGMENT, FLAG_NACK};
use netsim::{CtrlOp, FastDatapath, FastVerdict};
use std::any::Any;
use std::collections::HashMap;

/// An interpreter-driven datapath for one switch location.
pub struct InterpSwitch {
    /// State owner and control-plane delegate: the embedded fast path's
    /// [`FastPathSwitch::state`] is the device state the interpreter
    /// mutates, so ctrl ops and register reads behave identically
    /// across tiers by construction.
    inner: FastPathSwitch,
    /// NCP kernel id → IR kernel, interpreted per window.
    kernels: HashMap<u16, KernelIr>,
    interp: Interpreter,
    win: Window,
    ext_total: usize,
}

impl InterpSwitch {
    /// Builds the datapath for one switch label of a compiled program;
    /// `None` when the label has no module.
    pub fn from_program(program: &CompiledProgram, label: &str) -> Option<Self> {
        let inner = FastPathSwitch::from_program(program, label)?;
        let module = program.module(label)?;
        let kernels = module
            .kernels
            .iter()
            .filter_map(|k| program.kernel_ids.get(&k.name).map(|&id| (id, k.clone())))
            .collect();
        Some(InterpSwitch {
            inner,
            kernels,
            interp: Interpreter::default(),
            win: Window {
                kernel: c3::KernelId(0),
                seq: 0,
                sender: c3::HostId(0),
                from: c3::NodeId::Host(c3::HostId(0)),
                last: false,
                chunks: Vec::new(),
                ext: Vec::new(),
            },
            ext_total: program.checked.window_ext.size(),
        })
    }

    /// Processes one payload through the interpreter; same contract as
    /// [`FastPathSwitch::process_window`].
    pub fn process_window(&mut self, payload: &[u8]) -> Option<FastVerdict> {
        let (kid, flags) = match NcpPacket::new_checked(payload) {
            Ok(p) => (p.kernel(), p.flags()),
            Err(_) => return None,
        };
        if flags & (FLAG_FRAGMENT | FLAG_ACK | FLAG_NACK) != 0 || !self.kernels.contains_key(&kid) {
            return None;
        }
        if decode_window_into(payload, &mut self.win).is_err() {
            return None;
        }
        let kernel = &self.kernels[&kid];
        let fwd = self
            .interp
            .run_outgoing(kernel, &mut self.win, &mut self.inner.state)
            .ok()?;
        let (fwd_code, fwd_label) = match &fwd {
            Forward::Pass => (0, 0),
            Forward::Reflect => (1, 0),
            Forward::Bcast => (2, 0),
            Forward::Drop => (3, 0),
            Forward::PassTo(l) => (4, self.inner.label_wire(l).unwrap_or(0)),
        };
        let mut out = Vec::new();
        if fwd_code != 3 {
            encode_window_into(&self.win, self.ext_total, &mut out);
        }
        Some(FastVerdict {
            payload: out,
            fwd_code,
            fwd_label,
            version: 0,
        })
    }

    /// The embedded state/control delegate (post-run inspection).
    pub fn fastpath(&self) -> &FastPathSwitch {
        &self.inner
    }
}

impl FastDatapath for InterpSwitch {
    fn process(&mut self, payload: &[u8]) -> Option<FastVerdict> {
        self.process_window(payload)
    }

    fn ctrl(&mut self, op: &CtrlOp) -> bool {
        self.inner.ctrl(op)
    }

    fn register_prefix_sum(&self, prefix: &str) -> u64 {
        self.inner.register_prefix_sum(prefix)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::allreduce_source;
    use crate::nclc::{compile, CompileConfig};
    use c3::{Chunk, HostId, KernelId, NodeId, Value};
    use ncp::codec::{decode_window, encode_window};

    const AND: &str = "hosts worker 3\nswitch s1\nlink worker* s1\n";

    /// The interpreter tier agrees with the compiled fast path on every
    /// verdict, emitted window, and the final register state.
    #[test]
    fn interp_tier_matches_the_fast_path() {
        let src = allreduce_source(16, 4);
        let mut cfg = CompileConfig::default();
        cfg.masks.insert("allreduce".into(), vec![4]);
        cfg.masks.insert("result".into(), vec![4]);
        let p = compile(&src, AND, &cfg).expect("compiles");
        let kid = p.kernel_ids["allreduce"];
        let ext = p.checked.window_ext.size();
        let mut it = InterpSwitch::from_program(&p, "s1").expect("interp builds");
        let mut fp = FastPathSwitch::from_program(&p, "s1").expect("fastpath builds");
        assert!(it.ctrl(&CtrlOp::RegWrite {
            name: "nworkers".into(),
            index: 0,
            value: Value::u32(3),
        }));
        assert!(fp.ctrl_wr("nworkers", Value::u32(3)));

        for seq in 0..4u32 {
            for worker in 1..=3u16 {
                let vals: Vec<i32> = (0..4).map(|i| worker as i32 * 10 + i).collect();
                let w = Window {
                    kernel: KernelId(kid),
                    seq,
                    sender: HostId(worker),
                    from: NodeId::Host(HostId(worker)),
                    last: seq == 3,
                    chunks: vec![Chunk {
                        offset: seq * 16,
                        data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
                    }],
                    ext: vec![],
                };
                let bytes = encode_window(&w, ext);
                let iv = it.process_window(&bytes).expect("interp processes");
                let fv = fp.process_window(&bytes).expect("fastpath processes");
                assert_eq!(iv.fwd_code, fv.fwd_code, "worker {worker} seq {seq}");
                if iv.fwd_code != 3 {
                    assert_eq!(
                        decode_window(&iv.payload).unwrap(),
                        decode_window(&fv.payload).unwrap(),
                        "worker {worker} seq {seq}"
                    );
                }
            }
        }
        for i in 0..16 {
            assert_eq!(
                it.fastpath().register_read("accum", i),
                fp.register_read("accum", i),
                "accum[{i}]"
            );
        }
    }

    #[test]
    fn non_ncp_and_unknown_kernels_pass_through() {
        let src = allreduce_source(16, 4);
        let mut cfg = CompileConfig::default();
        cfg.masks.insert("allreduce".into(), vec![4]);
        cfg.masks.insert("result".into(), vec![4]);
        let p = compile(&src, AND, &cfg).expect("compiles");
        let mut it = InterpSwitch::from_program(&p, "s1").unwrap();
        assert!(it.process_window(b"not ncp at all").is_none());
        let alien = encode_window(
            &Window {
                kernel: KernelId(999),
                seq: 0,
                sender: HostId(1),
                from: NodeId::Host(HostId(1)),
                last: false,
                chunks: vec![Chunk {
                    offset: 0,
                    data: vec![0; 4],
                }],
                ext: vec![],
            },
            0,
        );
        assert!(it.process_window(&alien).is_none());
    }
}
