//! Transparent control-plane interaction (paper §3.2).
//!
//! *"NCL kernels are written for the data plane, but may involve the
//! control plane under the hood. For instance, host code is allowed to
//! update variables that are read-only by switch code."*
//!
//! [`ControlPlane`] wraps one compiled switch's control handles:
//! `ncl::ctrl_wr` writes every register copy of a control variable;
//! map inserts/evictions install or remove entries in every lookup-site
//! table of an `ncl::Map` (NetCache-style: the control plane associates
//! keys with value-array indices, paper §4.3). Operations come in two
//! flavours: direct (pre-run configuration against a
//! [`pisa::Pipeline`]) and deferred ([`netsim::CtrlOp`] lists a host can
//! submit mid-simulation through [`netsim::HostCtx::ctrl`]).

use c3::Value;
use ncl_p4::CompiledSwitch;
use netsim::CtrlOp;
use pisa::{ActionRef, Entry, MatchPattern, Pipeline};

/// Control-plane handle for one compiled switch.
#[derive(Clone, Debug)]
pub struct ControlPlane {
    map_tables: std::collections::HashMap<String, Vec<String>>,
    ctrl_regs: std::collections::HashMap<String, Vec<String>>,
    lane_banks: std::collections::HashMap<String, Vec<String>>,
}

impl ControlPlane {
    /// Builds the handle from a compiled switch.
    pub fn new(compiled: &CompiledSwitch) -> Self {
        ControlPlane {
            map_tables: compiled.map_tables.clone(),
            ctrl_regs: compiled.ctrl_regs.clone(),
            lane_banks: compiled.lane_banks.clone(),
        }
    }

    /// Reads element `idx` of a *source-level* switch array, resolving
    /// the compiler's lane decomposition (element `i` of a lane-split
    /// array lives in bank `i % L`, slot `i / L`).
    pub fn read_register(&self, pipe: &Pipeline, array: &str, idx: usize) -> Option<Value> {
        match self.lane_banks.get(array) {
            Some(banks) if banks.len() > 1 => {
                let lane = idx % banks.len();
                pipe.register_read(&banks[lane], idx / banks.len())
            }
            Some(banks) => pipe.register_read(&banks[0], idx),
            None => pipe.register_read(array, idx),
        }
    }

    /// Writes element `idx` of a source-level switch array through the
    /// lane decomposition.
    pub fn write_register(
        &self,
        pipe: &mut Pipeline,
        array: &str,
        idx: usize,
        value: Value,
    ) -> bool {
        match self.lane_banks.get(array) {
            Some(banks) if banks.len() > 1 => {
                let lane = idx % banks.len();
                pipe.register_write(&banks[lane], idx / banks.len(), value)
            }
            Some(banks) => pipe.register_write(&banks[0], idx, value),
            None => pipe.register_write(array, idx, value),
        }
    }

    // ------------------------------------------------------------------
    // Direct (pre-run) operations
    // ------------------------------------------------------------------

    /// `ncl::ctrl_wr(&var, value)` — writes every compiled copy of the
    /// control variable. Returns `false` for unknown variables.
    pub fn ctrl_wr(&self, pipe: &mut Pipeline, var: &str, value: Value) -> bool {
        let Some(copies) = self.ctrl_regs.get(var) else {
            return false;
        };
        let mut ok = true;
        for c in copies {
            ok &= pipe.register_write(c, 0, value);
        }
        ok
    }

    /// Inserts `key → value` into every lookup-site table of `map`.
    /// Returns `false` when the map is unknown or any table is full.
    pub fn map_insert(&self, pipe: &mut Pipeline, map: &str, key: u64, value: Value) -> bool {
        let Some(tables) = self.map_tables.get(map) else {
            return false;
        };
        let mut ok = true;
        for t in tables {
            ok &= pipe.table_insert(t, Self::entry(key, value)).is_ok();
        }
        ok
    }

    /// Removes `key` from every lookup-site table (cache eviction,
    /// paper §4.3: "the storage server just removes an item from the
    /// Idx map"). Returns the number of entries removed.
    pub fn map_remove(&self, pipe: &mut Pipeline, map: &str, key: u64) -> usize {
        let Some(tables) = self.map_tables.get(map) else {
            return 0;
        };
        tables
            .iter()
            .map(|t| pipe.table_remove(t, &Self::patterns(key)))
            .sum()
    }

    // ------------------------------------------------------------------
    // Deferred (mid-simulation) operations
    // ------------------------------------------------------------------

    /// The [`CtrlOp`]s realizing a `ctrl_wr` (submit via
    /// [`netsim::HostCtx::ctrl`]).
    pub fn ctrl_wr_ops(&self, var: &str, value: Value) -> Vec<CtrlOp> {
        self.ctrl_regs
            .get(var)
            .map(|copies| {
                copies
                    .iter()
                    .map(|c| CtrlOp::RegWrite {
                        name: c.clone(),
                        index: 0,
                        value,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The [`CtrlOp`]s realizing a map insert.
    pub fn map_insert_ops(&self, map: &str, key: u64, value: Value) -> Vec<CtrlOp> {
        self.map_tables
            .get(map)
            .map(|tables| {
                tables
                    .iter()
                    .map(|t| CtrlOp::TableInsert {
                        table: t.clone(),
                        entry: Self::entry(key, value),
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The [`CtrlOp`]s realizing a map removal.
    pub fn map_remove_ops(&self, map: &str, key: u64) -> Vec<CtrlOp> {
        self.map_tables
            .get(map)
            .map(|tables| {
                tables
                    .iter()
                    .map(|t| CtrlOp::TableRemove {
                        table: t.clone(),
                        patterns: Self::patterns(key).to_vec(),
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn entry(key: u64, value: Value) -> Entry {
        Entry {
            // Map tables key on (guard, key); the guard pattern is the
            // constant 1 (the lookup's predicate must hold).
            patterns: Self::patterns(key).to_vec(),
            action: ActionRef(1), // hit
            args: vec![value],
            priority: 0,
        }
    }

    fn patterns(key: u64) -> [MatchPattern; 2] {
        [MatchPattern::exact(1), MatchPattern::exact(key)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nclc::{compile, CompileConfig};
    use pisa::ResourceModel;

    const SRC: &str = r#"
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 8> Idx;
_net_ _at_("s1") bool Valid[8] = {false};
_net_ _ctrl_ _at_("s1") unsigned thresh = 3;
_net_ _out_ void k(uint64_t key) {
    if (auto *i = Idx[key]) {
        if (Valid[*i]) { _reflect(); }
    }
    if (window.seq > thresh) { _drop(); }
}
"#;
    const AND: &str = "host h1\nhost h2\nswitch s1\nlink h1 s1\nlink h2 s1\n";

    fn setup() -> (ControlPlane, Pipeline) {
        let mut cfg = CompileConfig::default();
        cfg.masks.insert("k".into(), vec![1]);
        let p = compile(SRC, AND, &cfg).expect("compiles");
        let c = p.switch("s1").unwrap();
        let cp = ControlPlane::new(c);
        let pipe = Pipeline::load(c.pipeline.clone(), ResourceModel::default()).unwrap();
        (cp, pipe)
    }

    #[test]
    fn ctrl_wr_updates_all_copies() {
        let (cp, mut pipe) = setup();
        assert!(cp.ctrl_wr(&mut pipe, "thresh", Value::u32(9)));
        assert!(!cp.ctrl_wr(&mut pipe, "nope", Value::u32(1)));
    }

    #[test]
    fn map_insert_and_remove() {
        let (cp, mut pipe) = setup();
        assert!(cp.map_insert(&mut pipe, "Idx", 42, Value::new(c3::ScalarType::U8, 3)));
        let removed = cp.map_remove(&mut pipe, "Idx", 42);
        assert!(removed >= 1);
        assert_eq!(cp.map_remove(&mut pipe, "Idx", 42), 0);
        assert!(!cp.map_insert(&mut pipe, "nomap", 1, Value::u32(0)));
    }

    #[test]
    fn capacity_respected_through_control_plane() {
        let (cp, mut pipe) = setup();
        for key in 0..8u64 {
            assert!(cp.map_insert(&mut pipe, "Idx", key, Value::new(c3::ScalarType::U8, key)));
        }
        // Ninth insert exceeds the declared capacity of 8.
        assert!(!cp.map_insert(&mut pipe, "Idx", 99, Value::new(c3::ScalarType::U8, 0)));
    }

    #[test]
    fn deferred_ops_generated() {
        let (cp, _) = setup();
        assert!(!cp.ctrl_wr_ops("thresh", Value::u32(5)).is_empty());
        assert!(!cp.map_insert_ops("Idx", 7, Value::u32(0)).is_empty());
        assert!(!cp.map_remove_ops("Idx", 7).is_empty());
        assert!(cp.ctrl_wr_ops("nope", Value::u32(5)).is_empty());
    }
}
