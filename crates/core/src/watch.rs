//! Fabric-level wiring for the `ncwatch` streaming health engine.
//!
//! [`FabricWatch`] binds one [`ncwatch::Watch`] to a running
//! deployment: it owns the tenant-labeled export [`Registry`], knows
//! which host/switch labels belong to which tenant, and on every
//! [`FabricWatch::tick`] it assembles the engine's [`TickInput`] from
//! live state — per-tenant transport counters (summed over the
//! tenant's hosts), per-component anomaly series (switch execution
//! counters, duplicate suppressions, per-node ingress bytes, per-tenant
//! ack rates), the current `ncscope` event capture, and non-draining
//! window-trace snapshots. Construct it through
//! [`crate::tenants::MultiDeployment::watch`] (which also converts
//! admission rejections into incidents) or assemble a
//! [`FabricWatchParts`] by hand for bespoke single-tenant deployments.

use nctel::{labeled, Registry, Scope, WindowTrace};
use ncwatch::{IncidentReport, SeriesSample, TenantSample, TickInput, Watch, WatchConfig};

use c3::{HostId, NodeId, SwitchId};

use crate::runtime::NclHost;
use netsim::Network;

/// The deployment facts a [`FabricWatch`] is assembled from.
pub struct FabricWatchParts {
    /// Engine configuration (SLOs, anomaly tuning, diagnosis facts).
    pub config: WatchConfig,
    /// Per tenant: name plus the `(host label, host id)` pairs its
    /// applications run on.
    pub tenants: Vec<(String, Vec<(String, HostId)>)>,
    /// Every switch in the fabric, `(label, id)`.
    pub switches: Vec<(String, SwitchId)>,
    /// The scope whose event ring feeds triggered diagnoses, if any.
    pub scope: Option<Scope>,
}

/// A watch handle bound to one deployment.
pub struct FabricWatch {
    watch: Watch,
    reg: Registry,
    tenants: Vec<(String, Vec<(String, HostId)>)>,
    switches: Vec<(String, SwitchId)>,
    scope: Option<Scope>,
    exported: bool,
}

impl FabricWatch {
    /// Builds the watch and its private export registry. Metric cells
    /// are attached lazily on the first [`FabricWatch::tick`] (hosts
    /// register their counters when the simulation has started).
    pub fn new(parts: FabricWatchParts) -> Self {
        FabricWatch {
            watch: Watch::new(parts.config),
            reg: Registry::new(),
            tenants: parts.tenants,
            switches: parts.switches,
            scope: parts.scope,
            exported: false,
        }
    }

    /// The underlying engine (incident log, trackers, health summary).
    pub fn engine(&self) -> &Watch {
        &self.watch
    }

    /// Mutable engine access (arming the JSONL log, admission
    /// incidents).
    pub fn engine_mut(&mut self) -> &mut Watch {
        &mut self.watch
    }

    /// The tenant-labeled registry the watch reads (the same cells the
    /// hosts update — reads are always live).
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// Runs one evaluation tick against the live network and returns
    /// any incidents fired.
    pub fn tick(&mut self, net: &mut Network, now: u64) -> Vec<IncidentReport> {
        if !self.exported {
            self.exported = true;
            for (tenant, hosts) in &self.tenants {
                for (label, hid) in hosts {
                    if let Some(host) = net.host_app::<NclHost>(*hid) {
                        host.export_metrics(&self.reg, &[("tenant", tenant), ("host", label)]);
                    }
                }
            }
        }

        // Per-tenant transport counters, summed over the tenant's hosts.
        let fabric_unknown = net
            .metrics()
            .counter_value("sim.unknown_kernel")
            .unwrap_or(0);
        let mut tenants: Vec<TenantSample> = Vec::with_capacity(self.tenants.len());
        for (tenant, hosts) in &self.tenants {
            let mut s = TenantSample {
                tenant: tenant.clone(),
                unknown_kernel: fabric_unknown,
                ..TenantSample::default()
            };
            for (label, _) in hosts {
                let l: &[(&str, &str)] = &[("tenant", tenant), ("host", label)];
                let v = |m: &str| self.reg.counter_value(&labeled(m, l)).unwrap_or(0);
                s.acked += v("ncpr.sender.acked");
                s.tracked += v("ncpr.sender.tracked");
                s.retransmits += v("ncpr.sender.retransmits");
                s.abandoned += v("ncpr.sender.abandoned");
                let p99 = self
                    .reg
                    .histogram(&labeled("ncpr.sender.ack_latency_ns", l))
                    .snapshot()
                    .p99;
                s.p99_ack_latency_ns = s.p99_ack_latency_ns.max(p99);
            }
            tenants.push(s);
        }

        // Per-component anomaly series.
        let mut series: Vec<SeriesSample> = Vec::new();
        for (label, sid) in &self.switches {
            let wire = ncwatch::wire_name(NodeId::Switch(*sid).to_wire());
            if let Some(st) = net.switch_stats(*sid) {
                series.push(SeriesSample {
                    series: format!("switch.{label}.processed"),
                    component: format!("switch {wire}"),
                    value: (st.ncp_processed + st.forwarded) as f64,
                });
            }
            series.push(SeriesSample {
                series: format!("switch.{label}.dup_suppressed"),
                component: format!("switch {wire}"),
                value: net.switch_dup_suppressed(*sid) as f64,
            });
        }
        for (tenant, hosts) in &self.tenants {
            let mut acked = 0u64;
            let mut ingress = 0u64;
            for (label, hid) in hosts {
                let l: &[(&str, &str)] = &[("tenant", tenant), ("host", label)];
                acked += self
                    .reg
                    .counter_value(&labeled("ncpr.sender.acked", l))
                    .unwrap_or(0);
                ingress += net.node_ingress_bytes(NodeId::Host(*hid));
            }
            series.push(SeriesSample {
                series: format!("tenant.{tenant}.acked"),
                component: format!("tenant {tenant}"),
                value: acked as f64,
            });
            series.push(SeriesSample {
                series: format!("tenant.{tenant}.ingress_bytes"),
                component: format!("tenant {tenant}"),
                value: ingress as f64,
            });
        }

        // Capture is lazy: the ring decode (torn-slot-safe snapshot)
        // and the non-draining trace snapshots only run on ticks where
        // something actually fires — a healthy tick costs counter
        // reads, nothing else.
        let input = TickInput {
            now_ns: now,
            tenants: &tenants,
            series: &series,
            events: &[],
            traces: &[],
        };
        let scope = &self.scope;
        let watched = &self.tenants;
        let net_ref = &*net;
        self.watch.observe_tick_lazy(&input, &mut || {
            let events = scope.as_ref().map(|s| s.decoded()).unwrap_or_default();
            let mut traces: Vec<WindowTrace> = Vec::new();
            for (_, hosts) in watched {
                for (_, hid) in hosts {
                    if let Some(host) = net_ref.host_app::<NclHost>(*hid) {
                        traces.extend(host.trace_snapshot());
                    }
                }
            }
            (events, traces)
        })
    }

    /// Drives the simulation in watch-tick increments until `deadline`:
    /// run → evaluate → repeat. Returns every incident fired.
    pub fn run_watched(&mut self, net: &mut Network, deadline: u64) -> Vec<IncidentReport> {
        let step = self.watch.tick_ns().max(1);
        let mut out = Vec::new();
        let mut t = net.now();
        while t < deadline {
            t = (t + step).min(deadline);
            net.run_until(t);
            out.extend(self.tick(net, t));
        }
        out
    }
}
