//! The compiled fast-path switch datapath.
//!
//! A [`FastPathSwitch`] is the lean per-packet executor for one switch
//! location: every outgoing kernel of the location's versioned IR module
//! is lowered once through [`CompiledKernel::compile_for`] and cached by
//! NCP kernel id — the per-`(KernelId, location)` compiled-kernel cache.
//! Window processing then runs the linear micro-op program against the
//! location's persistent [`SwitchState`] with a reusable [`ExecScratch`]
//! and the zero-copy NCP codec ([`decode_window_into`] /
//! [`encode_window_into`]), so the steady state allocates only the
//! outgoing packet buffer.
//!
//! It plugs into the simulator as a [`netsim::FastDatapath`]
//! (see [`crate::deploy::SwitchBackend::FastPath`]) and serves as the
//! software-switch engine for the Sockets/UDP backend. The modeled PISA
//! pipeline remains the resource-checked hardware model; the
//! differential tests below hold the two to identical verdicts, output
//! windows, and register state.

use crate::nclc::CompiledProgram;
use c3::{Forward, Label, Value, Window};
use ncl_ir::ir::{CtrlId, MapId, Module};
use ncl_ir::{CompiledKernel, ExecScratch, SwitchState};
use ncp::codec::{decode_window_into, encode_window_into};
use ncp::{NcpPacket, FLAG_ACK, FLAG_FRAGMENT, FLAG_NACK};
use nctel::{Counter, Registry};
use netsim::{CtrlOp, FastDatapath, FastVerdict};
use std::any::Any;
use std::collections::HashMap;

/// A compiled fast-path datapath for one switch location.
pub struct FastPathSwitch {
    /// NCP kernel id → compiled program (placement checks hoisted for
    /// this location).
    kernels: HashMap<u16, CompiledKernel>,
    /// The location's persistent device state.
    pub state: SwitchState,
    scratch: ExecScratch,
    /// Decoded-window scratch, reused across packets.
    win: Window,
    ext_total: usize,
    ctrl_by_name: HashMap<String, CtrlId>,
    /// Compiled register-copy name → ctrl (deferred control ops arrive
    /// under the names the backend assigned).
    ctrl_by_copy: HashMap<String, CtrlId>,
    map_by_name: HashMap<String, MapId>,
    /// Compiled lookup-table name → map.
    map_by_table: HashMap<String, MapId>,
    reg_by_name: HashMap<String, usize>,
    label_wires: HashMap<Label, u16>,
    /// Windows executed (nctel counter; cache hits of the compiled-
    /// kernel cache).
    windows: Counter,
    /// NCP windows this datapath declined (fragments, unknown kernels
    /// — cache misses, plainly forwarded).
    misses: Counter,
    /// Kernel executions that errored (window forwarded unmodified).
    errors: Counter,
}

impl FastPathSwitch {
    /// Builds the datapath from a location's versioned module.
    /// `location_id` is the AND node id (`location.id`), `kernel_ids`
    /// the program-wide NCP ids, `label_wires` the `_pass(label)` wire
    /// ids, and `ext_total` the program's window-extension size.
    pub fn new(
        module: &Module,
        location_id: u16,
        kernel_ids: &HashMap<String, u16>,
        label_wires: &HashMap<Label, u16>,
        ext_total: usize,
    ) -> Self {
        Self::new_with_simd(
            module,
            location_id,
            kernel_ids,
            label_wires,
            ext_total,
            true,
        )
    }

    /// [`FastPathSwitch::new`] with explicit tier selection: `simd`
    /// offers fused element-wise runs to the ncvec SIMD tier (the
    /// default — kernels with no fusible runs execute identically
    /// either way), `false` pins the scalar micro-op fast path, the
    /// A/B baseline [`crate::deploy::SwitchBackend::FastPath`] uses.
    pub fn new_with_simd(
        module: &Module,
        location_id: u16,
        kernel_ids: &HashMap<String, u16>,
        label_wires: &HashMap<Label, u16>,
        ext_total: usize,
        simd: bool,
    ) -> Self {
        let mut state = SwitchState::from_module(module);
        state.location_id = location_id;
        let kernels = module
            .kernels
            .iter()
            .filter_map(|k| {
                kernel_ids
                    .get(&k.name)
                    .map(|&id| (id, CompiledKernel::compile_for(k, module).with_simd(simd)))
            })
            .collect();
        let ctrl_by_name = module
            .ctrls
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), CtrlId(i as u32)))
            .collect();
        let map_by_name = module
            .maps
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.clone(), MapId(i as u32)))
            .collect();
        let reg_by_name = module
            .registers
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.clone(), i))
            .collect();
        FastPathSwitch {
            kernels,
            state,
            scratch: ExecScratch::new(),
            win: Window {
                kernel: c3::KernelId(0),
                seq: 0,
                sender: c3::HostId(0),
                from: c3::NodeId::Host(c3::HostId(0)),
                last: false,
                chunks: Vec::new(),
                ext: Vec::new(),
            },
            ext_total,
            ctrl_by_name,
            ctrl_by_copy: HashMap::new(),
            map_by_name,
            map_by_table: HashMap::new(),
            reg_by_name,
            label_wires: label_wires.clone(),
            windows: Counter::new(),
            misses: Counter::new(),
            errors: Counter::new(),
        }
    }

    /// Builds the datapath for one switch label of a compiled program,
    /// aliasing the backend's compiled control-register and lookup-table
    /// names so deferred [`CtrlOp`]s emitted by
    /// [`crate::control::ControlPlane`] resolve unchanged.
    pub fn from_program(program: &CompiledProgram, label: &str) -> Option<Self> {
        Self::from_program_with(program, label, true)
    }

    /// [`FastPathSwitch::from_program`] with explicit tier selection
    /// (see [`FastPathSwitch::new_with_simd`]).
    pub fn from_program_with(program: &CompiledProgram, label: &str, simd: bool) -> Option<Self> {
        let module = program.module(label)?;
        let id = program.overlay.node(label)?.id;
        let mut fp = Self::new_with_simd(
            module,
            id,
            &program.kernel_ids,
            &program.label_ids,
            program.checked.window_ext.size(),
            simd,
        );
        if let Some(compiled) = program.switch(label) {
            for (src, copies) in &compiled.ctrl_regs {
                if let Some(&c) = fp.ctrl_by_name.get(src) {
                    for copy in copies {
                        fp.ctrl_by_copy.insert(copy.clone(), c);
                    }
                }
            }
            for (src, tables) in &compiled.map_tables {
                if let Some(&m) = fp.map_by_name.get(src) {
                    for t in tables {
                        fp.map_by_table.insert(t.clone(), m);
                    }
                }
            }
        }
        Some(fp)
    }

    /// Processes one payload: decode (buffer-reusing), execute the
    /// cached compiled kernel, re-encode. `None` for non-NCP traffic,
    /// fragments (switches compute only on single-packet windows, paper
    /// §6), unknown kernels, and execution errors — the switch then
    /// plainly forwards the original packet.
    pub fn process_window(&mut self, payload: &[u8]) -> Option<FastVerdict> {
        let (kid, flags) = match NcpPacket::new_checked(payload) {
            Ok(p) => (p.kernel(), p.flags()),
            Err(_) => return None,
        };
        if flags & (FLAG_FRAGMENT | FLAG_ACK | FLAG_NACK) != 0 || !self.kernels.contains_key(&kid) {
            self.misses.inc();
            return None;
        }
        if decode_window_into(payload, &mut self.win).is_err() {
            self.misses.inc();
            return None;
        }
        self.windows.inc();
        let kernel = &self.kernels[&kid];
        let fwd = match kernel.run_outgoing(&mut self.win, &mut self.state, &mut self.scratch) {
            Ok(f) => f,
            Err(_) => {
                self.errors.inc();
                return None;
            }
        };
        let (fwd_code, fwd_label) = match &fwd {
            Forward::Pass => (0, 0),
            Forward::Reflect => (1, 0),
            Forward::Bcast => (2, 0),
            Forward::Drop => (3, 0),
            Forward::PassTo(l) => (4, self.label_wires.get(l).copied().unwrap_or(0)),
        };
        let mut out = Vec::new();
        if fwd_code != 3 {
            encode_window_into(&self.win, self.ext_total, &mut out);
        }
        Some(FastVerdict {
            payload: out,
            fwd_code,
            fwd_label,
            version: 0,
        })
    }

    /// Windows executed by the compiled cache (executor hits).
    pub fn windows(&self) -> u64 {
        self.windows.get()
    }

    /// NCP windows declined by the executor (cache misses: fragments,
    /// unknown kernels, undecodable payloads).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Kernel executions that errored (window forwarded unmodified).
    pub fn errors(&self) -> u64 {
        self.errors.get()
    }

    /// Registers this executor's counters on `reg` under
    /// `{prefix}.windows`, `{prefix}.misses` and `{prefix}.errors`.
    pub fn attach_metrics(&self, reg: &Registry, prefix: &str) {
        reg.register_counter(&format!("{prefix}.windows"), &self.windows);
        reg.register_counter(&format!("{prefix}.misses"), &self.misses);
        reg.register_counter(&format!("{prefix}.errors"), &self.errors);
    }

    /// Resolves a `_pass(label)` target to its wire id.
    pub fn label_wire(&self, label: &Label) -> Option<u16> {
        self.label_wires.get(label).copied()
    }

    /// `ncl::ctrl_wr` against this location's state.
    pub fn ctrl_wr(&mut self, var: &str, value: Value) -> bool {
        match self.ctrl_by_name.get(var) {
            Some(&c) => {
                self.state.ctrl_write(c, value);
                true
            }
            None => false,
        }
    }

    /// Reads element `idx` of a source-level register array.
    pub fn register_read(&self, array: &str, idx: usize) -> Option<Value> {
        let &r = self.reg_by_name.get(array)?;
        self.state.registers[r].get(idx).copied()
    }

    /// Control-plane map insert (source-level name). `false` when the
    /// map is unknown or full.
    pub fn map_insert(&mut self, map: &str, key: u64, value: Value) -> bool {
        match self.map_by_name.get(map) {
            Some(&m) => self.state.map_insert(m, key, value),
            None => false,
        }
    }

    /// Control-plane map removal (source-level name).
    pub fn map_remove(&mut self, map: &str, key: u64) -> bool {
        match self.map_by_name.get(map) {
            Some(&m) => self.state.map_remove(m, key),
            None => false,
        }
    }
}

impl FastDatapath for FastPathSwitch {
    fn process(&mut self, payload: &[u8]) -> Option<FastVerdict> {
        self.process_window(payload)
    }

    fn ctrl(&mut self, op: &CtrlOp) -> bool {
        match op {
            CtrlOp::RegWrite { name, index, value } => {
                // Control variables first (by source or compiled-copy
                // name), then plain register arrays by source name.
                if let Some(&c) = self
                    .ctrl_by_name
                    .get(name)
                    .or_else(|| self.ctrl_by_copy.get(name))
                {
                    self.state.ctrl_write(c, *value);
                    return true;
                }
                let Some(&r) = self.reg_by_name.get(name) else {
                    return false;
                };
                match self.state.registers[r].get_mut(*index) {
                    Some(slot) => {
                        *slot = value.cast(slot.ty());
                        true
                    }
                    None => false,
                }
            }
            CtrlOp::TableInsert { table, entry } => {
                let Some(&m) = self
                    .map_by_table
                    .get(table)
                    .or_else(|| self.map_by_name.get(table))
                else {
                    return false;
                };
                // Map-table entries key on (guard, key); see
                // `ControlPlane::entry`.
                let key = entry.patterns.last().map(|p| p.value).unwrap_or(0);
                let Some(&value) = entry.args.first() else {
                    return false;
                };
                self.state.map_insert(m, key, value)
            }
            CtrlOp::TableRemove { table, patterns } => {
                let Some(&m) = self
                    .map_by_table
                    .get(table)
                    .or_else(|| self.map_by_name.get(table))
                else {
                    return false;
                };
                let key = patterns.last().map(|p| p.value).unwrap_or(0);
                self.state.map_remove(m, key)
            }
        }
    }

    fn register_prefix_sum(&self, prefix: &str) -> u64 {
        self.reg_by_name
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, &r)| {
                self.state.registers[r]
                    .first()
                    .map(|v| v.bits())
                    .unwrap_or(0)
            })
            .sum()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::allreduce_source;
    use crate::control::ControlPlane;
    use crate::nclc::{compile, CompileConfig, CompiledProgram};
    use c3::{Chunk, HostId, KernelId, NodeId};
    use ncp::codec::{decode_window, encode_window, fragment_window};
    use pisa::{Pipeline, ResourceModel};

    const AND: &str = "hosts worker 3\nswitch s1\nlink worker* s1\n";

    fn allreduce_program() -> CompiledProgram {
        let src = allreduce_source(16, 4);
        let mut cfg = CompileConfig::default();
        cfg.masks.insert("allreduce".into(), vec![4]);
        cfg.masks.insert("result".into(), vec![4]);
        compile(&src, AND, &cfg).expect("compiles")
    }

    fn window(kid: u16, worker: u16, seq: u32, vals: &[i32]) -> Window {
        Window {
            kernel: KernelId(kid),
            seq,
            sender: HostId(worker),
            from: NodeId::Host(HostId(worker)),
            last: seq == 3,
            chunks: vec![Chunk {
                offset: seq * 16,
                data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
            }],
            ext: vec![],
        }
    }

    /// Packet-level differential: the compiled fast path and the PISA
    /// pipeline see the same byte stream and must agree on every
    /// verdict, every emitted window, and the final register state.
    #[test]
    fn verdicts_and_state_match_the_pisa_pipeline() {
        let p = allreduce_program();
        let kid = p.kernel_ids["allreduce"];
        let compiled = p.switch("s1").unwrap();
        let mut pipe = Pipeline::load(compiled.pipeline.clone(), ResourceModel::default()).unwrap();
        let cp = ControlPlane::new(compiled);
        assert!(cp.ctrl_wr(&mut pipe, "nworkers", Value::u32(3)));
        let mut fp = FastPathSwitch::from_program(&p, "s1").expect("fastpath builds");
        assert!(fp.ctrl_wr("nworkers", Value::u32(3)));

        let ext = p.checked.window_ext.size();
        for seq in 0..4u32 {
            for worker in 1..=3u16 {
                let vals: Vec<i32> = (0..4).map(|i| worker as i32 * 10 + i).collect();
                let bytes = encode_window(&window(kid, worker, seq, &vals), ext);
                let pi = pipe.process(&bytes).expect("pisa processes");
                let fv = fp.process_window(&bytes).expect("fastpath processes");
                assert_eq!(fv.fwd_code, pi.fwd_code, "worker {worker} seq {seq}");
                if fv.fwd_code != 3 {
                    assert_eq!(
                        decode_window(&fv.payload).unwrap(),
                        decode_window(&pi.packet).unwrap(),
                        "worker {worker} seq {seq}"
                    );
                }
            }
        }
        // Only the third window of each slot broadcast the sums; the
        // final device state agrees element-wise.
        for i in 0..16 {
            assert_eq!(
                fp.register_read("accum", i),
                cp.read_register(&pipe, "accum", i),
                "accum[{i}]"
            );
        }
        for i in 0..4 {
            assert_eq!(
                fp.register_read("count", i),
                cp.read_register(&pipe, "count", i),
                "count[{i}]"
            );
        }
        assert_eq!(fp.windows(), 12);
        assert_eq!(fp.errors(), 0);
    }

    /// The compiler-lowered replay filter, exercised identically in
    /// both tiers: duplicates never re-accumulate, an incomplete slot
    /// drops the replay, a completed slot reflects the stored sums, and
    /// the duplicate counter is observable through both interfaces.
    #[test]
    fn replay_filter_suppresses_duplicates_in_both_tiers() {
        use crate::nclc::ReplayFilter;
        let src = allreduce_source(16, 4);
        let mut cfg = CompileConfig::default();
        cfg.masks.insert("allreduce".into(), vec![4]);
        cfg.masks.insert("result".into(), vec![4]);
        cfg.replay_filters.insert(
            "allreduce".into(),
            ReplayFilter {
                senders: 4,
                slots: 8,
            },
        );
        let p = compile(&src, AND, &cfg).expect("compiles");
        let kid = p.kernel_ids["allreduce"];
        let compiled = p.switch("s1").unwrap();
        let mut pipe = Pipeline::load(compiled.pipeline.clone(), ResourceModel::default()).unwrap();
        let cp = ControlPlane::new(compiled);
        assert!(cp.ctrl_wr(&mut pipe, "nworkers", Value::u32(3)));
        let mut fp = FastPathSwitch::from_program(&p, "s1").expect("fastpath builds");
        assert!(fp.ctrl_wr("nworkers", Value::u32(3)));
        let ext = p.checked.window_ext.size();

        let send = |fp: &mut FastPathSwitch, pipe: &mut Pipeline, worker: u16, seq: u32| {
            let vals: Vec<i32> = (0..4).map(|i| worker as i32 * 10 + i).collect();
            let bytes = encode_window(&window(kid, worker, seq, &vals), ext);
            let pi = pipe.process(&bytes).expect("pisa processes");
            let fv = fp.process_window(&bytes).expect("fastpath processes");
            assert_eq!(fv.fwd_code, pi.fwd_code, "worker {worker} seq {seq}");
            fv
        };
        // Worker 1 contributes to slot 0 and then retransmits: the
        // replay is dropped pre-completion and never re-accumulates.
        assert_eq!(send(&mut fp, &mut pipe, 1, 0).fwd_code, 3);
        assert_eq!(send(&mut fp, &mut pipe, 1, 0).fwd_code, 3);
        assert_eq!(fp.register_read("count", 0), Some(Value::u32(1)));
        assert_eq!(fp.register_read("accum", 0), Some(Value::i32(10)));
        // Workers 2 and 3 complete the slot; the third broadcasts.
        assert_eq!(send(&mut fp, &mut pipe, 2, 0).fwd_code, 3);
        assert_eq!(send(&mut fp, &mut pipe, 3, 0).fwd_code, 2);
        // A post-completion replay reflects the stored sums — this is
        // how a worker recovers a lost broadcast leg.
        let v = send(&mut fp, &mut pipe, 1, 0);
        assert_eq!(v.fwd_code, 1, "post-completion replay reflects");
        let w = decode_window(&v.payload).unwrap();
        assert_eq!(w.chunks[0].get(c3::ScalarType::I32, 0), Value::i32(60));
        // Both duplicate-count interfaces agree.
        assert_eq!(fp.register_prefix_sum(c3::ncpr::REPLAY_DUPS_PREFIX), 2);
        assert_eq!(
            cp.read_register(&pipe, "__nclr_dups_allreduce", 0)
                .map(|v| v.bits()),
            Some(2)
        );
        // And the full device state still matches across tiers.
        for i in 0..16 {
            assert_eq!(
                fp.register_read("accum", i),
                cp.read_register(&pipe, "accum", i),
                "accum[{i}]"
            );
        }
    }

    #[test]
    fn non_ncp_fragments_and_unknown_kernels_pass_through() {
        let p = allreduce_program();
        let kid = p.kernel_ids["allreduce"];
        let mut fp = FastPathSwitch::from_program(&p, "s1").unwrap();
        // Garbage is not NCP.
        assert!(fp.process_window(b"hello not ncp").is_none());
        // Fragments are forwarded for host-side reassembly.
        let big = window(kid, 1, 0, &(0..64).collect::<Vec<_>>());
        for frag in fragment_window(&big, 0, 80) {
            assert!(fp.process_window(&frag).is_none());
        }
        // Unknown kernel ids are forwarded, not executed.
        let alien = encode_window(&window(999, 1, 0, &[1, 2, 3, 4]), 0);
        assert!(fp.process_window(&alien).is_none());
        assert_eq!(fp.windows(), 0);
        assert!(fp.misses() >= 2, "declined traffic counts as misses");
    }

    /// Deferred control-plane operations emitted by [`ControlPlane`]
    /// (compiled register-copy and lookup-table names) resolve against
    /// the fast path unchanged.
    #[test]
    fn deferred_ctrl_ops_resolve_compiled_names() {
        let src = r#"
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 8> Idx;
_net_ _at_("s1") bool Valid[8] = {false};
_net_ _ctrl_ _at_("s1") unsigned thresh = 3;
_net_ _out_ void k(uint64_t key) {
    if (auto *i = Idx[key]) {
        if (Valid[*i]) { _reflect(); }
    }
    if (window.seq > thresh) { _drop(); }
}
"#;
        let and = "host h1\nhost h2\nswitch s1\nlink h1 s1\nlink h2 s1\n";
        let mut cfg = CompileConfig::default();
        cfg.masks.insert("k".into(), vec![1]);
        let p = compile(src, and, &cfg).expect("compiles");
        let cp = ControlPlane::new(p.switch("s1").unwrap());
        let mut fp = FastPathSwitch::from_program(&p, "s1").unwrap();

        for op in cp.ctrl_wr_ops("thresh", Value::u32(7)) {
            assert!(fp.ctrl(&op));
        }
        for op in cp.map_insert_ops("Idx", 42, Value::new(c3::ScalarType::U8, 3)) {
            fp.ctrl(&op);
        }
        assert_eq!(
            fp.state.maps[0].get(&42).copied().map(|v| v.bits()),
            Some(3)
        );
        // Direct source-level writes work too: mark slot 3 valid.
        assert!(fp.ctrl(&CtrlOp::RegWrite {
            name: "Valid".into(),
            index: 3,
            value: Value::bool(true),
        }));

        let kid = p.kernel_ids["k"];
        let get = |seq: u32, key: u64| Window {
            kernel: KernelId(kid),
            seq,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: false,
            chunks: vec![Chunk {
                offset: 0,
                data: key.to_be_bytes().to_vec(),
            }],
            ext: vec![],
        };
        // Cached key reflects; uncached passes; seq beyond the written
        // threshold drops.
        let v = fp.process_window(&encode_window(&get(0, 42), 0)).unwrap();
        assert_eq!(v.fwd_code, 1);
        let v = fp.process_window(&encode_window(&get(0, 7), 0)).unwrap();
        assert_eq!(v.fwd_code, 0);
        let v = fp.process_window(&encode_window(&get(8, 7), 0)).unwrap();
        assert_eq!(v.fwd_code, 3);
        assert!(v.payload.is_empty(), "dropped windows are not re-encoded");
        // Removal restores the pass behaviour for key 42.
        for op in cp.map_remove_ops("Idx", 42) {
            fp.ctrl(&op);
        }
        let v = fp.process_window(&encode_window(&get(0, 42), 0)).unwrap();
        assert_eq!(v.fwd_code, 0);
    }
}
