//! Application hosts for the two paper use cases (§4.3) and their
//! host-only baselines.
//!
//! * [`PsWorker`]/[`PsServer`] — the **host-based AllReduce baseline**:
//!   a parameter server aggregates worker arrays in software; switches
//!   only forward. E1 compares this against the in-network AllReduce.
//! * [`KvsClient`]/[`KvsServer`] — the **KVS application** of Fig. 5.
//!   The same pair runs in both modes: with the compiled `query` kernel
//!   on the switch (in-network cache) or with a plain forwarding switch
//!   (server-only baseline) — E2's comparison.

use crate::control::ControlPlane;
use c3::{Chunk, HostId, KernelId, NodeId, ScalarType, SwitchId, Value, Window};
use ncp::codec::{decode_window, encode_window};
use ncp::reliable::{ReliableConfig, Sender as RelSender};
use netsim::{HostApp, HostCtx, Packet, Time};
use std::any::Any;
use std::collections::HashMap;

/// Timer token reserved for the KVS client's NCP-R retransmission
/// clock (schedule timers use small indices, so the top bit is free).
const KVS_RELIABLE_TIMER: u64 = 1 << 63;

// ---------------------------------------------------------------------
// Host-based AllReduce (parameter-server baseline)
// ---------------------------------------------------------------------

/// Wire format of the PS baseline (plain, non-NCP packets):
/// `[magic u16 = 0x5053][worker u16][seq u32][n u16][i32 × n]`.
const PS_MAGIC: u16 = 0x5053;

fn ps_encode(worker: u16, seq: u32, vals: &[i32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + vals.len() * 4);
    out.extend_from_slice(&PS_MAGIC.to_be_bytes());
    out.extend_from_slice(&worker.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&(vals.len() as u16).to_be_bytes());
    for v in vals {
        out.extend_from_slice(&v.to_be_bytes());
    }
    out
}

fn ps_decode(bytes: &[u8]) -> Option<(u16, u32, Vec<i32>)> {
    use c3::wire::{get_u16, get_u32};
    if bytes.len() < 10 || get_u16(bytes, 0) != PS_MAGIC {
        return None;
    }
    let worker = get_u16(bytes, 2);
    let seq = get_u32(bytes, 4);
    let n = get_u16(bytes, 8) as usize;
    if bytes.len() < 10 + n * 4 {
        return None;
    }
    let vals = (0..n).map(|i| get_u32(bytes, 10 + i * 4) as i32).collect();
    Some((worker, seq, vals))
}

/// A parameter-server worker: sends its array in window-sized slots to
/// the server, collects the aggregated slots back.
pub struct PsWorker {
    /// The server node.
    pub server: NodeId,
    /// This worker's contribution.
    pub data: Vec<i32>,
    /// Elements per slot (matches the INC window length for fairness).
    pub slot: usize,
    /// The aggregated result, filled as slots arrive.
    pub result: Vec<i32>,
    slots_done: usize,
    /// Time the full result arrived.
    pub done_at: Option<Time>,
}

impl PsWorker {
    /// Creates a worker.
    pub fn new(server: NodeId, data: Vec<i32>, slot: usize) -> Self {
        let n = data.len();
        PsWorker {
            server,
            data,
            slot,
            result: vec![0; n],
            slots_done: 0,
            done_at: None,
        }
    }
}

impl HostApp for PsWorker {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        for (seq, chunk) in self.data.chunks(self.slot).enumerate() {
            ctx.send(self.server, ps_encode(ctx.host.0, seq as u32, chunk));
        }
    }

    fn on_packet(&mut self, ctx: &mut HostCtx, pkt: &Packet) {
        let Some((_, seq, vals)) = ps_decode(&pkt.payload) else {
            return;
        };
        let base = seq as usize * self.slot;
        for (i, v) in vals.iter().enumerate() {
            if base + i < self.result.len() {
                self.result[base + i] = *v;
            }
        }
        self.slots_done += 1;
        if self.slots_done == self.data.len().div_ceil(self.slot) && self.done_at.is_none() {
            self.done_at = Some(ctx.now);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The parameter server: aggregates slots from `nworkers` workers and
/// broadcasts each completed slot back.
pub struct PsServer {
    /// Expected workers.
    pub nworkers: usize,
    /// The worker nodes (result fan-out).
    pub workers: Vec<NodeId>,
    slots: HashMap<u32, (Vec<i32>, usize)>,
    /// Slots aggregated and broadcast.
    pub completed: usize,
}

impl PsServer {
    /// Creates a server for the given worker set.
    pub fn new(workers: Vec<NodeId>) -> Self {
        PsServer {
            nworkers: workers.len(),
            workers,
            slots: HashMap::new(),
            completed: 0,
        }
    }
}

impl HostApp for PsServer {
    fn on_packet(&mut self, ctx: &mut HostCtx, pkt: &Packet) {
        let Some((_, seq, vals)) = ps_decode(&pkt.payload) else {
            return;
        };
        let entry = self
            .slots
            .entry(seq)
            .or_insert_with(|| (vec![0; vals.len()], 0));
        for (i, v) in vals.iter().enumerate() {
            entry.0[i] = entry.0[i].wrapping_add(*v);
        }
        entry.1 += 1;
        if entry.1 == self.nworkers {
            let (sum, _) = self.slots.remove(&seq).expect("entry exists");
            self.completed += 1;
            for w in &self.workers {
                ctx.send(*w, ps_encode(0, seq, &sum));
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// KVS client and server (Fig. 5)
// ---------------------------------------------------------------------

/// One client operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KvsOp {
    /// Issue time.
    pub at: Time,
    /// The key.
    pub key: u64,
    /// `true` = PUT (the value written is derived from the key).
    pub put: bool,
}

/// Result of one completed operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KvsSample {
    /// The key.
    pub key: u64,
    /// PUT?
    pub put: bool,
    /// Issue → response latency.
    pub latency: Time,
    /// Served by the in-network cache (response reflected by the
    /// switch rather than generated by the server)?
    pub from_cache: bool,
}

/// A KVS client issuing a fixed schedule of GET/PUT operations encoded
/// as `query` windows (the kernel of Fig. 5).
pub struct KvsClient {
    /// The storage server node.
    pub server: NodeId,
    /// The server's host id (to distinguish cache hits).
    pub server_host: HostId,
    /// The `query` kernel id.
    pub kernel: u16,
    /// Value words per item (must match the program's Cache columns).
    pub val_words: usize,
    /// Operations to issue.
    pub schedule: Vec<KvsOp>,
    /// Completed operations.
    pub samples: Vec<KvsSample>,
    outstanding: HashMap<u32, (Time, u64, bool)>,
    /// Responses whose value didn't match the expected pattern.
    pub corrupt: u64,
    /// NCP-R sender (None = fire-and-forget, the pre-NCP-R behaviour).
    reliable: Option<RelSender>,
    /// Earliest armed RTO timer.
    armed: Option<Time>,
}

impl KvsClient {
    /// Creates a client.
    pub fn new(
        server: NodeId,
        server_host: HostId,
        kernel: u16,
        val_words: usize,
        schedule: Vec<KvsOp>,
    ) -> Self {
        KvsClient {
            server,
            server_host,
            kernel,
            val_words,
            schedule,
            samples: Vec::new(),
            outstanding: HashMap::new(),
            corrupt: 0,
            reliable: None,
            armed: None,
        }
    }

    /// Enables NCP-R retransmission for queries: unanswered operations
    /// are re-sent on RTO from the `outstanding` map. Responses double
    /// as ACKs (every query produces a same-`seq` reply), and queries
    /// are idempotent server-side, so no replay filter is needed.
    pub fn enable_retransmit(&mut self, cfg: ReliableConfig) -> &mut Self {
        self.reliable = Some(RelSender::new(cfg));
        self
    }

    /// NCP-R retransmissions performed (0 when disabled).
    pub fn retransmits(&self) -> u64 {
        self.reliable.as_ref().map_or(0, |s| s.stats().retransmits)
    }

    /// Queries still awaiting a response.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Drives the NCP-R sender: re-sends due queries, re-arms the RTO
    /// timer at the earliest remaining deadline.
    fn pump(&mut self, ctx: &mut HostCtx) {
        let Some(s) = &mut self.reliable else { return };
        let (due, next) = s.poll(ctx.now);
        if let Some(deadline) = next {
            if self.armed.is_none_or(|t| deadline < t) {
                self.armed = Some(deadline);
                ctx.set_timer(deadline.saturating_sub(ctx.now).max(1), KVS_RELIABLE_TIMER);
            }
        }
        for (_, seq) in due {
            let Some(&(_, key, put)) = self.outstanding.get(&seq) else {
                continue;
            };
            let op = KvsOp { at: 0, key, put };
            let w = self.query_window(seq, ctx.host, &op);
            ctx.send(self.server, encode_window(&w, 0));
        }
    }

    /// The deterministic value pattern for a key (verifiable end to
    /// end).
    pub fn value_for(key: u64, val_words: usize) -> Vec<u32> {
        (0..val_words as u64)
            .map(|i| (key.wrapping_mul(2654435761).wrapping_add(i)) as u32)
            .collect()
    }

    fn query_window(&self, seq: u32, host: HostId, op: &KvsOp) -> Window {
        let val = if op.put {
            Self::value_for(op.key, self.val_words)
        } else {
            vec![0; self.val_words]
        };
        Window {
            kernel: KernelId(self.kernel),
            seq,
            sender: host,
            from: NodeId::Host(host),
            last: false,
            chunks: vec![
                Chunk {
                    offset: 0,
                    data: op.key.to_be_bytes().to_vec(),
                },
                Chunk {
                    offset: 0,
                    data: val.iter().flat_map(|v| v.to_be_bytes()).collect(),
                },
                Chunk {
                    offset: 0,
                    data: vec![op.put as u8],
                },
            ],
            ext: vec![],
        }
    }

    /// Mean latency of completed operations.
    pub fn mean_latency(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.latency as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Fraction of GETs served by the cache.
    pub fn hit_rate(&self) -> f64 {
        let gets: Vec<_> = self.samples.iter().filter(|s| !s.put).collect();
        if gets.is_empty() {
            return 0.0;
        }
        gets.iter().filter(|s| s.from_cache).count() as f64 / gets.len() as f64
    }
}

impl HostApp for KvsClient {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        for (i, op) in self.schedule.iter().enumerate() {
            ctx.set_timer(op.at, i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
        if token == KVS_RELIABLE_TIMER {
            self.armed = None;
            self.pump(ctx);
            return;
        }
        let i = token as usize;
        let op = self.schedule[i];
        let seq = i as u32;
        self.outstanding.insert(seq, (ctx.now, op.key, op.put));
        let send_now = match &mut self.reliable {
            Some(s) => s.track(self.kernel, seq, ctx.now),
            None => true,
        };
        if send_now {
            let w = self.query_window(seq, ctx.host, &op);
            ctx.send(self.server, encode_window(&w, 0));
        }
        if self.reliable.is_some() {
            self.pump(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut HostCtx, pkt: &Packet) {
        let Ok(w) = decode_window(&pkt.payload) else {
            return;
        };
        // On a shared fabric other tenants' broadcasts reach this host
        // too; their seq numbers may collide with outstanding queries.
        if w.kernel.0 != self.kernel {
            return;
        }
        if let Some(s) = &mut self.reliable {
            // The response is the ACK; duplicates fall out at the
            // `outstanding` lookup below.
            if s.on_ack(self.kernel, w.seq) {
                self.pump(ctx);
            }
        }
        let Some((issued, key, put)) = self.outstanding.remove(&w.seq) else {
            return;
        };
        // Cache hits are reflections of the client's own window; server
        // responses carry the server as sender.
        let from_cache = w.sender != self.server_host;
        if !put {
            let expect = Self::value_for(key, self.val_words);
            let got: Vec<u32> = (0..self.val_words)
                .map(|i| w.chunks[1].get(ScalarType::U32, i).bits() as u32)
                .collect();
            if got != expect {
                self.corrupt += 1;
            }
        }
        self.samples.push(KvsSample {
            key,
            put,
            latency: ctx.now - issued,
            from_cache,
        });
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The storage server: owns all values, answers GET misses, applies
/// PUTs, and manages the switch cache through the control plane
/// (NetCache-style, paper §4.3).
pub struct KvsServer {
    /// The `query` kernel id.
    pub kernel: u16,
    /// Value words per item.
    pub val_words: usize,
    /// The switch hosting the cache (None = baseline, no cache
    /// management).
    pub cache_switch: Option<SwitchId>,
    /// Control-plane handle (None = baseline).
    pub control: Option<ControlPlane>,
    /// Cache capacity (slots).
    pub cache_slots: usize,
    /// GETs a key needs before the server caches it.
    pub hot_threshold: u32,
    /// The backing store.
    pub store: HashMap<u64, Vec<u32>>,
    /// key → slot for cached keys.
    pub cached: HashMap<u64, u8>,
    next_slot: usize,
    popularity: HashMap<u64, u32>,
    /// Windows answered by the server (the "server load" E2 measures).
    pub served: u64,
    /// Cache evictions performed.
    pub evictions: u64,
    /// Pending cache-update windows `(fire time token → window, dst)`.
    pending_updates: HashMap<u64, (Window, NodeId)>,
    next_token: u64,
}

impl KvsServer {
    /// Creates a server. `control`/`cache_switch` enable cache
    /// management; leave `None` for the no-cache baseline.
    pub fn new(
        kernel: u16,
        val_words: usize,
        cache_switch: Option<SwitchId>,
        control: Option<ControlPlane>,
        cache_slots: usize,
    ) -> Self {
        KvsServer {
            kernel,
            val_words,
            cache_switch,
            control,
            cache_slots,
            hot_threshold: 2,
            store: HashMap::new(),
            cached: HashMap::new(),
            next_slot: 0,
            popularity: HashMap::new(),
            served: 0,
            evictions: 0,
            pending_updates: HashMap::new(),
            next_token: 1 << 48,
        }
    }

    fn response_window(&self, host: HostId, seq: u32, key: u64, val: &[u32]) -> Window {
        Window {
            kernel: KernelId(self.kernel),
            seq,
            sender: host,
            from: NodeId::Host(host),
            last: false,
            chunks: vec![
                Chunk {
                    offset: 0,
                    data: key.to_be_bytes().to_vec(),
                },
                Chunk {
                    offset: 0,
                    data: val.iter().flat_map(|v| v.to_be_bytes()).collect(),
                },
                Chunk {
                    offset: 0,
                    data: vec![0], // update = false: "server GET response"
                },
            ],
            ext: vec![],
        }
    }

    /// Queues the switch-cache fill for `key`: Idx insert now (control
    /// plane), the update window after the control-plane delay so the
    /// map entry exists when the window lands. When the cache is full,
    /// the coldest cached key is evicted first (paper §4.3: "for a
    /// cache eviction, the storage server just removes an item from the
    /// Idx map").
    fn cache_fill(&mut self, ctx: &mut HostCtx, key: u64, client: NodeId) {
        let (Some(switch), Some(cp)) = (self.cache_switch, self.control.as_ref()) else {
            return;
        };
        if self.cached.contains_key(&key) {
            return;
        }
        let slot = if self.cached.len() >= self.cache_slots {
            // Evict the least popular cached key — only if the new key
            // is strictly hotter. Ties break on the key itself so the
            // victim never depends on HashMap iteration order (keeps
            // the whole simulation deterministic run-to-run).
            let new_pop = self.popularity.get(&key).copied().unwrap_or(0);
            let Some((&victim, _)) = self
                .cached
                .iter()
                .min_by_key(|(k, _)| (self.popularity.get(*k).copied().unwrap_or(0), **k))
            else {
                return;
            };
            let victim_pop = self.popularity.get(&victim).copied().unwrap_or(0);
            if victim_pop + 1 >= new_pop {
                return;
            }
            let slot = self.cached.remove(&victim).expect("victim cached");
            self.evictions += 1;
            for op in cp.map_remove_ops("Idx", victim) {
                ctx.ctrl(switch, op);
            }
            slot as usize
        } else {
            let s = self.next_slot;
            self.next_slot += 1;
            s
        };
        let slot = slot as u8;
        self.cached.insert(key, slot);
        for op in cp.map_insert_ops("Idx", key, Value::new(ScalarType::U8, slot as u64)) {
            ctx.ctrl(switch, op);
        }
        // The update window (update=1, from=SERVER) writes Cache+Valid
        // in the data plane and is dropped by the kernel.
        let val = self.store.get(&key).cloned().unwrap_or_default();
        let mut w = self.response_window(ctx.host, u32::MAX, key, &val);
        w.chunks[2].data[0] = 1; // update = true
        let token = self.next_token;
        self.next_token += 1;
        self.pending_updates.insert(token, (w, client));
        ctx.set_timer(120_000, token); // > 2× the 50 µs controller RTT
    }
}

impl HostApp for KvsServer {
    fn on_packet(&mut self, ctx: &mut HostCtx, pkt: &Packet) {
        let Ok(w) = decode_window(&pkt.payload) else {
            return;
        };
        if w.kernel.0 != self.kernel {
            return;
        }
        let key = w.chunks[0].get(ScalarType::U64, 0).bits();
        let put = w.chunks[2].get(ScalarType::U8, 0).is_truthy();
        let client = NodeId::Host(w.sender);
        self.served += 1;
        if put {
            let val: Vec<u32> = (0..self.val_words)
                .map(|i| w.chunks[1].get(ScalarType::U32, i).bits() as u32)
                .collect();
            self.store.insert(key, val.clone());
            // PUT ack to the client.
            let ack = self.response_window(ctx.host, w.seq, key, &val);
            ctx.send(client, encode_window(&ack, 0));
            // Write-through to an existing cache entry.
            if self.cached.contains_key(&key) {
                let mut upd = self.response_window(ctx.host, u32::MAX, key, &val);
                upd.chunks[2].data[0] = 1;
                ctx.send(client, encode_window(&upd, 0));
            }
        } else {
            let val = self
                .store
                .get(&key)
                .cloned()
                .unwrap_or_else(|| vec![0; self.val_words]);
            let resp = self.response_window(ctx.host, w.seq, key, &val);
            ctx.send(client, encode_window(&resp, 0));
            // Hot-item detection (simplified: popularity counter).
            let pop = self.popularity.entry(key).or_insert(0);
            *pop += 1;
            if *pop >= self.hot_threshold {
                self.cache_fill(ctx, key, client);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
        if let Some((w, dst)) = self.pending_updates.remove(&token) {
            ctx.send(dst, encode_window(&w, 0));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The Fig. 5 KVS program, parameterized by the server's wire id, cache
/// slots and value width — shared by the example, the integration tests
/// and the E2 bench.
pub fn kvs_source(server_id: u16, slots: usize, val_words: usize) -> String {
    format!(
        r#"
const uint16_t SERVER = {server_id};
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, {slots}> Idx;
_net_ _at_("s1") uint32_t Cache[{slots}][{val_words}] = {{{{0}}}};
_net_ _at_("s1") bool Valid[{slots}] = {{false}};

_net_ _out_ void query(uint64_t key, uint32_t *val, bool update) {{
    if (window.from != SERVER && update) {{
        // client PUT: invalidate, forward to the server
        if (auto *idx = Idx[key]) Valid[*idx] = false;
    }} else if (window.from != SERVER) {{
        // client GET: serve from the cache on a valid hit
        if (auto *idx = Idx[key]) {{
            if (Valid[*idx]) {{
                memcpy(val, Cache[*idx], {val_bytes}); _reflect(); }} }}
    }} else if (update) {{
        // server update: refresh the cached value
        auto *idx = Idx[key]; memcpy(Cache[*idx], val, {val_bytes});
        Valid[*idx] = true; _drop();
    }} else {{ }} // server GET response: pass through to the client
}}
"#,
        server_id = server_id,
        slots = slots,
        val_words = val_words,
        val_bytes = val_words * 4,
    )
}

/// The Fig. 4 AllReduce program, parameterized — shared by the example,
/// tests and the E1 bench.
pub fn allreduce_source(data_len: usize, win_len: usize) -> String {
    format!(
        r#"
#define DATA_LEN {data_len}
#define WIN_LEN {win_len}
_net_ _at_("s1") int accum[DATA_LEN] = {{0}};
_net_ _at_("s1") unsigned count[DATA_LEN/WIN_LEN] = {{0}};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {{
    unsigned base = window.seq * window.len;
    if (window.replay) {{
        // NCP-R replay: never re-accumulate. A completed slot reflects
        // the stored sums (recovering a lost broadcast leg); an
        // incomplete one drops and waits for the remaining workers.
        if (count[window.seq] != 0 && count[window.seq] % nworkers == 0) {{
            memcpy(data, &accum[base], window.len * 4);
            _reflect();
        }} else {{ _drop(); }}
    }} else {{
        for (unsigned i = 0; i < window.len; ++i)
            accum[base + i] += data[i];
        if (++count[window.seq] % nworkers == 0) {{
            memcpy(data, &accum[base], window.len * 4);
            _bcast();
        }} else {{ _drop(); }}
    }}
}}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {{
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    if (window.last) *done = true;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_codec_roundtrip() {
        let enc = ps_encode(3, 7, &[-1, 2, 3]);
        assert_eq!(ps_decode(&enc), Some((3, 7, vec![-1, 2, 3])));
        assert_eq!(ps_decode(&[0, 0]), None);
        assert_eq!(ps_decode(&enc[..8]), None);
    }

    #[test]
    fn kvs_value_pattern_is_deterministic() {
        assert_eq!(KvsClient::value_for(5, 4), KvsClient::value_for(5, 4));
        assert_ne!(KvsClient::value_for(5, 4), KvsClient::value_for(6, 4));
    }

    #[test]
    fn source_generators_compile() {
        use crate::nclc::{compile, CompileConfig};
        let and = "hosts client 2\nswitch s1\nhost server\nlink client* s1\nlink server s1\n";
        // Server is host id 3 (declared after two clients).
        let src = kvs_source(3, 16, 8);
        let mut cfg = CompileConfig::default();
        cfg.masks.insert("query".into(), vec![1, 8, 1]);
        let p = compile(&src, and, &cfg).unwrap_or_else(|e| panic!("kvs: {e}"));
        assert!(p.switch("s1").unwrap().report.accepted());

        let src = allreduce_source(64, 8);
        let and = "hosts worker 2\nswitch s1\nlink worker* s1\n";
        let mut cfg = CompileConfig::default();
        cfg.masks.insert("allreduce".into(), vec![8]);
        cfg.masks.insert("result".into(), vec![8]);
        let p = compile(&src, and, &cfg).unwrap_or_else(|e| panic!("allreduce: {e}"));
        assert!(p.switch("s1").unwrap().report.accepted());
    }
}
