//! libncrt — the NCL runtime (paper §3.2).
//!
//! *"It implements the windowing mechanism completely transparently to
//! the user: when a kernel is invoked, windows are determined from a
//! window specification provided by the programmer, and from them
//! packets are constructed and sent out."*
//!
//! [`NclHost`] is the host-side runtime as a simulated application:
//!
//! * `ncl::out(kernel, {arrays}, wnd, mask)` — an [`OutInvocation`]
//!   splits typed arrays into windows and streams them as NCP packets;
//! * `ncl::in(kernel, {ptrs}, wnd, mask)` — an incoming binding runs the
//!   paired `_in_` kernel (interpreted from its IR) on every arriving
//!   window, with `_ext_` parameters backed by [`HostMemory`];
//! * completion is observed through a user-supplied predicate over the
//!   host memory (the `while (!done)` loop of the paper's Fig. 4).

use crate::nclc::CompiledProgram;
use c3::{HostId, KernelId, Mask, NodeId, ScalarType, Value, Window, WindowSpec};
use ncl_ir::ir::{KernelIr, Module};
use ncl_ir::{CompiledKernel, ExecScratch, HostMemory};
use ncp::codec::{encode_window, Reassembler};
use ncp::reliable::SenderStats;
use ncp::reliable::{Receiver as RelReceiver, ReceiverStats, ReliableConfig, Sender as RelSender};
use ncp::{AckRepr, NcpPacket, FLAG_TELEMETRY};
use nctel::hop::section_records;
use nctel::trace::{TraceRing, WindowTrace};
use nctel::{Counter, Registry, Scope, ScopeEvent, SnapshotReason, WindowKey};
use netsim::{HostApp, HostCtx, Packet, Time};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Timer token reserved for the NCP-R retransmission clock. Invocation
/// tokens are `(idx << 32) | (wi + 1)` with small `idx`, so the top bit
/// is free.
pub const RELIABLE_TIMER: u64 = 1 << 63;

/// Reassembler evictions within one run that arm the flight recorder's
/// "eviction storm" trigger (a reassembly state under this much churn
/// is losing windows faster than the transport can repair them).
pub const EVICTION_STORM_THRESHOLD: u64 = 8;

/// NCP-R state of one host: the transport engine plus the bookkeeping
/// needed to re-encode any tracked window on retransmission.
struct Reliability {
    sender: RelSender,
    receiver: RelReceiver,
    /// `(kernel id, seq)` → `(invocation index, window index)`: where
    /// to re-split a tracked window's bytes from. Retransmission
    /// re-encodes from the application arrays, so no per-window byte
    /// copies are retained.
    wire_index: HashMap<(u16, u32), (usize, usize)>,
    /// Earliest armed RTO timer (suppresses redundant timer events).
    armed: Option<Time>,
    /// `(kernel id, seq)` → first wire transmission time, retired on
    /// ack. Feeds the end-to-end ack-latency histogram (the window
    /// clock ncwatch's p99 SLOs read) without touching the NCP-R
    /// sender's checkpointable state.
    first_sent: HashMap<(u16, u32), Time>,
    /// First-send → ack latency, ns. Registered as
    /// `ncpr.sender.ack_latency_ns`.
    m_ack_latency: nctel::Histogram,
}

/// A typed host array: element type plus big-endian element bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypedArray {
    /// Element type.
    pub elem: ScalarType,
    /// Big-endian element bytes.
    pub bytes: Vec<u8>,
}

impl TypedArray {
    /// From `i32` values.
    pub fn from_i32(vals: &[i32]) -> Self {
        TypedArray {
            elem: ScalarType::I32,
            bytes: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
        }
    }

    /// From `u32` values.
    pub fn from_u32(vals: &[u32]) -> Self {
        TypedArray {
            elem: ScalarType::U32,
            bytes: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
        }
    }

    /// From `u64` values.
    pub fn from_u64(vals: &[u64]) -> Self {
        TypedArray {
            elem: ScalarType::U64,
            bytes: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
        }
    }

    /// From raw bytes of `u8` elements.
    pub fn from_u8(vals: &[u8]) -> Self {
        TypedArray {
            elem: ScalarType::U8,
            bytes: vals.to_vec(),
        }
    }

    /// A single-value array (scalar window parameters).
    pub fn scalar(v: Value) -> Self {
        let mut bytes = vec![0u8; v.ty().size()];
        v.write_be(&mut bytes);
        TypedArray {
            elem: v.ty(),
            bytes,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.bytes.len() / self.elem.size()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Element `i` as a [`Value`].
    pub fn get(&self, i: usize) -> Value {
        let s = self.elem.size();
        Value::read_be(self.elem, &self.bytes[i * s..(i + 1) * s])
    }
}

/// One `ncl::out(...)` call: kernel, input arrays, destination, start
/// time.
#[derive(Clone, Debug)]
pub struct OutInvocation {
    /// The `_out_` kernel name.
    pub kernel: String,
    /// One typed array per window parameter.
    pub arrays: Vec<TypedArray>,
    /// The destination node ("Host-B" in the paper's Fig. 2).
    pub dest: NodeId,
    /// When to invoke (simulated time).
    pub start: Time,
    /// Optional pacing between windows (0 = blast).
    pub gap: Time,
}

/// Per-kernel runtime metadata shared by hosts.
#[derive(Clone, Debug)]
pub struct KernelRuntime {
    /// NCP id.
    pub id: u16,
    /// Window spec (element types + mask).
    pub spec: WindowSpec,
}

/// Errors from runtime invocation setup.
#[derive(Clone, PartialEq, Debug)]
pub enum RuntimeError {
    /// Unknown kernel name.
    UnknownKernel(String),
    /// Array/mask mismatch.
    Window(c3::window::WindowError),
    /// The program compiled this kernel against a different element
    /// type.
    ElemType {
        /// Parameter index.
        param: usize,
        /// Expected type.
        expected: ScalarType,
        /// Provided type.
        got: ScalarType,
    },
    /// Array length not divisible into full windows — switch parsers
    /// have a fixed window layout, so the prototype requires whole
    /// windows (pad at the application level, as SwitchML does).
    PartialWindow {
        /// Parameter index.
        param: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::UnknownKernel(k) => write!(f, "unknown kernel '{k}'"),
            RuntimeError::Window(e) => write!(f, "{e}"),
            RuntimeError::ElemType {
                param,
                expected,
                got,
            } => write!(
                f,
                "array {param} has element type {got}, kernel expects {expected}"
            ),
            RuntimeError::PartialWindow { param } => write!(
                f,
                "array {param} does not divide into whole windows; \
                 pad the array (fixed switch parser layout)"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Builds the per-kernel runtime table from a compiled program.
pub fn kernel_runtimes(program: &CompiledProgram) -> HashMap<String, KernelRuntime> {
    let mut out = HashMap::new();
    for k in &program.checked.kernels {
        let elems: Vec<ScalarType> = k.window_params().map(|p| p.elem).collect();
        let Some(&id) = program.kernel_ids.get(&k.name) else {
            continue;
        };
        let mask = program
            .generic
            .kernel(&k.name)
            .map(|kir| kir.mask.clone())
            .unwrap_or_default();
        if mask.len() != elems.len() {
            continue; // no mask configured; kernel not invocable
        }
        let Ok(spec) = WindowSpec::new(elems, Mask::new(mask)) else {
            continue;
        };
        out.insert(k.name.clone(), KernelRuntime { id, spec });
    }
    out
}

/// An incoming-kernel binding: the `_in_` kernel plus its host memory.
pub struct IncomingBinding {
    /// The kernel IR (kept for inspection; execution uses `compiled`).
    pub kernel: KernelIr,
    /// The kernel lowered to the linear fast-path program — windows run
    /// through this, allocation-free, against the host's scratch.
    pub compiled: CompiledKernel,
    /// Host arrays backing the `_ext_` parameters.
    pub memory: HostMemory,
}

/// Completion predicate over the incoming bindings' host memory.
pub type DonePredicate = Box<dyn Fn(&HashMap<u16, IncomingBinding>) -> bool>;

/// The libncrt host application.
///
/// Configure with [`NclHost::new`], add invocations and incoming
/// bindings, hand it to [`crate::deploy::deploy`], and inspect its state
/// afterwards through [`netsim::Network::host_app`].
pub struct NclHost {
    runtimes: HashMap<String, KernelRuntime>,
    ext_total: usize,
    outs: Vec<OutInvocation>,
    incoming: HashMap<u16, IncomingBinding>,
    done_when: Option<DonePredicate>,
    reliable: Option<Reliability>,
    reassembler: Reassembler,
    scratch: ExecScratch,
    /// In-band telemetry: when enabled, sampled outgoing windows carry
    /// an (initially empty) hop-record section that on-path switches
    /// append to; assembled traces land in this ring.
    telemetry: Option<TraceRing>,
    registry: Arc<Registry>,
    /// ncscope event sink (see [`NclHost::enable_scope`]); lazily
    /// attached to the NCP-R engines on start, once the host id is
    /// known.
    scope: Option<Scope>,
    scope_attached: bool,
    /// Abandonment count at the last flight-recorder check, so each new
    /// delivery timeout triggers exactly one snapshot.
    last_abandoned: u64,
    /// Reassembler eviction count at the last check (event dedupe).
    last_evictions: u64,
    /// Whether the one-time eviction-storm snapshot has fired.
    storm_recorded: bool,
    m_windows_sent: Counter,
    m_windows_received: Counter,
    /// Windows received (count).
    pub windows_received: u64,
    /// Windows sent.
    pub windows_sent: u64,
    /// Time the completion predicate first held.
    pub done_at: Option<Time>,
    /// Raw windows log (enable for debugging; off by default).
    pub log_windows: bool,
    /// The logged windows when `log_windows` is set.
    pub window_log: Vec<Window>,
}

impl NclHost {
    /// Creates a host bound to a compiled program.
    pub fn new(program: &CompiledProgram) -> Self {
        let registry = Arc::new(Registry::new());
        let m_windows_sent = registry.counter("host.windows_sent");
        let m_windows_received = registry.counter("host.windows_received");
        NclHost {
            runtimes: kernel_runtimes(program),
            ext_total: program.checked.window_ext.size(),
            outs: Vec::new(),
            incoming: HashMap::new(),
            done_when: None,
            reliable: None,
            reassembler: Reassembler::new(),
            scratch: ExecScratch::new(),
            telemetry: None,
            registry,
            scope: None,
            scope_attached: false,
            last_abandoned: 0,
            last_evictions: 0,
            storm_recorded: false,
            m_windows_sent,
            m_windows_received,
            windows_received: 0,
            windows_sent: 0,
            done_at: None,
            log_windows: false,
            window_log: Vec::new(),
        }
    }

    /// Queues an `ncl::out` invocation, validating arrays against the
    /// kernel's compiled window spec.
    pub fn out(&mut self, inv: OutInvocation) -> Result<&mut Self, RuntimeError> {
        let rt = self
            .runtimes
            .get(&inv.kernel)
            .ok_or_else(|| RuntimeError::UnknownKernel(inv.kernel.clone()))?;
        if inv.arrays.len() != rt.spec.elem_types.len() {
            return Err(RuntimeError::Window(c3::window::WindowError::MaskArity {
                mask: rt.spec.mask.arity(),
                arrays: inv.arrays.len(),
            }));
        }
        for (i, a) in inv.arrays.iter().enumerate() {
            if a.elem != rt.spec.elem_types[i] {
                return Err(RuntimeError::ElemType {
                    param: i,
                    expected: rt.spec.elem_types[i],
                    got: a.elem,
                });
            }
            if a.bytes.len() % rt.spec.chunk_bytes(i) != 0 {
                return Err(RuntimeError::PartialWindow { param: i });
            }
        }
        self.outs.push(inv);
        Ok(self)
    }

    /// Binds an `ncl::in` handler: windows of `kernel` run the given
    /// `_in_` kernel IR with `ext_sizes` host arrays.
    pub fn bind_incoming(
        &mut self,
        program: &CompiledProgram,
        out_kernel: &str,
        in_kernel: &str,
        ext_sizes: &[(ScalarType, usize)],
    ) -> Result<&mut Self, RuntimeError> {
        let id = *program
            .kernel_ids
            .get(out_kernel)
            .ok_or_else(|| RuntimeError::UnknownKernel(out_kernel.to_string()))?;
        let kernel = module_kernel(&program.generic, in_kernel)
            .ok_or_else(|| RuntimeError::UnknownKernel(in_kernel.to_string()))?;
        self.incoming.insert(
            id,
            IncomingBinding {
                compiled: CompiledKernel::compile(&kernel),
                kernel,
                memory: HostMemory::new(ext_sizes),
            },
        );
        Ok(self)
    }

    /// Sets the completion predicate over the incoming bindings' host
    /// memory (e.g. "the `done` flag array reads true").
    pub fn done_when(
        &mut self,
        f: impl Fn(&HashMap<u16, IncomingBinding>) -> bool + 'static,
    ) -> &mut Self {
        self.done_when = Some(Box::new(f));
        self
    }

    /// Convenience: completion when ext array `ext_idx` of the handler
    /// for `out_kernel_id` has a truthy first element.
    pub fn done_on_flag(&mut self, out_kernel_id: u16, ext_idx: usize) -> &mut Self {
        self.done_when(move |inc| {
            inc.get(&out_kernel_id)
                .and_then(|b| b.memory.arrays.get(ext_idx))
                .and_then(|a| a.first())
                .map(|v| v.is_truthy())
                .unwrap_or(false)
        })
    }

    /// Host memory of the binding for `kernel_id` (post-run inspection).
    pub fn memory(&self, kernel_id: u16) -> Option<&HostMemory> {
        self.incoming.get(&kernel_id).map(|b| &b.memory)
    }

    /// Enables NCP-R on this host. Launched windows are tracked by the
    /// reliable sender (AIMD in-flight window, RTO retransmission with
    /// exponential backoff); arriving windows are deduplicated at the
    /// host edge and acknowledged with `FLAG_ACK` frames; any response
    /// window keyed `(kernel, seq)` also retires the matching in-flight
    /// window (ack-by-response). Completion additionally requires every
    /// tracked window to be retired, so [`NclHost::done_at`] means
    /// "delivered exactly once" — without a [`NclHost::done_when`]
    /// predicate, that retirement alone completes the host.
    pub fn enable_reliability(&mut self, cfg: ReliableConfig) -> &mut Self {
        let r = Reliability {
            sender: RelSender::new(cfg),
            receiver: RelReceiver::new(),
            wire_index: HashMap::new(),
            armed: None,
            first_sent: HashMap::new(),
            m_ack_latency: nctel::Histogram::new(),
        };
        r.sender.attach_metrics(&self.registry, "ncpr.sender");
        r.receiver.attach_metrics(&self.registry, "ncpr.receiver");
        self.registry
            .register_histogram("ncpr.sender.ack_latency_ns", &r.m_ack_latency);
        self.reliable = Some(r);
        self
    }

    /// Enables in-band window telemetry (paper-style INT for windows).
    /// Sampled outgoing windows carry `FLAG_TELEMETRY` plus an empty
    /// hop-record section; telemetry-aware switches append one fixed
    /// 32-byte record each, and arriving sections are assembled into
    /// [`WindowTrace`]s held in a bounded ring of `capacity` entries
    /// (oldest evicted first). `sampling` is the fraction of outgoing
    /// windows flagged, clamped to `0.0..=1.0`; sampling is
    /// deterministic (an error-accumulator, not RNG) so runs replay.
    pub fn enable_telemetry(&mut self, sampling: f64, capacity: usize) -> &mut Self {
        self.telemetry = Some(TraceRing::new(sampling, capacity));
        self
    }

    /// Attaches an ncscope event sink (DESIGN.md §4.10). The host emits
    /// `WindowSent`/`WindowCompleted` from its send/deliver paths and
    /// wires the NCP-R sender/receiver into the same ring; failure paths
    /// (delivery timeout, reassembler eviction storm) snapshot ring +
    /// registry through the scope's flight recorder. Works in either
    /// order with [`NclHost::enable_reliability`] — the transport
    /// engines are attached lazily at simulation start.
    pub fn enable_scope(&mut self, scope: &Scope) -> &mut Self {
        self.scope = Some(scope.clone());
        self.scope_attached = false;
        self
    }

    /// Attaches the scope to the NCP-R engines once the host id is
    /// known (first callback).
    fn attach_scope_engines(&mut self, host: HostId) {
        if self.scope_attached {
            return;
        }
        self.scope_attached = true;
        if let (Some(scope), Some(r)) = (&self.scope, &mut self.reliable) {
            r.sender.attach_scope(scope, host.0);
            r.receiver.attach_scope(scope, host.0);
        }
    }

    /// Records a window's *first* wire transmission time (retransmits
    /// keep the original timestamp, so the ack-latency histogram
    /// measures first-send → ack, RTO stalls included).
    fn note_sent(&mut self, kernel: u16, seq: u32, now: Time) {
        if let Some(r) = &mut self.reliable {
            r.first_sent.entry((kernel, seq)).or_insert(now);
        }
    }

    /// Retires a window's first-send record and observes its end-to-end
    /// ack latency.
    fn note_acked(&mut self, kernel: u16, seq: u32, now: Time) {
        if let Some(r) = &mut self.reliable {
            if let Some(t0) = r.first_sent.remove(&(kernel, seq)) {
                r.m_ack_latency.observe(now.saturating_sub(t0));
            }
        }
    }

    fn emit_sent(&self, host: HostId, kernel: u16, seq: u32, now: Time) {
        if let Some(scope) = &self.scope {
            let attempt = self
                .reliable
                .as_ref()
                .and_then(|r| r.sender.retries(kernel, seq))
                .unwrap_or(0);
            scope.emit(
                now,
                host.0,
                WindowKey::new(host.0, kernel, seq),
                ScopeEvent::WindowSent { attempt },
            );
        }
    }

    /// Failure-path hooks: a fresh NCP-R abandonment (delivery timeout)
    /// or a reassembler eviction storm snapshots ring + registry to the
    /// flight recorder's armed path.
    fn check_failure_triggers(&mut self, host: HostId, now: Time) {
        let Some(scope) = self.scope.clone() else {
            return;
        };
        if let Some(r) = &self.reliable {
            let abandoned = r.sender.stats().abandoned;
            if abandoned > self.last_abandoned {
                self.last_abandoned = abandoned;
                let traces = self
                    .telemetry
                    .as_ref()
                    .map(|t| t.snapshot())
                    .unwrap_or_default();
                scope.flight_record(
                    SnapshotReason::DeliveryTimeout,
                    now,
                    Some(&self.registry),
                    &traces,
                );
            }
        }
        let evictions = self.reassembler.evictions();
        if evictions > self.last_evictions {
            self.last_evictions = evictions;
            scope.emit(
                now,
                host.0,
                WindowKey::new(host.0, 0, 0),
                ScopeEvent::ReassemblyEvicted { evictions },
            );
            if evictions >= EVICTION_STORM_THRESHOLD && !self.storm_recorded {
                self.storm_recorded = true;
                let traces = self
                    .telemetry
                    .as_ref()
                    .map(|t| t.snapshot())
                    .unwrap_or_default();
                scope.flight_record(
                    SnapshotReason::EvictionStorm,
                    now,
                    Some(&self.registry),
                    &traces,
                );
            }
        }
    }

    /// Non-draining copy of the assembled per-window traces (oldest
    /// first) — the mid-run view streaming consumers (ncwatch) read
    /// without stealing traces from the application. Empty when
    /// telemetry is disabled.
    pub fn trace_snapshot(&self) -> Vec<WindowTrace> {
        self.telemetry
            .as_ref()
            .map(|t| t.snapshot())
            .unwrap_or_default()
    }

    /// Drains and returns the assembled per-window traces (oldest
    /// first). Empty when telemetry is disabled.
    pub fn take_traces(&mut self) -> Vec<WindowTrace> {
        self.telemetry
            .as_mut()
            .map(|t| t.take())
            .unwrap_or_default()
    }

    /// Traces evicted or unsampled since the ring was created (ring
    /// overflow only — unsampled windows are never counted).
    pub fn traces_dropped(&self) -> u64 {
        self.telemetry.as_ref().map(|t| t.dropped()).unwrap_or(0)
    }

    /// The host's metrics registry: `host.*` window counters plus, when
    /// reliability is enabled, the `ncpr.sender.*` / `ncpr.receiver.*`
    /// transport counters (the same atomics the [`NclHost::sender_stats`]
    /// snapshots read — registry and snapshots cannot disagree).
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// NCP-R sender counters (tracked / retransmits / acked /
    /// abandoned / cwnd cuts), when reliability is enabled.
    pub fn sender_stats(&self) -> Option<SenderStats> {
        self.reliable.as_ref().map(|r| r.sender.stats())
    }

    /// NCP-R receiver counters (delivered / duplicates suppressed),
    /// when reliability is enabled.
    pub fn receiver_stats(&self) -> Option<ReceiverStats> {
        self.reliable.as_ref().map(|r| r.receiver.stats())
    }

    /// The `(kernel, seq)` keys of every window currently in flight on
    /// the NCP-R sender, sorted. Empty when reliability is disabled.
    /// This is the drain-set snapshot a hitless upgrade routes to the
    /// old kernel version (`ncsched::Upgrade::begin_drain`).
    pub fn in_flight_keys(&self) -> Vec<(u16, u32)> {
        self.reliable
            .as_ref()
            .map(|r| r.sender.in_flight_keys())
            .unwrap_or_default()
    }

    /// Re-registers this host's counters (`host.*` and, when
    /// reliability is enabled, `ncpr.sender.*` / `ncpr.receiver.*`) on
    /// an external registry under labeled names — e.g.
    /// `labels = [("tenant", "a"), ("host", "w1")]` yields
    /// `host.windows_sent{tenant="a",host="w1"}`. The same atomic cells
    /// back both registries, so the export can never lag. Labels must
    /// make the name unique per host (include a host label) or later
    /// registrations replace earlier ones.
    pub fn export_metrics(&self, reg: &Registry, labels: &[(&str, &str)]) {
        reg.register_counter(
            &nctel::labeled("host.windows_sent", labels),
            &self.m_windows_sent,
        );
        reg.register_counter(
            &nctel::labeled("host.windows_received", labels),
            &self.m_windows_received,
        );
        if let Some(r) = &self.reliable {
            r.sender
                .attach_metrics_named(reg, |n| nctel::labeled(&format!("ncpr.sender.{n}"), labels));
            r.receiver.attach_metrics_named(reg, |n| {
                nctel::labeled(&format!("ncpr.receiver.{n}"), labels)
            });
            reg.register_histogram(
                &nctel::labeled("ncpr.sender.ack_latency_ns", labels),
                &r.m_ack_latency,
            );
        }
    }

    fn launch(&mut self, ctx: &mut HostCtx, idx: usize) {
        let inv = self.outs[idx].clone();
        let rt = &self.runtimes[&inv.kernel];
        let rid = rt.id;
        let arrays: Vec<&[u8]> = inv.arrays.iter().map(|a| &a.bytes[..]).collect();
        let windows = rt.spec.split(&arrays).expect("validated at out() time");
        let me = NodeId::Host(ctx.host);
        for (i, mut w) in windows.into_iter().enumerate() {
            w.kernel = KernelId(rid);
            w.sender = ctx.host;
            w.from = me;
            if inv.gap != 0 {
                // Pace via timers: tokens encode (invocation, window).
                // For simplicity the paced path re-splits on fire.
                let token = ((idx as u64) << 32) | (i as u64 + 1);
                ctx.set_timer(inv.gap * i as Time, token);
                continue;
            }
            if let Some(r) = &mut self.reliable {
                r.wire_index.insert((rid, w.seq), (idx, i));
                if !r.sender.track(rid, w.seq, ctx.now) {
                    continue; // queued until the congestion window opens
                }
            }
            let seq = w.seq;
            let bytes = self.encode_frame(&w);
            self.note_sent(rid, seq, ctx.now);
            self.emit_sent(ctx.host, rid, seq, ctx.now);
            ctx.send(inv.dest, bytes);
            self.windows_sent += 1;
            self.m_windows_sent.inc();
        }
        if self.reliable.is_some() {
            self.pump(ctx);
        }
    }

    /// Drives the NCP-R sender: retransmits due windows, releases
    /// queued windows the congestion window has admitted, re-arms the
    /// RTO timer at the earliest remaining deadline.
    fn pump(&mut self, ctx: &mut HostCtx) {
        let Some(r) = &mut self.reliable else { return };
        let (due, next) = r.sender.poll(ctx.now);
        let sends: Vec<((u16, u32), (usize, usize))> = due
            .iter()
            .filter_map(|&(kernel, seq)| {
                r.wire_index
                    .get(&(kernel, seq))
                    .copied()
                    .map(|iw| ((kernel, seq), iw))
            })
            .collect();
        if let Some(deadline) = next {
            if r.armed.is_none_or(|t| deadline < t) {
                r.armed = Some(deadline);
                ctx.set_timer(deadline.saturating_sub(ctx.now).max(1), RELIABLE_TIMER);
            }
        }
        for ((kernel, seq), (idx, wi)) in sends {
            if let Some((dest, bytes)) = self.window_bytes(ctx.host, idx, wi) {
                self.note_sent(kernel, seq, ctx.now);
                self.emit_sent(ctx.host, kernel, seq, ctx.now);
                ctx.send(dest, bytes);
                self.windows_sent += 1;
                self.m_windows_sent.inc();
            }
        }
        self.check_failure_triggers(ctx.host, ctx.now);
    }

    /// Re-encodes window `wi` of invocation `idx` (the NCP-R
    /// retransmission path re-splits from the application arrays).
    /// Retransmits go through the telemetry sampler like first
    /// transmissions — a retransmitted window may carry a fresh section.
    fn window_bytes(&mut self, host: HostId, idx: usize, wi: usize) -> Option<(NodeId, Vec<u8>)> {
        let inv = self.outs.get(idx)?;
        let rt = self.runtimes.get(&inv.kernel)?;
        let arrays: Vec<&[u8]> = inv.arrays.iter().map(|a| &a.bytes[..]).collect();
        let mut w = rt.spec.split(&arrays).ok()?.into_iter().nth(wi)?;
        w.kernel = KernelId(rt.id);
        w.sender = host;
        w.from = NodeId::Host(host);
        let dest = inv.dest;
        Some((dest, self.encode_frame(&w)))
    }

    /// Encodes one outgoing window, appending an empty telemetry
    /// section (and setting `FLAG_TELEMETRY`) when the sampler elects
    /// this window for tracing.
    fn encode_frame(&mut self, w: &Window) -> Vec<u8> {
        let mut bytes = encode_window(w, self.ext_total);
        if let Some(t) = &mut self.telemetry {
            if t.should_sample_for(w.sender.0) {
                bytes[3] |= FLAG_TELEMETRY;
                bytes.extend_from_slice(&nctel::hop::section_init());
            }
        }
        bytes
    }

    /// Records completion. With NCP-R enabled, completion means
    /// "delivered exactly once": the user predicate (when set) must
    /// hold *and* every tracked window must be retired.
    fn check_done(&mut self, now: Time) {
        if self.done_at.is_some() {
            return;
        }
        if let Some(r) = &self.reliable {
            if !r.sender.idle() || r.sender.stats().tracked == 0 {
                return;
            }
        }
        let done = match &self.done_when {
            Some(pred) => pred(&self.incoming),
            None => self.reliable.is_some(),
        };
        if done {
            self.done_at = Some(now);
        }
    }

    fn deliver(&mut self, ctx: &mut HostCtx, mut w: Window, hops: Option<Vec<nctel::HopRecord>>) {
        if let Some(r) = &mut self.reliable {
            // Ack-by-response: any arriving window keyed (kernel, seq)
            // retires the matching in-flight window. The response IS the
            // acknowledgement — a window is retired only once its result
            // actually reached this host, never on a third-party ACK
            // (a broadcast leg lost between switch and us must keep the
            // window in flight so the replay filter can reflect it back).
            let acked = r.sender.on_ack(w.kernel.0, w.seq);
            let fresh = r.receiver.admit_at(w.sender.0, w.kernel.0, w.seq, ctx.now);
            if acked {
                self.note_acked(w.kernel.0, w.seq, ctx.now);
                self.pump(ctx);
            }
            if !fresh {
                self.check_done(ctx.now);
                return; // duplicate suppressed at the host edge
            }
        }
        self.windows_received += 1;
        self.m_windows_received.inc();
        if let Some(scope) = &self.scope {
            scope.emit(
                ctx.now,
                ctx.host.0,
                WindowKey::new(w.sender.0, w.kernel.0, w.seq),
                ScopeEvent::WindowCompleted,
            );
        }
        if let (Some(t), Some(hops)) = (&mut self.telemetry, hops) {
            t.push(WindowTrace {
                kernel: w.kernel.0,
                seq: w.seq,
                sender: w.sender.0,
                hops,
            });
        }
        if self.log_windows {
            self.window_log.push(w.clone());
        }
        if let Some(binding) = self.incoming.get_mut(&w.kernel.0) {
            let _ = binding
                .compiled
                .run_incoming(&mut w, &mut binding.memory, &mut self.scratch);
        }
        self.check_done(ctx.now);
    }
}

impl HostApp for NclHost {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        self.attach_scope_engines(ctx.host);
        for i in 0..self.outs.len() {
            if self.outs[i].start == 0 && self.outs[i].gap == 0 {
                self.launch(ctx, i);
            } else if self.outs[i].gap == 0 {
                ctx.set_timer(self.outs[i].start, (i as u64) << 32);
            } else {
                // Paced: schedule per-window timers from `start`.
                let inv = &self.outs[i];
                let rt = &self.runtimes[&inv.kernel];
                let nwin = inv.arrays[0].bytes.len() / rt.spec.chunk_bytes(0);
                for wi in 0..nwin {
                    let token = ((i as u64) << 32) | (wi as u64 + 1);
                    ctx.set_timer(inv.start + inv.gap * wi as Time, token);
                }
            }
        }
    }

    fn on_packet(&mut self, ctx: &mut HostCtx, pkt: &Packet) {
        if self.reliable.is_some() {
            if let Ok(p) = NcpPacket::new_checked(&pkt.payload[..]) {
                if let Some(ack) = AckRepr::parse(&p) {
                    let r = self.reliable.as_mut().expect("checked above");
                    if ack.nack {
                        r.sender.on_nack(ack.kernel, ack.seq, ctx.now);
                    } else if r.sender.on_ack(ack.kernel, ack.seq) {
                        self.note_acked(ack.kernel, ack.seq, ctx.now);
                    }
                    self.pump(ctx);
                    self.check_done(ctx.now);
                    return;
                }
            }
        }
        // Telemetry sections ride after the NCP frame proper; peel the
        // hop records off the raw bytes before reassembly (the codec
        // tolerates — and ignores — trailing bytes).
        let mut hops = None;
        if self.telemetry.is_some() {
            if let Ok(p) = NcpPacket::new_checked(&pkt.payload[..]) {
                if p.flags() & FLAG_TELEMETRY != 0 {
                    let total = p.total_len();
                    if pkt.payload.len() > total {
                        hops = section_records(&pkt.payload[total..]);
                    }
                }
            }
        }
        if let Ok(Some(w)) = self.reassembler.push(&pkt.payload) {
            self.deliver(ctx, w, hops);
        }
        self.check_failure_triggers(ctx.host, ctx.now);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
        if token == RELIABLE_TIMER {
            if let Some(r) = &mut self.reliable {
                r.armed = None;
            }
            self.pump(ctx);
            self.check_done(ctx.now);
            return;
        }
        let idx = (token >> 32) as usize;
        let wi = (token & 0xFFFF_FFFF) as usize;
        if wi == 0 {
            self.launch(ctx, idx);
            return;
        }
        // Paced single window.
        let inv = self.outs[idx].clone();
        let rt = &self.runtimes[&inv.kernel];
        let rid = rt.id;
        let arrays: Vec<&[u8]> = inv.arrays.iter().map(|a| &a.bytes[..]).collect();
        let windows = rt.spec.split(&arrays).expect("validated");
        if let Some(mut w) = windows.into_iter().nth(wi - 1) {
            w.kernel = KernelId(rid);
            w.sender = ctx.host;
            w.from = NodeId::Host(ctx.host);
            if let Some(r) = &mut self.reliable {
                r.wire_index.insert((rid, w.seq), (idx, wi - 1));
                if !r.sender.track(rid, w.seq, ctx.now) {
                    self.pump(ctx);
                    return; // queued until the congestion window opens
                }
            }
            let seq = w.seq;
            let bytes = self.encode_frame(&w);
            self.note_sent(rid, seq, ctx.now);
            self.emit_sent(ctx.host, rid, seq, ctx.now);
            ctx.send(inv.dest, bytes);
            self.windows_sent += 1;
            self.m_windows_sent.inc();
        }
        if self.reliable.is_some() {
            self.pump(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The paper's second, finer-grained invocation API (§4.1): *"letting
/// them send individual windows. Such mechanism could become a building
/// block for richer interfaces [DPI, DFI]"*. Splits the arrays exactly
/// as `ncl::out` would and returns one encoded NCP packet per window,
/// so a custom [`netsim::HostApp`] can send them at its own pace, in
/// its own order, or interleaved with other invocations.
pub fn invocation_packets(
    program: &CompiledProgram,
    sender: HostId,
    kernel: &str,
    arrays: &[TypedArray],
) -> Result<Vec<Vec<u8>>, RuntimeError> {
    let runtimes = kernel_runtimes(program);
    let rt = runtimes
        .get(kernel)
        .ok_or_else(|| RuntimeError::UnknownKernel(kernel.to_string()))?;
    if arrays.len() != rt.spec.elem_types.len() {
        return Err(RuntimeError::Window(c3::window::WindowError::MaskArity {
            mask: rt.spec.mask.arity(),
            arrays: arrays.len(),
        }));
    }
    for (i, a) in arrays.iter().enumerate() {
        if a.elem != rt.spec.elem_types[i] {
            return Err(RuntimeError::ElemType {
                param: i,
                expected: rt.spec.elem_types[i],
                got: a.elem,
            });
        }
        if a.bytes.len() % rt.spec.chunk_bytes(i) != 0 {
            return Err(RuntimeError::PartialWindow { param: i });
        }
    }
    let slices: Vec<&[u8]> = arrays.iter().map(|a| &a.bytes[..]).collect();
    let windows = rt.spec.split(&slices).map_err(RuntimeError::Window)?;
    let ext_total = program.checked.window_ext.size();
    Ok(windows
        .into_iter()
        .map(|mut w| {
            w.kernel = KernelId(rt.id);
            w.sender = sender;
            w.from = NodeId::Host(sender);
            encode_window(&w, ext_total)
        })
        .collect())
}

/// Finds a kernel in a module by name (any kind).
pub fn module_kernel(module: &Module, name: &str) -> Option<KernelIr> {
    module.kernels.iter().find(|k| k.name == name).cloned()
}

/// Resolves an AND host label to its simulated node id. Host labels are
/// assigned ids in declaration order, matching deployment.
pub fn host_node(program: &CompiledProgram, label: &str) -> Option<NodeId> {
    program.overlay.node(label).map(|n| match n.kind {
        ncl_and::AndKind::Host => NodeId::Host(HostId(n.id)),
        ncl_and::AndKind::Switch => NodeId::Switch(c3::SwitchId(n.id)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nclc::{compile, CompileConfig};

    const SRC: &str = r#"
_net_ _at_("s1") int acc[8] = {0};
_net_ _out_ void k(int *data) {
    for (unsigned i = 0; i < window.len; ++i) acc[i] += data[i];
    _drop();
}
_net_ _in_ void r(int *data, _ext_ int *hdata, _ext_ bool *done) {
    hdata[0] = data[0];
    if (window.last) *done = true;
}
"#;
    const AND: &str = "hosts h 2\nswitch s1\nlink h* s1\n";

    fn program() -> CompiledProgram {
        let mut cfg = CompileConfig::default();
        cfg.masks.insert("k".into(), vec![4]);
        cfg.masks.insert("r".into(), vec![4]);
        compile(SRC, AND, &cfg).expect("compiles")
    }

    #[test]
    fn kernel_runtimes_built() {
        let p = program();
        let rts = kernel_runtimes(&p);
        assert_eq!(rts["k"].spec.mask.counts(), &[4]);
        assert_eq!(rts["k"].spec.elem_types, vec![ScalarType::I32]);
    }

    #[test]
    fn typed_array_accessors() {
        let a = TypedArray::from_i32(&[-1, 2]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(0), Value::i32(-1));
        let s = TypedArray::scalar(Value::u64(7));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0), Value::u64(7));
    }

    #[test]
    fn out_validates_arity_and_types() {
        let p = program();
        let mut h = NclHost::new(&p);
        // Wrong element type.
        let Err(err) = h.out(OutInvocation {
            kernel: "k".into(),
            arrays: vec![TypedArray::from_u64(&[1, 2, 3, 4])],
            dest: NodeId::Host(HostId(2)),
            start: 0,
            gap: 0,
        }) else {
            panic!("expected ElemType error");
        };
        assert!(matches!(err, RuntimeError::ElemType { .. }));
        // Partial window.
        let Err(err) = h.out(OutInvocation {
            kernel: "k".into(),
            arrays: vec![TypedArray::from_i32(&[1, 2, 3])],
            dest: NodeId::Host(HostId(2)),
            start: 0,
            gap: 0,
        }) else {
            panic!("expected PartialWindow error");
        };
        assert!(matches!(err, RuntimeError::PartialWindow { .. }));
        // OK.
        h.out(OutInvocation {
            kernel: "k".into(),
            arrays: vec![TypedArray::from_i32(&[1, 2, 3, 4])],
            dest: NodeId::Host(HostId(2)),
            start: 0,
            gap: 0,
        })
        .unwrap();
    }

    #[test]
    fn unknown_kernel_rejected() {
        let p = program();
        let mut h = NclHost::new(&p);
        assert!(matches!(
            h.out(OutInvocation {
                kernel: "nope".into(),
                arrays: vec![],
                dest: NodeId::Host(HostId(2)),
                start: 0,
                gap: 0,
            }),
            Err(RuntimeError::UnknownKernel(_))
        ));
    }

    #[test]
    fn bind_incoming_and_flag() {
        let p = program();
        let mut h = NclHost::new(&p);
        h.bind_incoming(&p, "k", "r", &[(ScalarType::I32, 8), (ScalarType::Bool, 1)])
            .unwrap();
        let kid = p.kernel_ids["k"];
        h.done_on_flag(kid, 1);
        assert!(h.memory(kid).is_some());
        assert!(h.done_at.is_none());
    }
}
