//! Deployment: AND overlay → simulated network (paper Fig. 3c).
//!
//! *"a mechanism that maps the overlay network of the AND file into a
//! physical network and allocates network resources accordingly is
//! assumed to be in place. This mechanism places application components
//! to physical devices and ensures connectivity by populating routing
//! tables appropriately."* — [`deploy`] is that mechanism for the
//! simulated testbed: the identity mapping (one physical node per
//! overlay node, one link per overlay edge), each switch loaded with its
//! compiled pipeline, `_bcast()` fan-out and `_pass(label)` targets
//! resolved from the overlay.

use crate::fastpath::FastPathSwitch;
use crate::interp_switch::InterpSwitch;
use crate::mc::{model_check_switch, McConfig, McReport};
use crate::nclc::CompiledProgram;
use c3::{HostId, Label, NodeId, SwitchId};
use ncl_and::AndKind;
use nctel::{Registry, Scope, ScopeEvent, SnapshotReason, WindowKey};
use netsim::{
    FastDatapath, HostApp, KernelTelemetry, LinkSpec, Network, NetworkBuilder, SwitchCfg,
    SwitchTelemetry,
};
use pisa::{Pipeline, ResourceModel};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// Which switch engine [`deploy_with`] loads into the simulated
/// switches.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SwitchBackend {
    /// The modeled PISA pipeline (resource-checked, recirculation-aware)
    /// — the default, and the engine all resource experiments use.
    #[default]
    Pisa,
    /// The compiled fast-path executor ([`FastPathSwitch`]): versioned
    /// IR kernels lowered to linear micro-op programs, cached per
    /// `(kernel, location)` and executed allocation-free. This backend
    /// pins the scalar micro-op tier — the measured baseline the ncvec
    /// SIMD tier (E13) is compared against.
    FastPath,
    /// The fast-path executor with the ncvec SIMD tier enabled: fused
    /// element-wise runs execute as width-specialized lane loops
    /// (AVX2 on detecting hosts, portable lanes elsewhere), falling
    /// back to the scalar micro-op path per run — bit-identically —
    /// for kernels with no fusible runs, non-packable slot strides, or
    /// when `NCVEC_FORCE_SCALAR=1`. The default tier for fusible
    /// kernels on the software switch.
    Simd,
    /// The reference interpreter ([`InterpSwitch`]): the same versioned
    /// IR executed by `ncl_ir::interp` — the slowest tier, kept for
    /// three-way differential testing (interpreter vs fast path vs
    /// PISA, including telemetry hop records).
    Interp,
}

/// A deployed program: the runnable network plus name resolution.
pub struct Deployment {
    /// The simulated network.
    pub net: Network,
    /// AND label → simulated node.
    pub nodes: HashMap<Label, NodeId>,
    /// Per-switch model-checking reports, when
    /// [`DeployOptions::model_check`] ran (empty otherwise).
    pub mc_reports: Vec<McReport>,
}

/// Deployment failures.
#[derive(Debug)]
pub enum DeployError {
    /// No application supplied for a host label.
    MissingApp {
        /// The host label.
        label: String,
    },
    /// A compiled pipeline failed to load (resource model mismatch).
    Load {
        /// The switch label.
        label: String,
        /// The loader's report.
        error: String,
    },
    /// The lint gate denied a switch module at deployment time. The
    /// compiler already runs this gate; it re-runs here (with the
    /// program's own lint configuration) so a hazardous module cannot
    /// reach a simulated switch even when a [`CompiledProgram`] is
    /// assembled or altered by hand.
    Lint {
        /// The switch label.
        label: String,
        /// The offending kernels (sorted, deduplicated) — so a denial
        /// in a multi-kernel module names the code at fault, not just
        /// the module.
        kernels: Vec<String>,
        /// The version the denied module would have deployed as (the
        /// 1-based module index, matching
        /// [`deployed_versions`]) — so operators can tell *which*
        /// submission of a kernel was refused.
        version: u16,
        /// The denied findings.
        diagnostics: Vec<ncl_ir::lint::LintDiagnostic>,
    },
    /// The model-check gate ([`DeployOptions::model_check`]) found a
    /// schedule under which the switch diverges from every loss-free
    /// serial execution — the deployment would compute wrong answers
    /// under a concrete loss/dup/reorder pattern, so it is refused.
    ModelCheck {
        /// The switch label.
        label: String,
        /// The kernel set the convergence scenario exercised.
        kernel: String,
        /// The shrunk counterexample schedule (ncmc schedule syntax).
        schedule: String,
    },
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::MissingApp { label } => {
                write!(f, "no application for host '{label}'")
            }
            DeployError::Load { label, error } => {
                write!(f, "pipeline for '{label}' failed to load: {error}")
            }
            DeployError::Lint {
                label,
                kernels,
                version,
                diagnostics,
            } => {
                writeln!(
                    f,
                    "lint denied deployment of kernel{} {} (version {version}) to '{label}':",
                    if kernels.len() == 1 { "" } else { "s" },
                    kernels.join(", "),
                )?;
                write!(f, "{}", ncl_ir::lint::render(diagnostics))
            }
            DeployError::ModelCheck {
                label,
                kernel,
                schedule,
            } => {
                writeln!(
                    f,
                    "model check refused deployment of {kernel} to '{label}': \
                     a schedule diverges from every loss-free serial execution:"
                )?;
                write!(f, "{schedule}")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// Deploys a compiled program: `apps` supplies one application per AND
/// host label; every link uses `link_spec`. Switches run the modeled
/// PISA pipeline; see [`deploy_with`] to pick the backend.
pub fn deploy(
    program: &CompiledProgram,
    apps: HashMap<String, Box<dyn HostApp>>,
    link_spec: LinkSpec,
    model: ResourceModel,
) -> Result<Deployment, DeployError> {
    deploy_with(program, apps, link_spec, model, SwitchBackend::Pisa)
}

/// [`deploy`] with an explicit switch engine.
pub fn deploy_with(
    program: &CompiledProgram,
    apps: HashMap<String, Box<dyn HostApp>>,
    link_spec: LinkSpec,
    model: ResourceModel,
    backend: SwitchBackend,
) -> Result<Deployment, DeployError> {
    deploy_full(
        program,
        apps,
        link_spec,
        model,
        backend,
        Arc::new(Registry::new()),
    )
}

/// Full deployment configuration for [`deploy_opts`] — the options the
/// positional [`deploy`]/[`deploy_with`]/[`deploy_full`] entry points
/// fix at their defaults.
pub struct DeployOptions {
    /// Link parameters applied to every overlay edge (unless
    /// overridden).
    pub link_spec: LinkSpec,
    /// Per-link overrides by AND label pair, order-insensitive:
    /// `("worker1", "s1", spec)` configures exactly that edge, in both
    /// directions. This is the fault-injection knob — drop or duplicate
    /// on one known link while the rest of the fabric stays clean, then
    /// check the diagnosis engine blames the right link.
    pub link_overrides: Vec<(String, String, LinkSpec)>,
    /// Switch engine.
    pub backend: SwitchBackend,
    /// Metrics registry shared with the caller.
    pub registry: Arc<Registry>,
    /// ncscope event sink, wired into the network (link drops, switch
    /// executions) and notified on deploy-time lint denials.
    pub scope: Option<Scope>,
    /// PISA resource model for pipeline loading.
    pub model: ResourceModel,
    /// When set, every switch module is model-checked before loading
    /// (DESIGN.md §4.13): each schedule-checkable lint warning is
    /// adjudicated (witness or bounded-absence certificate, recorded in
    /// [`Deployment::mc_reports`]) and a convergence *witness* refuses
    /// the deployment with [`DeployError::ModelCheck`] — the static
    /// gate stops hazardous code, this one stops divergent code.
    pub model_check: Option<McConfig>,
}

impl Default for DeployOptions {
    fn default() -> Self {
        DeployOptions {
            link_spec: LinkSpec::default(),
            link_overrides: Vec::new(),
            backend: SwitchBackend::Pisa,
            registry: Arc::new(Registry::new()),
            scope: None,
            model: ResourceModel::default(),
            model_check: None,
        }
    }
}

/// The expected switch path of a window sent from host label `from` to
/// host label `to`: the wire ids of the switches along the overlay's
/// shortest path, in traversal order. This is the `expected_path` input
/// of the diagnosis engine's last-witness inference
/// ([`nctel::scope::analysis`]) — the deployment maps overlay edges
/// 1:1 onto physical links, so the AND shortest path *is* the route.
pub fn and_switch_path(program: &CompiledProgram, from: &str, to: &str) -> Vec<u16> {
    let nodes = &program.overlay.nodes;
    let Some(src) = nodes.iter().position(|n| n.label.as_str() == from) else {
        return Vec::new();
    };
    let Some(dst) = nodes.iter().position(|n| n.label.as_str() == to) else {
        return Vec::new();
    };
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for &(a, b) in &program.overlay.edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut prev: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut seen = vec![false; nodes.len()];
    let mut q = VecDeque::from([src]);
    seen[src] = true;
    while let Some(x) = q.pop_front() {
        if x == dst {
            break;
        }
        for &peer in &adj[x] {
            if !seen[peer] {
                seen[peer] = true;
                prev[peer] = Some(x);
                q.push_back(peer);
            }
        }
    }
    if !seen[dst] {
        return Vec::new();
    }
    let mut path = Vec::new();
    let mut at = dst;
    while let Some(p) = prev[at] {
        at = p;
        path.push(at);
    }
    path.reverse(); // src first; src itself is path[0], drop it below
    path.into_iter()
        .skip(1)
        .chain(std::iter::once(dst))
        .filter(|&i| nodes[i].kind == AndKind::Switch)
        .map(|i| NodeId::Switch(SwitchId(nodes[i].id)).to_wire())
        .collect()
}

/// The kernel versions this program deploys, per `(switch wire id,
/// kernel id)` — the diagnosis engine's reference for flagging stale
/// hop records after a redeploy ([`nctel::scope::analysis`]).
pub fn deployed_versions(program: &CompiledProgram) -> BTreeMap<(u16, u16), u16> {
    let mut out = BTreeMap::new();
    for n in &program.overlay.nodes {
        if n.kind != AndKind::Switch {
            continue;
        }
        let wire = NodeId::Switch(SwitchId(n.id)).to_wire();
        let tel = switch_telemetry(program, n.label.as_str(), wire);
        for (kernel, kt) in tel.kernels {
            out.insert((wire, kernel), kt.version);
        }
    }
    out
}

/// Deploy-time telemetry identity for one switch: the static hop-record
/// fields every execution tier stamps identically — kernel `version`
/// (the 1-based index of the location's versioned module), PISA
/// `stages` from the backend's resource report, and the kernel's
/// interpreter-equivalent step count (`uops`), all fixed at deploy
/// time. `uops` deliberately counts interpreter steps, not physical
/// micro-ops: fused vector runs cover many steps in one op and the
/// ncvec SIMD tier covers them in a handful of lane iterations, so the
/// step count is the only number every tier can report identically.
fn switch_telemetry(program: &CompiledProgram, label: &str, wire: u16) -> SwitchTelemetry {
    let version = program
        .modules
        .iter()
        .position(|(l, _)| l.as_str() == label)
        .map(|i| i as u16 + 1)
        .unwrap_or(0);
    SwitchTelemetry {
        switch_id: wire,
        kernels: kernel_telemetry(program, label, version)
            .into_iter()
            .collect(),
    }
}

/// The per-kernel static hop-record fields of one program's module at
/// `label`, stamped with an explicit `version` — multi-tenant
/// deployments use ncsched-assigned versions instead of the module
/// index ([`crate::tenants`]).
pub(crate) fn kernel_telemetry(
    program: &CompiledProgram,
    label: &str,
    version: u16,
) -> Vec<(u16, KernelTelemetry)> {
    let mut kernels = Vec::new();
    if let Some(module) = program.module(label) {
        let stages = program
            .switch(label)
            .map(|c| c.report.stages_used as u16)
            .unwrap_or(0);
        for k in &module.kernels {
            if let Some(&id) = program.kernel_ids.get(&k.name) {
                kernels.push((
                    id,
                    KernelTelemetry {
                        version,
                        stages,
                        uops: ncl_ir::CompiledKernel::compile_for(k, module).interp_steps() as u32,
                    },
                ));
            }
        }
    }
    kernels
}

/// [`deploy_with`] sharing the caller's metrics registry: the
/// simulator's counters and the deploy gate outcomes
/// (`deploy.hosts_loaded`, `deploy.switches_loaded`,
/// `deploy.lint_denied`) all land on `registry`, which
/// [`Network::metrics`] exposes after the build.
pub fn deploy_full(
    program: &CompiledProgram,
    apps: HashMap<String, Box<dyn HostApp>>,
    link_spec: LinkSpec,
    model: ResourceModel,
    backend: SwitchBackend,
    registry: Arc<Registry>,
) -> Result<Deployment, DeployError> {
    deploy_opts(
        program,
        apps,
        DeployOptions {
            link_spec,
            backend,
            registry,
            model,
            ..DeployOptions::default()
        },
    )
}

/// The fully-optioned deployment entry point: everything
/// [`deploy_full`] does, plus per-link overrides and ncscope wiring
/// (see [`DeployOptions`]). A lint denial emits a `LintDenied` event
/// and snapshots the scope's flight recorder before returning the
/// error, so the refusal is diagnosable from the artifact alone.
pub fn deploy_opts(
    program: &CompiledProgram,
    mut apps: HashMap<String, Box<dyn HostApp>>,
    opts: DeployOptions,
) -> Result<Deployment, DeployError> {
    let DeployOptions {
        link_spec,
        link_overrides,
        backend,
        registry,
        scope,
        model,
        model_check,
    } = opts;
    let hosts_loaded = registry.counter("deploy.hosts_loaded");
    let switches_loaded = registry.counter("deploy.switches_loaded");
    let lint_denied = registry.counter("deploy.lint_denied");
    let mc_checked = registry.counter("deploy.mc_checked");
    let mc_denied = registry.counter("deploy.mc_denied");
    let mut mc_reports = Vec::new();
    let mut b = NetworkBuilder::new();
    b.with_metrics(registry.clone());
    if let Some(scope) = &scope {
        b.with_scope(scope);
    }
    let mut nodes: HashMap<Label, NodeId> = HashMap::new();

    // Nodes in AND declaration order so netsim ids equal AND ids.
    for n in &program.overlay.nodes {
        match n.kind {
            AndKind::Host => {
                let app = apps
                    .remove(n.label.as_str())
                    .ok_or_else(|| DeployError::MissingApp {
                        label: n.label.to_string(),
                    })?;
                let id = b.add_host(app);
                hosts_loaded.inc();
                debug_assert_eq!(id, HostId(n.id), "AND/netsim host id agreement");
                nodes.insert(n.label.clone(), NodeId::Host(id));
            }
            AndKind::Switch => {
                // Lint gate: a module carrying denied hazards never
                // reaches a simulated switch, whichever engine runs it.
                if let Some(module) = program.module(n.label.as_str()) {
                    let diags = ncl_ir::lint::lint_module(module, &program.lint_config);
                    let (deny, _) = ncl_ir::lint::partition(diags);
                    if !deny.is_empty() {
                        lint_denied.inc();
                        if let Some(scope) = &scope {
                            let wire = NodeId::Switch(SwitchId(n.id)).to_wire();
                            scope.emit(
                                0,
                                wire,
                                WindowKey::new(0, 0, 0),
                                ScopeEvent::LintDenied { switch: wire },
                            );
                            scope.flight_record(
                                SnapshotReason::LintDenied,
                                0,
                                Some(&registry),
                                &[],
                            );
                        }
                        let mut kernels: Vec<String> =
                            deny.iter().map(|d| d.kernel.clone()).collect();
                        kernels.sort();
                        kernels.dedup();
                        let version = program
                            .modules
                            .iter()
                            .position(|(l, _)| l.as_str() == n.label.as_str())
                            .map(|i| i as u16 + 1)
                            .unwrap_or(0);
                        return Err(DeployError::Lint {
                            label: n.label.to_string(),
                            kernels,
                            version,
                            diagnostics: deny,
                        });
                    }
                }
                // Model-check gate: adjudicate every schedule-checkable
                // lint warning and the convergence obligation against
                // the compiled pipeline. A convergence witness means a
                // concrete fault schedule computes a wrong answer — the
                // deployment is refused with the schedule in hand.
                if let Some(mc_cfg) = &model_check {
                    let report =
                        model_check_switch(program, n.label.as_str(), mc_cfg).map_err(|e| {
                            DeployError::Load {
                                label: n.label.to_string(),
                                error: e.to_string(),
                            }
                        })?;
                    mc_checked.inc();
                    if let Some(conv) = report.convergence() {
                        if let ncmc::Outcome::Witness(w) = &conv.result.outcome {
                            mc_denied.inc();
                            return Err(DeployError::ModelCheck {
                                label: n.label.to_string(),
                                kernel: conv.kernel.clone(),
                                schedule: w.schedule.render(),
                            });
                        }
                    }
                    mc_reports.push(report);
                }
                let compiled = program.switch(n.label.as_str());
                // The fast path replaces the pipeline wholesale: one
                // engine per switch, never both.
                let fastpath: Option<Box<dyn FastDatapath>> = match backend {
                    SwitchBackend::FastPath => {
                        FastPathSwitch::from_program_with(program, n.label.as_str(), false)
                            .map(|fp| Box::new(fp) as Box<dyn FastDatapath>)
                    }
                    SwitchBackend::Simd => {
                        FastPathSwitch::from_program_with(program, n.label.as_str(), true)
                            .map(|fp| Box::new(fp) as Box<dyn FastDatapath>)
                    }
                    SwitchBackend::Interp => InterpSwitch::from_program(program, n.label.as_str())
                        .map(|it| Box::new(it) as Box<dyn FastDatapath>),
                    SwitchBackend::Pisa => None,
                };
                let pipeline = match (backend, compiled) {
                    (SwitchBackend::Pisa, Some(c)) => {
                        Some(Pipeline::load(c.pipeline.clone(), model).map_err(|e| {
                            DeployError::Load {
                                label: n.label.to_string(),
                                error: e.to_string(),
                            }
                        })?)
                    }
                    _ => None,
                };
                // `_pass(label)` targets: every labelled node.
                let labels: HashMap<u16, NodeId> = program
                    .label_ids
                    .iter()
                    .map(|(_, &wire)| (wire, NodeId::from_wire(wire)))
                    .collect();
                // `_bcast()`: overlay neighbours of this switch.
                let bcast: Vec<NodeId> = program
                    .overlay
                    .neighbours(n.label.as_str())
                    .iter()
                    .map(|peer| match peer.kind {
                        AndKind::Host => NodeId::Host(HostId(peer.id)),
                        AndKind::Switch => NodeId::Switch(SwitchId(peer.id)),
                    })
                    .collect();
                let wire = NodeId::Switch(SwitchId(n.id)).to_wire();
                let telemetry = Some(switch_telemetry(program, n.label.as_str(), wire));
                let id = b.add_switch(SwitchCfg {
                    pipeline,
                    fastpath,
                    labels,
                    bcast,
                    telemetry,
                    ..SwitchCfg::default()
                });
                switches_loaded.inc();
                debug_assert_eq!(id, SwitchId(n.id), "AND/netsim switch id agreement");
                nodes.insert(n.label.clone(), NodeId::Switch(id));
            }
        }
    }
    for &(a, bidx) in &program.overlay.edges {
        let la = program.overlay.nodes[a].label.as_str();
        let lb = program.overlay.nodes[bidx].label.as_str();
        let na = nodes[&program.overlay.nodes[a].label];
        let nb = nodes[&program.overlay.nodes[bidx].label];
        let spec = link_overrides
            .iter()
            .find(|(x, y, _)| (x == la && y == lb) || (x == lb && y == la))
            .map(|(_, _, s)| *s)
            .unwrap_or(link_spec);
        b.link(na, nb, spec);
    }
    Ok(Deployment {
        net: b.build(),
        nodes,
        mc_reports,
    })
}

impl Deployment {
    /// The node for an AND label.
    pub fn node(&self, label: &str) -> NodeId {
        self.nodes[&Label::new(label)]
    }

    /// The switch id for an AND label.
    pub fn switch(&self, label: &str) -> SwitchId {
        self.node(label).as_switch().expect("label names a switch")
    }

    /// The host id for an AND label.
    pub fn host(&self, label: &str) -> HostId {
        self.node(label).as_host().expect("label names a host")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::ControlPlane;
    use crate::nclc::{compile, CompileConfig};
    use crate::runtime::{NclHost, OutInvocation, TypedArray};
    use c3::{ScalarType, Value};

    const ALLREDUCE: &str = r#"
#define DATA_LEN 16
#define WIN_LEN 4
_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN/WIN_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    if (window.last) *done = true;
}
"#;
    const AND: &str = "hosts worker 3\nswitch s1\nlink worker* s1\n";

    /// The paper's Fig. 4 running end to end on the simulated network:
    /// three workers, in-network aggregation, broadcast of results.
    /// Runs under either switch engine; the assertions are identical —
    /// the system-level differential check between the PISA model and
    /// the compiled fast path.
    fn run_allreduce(backend: SwitchBackend) {
        let mut cfg = CompileConfig::default();
        cfg.masks.insert("allreduce".into(), vec![4]);
        cfg.masks.insert("result".into(), vec![4]);
        let program = compile(ALLREDUCE, AND, &cfg).expect("compiles");
        let kid = program.kernel_ids["allreduce"];

        let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
        for w in 1..=3u16 {
            let mut host = NclHost::new(&program);
            // Worker w contributes the array [w, w, ..., w].
            let data: Vec<i32> = vec![w as i32; 16];
            host.out(OutInvocation {
                kernel: "allreduce".into(),
                arrays: vec![TypedArray::from_i32(&data)],
                // Destination routes through s1; the kernel bcasts or
                // drops before it ever arrives.
                dest: NodeId::Host(HostId(w % 3 + 1)),
                start: 0,
                gap: 0,
            })
            .unwrap();
            host.bind_incoming(
                &program,
                "allreduce",
                "result",
                &[(ScalarType::I32, 16), (ScalarType::Bool, 1)],
            )
            .unwrap();
            host.done_on_flag(kid, 1);
            apps.insert(format!("worker{w}"), Box::new(host));
        }
        let mut dep = deploy_with(
            &program,
            apps,
            LinkSpec::default(),
            pisa::ResourceModel::default(),
            backend,
        )
        .expect("deploys");

        // Control plane: nworkers = 3. The deferred-op form works
        // against either engine.
        let cp = ControlPlane::new(program.switch("s1").unwrap());
        let s1 = dep.switch("s1");
        match backend {
            SwitchBackend::Pisa => {
                cp.ctrl_wr(
                    dep.net.switch_pipeline_mut(s1).unwrap(),
                    "nworkers",
                    Value::u32(3),
                );
            }
            SwitchBackend::FastPath | SwitchBackend::Simd | SwitchBackend::Interp => {
                let fp = dep.net.switch_fastpath_mut(s1).unwrap();
                for op in cp.ctrl_wr_ops("nworkers", Value::u32(3)) {
                    assert!(fp.ctrl(&op));
                }
            }
        }

        dep.net.run();

        // Every worker holds the element-wise sum 1+2+3 = 6.
        for w in 1..=3u16 {
            let host = dep.net.host_app::<NclHost>(HostId(w)).expect("worker app");
            assert!(host.done_at.is_some(), "worker {w} never completed");
            let mem = host.memory(kid).unwrap();
            for i in 0..16 {
                assert_eq!(mem.arrays[0][i], Value::i32(6), "worker {w} element {i}");
            }
        }
        // The switch aggregated 12 windows (3 workers × 4) and
        // broadcast 4 of them.
        let stats = dep.net.switch_stats(s1).unwrap();
        assert_eq!(stats.ncp_processed, 12);
        assert_eq!(stats.broadcast, 4);
        assert_eq!(stats.kernel_drops, 8);
        // Ingress at the switch ≈ 3× what one worker sent — the INC
        // bandwidth win E1 measures.
        assert!(dep.net.node_ingress_bytes(NodeId::Switch(s1)) > 0);
    }

    #[test]
    fn allreduce_full_system() {
        run_allreduce(SwitchBackend::Pisa);
    }

    /// Same workload, same assertions, compiled fast-path engine.
    #[test]
    fn allreduce_full_system_fastpath() {
        run_allreduce(SwitchBackend::FastPath);
    }

    /// Same workload, same assertions, ncvec SIMD tier — fused vector
    /// runs execute through width-specialized lane loops (or AVX2).
    #[test]
    fn allreduce_full_system_simd() {
        run_allreduce(SwitchBackend::Simd);
    }

    /// Same workload, same assertions, reference-interpreter engine —
    /// the third tier of the differential matrix.
    #[test]
    fn allreduce_full_system_interp() {
        run_allreduce(SwitchBackend::Interp);
    }

    /// The deploy-time lint gate is independent of the compile-time one:
    /// escalating a lint level on an already-compiled program (the
    /// hand-altered-artifact scenario) keeps the module off the switch.
    #[test]
    fn lint_denied_module_cannot_deploy() {
        use crate::nclc::{LintCode, LintLevel};
        let mut cfg = CompileConfig::default();
        cfg.masks.insert("allreduce".into(), vec![4]);
        cfg.masks.insert("result".into(), vec![4]);
        let mut program = compile(ALLREDUCE, AND, &cfg).expect("compiles under default levels");
        // ALLREDUCE has no replay filter, so its RMWs warn by default;
        // deny them after the fact.
        program
            .lint_config
            .levels
            .insert(LintCode::ReplayUnsafeNoFilter, LintLevel::Deny);
        let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
        for w in 1..=3u16 {
            apps.insert(format!("worker{w}"), Box::new(NclHost::new(&program)));
        }
        match deploy(
            &program,
            apps,
            LinkSpec::default(),
            pisa::ResourceModel::default(),
        ) {
            Err(DeployError::Lint {
                label,
                kernels,
                version,
                diagnostics,
            }) => {
                assert_eq!(label, "s1");
                // The denial names the offending kernel and the version
                // that was refused, not just the module.
                assert_eq!(kernels, vec!["allreduce".to_string()]);
                assert_eq!(version, 1);
                assert!(diagnostics
                    .iter()
                    .all(|d| d.code == LintCode::ReplayUnsafeNoFilter));
                assert!(!diagnostics.is_empty());
            }
            Err(other) => panic!("expected lint denial, got {other:?}"),
            Ok(_) => panic!("expected lint denial, but deployment succeeded"),
        }
    }

    #[test]
    fn missing_app_rejected() {
        let mut cfg = CompileConfig::default();
        cfg.masks.insert("allreduce".into(), vec![4]);
        cfg.masks.insert("result".into(), vec![4]);
        let program = compile(ALLREDUCE, AND, &cfg).unwrap();
        let apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
        assert!(matches!(
            deploy(
                &program,
                apps,
                LinkSpec::default(),
                pisa::ResourceModel::default()
            ),
            Err(DeployError::MissingApp { .. })
        ));
    }
}
