//! The nclc compiler driver — the paper's Fig. 6 end to end.
//!
//! Takes an NCL C/C++ program and an AND file and produces "a host
//! binary, and a program for every switch in the AND file": here, the
//! host side is the incoming-kernel IR libncrt interprets, and each
//! switch program is a loadable PISA pipeline plus its P4-16 source.

use c3::Label;
use ncl_and::{AndError, Overlay};
use ncl_ir::ir::Module;
pub use ncl_ir::lint::{LintCode, LintConfig, LintDiagnostic, LintLevel};
pub use ncl_ir::lower::ReplayFilter;
use ncl_ir::lower::{lower, LoweringConfig};
use ncl_ir::version::{version_modules, LocationInfo};
use ncl_lang::diag::Diagnostic;
use ncl_lang::sema::CheckedProgram;
pub use ncl_p4::estimate::ModuleEstimate;
use ncl_p4::{compile_module, CompileError, CompileOptions, CompiledSwitch};
use nctel::Timeline;
use pisa::ResourceModel;
use std::collections::{BTreeMap, HashMap};

/// Compiler configuration.
#[derive(Clone, Debug)]
pub struct CompileConfig {
    /// Per-kernel window masks (elements per window parameter). The
    /// compiler specializes kernels against them (paper §4.2: "a mask
    /// is associated with kernel invocations").
    pub masks: HashMap<String, Vec<u16>>,
    /// Target chip resource model.
    pub model: ResourceModel,
    /// Loop unroll budget.
    pub unroll_limit: usize,
    /// Per-kernel NCP-R replay filters: the compiler lowers a
    /// seen-sequence bitmap stage for each listed outgoing kernel and
    /// exposes the verdict as `window.replay` (false when unfiltered).
    pub replay_filters: HashMap<String, ReplayFilter>,
    /// Lint level overrides (`--lint allow=.../warn=.../deny=...`).
    /// Codes not listed use the deny-by-default policy of
    /// [`LintCode::default_level`]. Hazards at [`LintLevel::Deny`] fail
    /// compilation with [`NclcError::Lint`].
    pub lint_levels: BTreeMap<LintCode, LintLevel>,
    /// First NCP kernel id minus one: kernel ids are assigned
    /// `base + 1, base + 2, …` in declaration order. Single-program
    /// deployments leave this at 0; multi-tenant deployments give every
    /// tenant a disjoint id range so their kernels can share a switch
    /// (`ncsched`, DESIGN.md §4.12).
    pub kernel_id_base: u16,
}

impl Default for CompileConfig {
    fn default() -> Self {
        CompileConfig {
            masks: HashMap::new(),
            model: ResourceModel::default(),
            unroll_limit: 4096,
            replay_filters: HashMap::new(),
            lint_levels: BTreeMap::new(),
            kernel_id_base: 0,
        }
    }
}

/// Everything the compiler produces for one program.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The analyzed program (window layouts, kernel signatures).
    pub checked: CheckedProgram,
    /// The optimized generic IR module (pre-versioning) — the host side
    /// interprets incoming kernels out of this.
    pub generic: Module,
    /// The AND overlay.
    pub overlay: Overlay,
    /// Compiled artifacts per switch location.
    pub switches: Vec<(Label, CompiledSwitch)>,
    /// The versioned IR module per switch location — the same IR the
    /// backend compiled, consumed by the fast-path executor
    /// ([`crate::fastpath::FastPathSwitch`]).
    pub modules: Vec<(Label, Module)>,
    /// Program-wide kernel ids (hosts and switches agree).
    pub kernel_ids: HashMap<String, u16>,
    /// AND label → wire id (for `_pass(label)` and deployment).
    pub label_ids: HashMap<Label, u16>,
    /// Lint findings that survived at `Warn` level, per switch location
    /// (denies abort compilation and never appear here).
    pub lints: Vec<(Label, Vec<LintDiagnostic>)>,
    /// Early per-kernel resource estimates, per switch location (the
    /// `--lint` cost report, computed before PISA mapping).
    pub estimates: Vec<(Label, ModuleEstimate)>,
    /// The effective lint configuration the program was compiled under.
    /// [`crate::deploy()`] re-runs the gate with it, so a hazardous
    /// module cannot reach a simulated switch even when a
    /// `CompiledProgram` is assembled or altered by hand.
    pub lint_config: LintConfig,
    /// Wall-time spans of every compiler stage (frontend → overlay →
    /// lower → optimize → version → lint → estimate → backend), the
    /// per-location stages accumulated across locations. Rendered by
    /// `nclc --emit timing`.
    pub timings: Timeline,
}

impl CompiledProgram {
    /// The compiled artifacts for a location.
    pub fn switch(&self, label: &str) -> Option<&CompiledSwitch> {
        self.switches
            .iter()
            .find(|(l, _)| l.as_str() == label)
            .map(|(_, c)| c)
    }

    /// The versioned IR module for a location.
    pub fn module(&self, label: &str) -> Option<&Module> {
        self.modules
            .iter()
            .find(|(l, _)| l.as_str() == label)
            .map(|(_, m)| m)
    }

    /// The early resource estimate for a location.
    pub fn estimate(&self, label: &str) -> Option<&ModuleEstimate> {
        self.estimates
            .iter()
            .find(|(l, _)| l.as_str() == label)
            .map(|(_, e)| e)
    }

    /// All surviving lint warnings across locations.
    pub fn lint_warnings(&self) -> impl Iterator<Item = &LintDiagnostic> {
        self.lints.iter().flat_map(|(_, d)| d.iter())
    }

    /// Total effective P4 lines across all switches (E3 metric).
    pub fn p4_lines(&self) -> usize {
        self.switches
            .iter()
            .map(|(_, c)| ncl_p4::p4emit::effective_lines(&c.p4_source))
            .sum()
    }
}

/// Compiler failure, by stage.
#[derive(Debug)]
pub enum NclcError {
    /// Lexing/parsing/sema diagnostics.
    Frontend(Vec<Diagnostic>),
    /// AND file problems.
    And(AndError),
    /// Lowering diagnostics (unroll limits, unsupported constructs).
    Lowering(Vec<Diagnostic>),
    /// A kernel or memory `_at_` label that the AND does not define.
    UnknownLocation {
        /// What referenced the label.
        what: String,
        /// The missing label.
        label: String,
    },
    /// Backend rejection for one switch.
    Backend {
        /// The location.
        location: Label,
        /// The error.
        error: CompileError,
    },
    /// Denied lint findings for one switch: state hazards or replay-
    /// unsafe updates that must not reach hardware. Downgrade a code
    /// with [`CompileConfig::lint_levels`] only after understanding the
    /// interleaving it describes.
    Lint {
        /// The location.
        location: Label,
        /// The denied findings.
        diagnostics: Vec<LintDiagnostic>,
    },
}

impl std::fmt::Display for NclcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NclcError::Frontend(d) | NclcError::Lowering(d) => {
                write!(f, "{}", ncl_lang::diag::render(d))
            }
            NclcError::And(e) => write!(f, "AND file: {e}"),
            NclcError::UnknownLocation { what, label } => {
                write!(
                    f,
                    "{what} is placed at \"{label}\", which the AND file does not define"
                )
            }
            NclcError::Backend { location, error } => {
                write!(f, "backend rejected program for \"{location}\": {error}")
            }
            NclcError::Lint {
                location,
                diagnostics,
            } => {
                writeln!(f, "lint denied program for \"{location}\":")?;
                write!(f, "{}", ncl_ir::lint::render(diagnostics))
            }
        }
    }
}

impl std::error::Error for NclcError {}

/// Compiles an NCL program against an AND file.
pub fn compile(
    ncl_source: &str,
    and_source: &str,
    cfg: &CompileConfig,
) -> Result<CompiledProgram, NclcError> {
    let mut timings = Timeline::new();

    // Frontend (Fig. 6: clang.fe + nclc.fe).
    let checked = timings
        .time("frontend", || ncl_lang::frontend(ncl_source, "program.ncl"))
        .map_err(NclcError::Frontend)?;
    let overlay = timings
        .time("overlay", || ncl_and::parse(and_source))
        .map_err(NclcError::And)?;

    // Validate `_at_` labels against the AND.
    for k in &checked.kernels {
        if let Some(at) = &k.at {
            if overlay.node(at.as_str()).is_none() {
                return Err(NclcError::UnknownLocation {
                    what: format!("kernel '{}'", k.name),
                    label: at.to_string(),
                });
            }
        }
    }
    for g in &checked.globals {
        if let Some(at) = &g.at {
            if overlay.node(at.as_str()).is_none() {
                return Err(NclcError::UnknownLocation {
                    what: format!("switch memory '{}'", g.name),
                    label: at.to_string(),
                });
            }
        }
    }

    // Lowering + generic optimization.
    let lcfg = LoweringConfig {
        masks: cfg.masks.clone(),
        unroll_limit: cfg.unroll_limit,
        replay_filters: cfg.replay_filters.clone(),
    };
    let mut generic = timings
        .time("lower", || lower(&checked, &lcfg))
        .map_err(NclcError::Lowering)?;
    timings.time("optimize", || ncl_ir::passes::optimize(&mut generic));

    // Program-wide kernel ids, in declaration order, from
    // `kernel_id_base + 1` (the base is 0 outside multi-tenant deploys).
    let kernel_ids: HashMap<String, u16> = checked
        .kernels
        .iter()
        .enumerate()
        .map(|(i, k)| (k.name.clone(), cfg.kernel_id_base + (i + 1) as u16))
        .collect();
    let label_ids = overlay.label_ids();

    // Versioning per AND switch + backend per location.
    let locations: Vec<LocationInfo> = overlay
        .switches()
        .map(|s| LocationInfo {
            label: s.label.clone(),
            id: s.id,
        })
        .collect();
    let versions = timings.time("version", || version_modules(&generic, &locations));
    let opts = CompileOptions {
        kernel_ids: kernel_ids.clone(),
        label_ids: label_ids.clone(),
        ..CompileOptions::default()
    };
    let lint_cfg = LintConfig {
        levels: cfg.lint_levels.clone(),
        replay_filtered: cfg.replay_filters.keys().cloned().collect(),
        reg_accesses_per_pass: cfg.model.reg_accesses_per_pass,
    };
    let mut switches = Vec::new();
    let mut modules = Vec::new();
    let mut lints = Vec::new();
    let mut estimates = Vec::new();
    for (loc, module) in locations.iter().zip(versions) {
        // Static analysis gate: hazard/replay findings plus the early
        // resource estimate, both before PISA mapping. A denied finding
        // means the kernel must not reach a switch.
        let mut diags = timings.time("lint", || ncl_ir::lint::lint_module(&module, &lint_cfg));
        let estimate = match timings.time("estimate", || {
            ncl_p4::estimate::estimate_module(&module, &cfg.model)
        }) {
            Ok(est) => {
                let overrun_level = lint_cfg.level(LintCode::ResourceOverrun);
                if overrun_level != LintLevel::Allow {
                    for (kernel, v) in est.all_violations() {
                        let span = kernel
                            .and_then(|k| module.kernel(k))
                            .map(|k| k.span)
                            .unwrap_or_default();
                        diags.push(LintDiagnostic {
                            code: LintCode::ResourceOverrun,
                            level: overrun_level,
                            kernel: kernel.unwrap_or("<module>").to_string(),
                            state: None,
                            message: format!("estimated resource overrun: {v}"),
                            span,
                            file: module.file.clone(),
                        });
                    }
                }
                Some(est)
            }
            // Estimation failures (e.g. allocation divergence) re-occur
            // in the backend below with a proper error; don't duplicate.
            Err(_) => None,
        };
        let (deny, warns) = ncl_ir::lint::partition(diags);
        if !deny.is_empty() {
            return Err(NclcError::Lint {
                location: loc.label.clone(),
                diagnostics: deny,
            });
        }
        let compiled = timings
            .time("backend", || compile_module(&module, &cfg.model, &opts))
            .map_err(|error| NclcError::Backend {
                location: loc.label.clone(),
                error,
            })?;
        switches.push((loc.label.clone(), compiled));
        modules.push((loc.label.clone(), module));
        lints.push((loc.label.clone(), warns));
        if let Some(est) = estimate {
            estimates.push((loc.label.clone(), est));
        }
    }

    Ok(CompiledProgram {
        checked,
        generic,
        overlay,
        switches,
        modules,
        kernel_ids,
        label_ids,
        lints,
        estimates,
        lint_config: lint_cfg,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    pub const ALLREDUCE_NCL: &str = r#"
#define DATA_LEN 64
#define WIN_LEN 8
_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN/WIN_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    if (window.last) *done = true;
}
"#;

    pub const ALLREDUCE_AND: &str = "
hosts  worker 4
switch s1
link   worker* s1
";

    fn cfg() -> CompileConfig {
        let mut c = CompileConfig::default();
        c.masks.insert("allreduce".into(), vec![8]);
        c.masks.insert("result".into(), vec![8]);
        c
    }

    #[test]
    fn allreduce_compiles_end_to_end() {
        let p = compile(ALLREDUCE_NCL, ALLREDUCE_AND, &cfg()).expect("compiles");
        assert_eq!(p.switches.len(), 1);
        let s1 = p.switch("s1").unwrap();
        assert!(s1.report.accepted());
        assert!(s1.p4_source.contains("allreduce") || s1.p4_source.contains("k1"));
        assert_eq!(p.kernel_ids["allreduce"], 1);
        assert_eq!(p.kernel_ids["result"], 2);
        // The host side keeps the incoming kernel.
        assert!(p.generic.kernel("result").is_some());
    }

    #[test]
    fn unknown_kernel_location_rejected() {
        let src = r#"_net_ _out_ _at_("nowhere") void k(int *d) { _drop(); }"#;
        let mut c = CompileConfig::default();
        c.masks.insert("k".into(), vec![1]);
        let err = compile(src, ALLREDUCE_AND, &c).unwrap_err();
        assert!(matches!(err, NclcError::UnknownLocation { .. }), "{err}");
    }

    #[test]
    fn unknown_memory_location_rejected() {
        let src = r#"
            _net_ _at_("sX") int m[4];
            _net_ _out_ void k(int *d) { m[0] += d[0]; }
        "#;
        let mut c = CompileConfig::default();
        c.masks.insert("k".into(), vec![1]);
        let err = compile(src, ALLREDUCE_AND, &c).unwrap_err();
        assert!(matches!(err, NclcError::UnknownLocation { .. }));
    }

    #[test]
    fn frontend_errors_propagate() {
        let err = compile(
            "_net_ _out_ void k(int *d) { goto x; }",
            ALLREDUCE_AND,
            &cfg(),
        )
        .unwrap_err();
        assert!(matches!(err, NclcError::Frontend(_)));
    }

    #[test]
    fn and_errors_propagate() {
        let err = compile("_net_ _out_ void k(int *d) {}", "host a\nhost a", &cfg()).unwrap_err();
        assert!(matches!(err, NclcError::And(_)));
    }

    #[test]
    fn backend_rejection_propagates() {
        // A kernel too large for a tiny chip.
        let src = r#"
_net_ _at_("s1") int a[256] = {0};
_net_ _out_ void k(int *data) {
    for (unsigned i = 0; i < 64; ++i) a[i] += data[i];
}
"#;
        let mut c = CompileConfig::default();
        c.masks.insert("k".into(), vec![64]);
        c.model = ResourceModel::tiny();
        let err = compile(src, ALLREDUCE_AND, &c).unwrap_err();
        assert!(matches!(err, NclcError::Backend { .. }), "{err}");
    }

    #[test]
    fn replay_filter_lowers_synthetic_registers() {
        let mut c = cfg();
        c.replay_filters.insert(
            "allreduce".into(),
            ReplayFilter {
                senders: 8,
                slots: 16,
            },
        );
        // The replay-aware kernel: the filter-oblivious ALLREDUCE_NCL
        // is (correctly) denied by the replay-safety lint when a filter
        // is configured, see `filter_oblivious_kernel_denied`.
        let src = crate::apps::allreduce_source(64, 8);
        let p = compile(&src, ALLREDUCE_AND, &c).expect("compiles");
        let m = p.module("s1").expect("s1 module");
        let seen = m
            .registers
            .iter()
            .find(|r| r.name == "__nclr_seen_allreduce")
            .expect("seen bitmap register");
        assert_eq!(seen.dims, vec![8 * 16]);
        let dups = m
            .registers
            .iter()
            .find(|r| r.name == "__nclr_dups_allreduce")
            .expect("dups counter register");
        assert_eq!(dups.dims, vec![1]);
        let s1 = p.switch("s1").unwrap();
        assert!(
            s1.report.accepted(),
            "the filter stage must fit the PISA budget: {:?}",
            s1.report
        );
        // The stateful filter stage survives into the generated P4.
        assert!(s1.p4_source.contains("nclr_seen"), "P4 lacks filter stage");
    }

    #[test]
    fn filter_oblivious_kernel_denied() {
        // Configuring a replay filter claims exactly-once effects; a
        // kernel that mutates state without consulting `window.replay`
        // breaks that claim and is denied.
        let mut c = cfg();
        c.replay_filters.insert(
            "allreduce".into(),
            ReplayFilter {
                senders: 8,
                slots: 16,
            },
        );
        let err = compile(ALLREDUCE_NCL, ALLREDUCE_AND, &c).unwrap_err();
        match err {
            NclcError::Lint { diagnostics, .. } => {
                assert!(
                    diagnostics.iter().any(|d| d.code == LintCode::ReplayUnsafe),
                    "{diagnostics:?}"
                );
            }
            other => panic!("expected lint denial, got: {other}"),
        }
    }

    #[test]
    fn apps_kernels_pass_lint_with_zero_allows() {
        // Acceptance: the flagship kernels are replay-safe and hazard-
        // free under the deny-by-default policy, no `allow` knobs.
        let mut c = CompileConfig::default();
        c.masks.insert("allreduce".into(), vec![8]);
        c.masks.insert("result".into(), vec![8]);
        c.replay_filters.insert(
            "allreduce".into(),
            ReplayFilter {
                senders: 4,
                slots: 8,
            },
        );
        assert!(c.lint_levels.is_empty());
        let p = compile(&crate::apps::allreduce_source(64, 8), ALLREDUCE_AND, &c)
            .expect("allreduce passes deny-by-default lint");
        assert!(
            !p.lint_warnings().any(|d| matches!(
                d.code,
                LintCode::ReplayUnsafe | LintCode::ReplayUnsafeNoFilter
            )),
            "replay findings on the replay-aware allreduce"
        );

        let mut c = CompileConfig::default();
        c.masks.insert("query".into(), vec![1, 8, 1]);
        assert!(c.lint_levels.is_empty());
        compile(&crate::apps::kvs_source(2, 16, 8), ALLREDUCE_AND, &c)
            .expect("kvs passes deny-by-default lint");
    }

    #[test]
    fn estimates_are_populated() {
        let p = compile(ALLREDUCE_NCL, ALLREDUCE_AND, &cfg()).expect("compiles");
        let est = p.estimate("s1").expect("estimate for s1");
        assert_eq!(est.kernels.len(), 1);
        assert_eq!(est.kernels[0].kernel, "allreduce");
        // Agreement with the actual mapping: exact stage count.
        let actual = p.switch("s1").unwrap();
        assert_eq!(est.pipeline_stages, actual.report.stages_used);
    }

    #[test]
    fn window_replay_is_false_without_filter() {
        // The NCP-R-aware allreduce kernel reads `window.replay`; with
        // no filter configured it compiles to the same single-delivery
        // semantics and no synthetic registers appear.
        let src = crate::apps::allreduce_source(64, 8);
        let p = compile(&src, ALLREDUCE_AND, &cfg()).expect("compiles");
        let m = p.module("s1").expect("s1 module");
        assert!(
            !m.registers.iter().any(|r| r.name.starts_with("__nclr_")),
            "no filter configured, no synthetic registers"
        );
        assert!(p.switch("s1").unwrap().report.accepted());
    }

    #[test]
    fn multi_switch_versions() {
        let src = r#"
_net_ _at_("agg") int total[1] = {0};
_net_ _out_ _at_("agg") void k(int *d) { total[0] += d[0]; _drop(); }
_net_ _out_ _at_("edge") void k(int *d) { d[0] *= 2; }
"#;
        let and = "host a\nhost b\nswitch edge\nswitch agg\nlink a edge\nlink edge agg\nlink agg b";
        let mut c = CompileConfig::default();
        c.masks.insert("k".into(), vec![1]);
        let p = compile(src, and, &c).expect("compiles");
        assert_eq!(p.switches.len(), 2);
        // Each location got its own version of `k`.
        let edge = p.switch("edge").unwrap();
        let agg = p.switch("agg").unwrap();
        assert!(edge.p4_source != agg.p4_source);
    }
}
