//! Tenant multiplexing: one switch, many tenants, hitless upgrades.
//!
//! A [`TenantMux`] is the datapath a multi-tenant deployment
//! ([`crate::deploy_tenants`]) loads into each shared switch. It owns
//! one inner [`FastDatapath`] per tenant (a
//! [`crate::fastpath::FastPathSwitch`] or
//! [`crate::interp_switch::InterpSwitch`] built from that tenant's
//! compiled program) and routes every arriving NCP window to the tenant
//! that owns its kernel id — tenants are assigned disjoint kernel-id
//! ranges at admission time (`CompileConfig::kernel_id_base`), so
//! ownership is a set lookup, not a policy decision.
//!
//! During a hitless upgrade ([`crate::MultiDeployment::begin_upgrade`])
//! a tenant slot briefly holds *two* datapaths: the freshly installed
//! new version (active) and the outgoing old version plus its **drain
//! set** — the `(kernel, seq)` keys that were in flight on NCP-R when
//! the switchover happened. Windows in the drain set execute on the old
//! version (they may be retransmissions of windows the old version
//! already partially aggregated); everything else executes on the new
//! one. The drain set is a static snapshot: acked windows are never
//! retransmitted, so routing an already-acked key to the old version is
//! harmless, and the mux needs no ack observation. Each verdict is
//! stamped with the version that actually executed
//! ([`FastVerdict::version`]), which is what lets E14 assert
//! zero wrong-version windows from flight-recorder artifacts alone.

use netsim::{CtrlOp, FastDatapath, FastVerdict};
use std::any::Any;
use std::collections::BTreeSet;

/// The outgoing version of one tenant's kernel during a drain.
struct OldVersion {
    dp: Box<dyn FastDatapath>,
    version: u16,
    /// `(kernel, seq)` keys still owed to the old version.
    drain: BTreeSet<(u16, u32)>,
}

/// One tenant's residency on a shared switch.
struct TenantSlot {
    tenant: String,
    /// Kernel ids this tenant owns (disjoint across tenants).
    kernel_ids: BTreeSet<u16>,
    active: Box<dyn FastDatapath>,
    active_version: u16,
    old: Option<OldVersion>,
}

/// A per-switch datapath multiplexing several tenants' kernels, with
/// dual-version residency during hitless upgrades (module docs).
#[derive(Default)]
pub struct TenantMux {
    slots: Vec<TenantSlot>,
}

impl TenantMux {
    /// An empty mux.
    pub fn new() -> Self {
        TenantMux::default()
    }

    /// Adds a tenant's datapath. `kernel_ids` are the NCP kernel ids the
    /// tenant's program registered (disjoint from every other tenant's);
    /// `version` is the ncsched-assigned version stamped on verdicts.
    pub fn add_tenant(
        &mut self,
        tenant: &str,
        kernel_ids: BTreeSet<u16>,
        dp: Box<dyn FastDatapath>,
        version: u16,
    ) {
        self.slots.push(TenantSlot {
            tenant: tenant.to_string(),
            kernel_ids,
            active: dp,
            active_version: version,
            old: None,
        });
    }

    /// Tenants resident on this mux, in admission order.
    pub fn tenants(&self) -> Vec<&str> {
        self.slots.iter().map(|s| s.tenant.as_str()).collect()
    }

    /// The version currently serving new windows for `tenant`.
    pub fn active_version(&self, tenant: &str) -> Option<u16> {
        self.slot(tenant).map(|s| s.active_version)
    }

    /// Whether `tenant` is mid-upgrade (old version still resident).
    pub fn is_draining(&self, tenant: &str) -> bool {
        self.slot(tenant).is_some_and(|s| s.old.is_some())
    }

    /// Atomically switches `tenant` over to a new datapath: the current
    /// active becomes the draining old version, owed exactly the
    /// windows in `drain` (the NCP-R in-flight snapshot taken at
    /// switchover); `dp` serves everything else from this call on.
    /// Returns `false` (no-op) if the tenant is unknown or already
    /// draining.
    pub fn begin_upgrade(
        &mut self,
        tenant: &str,
        dp: Box<dyn FastDatapath>,
        version: u16,
        drain: BTreeSet<(u16, u32)>,
    ) -> bool {
        let Some(slot) = self.slots.iter_mut().find(|s| s.tenant == tenant) else {
            return false;
        };
        if slot.old.is_some() {
            return false;
        }
        let old_dp = std::mem::replace(&mut slot.active, dp);
        slot.old = Some(OldVersion {
            dp: old_dp,
            version: slot.active_version,
            drain,
        });
        slot.active_version = version;
        true
    }

    /// Drops `tenant`'s old version, reclaiming its state. Returns the
    /// retired version, or `None` if no upgrade was in progress.
    pub fn finish_upgrade(&mut self, tenant: &str) -> Option<u16> {
        let slot = self.slots.iter_mut().find(|s| s.tenant == tenant)?;
        slot.old.take().map(|o| o.version)
    }

    /// Applies a control-plane op to `tenant`'s datapaths — both
    /// versions during a drain, so control variables (e.g. `nworkers`)
    /// stay consistent across the switchover. `true` if any accepted.
    pub fn ctrl_for(&mut self, tenant: &str, op: &CtrlOp) -> bool {
        let Some(slot) = self.slots.iter_mut().find(|s| s.tenant == tenant) else {
            return false;
        };
        let mut hit = slot.active.ctrl(op);
        if let Some(old) = &mut slot.old {
            hit |= old.dp.ctrl(op);
        }
        hit
    }

    /// Borrows `tenant`'s active datapath (post-run inspection;
    /// downcast via [`FastDatapath::as_any`]).
    pub fn tenant_datapath(&self, tenant: &str) -> Option<&dyn FastDatapath> {
        self.slot(tenant).map(|s| &*s.active)
    }

    fn slot(&self, tenant: &str) -> Option<&TenantSlot> {
        self.slots.iter().find(|s| s.tenant == tenant)
    }
}

impl FastDatapath for TenantMux {
    /// Routes by kernel-id ownership, preferring the old version for
    /// drain-set windows. Declines (`None`) non-NCP frames and kernel
    /// ids no tenant owns — the switch then plainly forwards them (and
    /// counts the unknown-kernel case).
    fn process(&mut self, payload: &[u8]) -> Option<FastVerdict> {
        let (kernel, seq) = match ncp::NcpPacket::new_checked(payload) {
            Ok(p) => (p.kernel(), p.seq()),
            Err(_) => return None,
        };
        let slot = self
            .slots
            .iter_mut()
            .find(|s| s.kernel_ids.contains(&kernel))?;
        if let Some(old) = &mut slot.old {
            if old.drain.contains(&(kernel, seq)) {
                let mut v = old.dp.process(payload)?;
                if v.version == 0 {
                    v.version = old.version;
                }
                return Some(v);
            }
        }
        let mut v = slot.active.process(payload)?;
        if v.version == 0 {
            v.version = slot.active_version;
        }
        Some(v)
    }

    /// First-match control routing in admission order (both versions of
    /// the matching tenant). Register names can collide across tenants;
    /// ambiguity-free callers use [`TenantMux::ctrl_for`].
    fn ctrl(&mut self, op: &CtrlOp) -> bool {
        let tenants: Vec<String> = self.slots.iter().map(|s| s.tenant.clone()).collect();
        for t in tenants {
            if self.ctrl_for(&t, op) {
                return true;
            }
        }
        false
    }

    /// Sums over every resident datapath, old versions included — the
    /// NCP-R duplicate-count observability must not blink mid-upgrade.
    fn register_prefix_sum(&self, prefix: &str) -> u64 {
        self.slots
            .iter()
            .map(|s| {
                s.active.register_prefix_sum(prefix)
                    + s.old
                        .as_ref()
                        .map(|o| o.dp.register_prefix_sum(prefix))
                        .unwrap_or(0)
            })
            .sum()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3::Value;

    /// A scripted datapath: accepts one kernel id, echoes the payload,
    /// tags nothing (version 0) so the mux stamps its own.
    struct Fake {
        kid: u16,
        processed: u64,
        ctrl_name: String,
        prefix_sum: u64,
    }

    impl Fake {
        fn new(kid: u16, ctrl_name: &str, prefix_sum: u64) -> Self {
            Fake {
                kid,
                processed: 0,
                ctrl_name: ctrl_name.to_string(),
                prefix_sum,
            }
        }
    }

    impl FastDatapath for Fake {
        fn process(&mut self, payload: &[u8]) -> Option<FastVerdict> {
            let p = ncp::NcpPacket::new_checked(payload).ok()?;
            if p.kernel() != self.kid {
                return None;
            }
            self.processed += 1;
            Some(FastVerdict {
                payload: payload.to_vec(),
                fwd_code: 0,
                fwd_label: 0,
                version: 0,
            })
        }

        fn ctrl(&mut self, op: &CtrlOp) -> bool {
            match op {
                CtrlOp::RegWrite { name, .. } => *name == self.ctrl_name,
                _ => false,
            }
        }

        fn register_prefix_sum(&self, prefix: &str) -> u64 {
            if prefix == "__nclr_dups" {
                self.prefix_sum
            } else {
                0
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn frame(kernel: u16, seq: u32) -> Vec<u8> {
        let repr = ncp::NcpRepr {
            flags: 0,
            kernel,
            seq,
            sender: 1,
            from: 0,
            chunks: Vec::new(),
            ext: Vec::new(),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        buf
    }

    fn mux_ab() -> TenantMux {
        let mut m = TenantMux::new();
        m.add_tenant(
            "a",
            BTreeSet::from([10]),
            Box::new(Fake::new(10, "na", 3)),
            1,
        );
        m.add_tenant(
            "b",
            BTreeSet::from([20]),
            Box::new(Fake::new(20, "nb", 4)),
            1,
        );
        m
    }

    #[test]
    fn routes_by_kernel_ownership_and_stamps_versions() {
        let mut m = mux_ab();
        let va = m.process(&frame(10, 0)).expect("tenant a owns 10");
        assert_eq!(va.version, 1);
        assert!(m.process(&frame(20, 0)).is_some());
        assert!(m.process(&frame(99, 0)).is_none(), "unowned kid declines");
        assert!(m.process(b"junk").is_none());
    }

    #[test]
    fn drain_set_routes_to_old_version_only() {
        let mut m = mux_ab();
        // Windows (10, 0) and (10, 2) were in flight at switchover.
        assert!(m.begin_upgrade(
            "a",
            Box::new(Fake::new(10, "na", 0)),
            2,
            BTreeSet::from([(10, 0), (10, 2)]),
        ));
        assert!(m.is_draining("a"));
        assert_eq!(m.active_version("a"), Some(2));
        // Drain keys execute on v1; fresh seqs on v2; tenant b untouched.
        assert_eq!(m.process(&frame(10, 0)).unwrap().version, 1);
        assert_eq!(m.process(&frame(10, 1)).unwrap().version, 2);
        assert_eq!(m.process(&frame(10, 2)).unwrap().version, 1);
        assert_eq!(m.process(&frame(20, 0)).unwrap().version, 1);
        // Reclaim: v1 retired, drain keys now run on v2.
        assert_eq!(m.finish_upgrade("a"), Some(1));
        assert!(!m.is_draining("a"));
        assert_eq!(m.process(&frame(10, 0)).unwrap().version, 2);
        assert_eq!(m.finish_upgrade("a"), None, "second finish is a no-op");
    }

    #[test]
    fn begin_upgrade_rejects_unknown_or_draining_tenants() {
        let mut m = mux_ab();
        assert!(!m.begin_upgrade("ghost", Box::new(Fake::new(1, "x", 0)), 2, BTreeSet::new()));
        assert!(m.begin_upgrade("a", Box::new(Fake::new(10, "na", 0)), 2, BTreeSet::new()));
        assert!(
            !m.begin_upgrade("a", Box::new(Fake::new(10, "na", 0)), 3, BTreeSet::new()),
            "no concurrent upgrades for one tenant"
        );
    }

    #[test]
    fn ctrl_routes_to_owning_tenant_and_both_versions() {
        let mut m = mux_ab();
        let wr = |name: &str| CtrlOp::RegWrite {
            name: name.into(),
            index: 0,
            value: Value::u32(3),
        };
        assert!(m.ctrl(&wr("nb")), "first-match scan finds tenant b");
        assert!(!m.ctrl(&wr("nope")));
        assert!(m.ctrl_for("a", &wr("na")));
        assert!(!m.ctrl_for("a", &wr("nb")), "targeted ctrl stays in-slot");
        // During a drain both versions see the write.
        m.begin_upgrade("a", Box::new(Fake::new(10, "na", 0)), 2, BTreeSet::new());
        assert!(m.ctrl_for("a", &wr("na")));
    }

    #[test]
    fn prefix_sum_spans_tenants_and_old_versions() {
        let mut m = mux_ab();
        assert_eq!(m.register_prefix_sum("__nclr_dups"), 7);
        m.begin_upgrade(
            "a",
            Box::new(Fake::new(10, "na", 5)),
            2,
            BTreeSet::from([(10, 0)]),
        );
        // Old (3) stays visible alongside new (5) and tenant b (4).
        assert_eq!(m.register_prefix_sum("__nclr_dups"), 12);
        m.finish_upgrade("a");
        assert_eq!(m.register_prefix_sum("__nclr_dups"), 9);
    }
}
