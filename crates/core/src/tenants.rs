//! Multi-tenant deployment: several compiled programs, one fabric.
//!
//! [`deploy_tenants`] is the shared-fabric counterpart of
//! [`crate::deploy_opts`]: each tenant brings its own compiled program
//! (with a private kernel-id range via
//! [`crate::nclc::CompileConfig::kernel_id_base`]) and its own host
//! applications; the fabric — the AND overlay, identical across
//! tenants — is built **once**, with every shared switch running a
//! [`TenantMux`] that dispatches windows to the owning tenant's
//! datapath. Before anything touches the simulator, every tenant passes
//! through the ncsched [`AdmissionController`]: the PR 3 resource
//! estimator's per-switch [`ModuleEstimate`]s are bin-packed against
//! the chip model, the tenant's quota, and what earlier tenants already
//! hold. A tenant that does not fit is **not** an error — it is left
//! off the fabric and reported in [`MultiDeployment::rejections`] as a
//! machine-readable [`CostReport`] naming the violated budget, while
//! the admitted tenants deploy normally (E14's rejection leg).
//!
//! Hitless upgrades ride the same path:
//! [`MultiDeployment::begin_upgrade`] admission-checks the new version
//! with the old still resident (dual reservation), lint-gates it,
//! installs it on every switch atomically with the drain-set snapshot
//! (the NCP-R in-flight keys, [`crate::runtime::NclHost::in_flight_keys`]),
//! and hands back the [`Upgrade`] ticket; once the caller has observed
//! every drain window acked ([`Upgrade::acked`]),
//! [`MultiDeployment::finish_upgrade`] retires the old version and
//! returns its resources to the pool.
//!
//! Only the software switch tiers multiplex —
//! [`SwitchBackend::FastPath`], [`SwitchBackend::Simd`],
//! [`SwitchBackend::Interp`]. The modeled PISA pipeline cannot host two
//! independently compiled programs in one pipeline object, so
//! [`SwitchBackend::Pisa`] is rejected up front.

use crate::deploy::{kernel_telemetry, DeployError, DeployOptions, SwitchBackend};
use crate::fastpath::FastPathSwitch;
use crate::interp_switch::InterpSwitch;
use crate::mux::TenantMux;
use crate::nclc::{CompiledProgram, ModuleEstimate};
use crate::runtime::NclHost;
use crate::watch::{FabricWatch, FabricWatchParts};
use c3::{HostId, Label, NodeId, SwitchId};
use ncl_and::AndKind;
use ncsched::{AdmissionController, AdmissionError, CostReport, TenantSpec, Upgrade};
use nctel::{Registry, Scope, ScopeEvent, SnapshotReason, WindowKey};
use netsim::{
    FastDatapath, HostApp, HostCtx, Network, NetworkBuilder, Packet, SwitchCfg, SwitchTelemetry,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One tenant's submission to [`deploy_tenants`].
pub struct TenantDeploy {
    /// Identity and resource quota (checked at admission).
    pub spec: TenantSpec,
    /// The tenant's compiled program. Must target the same AND overlay
    /// as every other tenant and use a disjoint kernel-id range.
    pub program: CompiledProgram,
    /// Host applications by AND host label. Each host label belongs to
    /// at most one tenant; hosts no tenant claims idle.
    pub apps: HashMap<String, Box<dyn HostApp>>,
}

/// Failures of [`deploy_tenants`] and the upgrade entry points.
///
/// Capacity shortfalls are *not* here — a tenant that fails admission
/// at deploy time is reported in [`MultiDeployment::rejections`] while
/// the rest of the fabric deploys. These are structural errors the
/// caller must fix.
#[derive(Debug)]
pub enum MultiDeployError {
    /// `deploy_tenants` with an empty tenant list.
    NoTenants,
    /// [`SwitchBackend::Pisa`] cannot multiplex tenants (module docs).
    UnsupportedBackend,
    /// A tenant's program targets a different AND overlay.
    OverlayMismatch {
        /// The offending tenant.
        tenant: String,
    },
    /// Two tenants' programs share a kernel id — kernel-id ranges route
    /// windows, so they must be disjoint
    /// ([`crate::nclc::CompileConfig::kernel_id_base`]).
    KernelIdOverlap {
        /// First claimant.
        a: String,
        /// Second claimant.
        b: String,
        /// The contested kernel id.
        kernel: u16,
    },
    /// Two tenants supplied an application for the same host.
    HostClaimed {
        /// The host label.
        label: String,
        /// First claimant.
        a: String,
        /// Second claimant.
        b: String,
    },
    /// A tenant supplied an application for a label that is not a host
    /// in the overlay.
    UnknownHost {
        /// The offending tenant.
        tenant: String,
        /// The unknown label.
        label: String,
    },
    /// The deploy-time lint gate denied a tenant module. The inner
    /// error names the offending kernels and the refused version
    /// ([`DeployError::Lint`]).
    Lint {
        /// The offending tenant.
        tenant: String,
        /// The underlying denial.
        source: DeployError,
    },
    /// A controller operation failed (upgrade lifecycle misuse, or an
    /// upgrade's new version rejected for capacity).
    Admission {
        /// The tenant involved.
        tenant: String,
        /// The underlying controller error.
        source: AdmissionError,
    },
    /// An upgrade's new program changed the tenant's kernel-id set;
    /// in-place upgrades must keep ids stable so in-flight windows
    /// still route.
    KernelIdsChanged {
        /// The offending tenant.
        tenant: String,
    },
}

impl std::fmt::Display for MultiDeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiDeployError::NoTenants => write!(f, "no tenants to deploy"),
            MultiDeployError::UnsupportedBackend => {
                write!(
                    f,
                    "the PISA pipeline backend cannot multiplex tenants; use a software tier"
                )
            }
            MultiDeployError::OverlayMismatch { tenant } => {
                write!(f, "tenant '{tenant}' targets a different AND overlay")
            }
            MultiDeployError::KernelIdOverlap { a, b, kernel } => {
                write!(f, "tenants '{a}' and '{b}' both claim kernel id {kernel}")
            }
            MultiDeployError::HostClaimed { label, a, b } => {
                write!(f, "tenants '{a}' and '{b}' both claim host '{label}'")
            }
            MultiDeployError::UnknownHost { tenant, label } => {
                write!(f, "tenant '{tenant}' claims unknown host '{label}'")
            }
            MultiDeployError::Lint { tenant, source } => {
                write!(f, "tenant '{tenant}': {source}")
            }
            MultiDeployError::Admission { tenant, source } => {
                write!(f, "tenant '{tenant}': {source}")
            }
            MultiDeployError::KernelIdsChanged { tenant } => {
                write!(
                    f,
                    "tenant '{tenant}' upgrade changes its kernel-id set; ids must be stable"
                )
            }
        }
    }
}

impl std::error::Error for MultiDeployError {}

/// A host application that does nothing — installed on hosts no
/// admitted tenant claims, so the shared fabric still builds.
struct IdleApp;

impl HostApp for IdleApp {
    fn on_packet(&mut self, _ctx: &mut HostCtx, _pkt: &Packet) {}
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Book-keeping for one admitted tenant.
struct AdmittedTenant {
    name: String,
    /// The tenant's kernel-id set (routing identity on every mux).
    kernel_ids: BTreeSet<u16>,
    /// Host labels this tenant's applications run on.
    hosts: Vec<(String, HostId)>,
    /// Switch labels this tenant's program occupies.
    switches: Vec<String>,
}

/// A deployed multi-tenant fabric (see module docs).
pub struct MultiDeployment {
    /// The simulated network.
    pub net: Network,
    /// AND label → simulated node.
    pub nodes: HashMap<Label, NodeId>,
    /// The live admission controller: committed reservations, quotas,
    /// per-switch usage. Future `admit`/`release` calls against it keep
    /// accounting while the fabric runs.
    pub controller: AdmissionController,
    /// Tenants that failed admission at deploy time, in submission
    /// order, each with the cost report naming the violated budget.
    pub rejections: Vec<Box<CostReport>>,
    backend: SwitchBackend,
    tenants: Vec<AdmittedTenant>,
    /// `(switch wire, kernel id)` → deployed version; updated on
    /// upgrade switchover.
    versions: BTreeMap<(u16, u16), u16>,
}

/// Deploys several tenants onto one shared fabric (module docs).
/// Admitted tenants run; rejected tenants land in
/// [`MultiDeployment::rejections`] with cost reports. `opts.backend`
/// must be a software tier.
pub fn deploy_tenants(
    tenants: Vec<TenantDeploy>,
    opts: DeployOptions,
) -> Result<MultiDeployment, MultiDeployError> {
    let DeployOptions {
        link_spec,
        link_overrides,
        backend,
        registry,
        scope,
        model,
        // Multi-tenant deployments run software tiers against per-tenant
        // mux state; the model-check gate is a single-program, Pisa-level
        // concern and is applied by `deploy_opts` instead.
        model_check: _,
    } = opts;
    if tenants.is_empty() {
        return Err(MultiDeployError::NoTenants);
    }
    if backend == SwitchBackend::Pisa {
        return Err(MultiDeployError::UnsupportedBackend);
    }
    let overlay = tenants[0].program.overlay.clone();
    for t in &tenants[1..] {
        if t.program.overlay != overlay {
            return Err(MultiDeployError::OverlayMismatch {
                tenant: t.spec.name.clone(),
            });
        }
    }
    // Kernel-id ranges route windows on shared switches: disjoint or bust.
    let mut id_owner: BTreeMap<u16, &str> = BTreeMap::new();
    for t in &tenants {
        let ids: BTreeSet<u16> = t.program.kernel_ids.values().copied().collect();
        for id in ids {
            if let Some(prev) = id_owner.insert(id, t.spec.name.as_str()) {
                if prev != t.spec.name {
                    return Err(MultiDeployError::KernelIdOverlap {
                        a: prev.to_string(),
                        b: t.spec.name.clone(),
                        kernel: id,
                    });
                }
            }
        }
    }
    // Host claims: at most one tenant per host label.
    let mut host_owner: BTreeMap<&str, &str> = BTreeMap::new();
    for t in &tenants {
        for label in t.apps.keys() {
            let known = overlay
                .nodes
                .iter()
                .any(|n| n.kind == AndKind::Host && n.label.as_str() == label.as_str());
            if !known {
                return Err(MultiDeployError::UnknownHost {
                    tenant: t.spec.name.clone(),
                    label: label.clone(),
                });
            }
            if let Some(prev) = host_owner.insert(label.as_str(), t.spec.name.as_str()) {
                if prev != t.spec.name {
                    return Err(MultiDeployError::HostClaimed {
                        label: label.clone(),
                        a: prev.to_string(),
                        b: t.spec.name.clone(),
                    });
                }
            }
        }
    }

    let hosts_loaded = registry.counter("deploy.hosts_loaded");
    let switches_loaded = registry.counter("deploy.switches_loaded");
    let admitted_ctr = registry.counter("deploy.tenants_admitted");
    let rejected_ctr = registry.counter("deploy.tenants_rejected");

    // Lint gate, per tenant, per switch module — with kernel + version
    // identity in the denial (the would-be first deployment is v1).
    for t in &tenants {
        lint_gate(&t.program, 1, &registry, &scope).map_err(|source| MultiDeployError::Lint {
            tenant: t.spec.name.clone(),
            source,
        })?;
    }

    // Admission: bin-pack each tenant, in submission order, against the
    // chip model, its quota, and what earlier tenants already hold.
    // Rejection is not an error — the tenant just stays off the fabric.
    let mut controller = AdmissionController::new(model);
    let mut rejections = Vec::new();
    let mut admitted_names: Vec<String> = Vec::new();
    for t in &tenants {
        match controller.admit(&t.spec, &switch_estimates(&t.program)) {
            Ok(_) => {
                admitted_ctr.inc();
                admitted_names.push(t.spec.name.clone());
            }
            Err(AdmissionError::Rejected(report)) => {
                rejected_ctr.inc();
                rejections.push(report);
            }
            Err(source) => {
                return Err(MultiDeployError::Admission {
                    tenant: t.spec.name.clone(),
                    source,
                })
            }
        }
    }
    // Every tenant shares the overlay, so `_pass(label)` targets agree;
    // capture them before the submissions are consumed.
    let labels_template: HashMap<u16, NodeId> = tenants[0]
        .program
        .label_ids
        .iter()
        .map(|(_, &w)| (w, NodeId::from_wire(w)))
        .collect();
    let mut admitted: Vec<TenantDeploy> = tenants
        .into_iter()
        .filter(|t| admitted_names.contains(&t.spec.name))
        .collect();

    // Build the shared fabric once; muxes hold the admitted tenants.
    let mut b = NetworkBuilder::new();
    b.with_metrics(registry.clone());
    if let Some(scope) = &scope {
        b.with_scope(scope);
    }
    let mut nodes: HashMap<Label, NodeId> = HashMap::new();
    let mut book: Vec<AdmittedTenant> = admitted
        .iter()
        .map(|t| AdmittedTenant {
            name: t.spec.name.clone(),
            kernel_ids: t.program.kernel_ids.values().copied().collect(),
            hosts: Vec::new(),
            switches: Vec::new(),
        })
        .collect();
    let mut versions = BTreeMap::new();
    let mut tenant_of_label: HashMap<String, usize> = HashMap::new();
    for (i, t) in admitted.iter().enumerate() {
        for label in t.apps.keys() {
            tenant_of_label.insert(label.clone(), i);
        }
    }
    // Apps move out of the submissions as hosts are built.
    let mut taken: Vec<HashMap<String, Box<dyn HostApp>>> = admitted
        .iter_mut()
        .map(|t| std::mem::take(&mut t.apps))
        .collect();

    for n in &overlay.nodes {
        match n.kind {
            AndKind::Host => {
                let app: Box<dyn HostApp> = match tenant_of_label.get(n.label.as_str()) {
                    Some(&ti) => taken[ti]
                        .remove(n.label.as_str())
                        .expect("claim map built from these keys"),
                    None => Box::new(IdleApp),
                };
                let id = b.add_host(app);
                hosts_loaded.inc();
                debug_assert_eq!(id, HostId(n.id), "AND/netsim host id agreement");
                nodes.insert(n.label.clone(), NodeId::Host(id));
                if let Some(&ti) = tenant_of_label.get(n.label.as_str()) {
                    book[ti].hosts.push((n.label.to_string(), id));
                }
            }
            AndKind::Switch => {
                let wire = NodeId::Switch(SwitchId(n.id)).to_wire();
                let mut mux = TenantMux::new();
                let mut tel_kernels = HashMap::new();
                for (ti, t) in admitted.iter().enumerate() {
                    let Some(dp) = backend_datapath(backend, &t.program, n.label.as_str()) else {
                        continue;
                    };
                    let version = 1u16;
                    let ids: BTreeSet<u16> = t.program.kernel_ids.values().copied().collect();
                    mux.add_tenant(&t.spec.name, ids, dp, version);
                    book[ti].switches.push(n.label.to_string());
                    for (kid, kt) in kernel_telemetry(&t.program, n.label.as_str(), version) {
                        versions.insert((wire, kid), version);
                        tel_kernels.insert(kid, kt);
                    }
                }
                let occupied = !mux.tenants().is_empty();
                let fastpath: Option<Box<dyn FastDatapath>> =
                    occupied.then(|| Box::new(mux) as Box<dyn FastDatapath>);
                let telemetry = occupied.then_some(SwitchTelemetry {
                    switch_id: wire,
                    kernels: tel_kernels,
                });
                let labels = labels_template.clone();
                let bcast: Vec<NodeId> = overlay
                    .neighbours(n.label.as_str())
                    .iter()
                    .map(|peer| match peer.kind {
                        AndKind::Host => NodeId::Host(HostId(peer.id)),
                        AndKind::Switch => NodeId::Switch(SwitchId(peer.id)),
                    })
                    .collect();
                let id = b.add_switch(SwitchCfg {
                    pipeline: None,
                    fastpath,
                    labels,
                    bcast,
                    telemetry,
                    ..SwitchCfg::default()
                });
                switches_loaded.inc();
                debug_assert_eq!(id, SwitchId(n.id), "AND/netsim switch id agreement");
                nodes.insert(n.label.clone(), NodeId::Switch(id));
            }
        }
    }
    for &(a, bidx) in &overlay.edges {
        let la = overlay.nodes[a].label.as_str();
        let lb = overlay.nodes[bidx].label.as_str();
        let na = nodes[&overlay.nodes[a].label];
        let nb = nodes[&overlay.nodes[bidx].label];
        let spec = link_overrides
            .iter()
            .find(|(x, y, _)| (x == la && y == lb) || (x == lb && y == la))
            .map(|(_, _, s)| *s)
            .unwrap_or(link_spec);
        b.link(na, nb, spec);
    }
    Ok(MultiDeployment {
        net: b.build(),
        nodes,
        controller,
        rejections,
        backend,
        tenants: book,
        versions,
    })
}

/// Per-switch estimates of a program, keyed for the controller.
fn switch_estimates(program: &CompiledProgram) -> BTreeMap<String, ModuleEstimate> {
    program
        .estimates
        .iter()
        .map(|(l, e)| (l.to_string(), e.clone()))
        .collect()
}

/// Builds one tenant's datapath for one switch label under a software
/// tier. `None` when the label has no module in the program.
fn backend_datapath(
    backend: SwitchBackend,
    program: &CompiledProgram,
    label: &str,
) -> Option<Box<dyn FastDatapath>> {
    match backend {
        SwitchBackend::FastPath => FastPathSwitch::from_program_with(program, label, false)
            .map(|fp| Box::new(fp) as Box<dyn FastDatapath>),
        SwitchBackend::Simd => FastPathSwitch::from_program_with(program, label, true)
            .map(|fp| Box::new(fp) as Box<dyn FastDatapath>),
        SwitchBackend::Interp => InterpSwitch::from_program(program, label)
            .map(|it| Box::new(it) as Box<dyn FastDatapath>),
        SwitchBackend::Pisa => None,
    }
}

/// Re-runs the deploy-time lint gate over every switch module of
/// `program`, reporting denials with kernel and version identity.
fn lint_gate(
    program: &CompiledProgram,
    version: u16,
    registry: &Registry,
    scope: &Option<Scope>,
) -> Result<(), DeployError> {
    for n in &program.overlay.nodes {
        if n.kind != AndKind::Switch {
            continue;
        }
        let Some(module) = program.module(n.label.as_str()) else {
            continue;
        };
        let diags = ncl_ir::lint::lint_module(module, &program.lint_config);
        let (deny, _) = ncl_ir::lint::partition(diags);
        if deny.is_empty() {
            continue;
        }
        registry.counter("deploy.lint_denied").inc();
        if let Some(scope) = scope {
            let wire = NodeId::Switch(SwitchId(n.id)).to_wire();
            scope.emit(
                0,
                wire,
                WindowKey::new(0, 0, 0),
                ScopeEvent::LintDenied { switch: wire },
            );
            scope.flight_record(SnapshotReason::LintDenied, 0, Some(registry), &[]);
        }
        let mut kernels: Vec<String> = deny.iter().map(|d| d.kernel.clone()).collect();
        kernels.sort();
        kernels.dedup();
        return Err(DeployError::Lint {
            label: n.label.to_string(),
            kernels,
            version,
            diagnostics: deny,
        });
    }
    Ok(())
}

impl MultiDeployment {
    /// The node for an AND label.
    pub fn node(&self, label: &str) -> NodeId {
        self.nodes[&Label::new(label)]
    }

    /// The switch id for an AND label.
    pub fn switch(&self, label: &str) -> SwitchId {
        self.node(label).as_switch().expect("label names a switch")
    }

    /// The host id for an AND label.
    pub fn host(&self, label: &str) -> HostId {
        self.node(label).as_host().expect("label names a host")
    }

    /// Admitted tenant names, in submission order.
    pub fn tenants(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.name.as_str()).collect()
    }

    /// The kernel versions currently deployed, per `(switch wire id,
    /// kernel id)` — same shape as [`crate::deployed_versions`], kept
    /// live across upgrades (the diagnosis engine's reference for
    /// stale-version hop records).
    pub fn deployed_versions(&self) -> BTreeMap<(u16, u16), u16> {
        self.versions.clone()
    }

    /// The tenant mux on a switch, for targeted control-plane writes
    /// ([`TenantMux::ctrl_for`]) or post-run inspection. `None` when no
    /// tenant occupies the switch.
    pub fn mux_mut(&mut self, label: &str) -> Option<&mut TenantMux> {
        let id = self.switch(label);
        self.net
            .switch_fastpath_mut(id)?
            .as_any_mut()
            .downcast_mut::<TenantMux>()
    }

    /// Registers every admitted tenant's [`NclHost`] counters on `reg`
    /// under `{tenant, host}`-labeled names (e.g.
    /// `ncpr.sender.acked{tenant="a",host="worker1"}`), feeding the
    /// nctel Prometheus/JSON exporters per-tenant series. Hosts whose
    /// application is not an [`NclHost`] are skipped.
    pub fn export_tenant_metrics(&self, reg: &Registry) {
        for t in &self.tenants {
            for (label, hid) in &t.hosts {
                if let Some(host) = self.net.host_app::<NclHost>(*hid) {
                    host.export_metrics(reg, &[("tenant", &t.name), ("host", label)]);
                }
            }
        }
    }

    /// Binds an [`ncwatch`] streaming health engine to this deployment
    /// (DESIGN.md §4.14). The returned [`crate::watch::FabricWatch`]
    /// knows every admitted tenant's hosts and every fabric switch;
    /// drive it with [`crate::watch::FabricWatch::run_watched`] or call
    /// [`crate::watch::FabricWatch::tick`] on your own cadence.
    ///
    /// Conveniences applied here:
    /// * `cfg.diagnosis.deployed_versions` is filled from the live
    ///   version map (kept current by upgrades that completed before
    ///   this call);
    /// * when `cfg.slos` is empty, each admitted tenant gets the
    ///   default guard objectives — unknown-kernel == 0 and a
    ///   retransmit-rate ceiling of 500‰;
    /// * every deploy-time admission rejection is minted as a tick-0
    ///   `admission` incident carrying the cost report.
    ///
    /// `scope` is the event ring triggered diagnoses read; pass the
    /// same scope the deployment was built with (or `None` to diagnose
    /// from window traces alone).
    pub fn watch(&self, mut cfg: ncwatch::WatchConfig, scope: Option<Scope>) -> FabricWatch {
        cfg.diagnosis.deployed_versions = self.versions.clone();
        if cfg.slos.is_empty() {
            for t in &self.tenants {
                cfg.slos.push(ncwatch::SloSpec::new(
                    &format!("{}.unknown_kernel", t.name),
                    &t.name,
                    ncwatch::Objective::UnknownKernelZero,
                ));
                cfg.slos.push(ncwatch::SloSpec::new(
                    &format!("{}.retransmit_rate", t.name),
                    &t.name,
                    ncwatch::Objective::RetransmitCeiling { max_per_mille: 500 },
                ));
            }
        }
        let tenants = self
            .tenants
            .iter()
            .map(|t| (t.name.clone(), t.hosts.clone()))
            .collect();
        let mut switches: Vec<(String, SwitchId)> = self
            .nodes
            .iter()
            .filter_map(|(label, node)| Some((label.as_str().to_string(), node.as_switch()?)))
            .collect();
        switches.sort();
        let mut fw = FabricWatch::new(FabricWatchParts {
            config: cfg,
            tenants,
            switches,
            scope,
        });
        for report in &self.rejections {
            fw.engine_mut()
                .admission_incident(0, &report.tenant, &report.render_json());
        }
        fw
    }

    /// Starts a hitless upgrade of `tenant` to `new_program`: admission
    /// (dual reservation, old + new resident), lint gate, then an
    /// atomic switchover on every occupied switch — the drain keys
    /// (`(kernel, seq)` windows in flight on NCP-R at this instant,
    /// from [`NclHost::in_flight_keys`]) keep routing to the old
    /// version, everything else to the new one. Returns the ticket;
    /// feed it acks ([`Upgrade::acked`]) and call
    /// [`MultiDeployment::finish_upgrade`] once complete.
    pub fn begin_upgrade(
        &mut self,
        tenant: &str,
        new_program: &CompiledProgram,
        drain: Vec<(u16, u32)>,
    ) -> Result<Upgrade, MultiDeployError> {
        let ti = self
            .tenants
            .iter()
            .position(|t| t.name == tenant)
            .ok_or_else(|| MultiDeployError::Admission {
                tenant: tenant.to_string(),
                source: AdmissionError::UnknownTenant {
                    tenant: tenant.to_string(),
                },
            })?;
        let new_ids: BTreeSet<u16> = new_program.kernel_ids.values().copied().collect();
        if new_ids != self.tenants[ti].kernel_ids {
            return Err(MultiDeployError::KernelIdsChanged {
                tenant: tenant.to_string(),
            });
        }
        let (mut upgrade, _plan) = self
            .controller
            .begin_upgrade(tenant, &switch_estimates(new_program))
            .map_err(|source| MultiDeployError::Admission {
                tenant: tenant.to_string(),
                source,
            })?;
        let registry = self.net.metrics().clone();
        if let Err(source) = lint_gate(new_program, upgrade.new_version, &registry, &None) {
            self.controller
                .abort_upgrade(tenant)
                .expect("upgrade just began");
            return Err(MultiDeployError::Lint {
                tenant: tenant.to_string(),
                source,
            });
        }
        let drain_set: BTreeSet<(u16, u32)> = drain.iter().copied().collect();
        let new_version = upgrade.new_version;
        let switch_labels = self.tenants[ti].switches.clone();
        for label in &switch_labels {
            let Some(dp) = backend_datapath(self.backend, new_program, label) else {
                continue;
            };
            let installed = self
                .mux_mut(label)
                .map(|m| m.begin_upgrade(tenant, dp, new_version, drain_set.clone()))
                .unwrap_or(false);
            debug_assert!(installed, "mux slot exists for every occupied switch");
            // Static telemetry follows the *new* version; windows the
            // old version executes during the drain are stamped by the
            // mux's verdict version instead.
            let wire = NodeId::Switch(self.switch(label)).to_wire();
            let kernels = kernel_telemetry(new_program, label, new_version);
            let sid = self.switch(label);
            if let Some(tel) = self.net.switch_telemetry_mut(sid) {
                for (kid, kt) in kernels {
                    self.versions.insert((wire, kid), new_version);
                    tel.kernels.insert(kid, kt);
                }
            }
        }
        upgrade.mark_installed();
        upgrade.begin_drain(drain_set);
        Ok(upgrade)
    }

    /// Retires the old version of a **fully drained** upgrade: every
    /// mux drops the old datapath, the controller returns its
    /// reservation to the pool. Errors (and changes nothing) while
    /// drain windows remain.
    pub fn finish_upgrade(&mut self, upgrade: &Upgrade) -> Result<(), MultiDeployError> {
        self.controller
            .finish_upgrade(upgrade)
            .map_err(|source| MultiDeployError::Admission {
                tenant: upgrade.tenant().to_string(),
                source,
            })?;
        let tenant = upgrade.tenant().to_string();
        let labels: Vec<String> = self
            .tenants
            .iter()
            .find(|t| t.name == tenant)
            .map(|t| t.switches.clone())
            .unwrap_or_default();
        for label in labels {
            if let Some(m) = self.mux_mut(&label) {
                m.finish_upgrade(&tenant);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::allreduce_source;
    use crate::nclc::{compile, CompileConfig};
    use crate::runtime::{OutInvocation, TypedArray};
    use c3::{ScalarType, Value};
    use netsim::CtrlOp;

    /// Six workers, one shared switch: tenant A runs on worker1-3,
    /// tenant B on worker4-6.
    const AND6: &str = "hosts worker 6\nswitch s1\nlink worker* s1\n";

    fn tenant_program(base: u16) -> CompiledProgram {
        let src = allreduce_source(16, 4);
        let mut cfg = CompileConfig::default();
        cfg.masks.insert("allreduce".into(), vec![4]);
        cfg.masks.insert("result".into(), vec![4]);
        cfg.kernel_id_base = base;
        compile(&src, AND6, &cfg).expect("compiles")
    }

    /// Hosts `lo..=hi` running the allreduce workload of one tenant,
    /// each contributing `[w, w, ...]`, with NCP-R reliability on.
    fn tenant_apps(
        program: &CompiledProgram,
        lo: u16,
        hi: u16,
    ) -> HashMap<String, Box<dyn HostApp>> {
        let kid = program.kernel_ids["allreduce"];
        let n = hi - lo + 1;
        let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
        for w in lo..=hi {
            let mut host = NclHost::new(program);
            host.enable_reliability(Default::default());
            let data: Vec<i32> = vec![w as i32; 16];
            host.out(OutInvocation {
                kernel: "allreduce".into(),
                arrays: vec![TypedArray::from_i32(&data)],
                dest: NodeId::Host(HostId((w - lo + 1) % n + lo)),
                start: 0,
                gap: 0,
            })
            .unwrap();
            host.bind_incoming(
                program,
                "allreduce",
                "result",
                &[(ScalarType::I32, 16), (ScalarType::Bool, 1)],
            )
            .unwrap();
            host.done_on_flag(kid, 1);
            apps.insert(format!("worker{w}"), Box::new(host));
        }
        apps
    }

    fn two_tenants() -> Vec<TenantDeploy> {
        let pa = tenant_program(0);
        let pb = tenant_program(100);
        let apps_a = tenant_apps(&pa, 1, 3);
        let apps_b = tenant_apps(&pb, 4, 6);
        vec![
            TenantDeploy {
                spec: TenantSpec::new("tenant-a"),
                program: pa,
                apps: apps_a,
            },
            TenantDeploy {
                spec: TenantSpec::new("tenant-b"),
                program: pb,
                apps: apps_b,
            },
        ]
    }

    fn set_nworkers(dep: &mut MultiDeployment, tenant: &str, n: u32) {
        let op = CtrlOp::RegWrite {
            name: "nworkers".into(),
            index: 0,
            value: Value::u32(n),
        };
        let mux = dep.mux_mut("s1").expect("s1 is multiplexed");
        assert!(mux.ctrl_for(tenant, &op));
    }

    fn assert_tenant_sums(dep: &netsim::Network, program_kid: u16, lo: u16, hi: u16, sum: i32) {
        for w in lo..=hi {
            let host = dep.host_app::<NclHost>(HostId(w)).expect("worker app");
            assert!(host.done_at.is_some(), "worker {w} never completed");
            let mem = host.memory(program_kid).unwrap();
            for i in 0..16 {
                assert_eq!(mem.arrays[0][i], Value::i32(sum), "worker {w} elem {i}");
            }
        }
    }

    /// Two tenants, one switch: both allreduces complete with their own
    /// sums, the mux keeps their state separate, and the per-tenant
    /// metric export labels every series.
    #[test]
    fn two_tenants_share_one_switch() {
        let opts = DeployOptions {
            backend: SwitchBackend::FastPath,
            ..DeployOptions::default()
        };
        let mut dep = deploy_tenants(two_tenants(), opts).expect("deploys");
        assert_eq!(dep.tenants(), vec!["tenant-a", "tenant-b"]);
        assert!(dep.rejections.is_empty());
        set_nworkers(&mut dep, "tenant-a", 3);
        set_nworkers(&mut dep, "tenant-b", 3);
        dep.net.run();
        // Tenant A sums 1+2+3 = 6; tenant B sums 4+5+6 = 15.
        assert_tenant_sums(&dep.net, 1, 1, 3, 6);
        assert_tenant_sums(&dep.net, 101, 4, 6, 15);
        let s1 = dep.switch("s1");
        let stats = dep.net.switch_stats(s1).unwrap();
        assert_eq!(stats.ncp_processed, 24, "12 windows per tenant");
        assert_eq!(stats.unknown_kernel, 0);
        // Per-tenant labeled export: both tenants' series, disjoint.
        let reg = Registry::new();
        dep.export_tenant_metrics(&reg);
        let text = reg.render_prometheus();
        assert!(text.contains("tenant=\"tenant-a\""), "{text}");
        assert!(text.contains("tenant=\"tenant-b\""), "{text}");
        assert!(
            reg.counter_value("ncpr.sender.acked{tenant=\"tenant-a\",host=\"worker1\"}")
                .unwrap()
                > 0
        );
        // Admission accounting survives the run.
        assert_eq!(dep.controller.tenant_version("tenant-a"), Some(1));
        let usage = dep.controller.usage("s1");
        assert!(usage.stages > 0 && usage.sram_bytes > 0);
    }

    /// An over-quota tenant is rejected pre-deploy with a cost report
    /// naming the violated budget; the others run unaffected.
    #[test]
    fn over_budget_tenant_rejected_with_cost_report() {
        let mut tenants = two_tenants();
        // Tenant B's quota cannot fit even one stage.
        tenants[1].spec = ncsched::TenantSpec::with_quota(
            "tenant-b",
            ncsched::TenantQuota::new(0, usize::MAX, usize::MAX),
        );
        let opts = DeployOptions {
            backend: SwitchBackend::FastPath,
            ..DeployOptions::default()
        };
        let mut dep = deploy_tenants(tenants, opts).expect("deploys");
        assert_eq!(dep.tenants(), vec!["tenant-a"]);
        assert_eq!(dep.rejections.len(), 1);
        let report = &dep.rejections[0];
        assert_eq!(report.tenant, "tenant-b");
        assert_eq!(report.budget, ncsched::BudgetKind::TenantQuota);
        assert_eq!(report.limit, 0);
        let json = report.render_json();
        assert!(json.contains("\"budget\":\"tenant_quota\""), "{json}");
        assert!(json.contains("\"resource\":\"stages\""), "{json}");
        // Tenant A still completes; tenant B's hosts idle.
        set_nworkers(&mut dep, "tenant-a", 3);
        dep.net.run();
        assert_tenant_sums(&dep.net, 1, 1, 3, 6);
        assert!(dep.net.host_app::<NclHost>(HostId(4)).is_none());
    }

    /// A live upgrade mid-run: the drain-set snapshot keeps in-flight
    /// windows on v1, fresh windows run v2, nothing is lost, and the
    /// version map flips once the drain completes.
    #[test]
    fn hitless_upgrade_drains_and_reclaims() {
        let opts = DeployOptions {
            backend: SwitchBackend::FastPath,
            ..DeployOptions::default()
        };
        let mut dep = deploy_tenants(two_tenants(), opts).expect("deploys");
        set_nworkers(&mut dep, "tenant-a", 3);
        set_nworkers(&mut dep, "tenant-b", 3);
        // Run just long enough for windows to be in flight.
        dep.net.run_until(2_000);
        let drain = dep
            .net
            .host_app::<NclHost>(HostId(1))
            .expect("worker1")
            .in_flight_keys();
        let mut upgrade = dep
            .begin_upgrade("tenant-a", &tenant_program(0), drain.clone())
            .expect("upgrade admits");
        assert_eq!(upgrade.old_version, 1);
        assert_eq!(upgrade.new_version, 2);
        // The switchover flipped the static version map already.
        assert_eq!(
            dep.deployed_versions()[&(dep.switch("s1").0 | 0x8000, 1)],
            2
        );
        dep.net.run();
        assert_tenant_sums(&dep.net, 1, 1, 3, 6);
        assert_tenant_sums(&dep.net, 101, 4, 6, 15);
        let stats = dep.net.switch_stats(dep.switch("s1")).unwrap();
        assert_eq!(stats.unknown_kernel, 0);
        // Every drain window was retired by the run (NCP-R acked them);
        // feed the acks to the ticket and reclaim.
        assert!(dep
            .net
            .host_app::<NclHost>(HostId(1))
            .unwrap()
            .in_flight_keys()
            .is_empty());
        for (k, s) in drain {
            upgrade.acked(k, s);
        }
        assert!(upgrade.is_complete());
        dep.finish_upgrade(&upgrade).expect("reclaims");
        assert!(!dep.mux_mut("s1").unwrap().is_draining("tenant-a"));
        assert_eq!(dep.controller.tenant_version("tenant-a"), Some(2));
    }

    /// Structural misuse is a hard error, not a rejection.
    #[test]
    fn structural_errors_are_hard() {
        let opts = || DeployOptions {
            backend: SwitchBackend::FastPath,
            ..DeployOptions::default()
        };
        assert!(matches!(
            deploy_tenants(Vec::new(), opts()),
            Err(MultiDeployError::NoTenants)
        ));
        // PISA cannot multiplex.
        assert!(matches!(
            deploy_tenants(
                two_tenants(),
                DeployOptions {
                    backend: SwitchBackend::Pisa,
                    ..DeployOptions::default()
                }
            ),
            Err(MultiDeployError::UnsupportedBackend)
        ));
        // Overlapping kernel-id ranges.
        let pa = tenant_program(0);
        let pb = tenant_program(0);
        let apps_a = tenant_apps(&pa, 1, 3);
        let apps_b = tenant_apps(&pb, 4, 6);
        let clash = vec![
            TenantDeploy {
                spec: TenantSpec::new("a"),
                program: pa,
                apps: apps_a,
            },
            TenantDeploy {
                spec: TenantSpec::new("b"),
                program: pb,
                apps: apps_b,
            },
        ];
        assert!(matches!(
            deploy_tenants(clash, opts()),
            Err(MultiDeployError::KernelIdOverlap { kernel: 1, .. })
        ));
        // Two tenants claiming one host.
        let pa = tenant_program(0);
        let pb = tenant_program(100);
        let apps_a = tenant_apps(&pa, 1, 3);
        let apps_b = tenant_apps(&pb, 3, 5);
        let clash = vec![
            TenantDeploy {
                spec: TenantSpec::new("a"),
                program: pa,
                apps: apps_a,
            },
            TenantDeploy {
                spec: TenantSpec::new("b"),
                program: pb,
                apps: apps_b,
            },
        ];
        assert!(matches!(
            deploy_tenants(clash, opts()),
            Err(MultiDeployError::HostClaimed { .. })
        ));
    }

    /// An upgrade that changes the kernel-id set is refused before it
    /// touches the controller or any switch.
    #[test]
    fn upgrade_with_new_kernel_ids_is_refused() {
        let opts = DeployOptions {
            backend: SwitchBackend::FastPath,
            ..DeployOptions::default()
        };
        let mut dep = deploy_tenants(two_tenants(), opts).expect("deploys");
        let moved = tenant_program(50);
        assert!(matches!(
            dep.begin_upgrade("tenant-a", &moved, Vec::new()),
            Err(MultiDeployError::KernelIdsChanged { .. })
        ));
        assert_eq!(dep.controller.tenant_version("tenant-a"), Some(1));
    }

    /// The streaming watch rides a healthy two-tenant run without a
    /// single incident (no false positives), while its default SLOs and
    /// per-component detectors are armed and evaluating every tick.
    #[test]
    fn healthy_run_stays_incident_free_under_watch() {
        let opts = DeployOptions {
            backend: SwitchBackend::FastPath,
            ..DeployOptions::default()
        };
        let mut dep = deploy_tenants(two_tenants(), opts).expect("deploys");
        set_nworkers(&mut dep, "tenant-a", 3);
        set_nworkers(&mut dep, "tenant-b", 3);
        let cfg = ncwatch::WatchConfig {
            tick_ns: 500,
            ..ncwatch::WatchConfig::default()
        };
        let mut fw = dep.watch(cfg, None);
        // Default guard SLOs were installed per tenant.
        assert_eq!(fw.engine().trackers().len(), 4);
        let fired = fw.run_watched(&mut dep.net, 30_000);
        dep.net.run();
        assert_tenant_sums(&dep.net, 1, 1, 3, 6);
        assert_tenant_sums(&dep.net, 101, 4, 6, 15);
        assert!(fired.is_empty(), "healthy run fired: {fired:?}");
        assert!(fw.engine().incidents().is_empty());
        assert!(fw.engine().ticks() >= 10, "watch actually evaluated");
        assert!(fw.engine().health_summary().contains("no incidents"));
    }

    /// A deploy-time admission rejection surfaces as a tick-0 incident
    /// carrying the machine-readable cost report.
    #[test]
    fn admission_rejection_becomes_incident() {
        let mut tenants = two_tenants();
        tenants[1].spec = ncsched::TenantSpec::with_quota(
            "tenant-b",
            ncsched::TenantQuota::new(0, usize::MAX, usize::MAX),
        );
        let opts = DeployOptions {
            backend: SwitchBackend::FastPath,
            ..DeployOptions::default()
        };
        let dep = deploy_tenants(tenants, opts).expect("deploys");
        let fw = dep.watch(ncwatch::WatchConfig::default(), None);
        let incidents = fw.engine().incidents();
        assert_eq!(incidents.len(), 1);
        let i = &incidents[0];
        assert_eq!(i.kind, "admission");
        assert_eq!(i.tenant, "tenant-b");
        assert_eq!(i.tick, 0);
        assert!(i.suspected.contains("admission"));
        let (k, v) = &i.exemplars[0];
        assert_eq!(k, "cost_report");
        assert!(v.contains("\"budget\":\"tenant_quota\""), "{v}");
        // The report round-trips through its canonical JSON.
        let back = ncwatch::IncidentReport::parse(&i.render_json()).unwrap();
        assert_eq!(&back, i);
    }
}
