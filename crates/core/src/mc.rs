//! Model-checking driver over compiled programs — the bridge between
//! `nclint`'s static verdicts and the `ncmc` bounded model checker.
//!
//! The lint pass says "this kernel *could* misbehave under duplication
//! / interleaving / splits"; this module builds a concrete scenario for
//! each such verdict out of the compiled artifacts — real encoded
//! windows against the real lowered pipeline (replay-filter stages and
//! all) — and asks the checker to adjudicate: either a machine-found,
//! shrunk counterexample schedule, or a bounded-absence certificate.
//! A whole-program *convergence* obligation rides along: under the full
//! fault domain, every complete execution must land in a loss-free
//! serial state. [`crate::deploy::deploy_opts`] can gate deployment on
//! it.
//!
//! Scenario recipes (DESIGN.md §4.13): every window gets its own
//! sending host (ids 1, 2, …) at sequence 0, so NCP-R tracking never
//! aliases and the replay filter judges genuine retransmissions only.
//!
//! * replay hazards — one window of the flagged kernel; domain
//!   quantifies duplication (RTO retransmit) and response loss.
//! * non-atomic RMW — two windows of the flagged kernel; domain
//!   quantifies mid-pipeline splits.
//! * cross-kernel alias — one window of the flagged kernel plus one of
//!   every other kernel that writes the shared array; domain
//!   quantifies delivery order.
//! * unguarded overflow — two windows with near-wrapping payloads
//!   (`0b11` in the top bits); the flagged array's lane banks are
//!   watched for a strict decrease.

use crate::nclc::CompiledProgram;
use c3::{Chunk, HostId, KernelId, NodeId, ScalarType, Value, Window};
use ncl_ir::ir::Module;
use ncl_ir::lint::{access_summary, LintCode, LintDiagnostic, UpdateKind};
use ncl_p4::CompiledSwitch;
use ncmc::{run_check, Bounds, Check, CheckResult, Reduction, System, WindowDef};
pub use ncmc::{Outcome, Schedule};
use pisa::{Pipeline, ResourceModel};
use std::collections::BTreeSet;

/// Model-checking configuration.
#[derive(Clone, Debug)]
pub struct McConfig {
    /// Schedule-space bounds (retries, splits, drops, state cap).
    pub bounds: Bounds,
    /// Exploration reduction. [`Reduction::Dpor`] is the default;
    /// `Naive` exists for ground-truth comparison (E15).
    pub reduction: Reduction,
    /// Value written to every control register copy before exploration
    /// (e.g. `nworkers`). Scenarios inject two concurrent windows, so
    /// the default is 2 — aggregation kernels complete with both.
    pub ctrl_value: u64,
    /// Optional DFS child-order shuffle seed (determinism testing; the
    /// shrunk witness must not depend on it).
    pub order_seed: Option<u64>,
    /// Resource model for loading the compiled pipeline.
    pub model: ResourceModel,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            bounds: Bounds::default(),
            reduction: Reduction::Dpor,
            ctrl_value: 2,
            order_seed: None,
            model: ResourceModel::default(),
        }
    }
}

/// One adjudicated obligation.
#[derive(Clone, Debug)]
pub struct McItem {
    /// The lint code judged, or `None` for whole-program convergence.
    pub code: Option<LintCode>,
    /// Kernel (or `+`-joined kernel set) the scenario exercised.
    pub kernel: String,
    /// Property name (`serializable`, `order-invariant`,
    /// `no-regression`, `convergence`).
    pub property: &'static str,
    /// Scenario windows injected.
    pub windows: usize,
    /// The checker's verdict and counters.
    pub result: CheckResult,
}

impl McItem {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        let code = self
            .code
            .map(|c| c.name().to_string())
            .unwrap_or_else(|| "convergence".to_string());
        format!(
            "{} on {} ({}, {} windows): {}",
            code,
            self.kernel,
            self.property,
            self.windows,
            self.result.outcome.summary()
        )
    }
}

/// All obligations for one switch location.
#[derive(Clone, Debug)]
pub struct McReport {
    /// The switch label.
    pub location: String,
    /// Per-verdict items; the convergence item is last.
    pub items: Vec<McItem>,
}

impl McReport {
    /// Items whose outcome is a counterexample.
    pub fn witnesses(&self) -> impl Iterator<Item = &McItem> {
        self.items.iter().filter(|i| i.result.outcome.is_witness())
    }

    /// Items certified absent within bounds.
    pub fn certificates(&self) -> impl Iterator<Item = &McItem> {
        self.items
            .iter()
            .filter(|i| i.result.outcome.is_certificate())
    }

    /// The whole-program convergence item, if the report includes one.
    pub fn convergence(&self) -> Option<&McItem> {
        self.items.iter().find(|i| i.code.is_none())
    }

    /// Whether every obligation resolved to a witness or a certificate
    /// (no state-cap truncation).
    pub fn conclusive(&self) -> bool {
        self.items
            .iter()
            .all(|i| i.result.outcome.is_witness() || i.result.outcome.is_certificate())
    }
}

/// Model-checking setup failure.
#[derive(Clone, Debug)]
pub enum McError {
    /// The label names no compiled switch.
    UnknownLocation(String),
    /// The compiled pipeline failed to load under the given model.
    Load {
        /// The switch label.
        location: String,
        /// Loader report.
        error: String,
    },
    /// A scenario kernel is missing from the module or the checked
    /// program (stale diagnostic).
    UnknownKernel {
        /// The switch label.
        location: String,
        /// The missing kernel.
        kernel: String,
    },
}

impl std::fmt::Display for McError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McError::UnknownLocation(l) => write!(f, "no compiled switch at `{l}`"),
            McError::Load { location, error } => {
                write!(f, "pipeline for `{location}` failed to load: {error}")
            }
            McError::UnknownKernel { location, kernel } => {
                write!(f, "kernel `{kernel}` not found in module at `{location}`")
            }
        }
    }
}

impl std::error::Error for McError {}

/// Payload pattern for scenario windows.
#[derive(Clone, Copy)]
enum Fill {
    /// Small distinct values (base per window, offset per lane) so
    /// serial references are distinguishable.
    Distinct(u64),
    /// `0b11` in the element's top bits — two deliveries wrap a
    /// monotone accumulator.
    Wrap,
}

/// Builds scenario windows against one compiled location.
struct Scenario<'a> {
    program: &'a CompiledProgram,
    compiled: &'a CompiledSwitch,
    module: &'a Module,
    location: &'a str,
    windows: Vec<WindowDef>,
}

impl<'a> Scenario<'a> {
    fn new(program: &'a CompiledProgram, location: &'a str) -> Result<Scenario<'a>, McError> {
        let compiled = program
            .switch(location)
            .ok_or_else(|| McError::UnknownLocation(location.to_string()))?;
        let module = program
            .module(location)
            .ok_or_else(|| McError::UnknownLocation(location.to_string()))?;
        Ok(Scenario {
            program,
            compiled,
            module,
            location,
            windows: Vec::new(),
        })
    }

    /// Certificate/report program label.
    fn program_name(&self) -> String {
        format!("{}@{}", self.module.name, self.location)
    }

    /// Appends one window of `kernel` from a fresh sending host.
    fn push(&mut self, kernel: &str, fill: Fill) -> Result<(), McError> {
        let missing = || McError::UnknownKernel {
            location: self.location.to_string(),
            kernel: kernel.to_string(),
        };
        let kir = self.module.kernel(kernel).ok_or_else(missing)?;
        let info = self.program.checked.kernel(kernel).ok_or_else(missing)?;
        let id = *self
            .compiled
            .kernel_ids
            .get(kernel)
            .or_else(|| self.program.kernel_ids.get(kernel))
            .ok_or_else(missing)?;
        let sender = self.windows.len() as u16 + 1;
        let mut chunks = Vec::new();
        for (i, p) in info.window_params().enumerate() {
            let lanes = kir.mask.get(i).copied().unwrap_or(1).max(1) as usize;
            let size = p.elem.size();
            let mut data = Vec::with_capacity(lanes * size);
            for lane in 0..lanes {
                let v = payload(fill, p.elem, sender, i, lane);
                data.extend_from_slice(&v.to_be_bytes()[8 - size..]);
            }
            chunks.push(Chunk { offset: 0, data });
        }
        let w = Window {
            kernel: KernelId(id),
            seq: 0,
            sender: HostId(sender),
            from: NodeId::Host(HostId(sender)),
            last: false,
            chunks,
            ext: vec![0; self.program.checked.window_ext.size()],
        };
        let packet =
            ncl_p4::codegen::encode_window_for_test(&w, self.program.checked.window_ext.size());
        self.windows.push(WindowDef {
            name: format!("{kernel}#{sender}"),
            kernel: id,
            sender,
            seq: 0,
            packet,
        });
        Ok(())
    }

    /// Loads the pipeline, seeds control registers, and composes the
    /// model-checked system.
    fn system(&self, cfg: &McConfig) -> Result<System, McError> {
        let mut pipe = Pipeline::load(self.compiled.pipeline.clone(), cfg.model).map_err(|e| {
            McError::Load {
                location: self.location.to_string(),
                error: e.to_string(),
            }
        })?;
        // Control registers (e.g. `nworkers`) before `System::new`: the
        // initial snapshot must already carry them, or every restore
        // would erase the seeding.
        for copies in self.compiled.ctrl_regs.values() {
            for copy in copies {
                let mut idx = 0;
                while pipe.register_write(copy, idx, Value::new(ScalarType::U32, cfg.ctrl_value)) {
                    idx += 1;
                }
            }
        }
        Ok(System::new(pipe, self.windows.clone(), cfg.bounds))
    }
}

/// One scenario payload element.
fn payload(fill: Fill, ty: ScalarType, sender: u16, param: usize, lane: usize) -> u64 {
    if ty == ScalarType::Bool {
        // Flags (e.g. a KVS `update` selector) are held truthy so the
        // scenario exercises the store path the lint flagged.
        return 1;
    }
    match fill {
        Fill::Distinct(base) => base + sender as u64 * 16 + param as u64 * 4 + lane as u64,
        Fill::Wrap => 0b11u64 << (ty.bits() - 2),
    }
}

/// Adjudicates one lint verdict by code. `Ok(None)` when the code is
/// not schedule-checkable (`resource-overrun`).
///
/// This is the diagnostic-free entry point: tests hand it a
/// `(code, kernel, state)` triple directly, without materializing a
/// [`LintDiagnostic`] — the scenario depends on nothing else.
pub fn check_code(
    program: &CompiledProgram,
    location: &str,
    code: LintCode,
    kernel: &str,
    state: Option<&str>,
    cfg: &McConfig,
) -> Result<Option<McItem>, McError> {
    let Some((mut sys, check)) = scenario_for(program, location, code, kernel, state, cfg)? else {
        return Ok(None);
    };
    let windows = sys.windows().len();
    let sc = Scenario::new(program, location)?;
    let result = run_check(
        &mut sys,
        &sc.program_name(),
        &check,
        cfg.reduction,
        cfg.order_seed,
    );
    Ok(Some(McItem {
        code: Some(code),
        kernel: kernel.to_string(),
        property: check.property_name(),
        windows,
        result,
    }))
}

/// Builds the scenario system and check for a `(code, kernel, array)`
/// verdict without exploring — corpus-replay tests re-run committed
/// schedules against it via [`ncmc::replay_violates`]. `Ok(None)` when
/// the code is not schedule-checkable.
pub fn scenario_for(
    program: &CompiledProgram,
    location: &str,
    code: LintCode,
    kernel: &str,
    state: Option<&str>,
    cfg: &McConfig,
) -> Result<Option<(System, Check)>, McError> {
    if ncmc::plan_for(code).is_none() {
        return Ok(None);
    }
    let mut sc = Scenario::new(program, location)?;
    let mut watch = Vec::new();
    match code {
        LintCode::ReplayUnsafe | LintCode::ReplayUnsafeNoFilter => {
            sc.push(kernel, Fill::Distinct(16))?;
        }
        LintCode::NonAtomicRmw => {
            sc.push(kernel, Fill::Distinct(16))?;
            sc.push(kernel, Fill::Distinct(64))?;
        }
        LintCode::CrossKernelAlias => {
            sc.push(kernel, Fill::Distinct(16))?;
            for partner in alias_partners(sc.module, program, kernel, state) {
                sc.push(&partner, Fill::Distinct(64))?;
            }
            if sc.windows.len() == 1 {
                // No writing partner resolvable (hand-altered program):
                // interleave the kernel with itself.
                sc.push(kernel, Fill::Distinct(64))?;
            }
        }
        LintCode::UnguardedOverflow => {
            sc.push(kernel, Fill::Wrap)?;
            sc.push(kernel, Fill::Wrap)?;
            if let Some(array) = state {
                // Watch the physical lane banks the array lowered to
                // (falling back to the logical name for unsplit arrays).
                watch = sc
                    .compiled
                    .lane_banks
                    .get(array)
                    .cloned()
                    .unwrap_or_else(|| vec![array.to_string()]);
            }
        }
        LintCode::ResourceOverrun => unreachable!("filtered by plan_for"),
    }
    let check = Check::for_lint(code, kernel, watch).expect("schedule-checkable code");
    let sys = sc.system(cfg)?;
    Ok(Some((sys, check)))
}

/// Adjudicates one lint diagnostic (`Ok(None)` when not
/// schedule-checkable).
pub fn check_diag(
    program: &CompiledProgram,
    location: &str,
    diag: &LintDiagnostic,
    cfg: &McConfig,
) -> Result<Option<McItem>, McError> {
    check_code(
        program,
        location,
        diag.code,
        &diag.kernel,
        diag.state.as_deref(),
        cfg,
    )
}

/// The whole-program convergence obligation for a location: two
/// concurrent windows of every kernel, full fault domain.
pub fn convergence_check(
    program: &CompiledProgram,
    location: &str,
    cfg: &McConfig,
) -> Result<McItem, McError> {
    let mut sc = Scenario::new(program, location)?;
    let kernels: Vec<String> = sc.module.kernels.iter().map(|k| k.name.clone()).collect();
    for (i, k) in kernels.iter().enumerate() {
        sc.push(k, Fill::Distinct(16 + i as u64 * 128))?;
        sc.push(k, Fill::Distinct(64 + i as u64 * 128))?;
    }
    let check = Check::convergence(&kernels.join("+"));
    let mut sys = sc.system(cfg)?;
    let result = run_check(
        &mut sys,
        &sc.program_name(),
        &check,
        cfg.reduction,
        cfg.order_seed,
    );
    Ok(McItem {
        code: None,
        kernel: check.kernel.clone(),
        property: check.property_name(),
        windows: sc.windows.len(),
        result,
    })
}

/// Every obligation for one switch location: each surviving
/// schedule-checkable lint warning (deduplicated by code × kernel ×
/// array), then convergence.
pub fn model_check_switch(
    program: &CompiledProgram,
    location: &str,
    cfg: &McConfig,
) -> Result<McReport, McError> {
    let mut items = Vec::new();
    let mut seen = BTreeSet::new();
    for (label, diags) in &program.lints {
        if label.as_str() != location {
            continue;
        }
        for d in diags {
            if !d.schedule_checkable() {
                continue;
            }
            if !seen.insert((d.code, d.kernel.clone(), d.state.clone())) {
                continue;
            }
            if let Some(item) = check_diag(program, location, d, cfg)? {
                items.push(item);
            }
        }
    }
    items.push(convergence_check(program, location, cfg)?);
    Ok(McReport {
        location: location.to_string(),
        items,
    })
}

/// The other kernels writing the diagnosed array at this location —
/// the interleaving partners a cross-kernel-alias scenario needs.
fn alias_partners(
    module: &Module,
    program: &CompiledProgram,
    kernel: &str,
    state: Option<&str>,
) -> Vec<String> {
    let Some(array) = state else {
        return Vec::new();
    };
    let mut partners: Vec<String> = access_summary(module, &program.lint_config)
        .into_iter()
        .filter(|a| a.array == array && a.kernel != kernel && a.kind > UpdateKind::ReadOnly)
        .map(|a| a.kernel)
        .collect();
    partners.sort();
    partners.dedup();
    partners
}
