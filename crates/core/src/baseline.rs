//! Handwritten comparison artifacts.
//!
//! [`handwritten_netcache_pipeline`] is the paper's Fig. 1b built by
//! hand against the raw `pisa` API — the way a P4 programmer constructs
//! an in-network cache today: explicit PHV layout, a `CacheLookup` MAT
//! writing hit/idx metadata, a `CacheValid` register check, and one
//! `ReadN` register action per value word. It serves the *same NCP
//! `query` wire format* the compiled kernel serves, so E2/E3 can compare
//! the two implementations end to end, and E3 additionally compares
//! code sizes: the NCL source (Fig. 5), the nclc-generated P4, and the
//! [`handwritten_netcache_p4`] a human would write.

use c3::{BinOp, ScalarType, Value};
use pisa::{
    ActionDef, ActionRef, Arg, DeparserSpec, Extract, FieldClass, MatchKind, ParserSpec, PhvLayout,
    PipelineConfig, PrimOp, RegisterArrayDef, StageConfig, TableDef,
};
use std::collections::HashMap;

/// Builds the handwritten NetCache-style GET pipeline.
///
/// `kernel_id` selects the NCP parser branch (must match the client's
/// `query` windows); the cache holds `slots` items of `val_words` u32
/// words. Only the GET path is implemented — exactly the scope of the
/// paper's Fig. 1b sketch.
pub fn handwritten_netcache_pipeline(
    kernel_id: u16,
    slots: usize,
    val_words: usize,
) -> PipelineConfig {
    let mut layout = PhvLayout::default();
    // NCP header (same order as the generated parser).
    let ncp_fields = [
        ("ncp.magic", ScalarType::U16),
        ("ncp.version", ScalarType::U8),
        ("ncp.flags", ScalarType::U8),
        ("ncp.kernel", ScalarType::U16),
        ("ncp.seq", ScalarType::U32),
        ("ncp.sender", ScalarType::U16),
        ("ncp.from", ScalarType::U16),
        ("ncp.nchunks", ScalarType::U8),
        ("ncp.ext_len", ScalarType::U8),
    ];
    let mut ncp = HashMap::new();
    for (n, ty) in ncp_fields {
        ncp.insert(n, layout.add(n, ty, FieldClass::Header));
    }
    // Window of `query`: key chunk desc + key, val chunk desc + words,
    // update chunk desc + flag.
    let mut hdr = vec![];
    for i in 0..3 {
        hdr.push(layout.add(format!("w.c{i}_off"), ScalarType::U32, FieldClass::Header));
        hdr.push(layout.add(format!("w.c{i}_len"), ScalarType::U16, FieldClass::Header));
    }
    let key = layout.add("w.key", ScalarType::U64, FieldClass::Header);
    let vals: Vec<_> = (0..val_words)
        .map(|i| layout.add(format!("w.val{i}"), ScalarType::U32, FieldClass::Header))
        .collect();
    let update = layout.add("w.update", ScalarType::U8, FieldClass::Header);
    // Metadata, Fig. 1b style: meta.hit, meta.idx, meta.valid.
    let hit = layout.add("meta.hit", ScalarType::Bool, FieldClass::Metadata);
    let idx = layout.add("meta.idx", ScalarType::U8, FieldClass::Metadata);
    let valid = layout.add("meta.valid", ScalarType::Bool, FieldClass::Metadata);
    let serve = layout.add("meta.serve", ScalarType::Bool, FieldClass::Metadata);
    let is_get = layout.add("meta.is_get", ScalarType::Bool, FieldClass::Metadata);
    let fwd_code = layout.add("meta.fwd", ScalarType::U8, FieldClass::Metadata);

    // Parser/deparser.
    let mut extracts: Vec<Extract> = ncp_fields
        .iter()
        .map(|(n, _)| Extract { field: ncp[n] })
        .collect();
    let branch: Vec<Extract> = hdr.iter().map(|&f| Extract { field: f }).collect();
    // Payload order: key, vals, update (chunk descriptors precede all
    // payload in NCP, so re-order: all descs already pushed above).
    let mut payload = vec![Extract { field: key }];
    payload.extend(vals.iter().map(|&f| Extract { field: f }));
    payload.push(Extract { field: update });
    // NCP carries all chunk descriptors before the payload.
    let full_branch: Vec<Extract> = branch.into_iter().chain(payload).collect();
    extracts.truncate(ncp_fields.len());
    let parser = ParserSpec {
        common: extracts,
        verify: vec![(ncp["ncp.magic"], 0x4E43), (ncp["ncp.version"], 1)],
        select: Some(ncp["ncp.kernel"]),
        branches: HashMap::from([(kernel_id as u64, full_branch)]),
    };
    let mut deparse_fields: Vec<_> = ncp_fields.iter().map(|(n, _)| ncp[n]).collect();
    let mut debranch: Vec<_> = hdr.clone();
    debranch.push(key);
    debranch.extend(vals.iter().copied());
    debranch.push(update);
    let deparser = DeparserSpec {
        common: std::mem::take(&mut deparse_fields),
        select: Some(ncp["ncp.kernel"]),
        branches: HashMap::from([(kernel_id as u64, debranch)]),
    };

    // Stage 0: classify (GET from a client) — Fig. 1b line 8.
    let classify = TableDef::always(
        "Classify",
        ActionDef {
            name: "classify".into(),
            ops: vec![PrimOp::Alu {
                guard: None,
                dst: is_get,
                op: BinOp::Eq,
                a: Arg::Field(update),
                b: Arg::Const(Value::new(ScalarType::U8, 0)),
            }],
        },
    );

    // Stage 1: CacheLookup MAT — Fig. 1b lines 1, 3-4, 7.
    let cache_lookup = TableDef {
        name: "CacheLookup".into(),
        keys: vec![(key, MatchKind::Exact)],
        actions: vec![
            ActionDef {
                name: "miss".into(),
                ops: vec![PrimOp::Mov {
                    guard: None,
                    dst: hit,
                    src: Arg::Const(Value::bool(false)),
                }],
            },
            ActionDef {
                name: "CacheHit".into(),
                ops: vec![
                    PrimOp::Mov {
                        guard: None,
                        dst: hit,
                        src: Arg::Const(Value::bool(true)),
                    },
                    PrimOp::Mov {
                        guard: None,
                        dst: idx,
                        src: Arg::Param(0),
                    },
                ],
            },
        ],
        entries: vec![],
        default_action: Some(ActionRef(0)),
        size: slots,
    };

    // Stage 2: ReadValid — Fig. 1b lines 2, 5, 9-10.
    let read_valid = TableDef::always(
        "CacheValid",
        ActionDef {
            name: "ReadValid".into(),
            ops: vec![PrimOp::RegRead {
                guard: Some(hit),
                dst: valid,
                reg: 0,
                idx: Arg::Field(idx),
            }],
        },
    );

    // Stage 3: serve = hit && valid && is_get.
    let decide = TableDef::always(
        "Decide",
        ActionDef {
            name: "decide".into(),
            ops: vec![
                PrimOp::Alu {
                    guard: None,
                    dst: serve,
                    op: BinOp::And,
                    a: Arg::Field(hit),
                    b: Arg::Field(valid),
                },
                PrimOp::Alu {
                    guard: None,
                    dst: serve,
                    op: BinOp::And,
                    a: Arg::Field(serve),
                    b: Arg::Field(is_get),
                },
            ],
        },
    );

    // Stage 4: Read0..ReadN + reflect — Fig. 1b line 11.
    let mut read_ops = Vec::new();
    for (i, &vf) in vals.iter().enumerate() {
        read_ops.push(PrimOp::RegRead {
            guard: Some(serve),
            dst: vf,
            reg: 1 + i as u16,
            idx: Arg::Field(idx),
        });
    }
    read_ops.push(PrimOp::Mov {
        guard: Some(serve),
        dst: fwd_code,
        src: Arg::Const(Value::new(ScalarType::U8, 1)), // reflect
    });
    let read_value = TableDef::always(
        "ReadValue",
        ActionDef {
            name: "Read0_N".into(),
            ops: read_ops,
        },
    );

    // Registers: Valid + one per value word (the Read0/Read1 split).
    let mut registers = vec![RegisterArrayDef {
        name: "Valid".into(),
        elem: ScalarType::Bool,
        len: slots,
        init: vec![],
    }];
    for i in 0..val_words {
        registers.push(RegisterArrayDef {
            name: format!("Value{i}"),
            elem: ScalarType::U32,
            len: slots,
            init: vec![],
        });
    }

    PipelineConfig {
        name: "netcache_handwritten".into(),
        layout,
        parser,
        deparser,
        stages: vec![
            StageConfig {
                tables: vec![classify],
            },
            StageConfig {
                tables: vec![cache_lookup],
            },
            StageConfig {
                tables: vec![read_valid],
            },
            StageConfig {
                tables: vec![decide],
            },
            StageConfig {
                tables: vec![read_value],
            },
        ],
        registers,
        fwd_code: Some(fwd_code),
        fwd_label: None,
    }
}

/// What the same cache looks like as handwritten P4-16 — the E3
/// comparison document (expanded from the paper's Fig. 1b sketch to a
/// complete program the way NetCache's public source is).
pub fn handwritten_netcache_p4(slots: usize, val_words: usize) -> String {
    let mut s = String::new();
    s.push_str(
        r#"#include <core.p4>
#include <v1model.p4>

header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
header ipv4_t {
    bit<4> version; bit<4> ihl; bit<8> tos; bit<16> len;
    bit<16> id; bit<3> flags; bit<13> frag; bit<8> ttl;
    bit<8> proto; bit<16> csum; bit<32> src; bit<32> dst;
}
header udp_t { bit<16> sport; bit<16> dport; bit<16> len; bit<16> csum; }
header cache_t {
    bit<16> magic; bit<8> version; bit<8> flags; bit<16> op;
    bit<32> seq; bit<16> sender; bit<16> from;
    bit<64> key; bit<8> update;
}
"#,
    );
    for i in 0..val_words {
        s.push_str(&format!("header val{i}_t {{ bit<32> v; }}\n"));
    }
    s.push_str(
        r#"
struct metadata_t { bit<1> hit; bit<8> idx; bit<1> valid; bit<1> serve; }
struct headers_t {
    ethernet_t ethernet; ipv4_t ipv4; udp_t udp; cache_t cache;
"#,
    );
    for i in 0..val_words {
        s.push_str(&format!("    val{i}_t val{i};\n"));
    }
    s.push_str(
        r#"}

parser CacheParser(packet_in pkt, out headers_t hdr,
                   inout metadata_t meta, inout standard_metadata_t sm) {
    state start { pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etype) { 0x0800: parse_ipv4; default: accept; } }
    state parse_ipv4 { pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.proto) { 17: parse_udp; default: accept; } }
    state parse_udp { pkt.extract(hdr.udp);
        transition select(hdr.udp.dport) { 9047: parse_cache; default: accept; } }
    state parse_cache { pkt.extract(hdr.cache);
"#,
    );
    for i in 0..val_words {
        s.push_str(&format!("        pkt.extract(hdr.val{i});\n"));
    }
    s.push_str("        transition accept; }\n}\n\n");
    s.push_str(&format!("Register<bit<1>, bit<32>>({slots}) Valid;\n"));
    for i in 0..val_words {
        s.push_str(&format!("Register<bit<32>, bit<32>>({slots}) Value{i};\n"));
    }
    s.push_str(
        r#"
control CacheIngress(inout headers_t hdr, inout metadata_t meta,
                     inout standard_metadata_t sm) {
    action CacheHit(bit<8> idx) { meta.hit = 1; meta.idx = idx; }
    action CacheMiss() { meta.hit = 0; }
    table CacheLookup {
        key = { hdr.cache.key: exact; }
        actions = { CacheHit; CacheMiss; }
        default_action = CacheMiss();
"#,
    );
    s.push_str(&format!("        size = {slots};\n    }}\n"));
    s.push_str(
        r#"    action ReadValid() { Valid.read(meta.valid, (bit<32>)meta.idx); }
    table CacheValid { actions = { ReadValid; } default_action = ReadValid(); }
"#,
    );
    for i in 0..val_words {
        s.push_str(&format!(
            "    action Read{i}() {{ Value{i}.read(hdr.val{i}.v, (bit<32>)meta.idx); }}\n\
                 table ReadT{i} {{ actions = {{ Read{i}; }} default_action = Read{i}(); }}\n"
        ));
    }
    s.push_str(
        r#"    action ipv4_forward(bit<48> mac, bit<9> port) {
        hdr.ethernet.dst = mac; sm.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    action ipv4_drop() { mark_to_drop(sm); }
    table ipv4_lpm {
        key = { hdr.ipv4.dst: lpm; }
        actions = { ipv4_forward; ipv4_drop; }
        default_action = ipv4_drop(); size = 1024;
    }
    action reflect() {
        bit<32> tmp_ip = hdr.ipv4.src; hdr.ipv4.src = hdr.ipv4.dst; hdr.ipv4.dst = tmp_ip;
        bit<16> tmp_p = hdr.udp.sport; hdr.udp.sport = hdr.udp.dport; hdr.udp.dport = tmp_p;
        sm.egress_spec = sm.ingress_port;
    }
    apply {
        if (hdr.cache.isValid() && hdr.cache.update == 0) {
            CacheLookup.apply();
            if (meta.hit == 1) {
                CacheValid.apply();
                if (meta.valid == 1) {
"#,
    );
    for i in 0..val_words {
        s.push_str(&format!("                    ReadT{i}.apply();\n"));
    }
    s.push_str(
        r#"                    reflect();
                    return;
                }
            }
        }
        ipv4_lpm.apply();
    }
}

control CacheDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet); pkt.emit(hdr.ipv4); pkt.emit(hdr.udp);
        pkt.emit(hdr.cache);
"#,
    );
    for i in 0..val_words {
        s.push_str(&format!("        pkt.emit(hdr.val{i});\n"));
    }
    s.push_str(
        r#"    }
}

control NoChecksum(inout headers_t hdr, inout metadata_t meta) { apply {} }
control NoEgress(inout headers_t hdr, inout metadata_t meta,
                 inout standard_metadata_t sm) { apply {} }

V1Switch(CacheParser(), NoChecksum(), CacheIngress(), NoEgress(),
         NoChecksum(), CacheDeparser()) main;
"#,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisa::{Entry, MatchPattern, Pipeline, ResourceModel};

    #[test]
    fn handwritten_pipeline_loads() {
        let cfg = handwritten_netcache_pipeline(1, 16, 8);
        let report = cfg.report(&ResourceModel::default());
        assert!(report.accepted(), "{:?}", report.violations);
        Pipeline::load(cfg, ResourceModel::default()).unwrap();
    }

    #[test]
    fn handwritten_cache_serves_gets() {
        let cfg = handwritten_netcache_pipeline(1, 16, 4);
        let mut pipe = Pipeline::load(cfg, ResourceModel::default()).unwrap();
        // Control plane: key 42 → slot 2, valid, value {10,20,30,40}.
        pipe.table_insert(
            "CacheLookup",
            Entry {
                patterns: vec![MatchPattern::exact(42)],
                action: ActionRef(1),
                args: vec![Value::new(ScalarType::U8, 2)],
                priority: 0,
            },
        )
        .unwrap();
        pipe.register_write("Valid", 2, Value::bool(true));
        for (i, v) in [10u32, 20, 30, 40].iter().enumerate() {
            pipe.register_write(&format!("Value{i}"), 2, Value::u32(*v));
        }
        // A GET query window for key 42 (NCP encoding via ncp crate).
        let w = c3::Window {
            kernel: c3::KernelId(1),
            seq: 0,
            sender: c3::HostId(1),
            from: c3::NodeId::Host(c3::HostId(1)),
            last: false,
            chunks: vec![
                c3::Chunk {
                    offset: 0,
                    data: 42u64.to_be_bytes().to_vec(),
                },
                c3::Chunk {
                    offset: 0,
                    data: vec![0; 16],
                },
                c3::Chunk {
                    offset: 0,
                    data: vec![0],
                },
            ],
            ext: vec![],
        };
        let pkt = ncp::codec::encode_window(&w, 0);
        let out = pipe.process(&pkt).expect("parses");
        assert_eq!(out.fwd_code, 1, "cache hit must reflect");
        let back = ncp::codec::decode_window(&out.packet).unwrap();
        assert_eq!(back.chunks[1].get(ScalarType::U32, 0), Value::u32(10));
        assert_eq!(back.chunks[1].get(ScalarType::U32, 3), Value::u32(40));
        // A miss passes through.
        let mut w2 = w.clone();
        w2.chunks[0].data = 7u64.to_be_bytes().to_vec();
        let out = pipe.process(&ncp::codec::encode_window(&w2, 0)).unwrap();
        assert_eq!(out.fwd_code, 0);
    }

    #[test]
    fn handwritten_cache_ignores_puts() {
        let cfg = handwritten_netcache_pipeline(1, 8, 4);
        let mut pipe = Pipeline::load(cfg, ResourceModel::default()).unwrap();
        pipe.table_insert(
            "CacheLookup",
            Entry {
                patterns: vec![MatchPattern::exact(42)],
                action: ActionRef(1),
                args: vec![Value::new(ScalarType::U8, 0)],
                priority: 0,
            },
        )
        .unwrap();
        pipe.register_write("Valid", 0, Value::bool(true));
        let w = c3::Window {
            kernel: c3::KernelId(1),
            seq: 0,
            sender: c3::HostId(1),
            from: c3::NodeId::Host(c3::HostId(1)),
            last: false,
            chunks: vec![
                c3::Chunk {
                    offset: 0,
                    data: 42u64.to_be_bytes().to_vec(),
                },
                c3::Chunk {
                    offset: 0,
                    data: vec![0; 16],
                },
                c3::Chunk {
                    offset: 0,
                    data: vec![1], // PUT
                },
            ],
            ext: vec![],
        };
        let out = pipe.process(&ncp::codec::encode_window(&w, 0)).unwrap();
        assert_eq!(out.fwd_code, 0, "PUTs pass to the server");
    }

    #[test]
    fn handwritten_p4_is_substantial() {
        let p4 = handwritten_netcache_p4(256, 32);
        let lines = ncl_p4::p4emit::effective_lines(&p4);
        assert!(lines > 100, "handwritten P4 has {lines} lines");
        assert!(p4.contains("CacheLookup"));
        assert!(p4.contains("Read31"));
    }
}
