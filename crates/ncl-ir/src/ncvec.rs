//! ncvec — the width-specialized SIMD execution tier (DESIGN §4.11).
//!
//! The third execution tier below the micro-op fast path: where the
//! lowering's `fuse_element_runs` left a fused element-wise run
//! ([`crate::exec`]'s `VecAccum` / `VecRegToWin` / `VecWinToReg`), this
//! module executes the run's lane-packable body as explicit
//! width-specialized lane loops over the raw big-endian window bytes —
//! one `u8x32` / `u16x16` / `u32x8` / `u64x4` block shape per scalar
//! width — instead of the per-element slot/bounds/dispatch machinery of
//! the scalar loops.
//!
//! # Dispatch and fallback rules
//!
//! Every entry point returns `bool`: `true` means the run executed here
//! (bit-identically to the scalar loops), `false` means the caller must
//! run the scalar path. The tier declines — and the fast path falls
//! back with identical results, never a panic — when:
//!
//! - the host offers no usable lanes ([`level`] is [`SimdLevel::Scalar`]:
//!   `NCVEC_FORCE_SCALAR=1`, [`set_force_scalar`], or a build with no
//!   vectorizable target),
//! - the run's element types are not uniform (mixed-width accumulates
//!   take the `Value`-typed scalar loop, exactly as before),
//! - the slots do not pack into consecutive lanes: the index-add would
//!   wrap its type width, or the register array's power-of-two mask
//!   would wrap inside the body (lane-crossing slot strides),
//! - the in-bounds body is shorter than [`MIN_BODY`] groups (dispatch
//!   overhead would dominate).
//!
//! A headless first group (which reads the base register unmasked) and
//! the ragged tail past the chunk's last full element run through the
//! scalar epilogues — the same range-based loops the scalar tier uses,
//! so the semantics cannot drift. Runs guarded by `CmpBr` need no
//! special casing: fusion is intra-block, so a guarded run is reached
//! (or skipped) by ordinary control flow and executes identically.
//!
//! # Width specialization
//!
//! The body loops operate on pre-sliced regions — `&data[a..b]` window
//! bytes and `&mut arr[s0..s0+w]` register slots — with per-element
//! work reduced to a fixed-width big-endian load, a truncating add (for
//! accumulate), and a `Value` store. On x86-64 hosts with AVX2 the
//! loops are additionally instantiated inside `#[target_feature]`
//! wrappers so the compiler emits 256-bit loads and byte-shuffles for
//! the window side; elsewhere the same portable loops run at whatever
//! width the baseline target offers. Step-budget accounting is
//! unchanged: the caller's `vec_iters` already decided how many groups
//! `m` execute, and partial (budget-exhausted) runs vectorize like any
//! other — the tier only ever executes groups `< m`.

use crate::exec::{
    be_load, be_store, vec_accum_scalar, vec_reg_to_win_scalar, vec_win_to_reg_scalar, VecOp,
};
use c3::{Chunk, ScalarType, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The lane width tier a fused run executes at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimdLevel {
    /// No lane execution: every fused run takes the scalar loops.
    Scalar,
    /// Portable lane loops at the build target's baseline vector width.
    Lanes,
    /// Lane loops instantiated with AVX2 (runtime-detected, x86-64).
    Avx2,
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Lanes => "lanes",
            SimdLevel::Avx2 => "avx2",
        })
    }
}

/// Smallest lane-packable body worth leaving the scalar loop for.
/// Shorter runs stay scalar — identical results either way; this only
/// bounds dispatch overhead.
pub const MIN_BODY: u32 = 8;

fn force_flag() -> &'static AtomicBool {
    static F: OnceLock<AtomicBool> = OnceLock::new();
    F.get_or_init(|| {
        AtomicBool::new(std::env::var_os("NCVEC_FORCE_SCALAR").is_some_and(|v| v == "1"))
    })
}

/// Forces (or un-forces) the scalar tier process-wide, overriding the
/// `NCVEC_FORCE_SCALAR` environment gate it is initialized from. The
/// A/B switch the E13 harness flips between arms; tests that want a
/// per-kernel override use `CompiledKernel::with_simd` instead.
pub fn set_force_scalar(on: bool) {
    force_flag().store(on, Ordering::Relaxed);
}

/// Whether the scalar tier is currently forced (env or programmatic).
pub fn force_scalar() -> bool {
    force_flag().load(Ordering::Relaxed)
}

fn detected() -> SimdLevel {
    static L: OnceLock<SimdLevel> = OnceLock::new();
    *L.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        if std::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        SimdLevel::Lanes
    })
}

/// The effective lane tier: [`SimdLevel::Scalar`] when forced, else the
/// runtime-detected host capability.
pub fn level() -> SimdLevel {
    if force_scalar() {
        SimdLevel::Scalar
    } else {
        detected()
    }
}

/// The lane-packable body of a fused run: iterations `lo..hi` write the
/// consecutive register slots `s0..s0 + (hi - lo)` and read the
/// consecutive, fully in-bounds chunk elements `idx0+lo..idx0+hi`.
struct Plan {
    lo: u32,
    hi: u32,
    s0: usize,
}

/// Decides whether iterations of the run pack into consecutive lanes,
/// mirroring `VecOp::slot` exactly: for `i` in `lo..hi` the slot is
/// `(base + idx0 + i) & imask & amask`, which equals `s0 + (i - lo)`
/// precisely when neither the index-type mask nor the array mask wraps
/// across the body — the two conditions checked here. A headless first
/// group (base bits used unmasked) is excluded from the body and runs
/// scalar, as does everything past the chunk's last full element.
fn plan(v: &VecOp, m: u32, base_bits: u64, arr_len: usize, data_len: usize) -> Option<Plan> {
    let nsz = v.wty.size();
    let lo: u32 = if v.head_cost < v.cost { 1 } else { 0 };
    // Elements fully inside the chunk, counted from iteration 0; later
    // iterations read zeros (or skip stores) and take the scalar tail.
    let in_bounds = (data_len / nsz).saturating_sub(v.idx0 as usize);
    let hi = (m as u64).min(in_bounds as u64) as u32;
    if hi <= lo || hi - lo < MIN_BODY {
        return None;
    }
    let span = (hi - lo - 1) as u64;
    let k0 = base_bits.wrapping_add((v.idx0 + lo) as u64) & v.imask;
    if v.imask - k0 < span {
        return None; // index add wraps its type width inside the body
    }
    let s0 = (k0 & v.amask as u64) as usize;
    if (v.amask as u64) - (s0 as u64) < span {
        return None; // slot mask wraps inside the body (stride defeat)
    }
    if s0 + (hi - lo) as usize > arr_len {
        return None;
    }
    Some(Plan { lo, hi, s0 })
}

/// Truncating add at width `N`: canonical-bits arithmetic for the
/// unsigned/signed scalar of that width (two's complement, so one add
/// serves both signednesses).
#[inline(always)]
fn trunc_add<const N: usize>(a: u64, b: u64) -> u64 {
    match N {
        1 => (a as u8).wrapping_add(b as u8) as u64,
        2 => (a as u16).wrapping_add(b as u16) as u64,
        4 => (a as u32).wrapping_add(b as u32) as u64,
        _ => a.wrapping_add(b),
    }
}

// ---------------------------------------------------------------------
// Width-specialized lane loops. Each is written over pre-sliced regions
// so the optimizer sees a fixed-stride loop with no bounds checks, no
// slot arithmetic and no per-element Option dispatch; the `avx2` module
// re-instantiates the same bodies under `#[target_feature]` so the
// window-side loads and byte swaps vectorize at 256 bits.
// ---------------------------------------------------------------------

#[inline(always)]
fn accum_lanes<const N: usize>(dst: &mut [Value], src: &[u8], ty: ScalarType) {
    debug_assert_eq!(src.len(), dst.len() * N);
    for (d, s) in dst.iter_mut().zip(src.chunks_exact(N)) {
        let bits = trunc_add::<N>(d.bits(), be_load::<N>(s, 0));
        *d = Value::new(ty, bits);
    }
}

#[inline(always)]
fn win_to_reg_lanes<const N: usize>(dst: &mut [Value], src: &[u8], ty: ScalarType) {
    debug_assert_eq!(src.len(), dst.len() * N);
    for (d, s) in dst.iter_mut().zip(src.chunks_exact(N)) {
        *d = Value::new(ty, be_load::<N>(s, 0));
    }
}

#[inline(always)]
fn reg_to_win_lanes<const N: usize>(src: &[Value], dst: &mut [u8], wty: ScalarType) {
    debug_assert_eq!(dst.len(), src.len() * N);
    for (d, s) in src.iter().zip(dst.chunks_exact_mut(N)) {
        // Same branch as the scalar loop: same-type cast is the
        // identity on canonical values.
        let bits = if d.ty() == wty {
            d.bits()
        } else {
            d.cast(wty).bits()
        };
        be_store::<N>(s, 0, bits);
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! Hand-scheduled AVX2 bodies for the 4-byte (u32/i32) element
    //! width — the hot allreduce shape — operating directly on packed
    //! `Value` slices through the `repr(C)` layout contract
    //! (`Value::RAW_SIZE` = 16, tag byte at `RAW_TY_OFFSET` = 0, bits
    //! at `RAW_BITS_OFFSET` = 8). One ymm register holds two `Value`s
    //! as qwords `[tag, bits, tag, bits]`; the window side loads four
    //! big-endian u32s per xmm and a single `vpshufb` both byte-swaps
    //! them and pre-orders the dwords `(0,2,1,3)` so zero-interleaving
    //! (`vpunpck{l,h}qdq` against zero) spreads them into the bits
    //! lanes of two `Value` ymms. Other widths take the portable lane
    //! loops, still under `target_feature`.

    use super::*;
    use core::arch::x86_64::*;

    const _: () = {
        assert!(Value::RAW_SIZE == 16);
        assert!(Value::RAW_TY_OFFSET == 0);
        assert!(Value::RAW_BITS_OFFSET == 8);
    };

    /// `[tag, 0, tag, 0]` qwords: OR-template writing the tag byte of
    /// two packed `Value`s whose remaining bytes are zero.
    #[inline(always)]
    fn tag_template(ty: ScalarType) -> __m256i {
        // SAFETY: pure lane constructor, no memory access.
        unsafe { _mm256_setr_epi64x(ty as u8 as i64, 0, ty as u8 as i64, 0) }
    }

    // SAFETY contract for the three public wrappers: the caller
    // observed `SimdLevel::Avx2`, which is only ever reported after
    // `is_x86_feature_detected!("avx2")` succeeded on this host.

    #[target_feature(enable = "avx2")]
    pub unsafe fn accum<const N: usize>(dst: &mut [Value], src: &[u8], ty: ScalarType) {
        if N == 4 {
            return accum4(dst, src, ty);
        }
        accum_lanes::<N>(dst, src, ty)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn win_to_reg<const N: usize>(dst: &mut [Value], src: &[u8], ty: ScalarType) {
        if N == 4 {
            return win_to_reg4(dst, src, ty);
        }
        win_to_reg_lanes::<N>(dst, src, ty)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn reg_to_win<const N: usize>(src: &[Value], dst: &mut [u8], wty: ScalarType) {
        if N == 4 {
            return reg_to_win4(src, dst, wty);
        }
        reg_to_win_lanes::<N>(src, dst, wty)
    }

    /// Big-endian u32 swap fused with the `(0,2,1,3)` dword pre-order.
    #[inline(always)]
    unsafe fn load_spread(src: *const u8) -> (__m256i, __m256i) {
        // SAFETY (caller): `src..src+16` is in bounds.
        let swsh = _mm_setr_epi8(3, 2, 1, 0, 11, 10, 9, 8, 7, 6, 5, 4, 15, 14, 13, 12);
        let w = _mm_loadu_si128(src as *const __m128i);
        let w = _mm_shuffle_epi8(w, swsh); // host-order dwords [w0,w2,w1,w3]
        let y = _mm256_cvtepu32_epi64(w); // qwords [w0,w2,w1,w3]
        let zero = _mm256_setzero_si256();
        // [0,w0,0,w1] and [0,w2,0,w3]: window words in the bits lanes.
        (
            _mm256_unpacklo_epi64(zero, y),
            _mm256_unpackhi_epi64(zero, y),
        )
    }

    /// `arr[slot] += win[c]` at width 4: `vpaddd` adds into the low
    /// bits dword (no carry escapes the lane), the mask keeps only that
    /// dword (zeroing stale high bits of a previously wider slot), and
    /// the template restores the accumulate-type tag — exactly
    /// `Value::new(ty, old.bits() + w & 0xFFFF_FFFF)` per slot.
    #[target_feature(enable = "avx2")]
    unsafe fn accum4(dst: &mut [Value], src: &[u8], ty: ScalarType) {
        debug_assert_eq!(src.len(), dst.len() * 4);
        let n = dst.len() & !3;
        let t = tag_template(ty);
        let m32 = _mm256_setr_epi32(0, 0, -1, 0, 0, 0, -1, 0);
        let mut i = 0usize;
        while i < n {
            // SAFETY: `i + 4 <= dst.len()` and `src.len() == 4 * dst.len()`,
            // so both the 16-byte window load and the two 32-byte `Value`
            // load/stores stay in bounds; `Value` is `repr(C)`, 16 bytes.
            let (a0, a1) = load_spread(src.as_ptr().add(i * 4));
            let p = dst.as_mut_ptr().add(i) as *mut __m256i;
            let d0 = _mm256_loadu_si256(p);
            let d1 = _mm256_loadu_si256(p.add(1));
            let s0 = _mm256_or_si256(_mm256_and_si256(_mm256_add_epi32(d0, a0), m32), t);
            let s1 = _mm256_or_si256(_mm256_and_si256(_mm256_add_epi32(d1, a1), m32), t);
            _mm256_storeu_si256(p, s0);
            _mm256_storeu_si256(p.add(1), s1);
            i += 4;
        }
        accum_lanes::<4>(&mut dst[n..], &src[n * 4..], ty);
    }

    /// `arr[slot] = win[c]` at width 4: the spread words OR'd with the
    /// tag template are already complete `Value`s.
    #[target_feature(enable = "avx2")]
    unsafe fn win_to_reg4(dst: &mut [Value], src: &[u8], ty: ScalarType) {
        debug_assert_eq!(src.len(), dst.len() * 4);
        let n = dst.len() & !3;
        let t = tag_template(ty);
        let mut i = 0usize;
        while i < n {
            // SAFETY: as in `accum4` — all accesses bounded by `n`.
            let (a0, a1) = load_spread(src.as_ptr().add(i * 4));
            let p = dst.as_mut_ptr().add(i) as *mut __m256i;
            _mm256_storeu_si256(p, _mm256_or_si256(a0, t));
            _mm256_storeu_si256(p.add(1), _mm256_or_si256(a1, t));
            i += 4;
        }
        win_to_reg_lanes::<4>(&mut dst[n..], &src[n * 4..], ty);
    }

    /// `win[c] = arr[slot]` at width 4. The scalar loop casts slots
    /// whose dynamic type differs from the window type; the tag bytes
    /// (positions 0 and 16 of each `Value` pair) are compared against
    /// the template and any mismatched block of four falls back to the
    /// portable loop, so mixed-type slots keep cast semantics.
    #[target_feature(enable = "avx2")]
    unsafe fn reg_to_win4(src: &[Value], dst: &mut [u8], wty: ScalarType) {
        debug_assert_eq!(dst.len(), src.len() * 4);
        let n = src.len() & !3;
        let t = tag_template(wty);
        let idx = _mm256_setr_epi32(2, 6, 0, 0, 0, 0, 0, 0);
        let bsw = _mm_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
        const TAGS: u32 = 1 | (1 << 16);
        let mut i = 0usize;
        while i < n {
            // SAFETY: `i + 4 <= src.len()` and `dst.len() == 4 * src.len()`.
            let p = src.as_ptr().add(i) as *const __m256i;
            let y0 = _mm256_loadu_si256(p);
            let y1 = _mm256_loadu_si256(p.add(1));
            let eq0 = _mm256_movemask_epi8(_mm256_cmpeq_epi8(y0, t)) as u32;
            let eq1 = _mm256_movemask_epi8(_mm256_cmpeq_epi8(y1, t)) as u32;
            if eq0 & TAGS == TAGS && eq1 & TAGS == TAGS {
                // Gather the low bits dwords [b0,b1] and [b2,b3], join
                // them, and byte-swap to big-endian.
                let b0 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(y0, idx));
                let b1 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(y1, idx));
                let x = _mm_shuffle_epi8(_mm_unpacklo_epi64(b0, b1), bsw);
                _mm_storeu_si128(dst.as_mut_ptr().add(i * 4) as *mut __m128i, x);
            } else {
                reg_to_win_lanes::<4>(&src[i..i + 4], &mut dst[i * 4..i * 4 + 16], wty);
            }
            i += 4;
        }
        reg_to_win_lanes::<4>(&src[n..], &mut dst[n * 4..], wty);
    }
}

#[inline(always)]
fn accum_body<const N: usize>(lv: SimdLevel, dst: &mut [Value], src: &[u8], ty: ScalarType) {
    #[cfg(target_arch = "x86_64")]
    if lv == SimdLevel::Avx2 {
        // SAFETY: Avx2 is only reported when runtime detection passed.
        return unsafe { avx2::accum::<N>(dst, src, ty) };
    }
    let _ = lv;
    accum_lanes::<N>(dst, src, ty)
}

#[inline(always)]
fn win_to_reg_body<const N: usize>(lv: SimdLevel, dst: &mut [Value], src: &[u8], ty: ScalarType) {
    #[cfg(target_arch = "x86_64")]
    if lv == SimdLevel::Avx2 {
        // SAFETY: Avx2 is only reported when runtime detection passed.
        return unsafe { avx2::win_to_reg::<N>(dst, src, ty) };
    }
    let _ = lv;
    win_to_reg_lanes::<N>(dst, src, ty)
}

#[inline(always)]
fn reg_to_win_body<const N: usize>(lv: SimdLevel, src: &[Value], dst: &mut [u8], wty: ScalarType) {
    #[cfg(target_arch = "x86_64")]
    if lv == SimdLevel::Avx2 {
        // SAFETY: Avx2 is only reported when runtime detection passed.
        return unsafe { avx2::reg_to_win::<N>(src, dst, wty) };
    }
    let _ = lv;
    reg_to_win_lanes::<N>(src, dst, wty)
}

// ---------------------------------------------------------------------
// Run entry points (called from the fast path's vec dispatch).
// ---------------------------------------------------------------------

/// `arr[slot] += win[c]`: executes the run if it lane-packs, scalar
/// head/tail included. Returns `false` (caller runs the scalar loop)
/// when the tier is off, the types are mixed, the chunk is absent, or
/// the slots do not pack.
pub(crate) fn accum(
    v: &VecOp,
    m: u32,
    base_bits: u64,
    arr: &mut [Value],
    chunk: Option<&Chunk>,
) -> bool {
    if v.wty != v.aty || v.aty != v.sty || v.wty == ScalarType::Bool {
        return false;
    }
    let lv = level();
    if lv == SimdLevel::Scalar {
        return false;
    }
    let Some(c) = chunk else { return false };
    let Some(p) = plan(v, m, base_bits, arr.len(), c.data.len()) else {
        return false;
    };
    vec_accum_scalar(v, 0..p.lo, base_bits, arr, chunk);
    let nsz = v.wty.size();
    let src = &c.data[(v.idx0 + p.lo) as usize * nsz..(v.idx0 + p.hi) as usize * nsz];
    let dst = &mut arr[p.s0..p.s0 + (p.hi - p.lo) as usize];
    match nsz {
        1 => accum_body::<1>(lv, dst, src, v.aty),
        2 => accum_body::<2>(lv, dst, src, v.aty),
        4 => accum_body::<4>(lv, dst, src, v.aty),
        _ => accum_body::<8>(lv, dst, src, v.aty),
    }
    vec_accum_scalar(v, p.hi..m, base_bits, arr, chunk);
    true
}

/// `win[c] = arr[slot]` (store direction). The chunk is present (the
/// caller already dropped the run when it was missing).
pub(crate) fn reg_to_win(v: &VecOp, m: u32, base_bits: u64, arr: &[Value], c: &mut Chunk) -> bool {
    let lv = level();
    if lv == SimdLevel::Scalar {
        return false;
    }
    let Some(p) = plan(v, m, base_bits, arr.len(), c.data.len()) else {
        return false;
    };
    vec_reg_to_win_scalar(v, 0..p.lo, base_bits, arr, c);
    let nsz = v.wty.size();
    let w = (p.hi - p.lo) as usize;
    let src = &arr[p.s0..p.s0 + w];
    let dst = &mut c.data[(v.idx0 + p.lo) as usize * nsz..(v.idx0 + p.hi) as usize * nsz];
    match nsz {
        1 => reg_to_win_body::<1>(lv, src, dst, v.wty),
        2 => reg_to_win_body::<2>(lv, src, dst, v.wty),
        4 => reg_to_win_body::<4>(lv, src, dst, v.wty),
        _ => reg_to_win_body::<8>(lv, src, dst, v.wty),
    }
    vec_reg_to_win_scalar(v, p.hi..m, base_bits, arr, c);
    true
}

/// `arr[slot] = win[c]` (broadcast-read direction).
pub(crate) fn win_to_reg(
    v: &VecOp,
    m: u32,
    base_bits: u64,
    arr: &mut [Value],
    chunk: Option<&Chunk>,
) -> bool {
    if v.wty != v.sty || v.wty == ScalarType::Bool {
        return false;
    }
    let lv = level();
    if lv == SimdLevel::Scalar {
        return false;
    }
    let Some(c) = chunk else { return false };
    let Some(p) = plan(v, m, base_bits, arr.len(), c.data.len()) else {
        return false;
    };
    vec_win_to_reg_scalar(v, 0..p.lo, base_bits, arr, chunk);
    let nsz = v.wty.size();
    let src = &c.data[(v.idx0 + p.lo) as usize * nsz..(v.idx0 + p.hi) as usize * nsz];
    let dst = &mut arr[p.s0..p.s0 + (p.hi - p.lo) as usize];
    match nsz {
        1 => win_to_reg_body::<1>(lv, dst, src, v.sty),
        2 => win_to_reg_body::<2>(lv, dst, src, v.sty),
        4 => win_to_reg_body::<4>(lv, dst, src, v.sty),
        _ => win_to_reg_body::<8>(lv, dst, src, v.sty),
    }
    vec_win_to_reg_scalar(v, p.hi..m, base_bits, arr, chunk);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vo(idx0: u32, n: u32, amask: u32, imask: u64, headless: bool) -> VecOp {
        VecOp {
            param: 0,
            wty: ScalarType::I32,
            idx0,
            n,
            arr: 0,
            amask,
            base: 0,
            imask,
            aty: ScalarType::I32,
            sty: ScalarType::I32,
            cost: 5,
            head_cost: if headless { 4 } else { 5 },
        }
    }

    #[test]
    fn plan_packs_contiguous_runs() {
        let v = vo(0, 64, 63, u32::MAX as u64, false);
        let p = plan(&v, 64, 0, 64, 64 * 4).expect("packs");
        assert_eq!((p.lo, p.hi, p.s0), (0, 64, 0));
    }

    #[test]
    fn plan_excludes_headless_group_zero() {
        let v = vo(0, 64, 63, u32::MAX as u64, true);
        let p = plan(&v, 64, 0, 64, 64 * 4).expect("packs");
        assert_eq!((p.lo, p.hi, p.s0), (1, 64, 1));
    }

    #[test]
    fn plan_declines_amask_wrap() {
        // base 60 into a 64-slot array: slots wrap at 63→0 inside the
        // body — a lane-defeating stride.
        let v = vo(0, 16, 63, u32::MAX as u64, false);
        assert!(plan(&v, 16, 60, 64, 16 * 4).is_none());
    }

    #[test]
    fn plan_declines_index_width_wrap() {
        // u8 index type: base 250 + 16 elements wraps the 8-bit index.
        let v = vo(0, 16, 1023, 0xFF, false);
        assert!(plan(&v, 16, 250, 1024, 16 * 4).is_none());
    }

    #[test]
    fn plan_trims_ragged_tail_to_full_elements() {
        // Chunk holds 13 full i32 elements; a 16-group run keeps a
        // 13-element body and leaves 3 to the scalar tail.
        let v = vo(0, 16, 63, u32::MAX as u64, false);
        let p = plan(&v, 16, 0, 64, 13 * 4).expect("packs");
        assert_eq!((p.lo, p.hi), (0, 13));
    }

    #[test]
    fn plan_declines_short_bodies() {
        let v = vo(0, 4, 63, u32::MAX as u64, false);
        assert!(plan(&v, 4, 0, 64, 4 * 4).is_none());
    }

    fn chunk_u32(vals: &[u32]) -> Chunk {
        Chunk {
            offset: 0,
            data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
        }
    }

    /// Runs the tier entry point and the scalar reference loop on
    /// identical inputs and asserts bit-identical register files.
    fn accum_matches_scalar(arr: Vec<Value>, vals: &[u32], v: &VecOp) {
        let c = chunk_u32(vals);
        let mut simd_arr = arr.clone();
        let mut scalar_arr = arr;
        let ran = accum(v, v.n, 0, &mut simd_arr, Some(&c));
        crate::exec::vec_accum_scalar(v, 0..v.n, 0, &mut scalar_arr, Some(&c));
        assert!(
            ran || level() == SimdLevel::Scalar,
            "tier declined a packable run"
        );
        assert_eq!(simd_arr, scalar_arr);
    }

    #[test]
    fn accum_overwrites_stale_wide_slots() {
        // Slots holding wider values than the accumulate type: the
        // scalar loop truncates to the low 32 bits and retags; the
        // AVX2 body must do the same (mask + tag template).
        let v = vo(0, 16, 1023, u32::MAX as u64, false);
        let arr: Vec<Value> = (0..1024)
            .map(|i| match i % 3 {
                0 => Value::new(ScalarType::U64, 0xdead_beef_0000_0001 + i as u64),
                1 => Value::new(ScalarType::U8, i as u64 & 0xff),
                _ => Value::new(ScalarType::I32, i as u64),
            })
            .collect();
        let vals: Vec<u32> = (0..16).map(|i| 0x8000_0000u32.wrapping_add(i)).collect();
        accum_matches_scalar(arr, &vals, &v);
    }

    #[test]
    fn win_to_reg_retags_every_slot() {
        let v = vo(0, 16, 1023, u32::MAX as u64, false);
        let c = chunk_u32(&(0..16).map(|i| u32::MAX - i).collect::<Vec<_>>());
        let mk = || {
            (0..1024)
                .map(|i| Value::new(ScalarType::U64, u64::MAX - i as u64))
                .collect::<Vec<Value>>()
        };
        let (mut simd_arr, mut scalar_arr) = (mk(), mk());
        let ran = win_to_reg(&v, v.n, 0, &mut simd_arr, Some(&c));
        crate::exec::vec_win_to_reg_scalar(&v, 0..v.n, 0, &mut scalar_arr, Some(&c));
        assert!(ran || level() == SimdLevel::Scalar);
        assert_eq!(simd_arr, scalar_arr);
    }

    #[test]
    fn reg_to_win_casts_mixed_type_slots() {
        // Blocks with a non-window-typed slot must take the per-block
        // scalar fallback (cast semantics), other blocks vectorize.
        let v = vo(0, 32, 1023, u32::MAX as u64, false);
        let arr: Vec<Value> = (0..1024)
            .map(|i| match i {
                5 => Value::new(ScalarType::I8, 0x80), // -128, sign-extends
                17 => Value::new(ScalarType::U64, 0x1_0000_0005),
                _ => Value::new(ScalarType::I32, 0x8000_0000 | i as u64),
            })
            .collect();
        let mut simd_c = chunk_u32(&[0u32; 32]);
        let mut scalar_c = chunk_u32(&[0u32; 32]);
        let ran = reg_to_win(&v, v.n, 0, &arr, &mut simd_c);
        crate::exec::vec_reg_to_win_scalar(&v, 0..v.n, 0, &arr, &mut scalar_c);
        assert!(ran || level() == SimdLevel::Scalar);
        assert_eq!(simd_c.data, scalar_c.data);
    }

    #[test]
    fn force_scalar_gates_level() {
        let was = force_scalar();
        set_force_scalar(true);
        assert_eq!(level(), SimdLevel::Scalar);
        set_force_scalar(false);
        assert_ne!(level(), SimdLevel::Scalar);
        set_force_scalar(was);
    }

    #[test]
    fn trunc_add_matches_width() {
        assert_eq!(trunc_add::<1>(0xFF, 1), 0);
        assert_eq!(trunc_add::<2>(0xFFFF, 2), 1);
        assert_eq!(trunc_add::<4>(u32::MAX as u64, 3), 2);
        assert_eq!(trunc_add::<8>(u64::MAX, 4), 3);
    }
}
