//! The reference interpreter for NCL kernels in IR form.
//!
//! Executes a kernel directly on a [`Window`] plus device state, giving
//! the *semantic ground truth* the PISA-compiled pipeline must match.
//! Deliberate edge-case definitions (shared with the pipeline):
//!
//! * window-data reads out of chunk bounds yield 0; writes are dropped
//!   (a switch reading an unset PHV container sees zeros);
//! * register-array indices wrap modulo the array length (hardware
//!   index registers wrap);
//! * map misses read as value 0 with the hit bit clear;
//! * the forwarding decision defaults to `_pass()`; the last executed
//!   `Fwd` wins.

use crate::ir::*;
use c3::{Forward, Label, ScalarType, Value, Window};
use std::collections::HashMap;

/// Runtime switch state for one device: register arrays, control
/// variables, map contents, and the device's identity. The `Default`
/// state is the empty host-side state `run_incoming` executes against.
#[derive(Clone, Debug, Default)]
pub struct SwitchState {
    /// Register contents, indexed by [`ArrId`].
    pub registers: Vec<Vec<Value>>,
    /// Control variable values, indexed by [`CtrlId`].
    pub ctrls: Vec<Value>,
    /// Map contents (key bits → value), indexed by [`MapId`].
    pub maps: Vec<HashMap<u64, Value>>,
    /// Map capacities (inserts beyond capacity are rejected).
    pub map_caps: Vec<usize>,
    /// The device's numeric id (`location.id`).
    pub location_id: u16,
    /// The device's AND label, resolved against `_here()`/`_at_`.
    pub location: Option<Label>,
}

impl SwitchState {
    /// Initializes state for a module: registers get their initializers,
    /// ctrls their initial values, maps start empty. Declarations not
    /// placed at this module's location still get slots (so `ArrId`s
    /// stay stable) but are zero-sized.
    pub fn from_module(module: &Module) -> Self {
        let registers = module
            .registers
            .iter()
            .map(|r| {
                if module.placed_here(&r.at) {
                    let mut init = r.init.clone();
                    init.resize(r.len(), Value::zero(r.elem));
                    init
                } else {
                    Vec::new()
                }
            })
            .collect();
        let ctrls = module.ctrls.iter().map(|c| c.init).collect();
        let maps = module.maps.iter().map(|_| HashMap::new()).collect();
        let map_caps = module.maps.iter().map(|m| m.capacity).collect();
        SwitchState {
            registers,
            ctrls,
            maps,
            map_caps,
            location_id: 0,
            location: module.location.clone(),
        }
    }

    /// Control-plane write of a control variable (host-side
    /// `ncl::ctrl_wr`).
    pub fn ctrl_write(&mut self, ctrl: CtrlId, v: Value) {
        let slot = &mut self.ctrls[ctrl.0 as usize];
        *slot = v.cast(slot.ty());
    }

    /// Control-plane map insert. Returns `false` when the map is full.
    pub fn map_insert(&mut self, map: MapId, key: u64, value: Value) -> bool {
        let m = &mut self.maps[map.0 as usize];
        if !m.contains_key(&key) && m.len() >= self.map_caps[map.0 as usize] {
            return false;
        }
        m.insert(key, value);
        true
    }

    /// Control-plane map removal (cache eviction, paper §4.3).
    pub fn map_remove(&mut self, map: MapId, key: u64) -> bool {
        self.maps[map.0 as usize].remove(&key).is_some()
    }
}

/// Host-side memory backing the `_ext_` parameters of an incoming
/// kernel: one typed array per `_ext_` parameter.
#[derive(Clone, Debug, Default)]
pub struct HostMemory {
    /// One array per `_ext_` parameter, in parameter order.
    pub arrays: Vec<Vec<Value>>,
}

impl HostMemory {
    /// Allocates arrays sized per `_ext_` parameter.
    pub fn new(sizes: &[(ScalarType, usize)]) -> Self {
        HostMemory {
            arrays: sizes
                .iter()
                .map(|&(ty, n)| vec![Value::zero(ty); n])
                .collect(),
        }
    }
}

/// Errors during interpretation (all indicate compiler bugs or resource
/// exhaustion, not user errors).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InterpError {
    /// The step budget was exhausted (runaway loop).
    StepLimit,
    /// An instruction referenced device state the module does not place
    /// at this location.
    NotPlacedHere(&'static str),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::StepLimit => write!(f, "interpreter step limit exceeded"),
            InterpError::NotPlacedHere(what) => {
                write!(f, "access to {what} that is not placed at this location")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// The kernel interpreter. Stateless; construct once and reuse.
#[derive(Clone, Copy, Debug)]
pub struct Interpreter {
    /// Maximum executed instructions per kernel run.
    pub step_limit: usize,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter {
            step_limit: 1_000_000,
        }
    }
}

impl Interpreter {
    /// Runs an outgoing kernel on a window at a switch. Mutates the
    /// window's chunks/ext and the switch state; returns the forwarding
    /// decision.
    pub fn run_outgoing(
        &self,
        kernel: &KernelIr,
        window: &mut Window,
        state: &mut SwitchState,
    ) -> Result<Forward, InterpError> {
        let mut host = HostMemory::default();
        self.run(kernel, window, state, &mut host)
    }

    /// Runs an incoming kernel on a window at a host; `_ext_` parameter
    /// arrays live in `host`.
    pub fn run_incoming(
        &self,
        kernel: &KernelIr,
        window: &mut Window,
        host: &mut HostMemory,
    ) -> Result<(), InterpError> {
        // Hosts have no switch state; feed an empty one.
        let mut state = SwitchState {
            registers: vec![],
            ctrls: vec![],
            maps: vec![],
            map_caps: vec![],
            location_id: 0,
            location: None,
        };
        self.run(kernel, window, &mut state, host).map(|_| ())
    }

    fn run(
        &self,
        kernel: &KernelIr,
        window: &mut Window,
        state: &mut SwitchState,
        host: &mut HostMemory,
    ) -> Result<Forward, InterpError> {
        let mut regs: Vec<Value> = kernel.reg_tys.iter().map(|&ty| Value::zero(ty)).collect();
        let mut decision = Forward::Pass;
        let mut steps = 0usize;
        let mut block = BlockId(0);
        // Map window parameter index -> element type, from the kernel
        // signature (window params only).
        let win_params: Vec<ScalarType> = kernel
            .params
            .iter()
            .filter(|p| !p.ext)
            .map(|p| p.elem)
            .collect();
        let ext_params: Vec<ScalarType> = kernel
            .params
            .iter()
            .filter(|p| p.ext)
            .map(|p| p.elem)
            .collect();
        'outer: loop {
            let b = kernel.block(block);
            for inst in &b.insts {
                steps += 1;
                if steps > self.step_limit {
                    return Err(InterpError::StepLimit);
                }
                self.step(
                    inst,
                    &mut regs,
                    window,
                    state,
                    host,
                    &win_params,
                    &ext_params,
                    &mut decision,
                )?;
            }
            steps += 1;
            if steps > self.step_limit {
                return Err(InterpError::StepLimit);
            }
            match &b.term {
                Terminator::Ret => break 'outer,
                Terminator::Jmp(next) => block = *next,
                Terminator::Br { cond, then, els } => {
                    let c = operand(cond, &regs);
                    block = if c.is_truthy() { *then } else { *els };
                }
            }
        }
        Ok(decision)
    }

    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        inst: &Inst,
        regs: &mut [Value],
        window: &mut Window,
        state: &mut SwitchState,
        host: &mut HostMemory,
        win_params: &[ScalarType],
        ext_params: &[ScalarType],
        decision: &mut Forward,
    ) -> Result<(), InterpError> {
        match inst {
            Inst::Bin { dst, op, a, b } => {
                let va = operand(a, regs);
                let vb = operand(b, regs);
                regs[dst.0 as usize] = Value::binop(*op, va, vb);
            }
            Inst::Un { dst, op, a } => {
                regs[dst.0 as usize] = Value::unop(*op, operand(a, regs));
            }
            Inst::Cast { dst, ty, a } => {
                regs[dst.0 as usize] = operand(a, regs).cast(*ty);
            }
            Inst::Select { dst, cond, a, b } => {
                let c = operand(cond, regs);
                regs[dst.0 as usize] = if c.is_truthy() {
                    operand(a, regs)
                } else {
                    operand(b, regs)
                };
            }
            Inst::Copy { dst, a } => {
                regs[dst.0 as usize] = operand(a, regs);
            }
            Inst::LdWin { dst, param, index } => {
                let ty = win_params[*param as usize];
                let idx = operand(index, regs).bits() as usize;
                let v = window
                    .chunks
                    .get(*param as usize)
                    .filter(|c| idx < c.elems(ty))
                    .map(|c| c.get(ty, idx))
                    .unwrap_or_else(|| Value::zero(ty));
                regs[dst.0 as usize] = v;
            }
            Inst::StWin { param, index, val } => {
                let ty = win_params[*param as usize];
                let idx = operand(index, regs).bits() as usize;
                let v = operand(val, regs).cast(ty);
                if let Some(c) = window.chunks.get_mut(*param as usize) {
                    if idx < c.elems(ty) {
                        c.set(ty, idx, v);
                    }
                }
            }
            Inst::LdMeta { dst, field } => {
                let v = match field {
                    MetaField::Seq => Value::u32(window.seq),
                    MetaField::Sender => Value::new(ScalarType::U16, window.sender.0 as u64),
                    MetaField::From => Value::new(ScalarType::U16, window.from.to_wire() as u64),
                    MetaField::Len => {
                        let ty = win_params.first().copied().unwrap_or(ScalarType::U8);
                        let n = window.chunks.first().map(|c| c.elems(ty)).unwrap_or(0);
                        Value::new(ScalarType::U16, n as u64)
                    }
                    MetaField::NChunks => Value::new(ScalarType::U8, window.chunks.len() as u64),
                    MetaField::Last => Value::bool(window.last),
                    MetaField::Ext(off, ty) => window.ext_read(*ty, *off as usize),
                    MetaField::LocationId => Value::new(ScalarType::U16, state.location_id as u64),
                };
                regs[dst.0 as usize] = v;
            }
            Inst::StExt { offset, ty, val } => {
                let v = operand(val, regs).cast(*ty);
                window.ext_write(*offset as usize, v);
            }
            Inst::LdReg { dst, arr, index } => {
                let a = &state.registers[arr.0 as usize];
                if a.is_empty() {
                    return Err(InterpError::NotPlacedHere("register array"));
                }
                let idx = operand(index, regs).bits() as usize % a.len();
                regs[dst.0 as usize] = a[idx];
            }
            Inst::StReg { arr, index, val } => {
                let v = operand(val, regs);
                let a = &mut state.registers[arr.0 as usize];
                if a.is_empty() {
                    return Err(InterpError::NotPlacedHere("register array"));
                }
                let idx = operand(index, regs).bits() as usize % a.len();
                let ty = a[idx].ty();
                a[idx] = v.cast(ty);
            }
            Inst::LdCtrl { dst, ctrl } => {
                regs[dst.0 as usize] = state.ctrls[ctrl.0 as usize];
            }
            Inst::MapGet {
                found,
                val,
                map,
                key,
            } => {
                let k = operand(key, regs).bits();
                let ty = regs[val.0 as usize].ty();
                match state.maps[map.0 as usize].get(&k) {
                    Some(v) => {
                        regs[found.0 as usize] = Value::bool(true);
                        regs[val.0 as usize] = v.cast(ty);
                    }
                    None => {
                        regs[found.0 as usize] = Value::bool(false);
                        regs[val.0 as usize] = Value::zero(ty);
                    }
                }
            }
            Inst::LdHost { dst, param, index } => {
                let ty = ext_params
                    .get(*param as usize)
                    .copied()
                    .unwrap_or(ScalarType::I32);
                let idx = operand(index, regs).bits() as usize;
                let v = host
                    .arrays
                    .get(*param as usize)
                    .and_then(|a| a.get(idx))
                    .copied()
                    .unwrap_or_else(|| Value::zero(ty));
                regs[dst.0 as usize] = v;
            }
            Inst::StHost { param, index, val } => {
                let v = operand(val, regs);
                let idx = operand(index, regs).bits() as usize;
                if let Some(a) = host.arrays.get_mut(*param as usize) {
                    if let Some(slot) = a.get_mut(idx) {
                        let ty = slot.ty();
                        *slot = v.cast(ty);
                    }
                }
            }
            Inst::Fwd { kind, label } => {
                *decision = match kind {
                    FwdKind::Pass => match label {
                        Some(l) => Forward::PassTo(l.clone()),
                        None => Forward::Pass,
                    },
                    FwdKind::Reflect => Forward::Reflect,
                    FwdKind::Bcast => Forward::Bcast,
                    FwdKind::Drop => Forward::Drop,
                };
            }
            Inst::Here { dst, label } => {
                let here = state.location.as_ref().map(|l| l == label).unwrap_or(false);
                regs[dst.0 as usize] = Value::bool(here);
            }
        }
        Ok(())
    }
}

fn operand(o: &Operand, regs: &[Value]) -> Value {
    match o {
        Operand::Const(v) => *v,
        Operand::Reg(r) => regs[r.0 as usize],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, LoweringConfig};
    use c3::{Chunk, HostId, KernelId, NodeId};
    use ncl_lang::frontend;

    fn build(src: &str, kernel: &str, mask: &[u16]) -> (Module, SwitchState) {
        let checked = frontend(src, "t.ncl").expect("frontend");
        let cfg = LoweringConfig::with_mask(kernel, mask.to_vec());
        let module = lower(&checked, &cfg).expect("lower");
        let state = SwitchState::from_module(&module);
        (module, state)
    }

    fn window_u32(vals: &[u32]) -> Window {
        Window {
            kernel: KernelId(0),
            seq: 0,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: false,
            chunks: vec![Chunk {
                offset: 0,
                data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
            }],
            ext: vec![],
        }
    }

    #[test]
    fn increment_kernel() {
        let (m, mut st) = build(
            "_net_ _out_ void inc(int *data) { data[0] += 1; }",
            "inc",
            &[1],
        );
        let mut w = window_u32(&[41]);
        let fwd = Interpreter::default()
            .run_outgoing(m.kernel("inc").unwrap(), &mut w, &mut st)
            .unwrap();
        assert_eq!(fwd, Forward::Pass);
        assert_eq!(w.chunks[0].get(ScalarType::I32, 0), Value::i32(42));
    }

    #[test]
    fn accumulate_into_registers() {
        let (m, mut st) = build(
            "_net_ _at_(\"s1\") int acc[8] = {0};\n\
             _net_ _out_ void k(int *data) {\n\
               for (unsigned i = 0; i < window.len; ++i) acc[i] += data[i];\n\
               _drop();\n\
             }",
            "k",
            &[4],
        );
        let k = m.kernel("k").unwrap();
        let it = Interpreter::default();
        let mut w = window_u32(&[1, 2, 3, 4]);
        assert_eq!(it.run_outgoing(k, &mut w, &mut st).unwrap(), Forward::Drop);
        let mut w2 = window_u32(&[10, 20, 30, 40]);
        it.run_outgoing(k, &mut w2, &mut st).unwrap();
        assert_eq!(st.registers[0][0], Value::i32(11));
        assert_eq!(st.registers[0][3], Value::i32(44));
        assert_eq!(st.registers[0][4], Value::i32(0));
    }

    #[test]
    fn allreduce_semantics() {
        let src = r#"
#define DATA_LEN 8
#define WIN_LEN 4
_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN/WIN_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;
_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}
"#;
        let (m, mut st) = build(src, "allreduce", &[4]);
        st.ctrl_write(CtrlId(0), Value::u32(3)); // 3 workers
        let k = m.kernel("allreduce").unwrap();
        let it = Interpreter::default();
        // Worker contributions 1,1,1,1 / 2,2,2,2 / 3,3,3,3 at seq 0.
        for worker in 1..=3u32 {
            let mut w = window_u32(&[worker; 4]);
            let fwd = it.run_outgoing(k, &mut w, &mut st).unwrap();
            if worker < 3 {
                assert_eq!(fwd, Forward::Drop);
            } else {
                assert_eq!(fwd, Forward::Bcast);
                for i in 0..4 {
                    assert_eq!(w.chunks[0].get(ScalarType::I32, i), Value::i32(6));
                }
            }
        }
        // Slot counter reset: a fourth window restarts aggregation.
        assert_eq!(st.registers[1][0], Value::u32(0));
        // accum keeps the sum (it is rewritten next round).
        assert_eq!(st.registers[0][0], Value::i32(6));
    }

    #[test]
    fn window_seq_addresses_slots() {
        let src = r#"
_net_ _at_("s1") int accum[8] = {0};
_net_ _out_ void k(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    _drop();
}
"#;
        let (m, mut st) = build(src, "k", &[4]);
        let k = m.kernel("k").unwrap();
        let it = Interpreter::default();
        let mut w = window_u32(&[5, 6, 7, 8]);
        w.seq = 1;
        it.run_outgoing(k, &mut w, &mut st).unwrap();
        assert_eq!(st.registers[0][0], Value::i32(0));
        assert_eq!(st.registers[0][4], Value::i32(5));
        assert_eq!(st.registers[0][7], Value::i32(8));
    }

    #[test]
    fn map_hit_and_miss() {
        let src = r#"
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 4> Idx;
_net_ _at_("s1") bool Valid[4] = {false};
_net_ _out_ void k(uint64_t key) {
    if (auto *i = Idx[key]) { Valid[*i] = true; _reflect(); }
}
"#;
        let (m, mut st) = build(src, "k", &[1]);
        let k = m.kernel("k").unwrap();
        let it = Interpreter::default();
        // Miss: default pass, no Valid write.
        let mut w = Window {
            kernel: KernelId(0),
            seq: 0,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: false,
            chunks: vec![Chunk {
                offset: 0,
                data: 99u64.to_be_bytes().to_vec(),
            }],
            ext: vec![],
        };
        assert_eq!(it.run_outgoing(k, &mut w, &mut st).unwrap(), Forward::Pass);
        assert_eq!(st.registers[0][2], Value::bool(false));
        // Hit: reflect and set Valid[2].
        assert!(st.map_insert(MapId(0), 99, Value::new(ScalarType::U8, 2)));
        assert_eq!(
            it.run_outgoing(k, &mut w, &mut st).unwrap(),
            Forward::Reflect
        );
        assert_eq!(st.registers[0][2], Value::bool(true));
    }

    #[test]
    fn map_capacity_enforced() {
        let src = r#"
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 2> Idx;
_net_ _out_ void k(uint64_t key) { if (auto *i = Idx[key]) { _drop(); } }
"#;
        let (_, mut st) = build(src, "k", &[1]);
        assert!(st.map_insert(MapId(0), 1, Value::new(ScalarType::U8, 0)));
        assert!(st.map_insert(MapId(0), 2, Value::new(ScalarType::U8, 1)));
        assert!(!st.map_insert(MapId(0), 3, Value::new(ScalarType::U8, 2)));
        // Overwrite of an existing key is allowed.
        assert!(st.map_insert(MapId(0), 2, Value::new(ScalarType::U8, 7)));
        assert!(st.map_remove(MapId(0), 1));
        assert!(st.map_insert(MapId(0), 3, Value::new(ScalarType::U8, 2)));
    }

    #[test]
    fn incoming_kernel_writes_host_memory() {
        let src = r#"
_net_ _out_ void k(int *data) { _drop(); }
_net_ _in_ void recv(int *data, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    if (window.last) *done = true;
}
"#;
        let checked = frontend(src, "t.ncl").unwrap();
        let mut cfg = LoweringConfig::with_mask("recv", vec![4]);
        cfg.masks.insert("k".into(), vec![4]);
        let m = lower(&checked, &cfg).unwrap();
        let k = m.kernel("recv").unwrap();
        let mut host = HostMemory::new(&[(ScalarType::I32, 8), (ScalarType::Bool, 1)]);
        let it = Interpreter::default();
        let mut w = window_u32(&[9, 8, 7, 6]);
        w.seq = 1;
        w.last = true;
        it.run_incoming(k, &mut w, &mut host).unwrap();
        assert_eq!(host.arrays[0][4], Value::i32(9));
        assert_eq!(host.arrays[0][7], Value::i32(6));
        assert_eq!(host.arrays[1][0], Value::bool(true));
        assert_eq!(host.arrays[0][0], Value::i32(0));
    }

    #[test]
    fn register_index_wraps() {
        let (m, mut st) = build(
            "_net_ _at_(\"s1\") int acc[4] = {0};\n\
             _net_ _out_ void k(int *data) { acc[data[0]] = 7; _drop(); }",
            "k",
            &[1],
        );
        let k = m.kernel("k").unwrap();
        let mut w = window_u32(&[6]); // 6 % 4 == 2
        Interpreter::default()
            .run_outgoing(k, &mut w, &mut st)
            .unwrap();
        assert_eq!(st.registers[0][2], Value::i32(7));
    }

    #[test]
    fn oob_window_read_is_zero_write_dropped() {
        let (m, mut st) = build(
            "_net_ _out_ void k(int *data) { data[9] = 5; data[0] = data[8] + 1; }",
            "k",
            &[2],
        );
        let k = m.kernel("k").unwrap();
        let mut w = window_u32(&[3, 4]);
        Interpreter::default()
            .run_outgoing(k, &mut w, &mut st)
            .unwrap();
        assert_eq!(w.chunks[0].get(ScalarType::I32, 0), Value::i32(1));
        assert_eq!(w.chunks[0].get(ScalarType::I32, 1), Value::i32(4));
    }

    #[test]
    fn dynamic_while_loop_runs_in_interpreter() {
        // Host-style kernel with a data-dependent loop: fine for the
        // interpreter (conformance will reject it for switches).
        let (m, mut st) = build(
            "_net_ _out_ void k(int *data) {\n\
               int x = data[0];\n\
               while (x > 0) { x = x - 2; }\n\
               data[0] = x;\n\
             }",
            "k",
            &[1],
        );
        let k = m.kernel("k").unwrap();
        let mut w = window_u32(&[7]);
        Interpreter::default()
            .run_outgoing(k, &mut w, &mut st)
            .unwrap();
        assert_eq!(w.chunks[0].get(ScalarType::I32, 0), Value::i32(-1));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let (m, mut st) = build(
            "_net_ _out_ void k(int *data) { while (true) { data[0] += 1; } }",
            "k",
            &[1],
        );
        let k = m.kernel("k").unwrap();
        let it = Interpreter { step_limit: 10_000 };
        let mut w = window_u32(&[0]);
        assert_eq!(
            it.run_outgoing(k, &mut w, &mut st),
            Err(InterpError::StepLimit)
        );
    }

    #[test]
    fn here_depends_on_location() {
        let (m, mut st) = build(
            r#"_net_ _out_ void k(int *d) { if (_here("s1")) { _drop(); } else { _reflect(); } }"#,
            "k",
            &[1],
        );
        let k = m.kernel("k").unwrap();
        let it = Interpreter::default();
        let mut w = window_u32(&[0]);
        st.location = Some(Label::new("s1"));
        assert_eq!(it.run_outgoing(k, &mut w, &mut st).unwrap(), Forward::Drop);
        st.location = Some(Label::new("s2"));
        assert_eq!(
            it.run_outgoing(k, &mut w, &mut st).unwrap(),
            Forward::Reflect
        );
    }

    #[test]
    fn ext_field_roundtrip() {
        let src = r#"
_wnd_ struct W { uint16_t tag; };
_net_ _out_ void k(int *d) { window.tag = window.tag + 1; }
"#;
        let (m, mut st) = build(src, "k", &[1]);
        let k = m.kernel("k").unwrap();
        let it = Interpreter::default();
        let mut w = window_u32(&[0]);
        w.ext_write(0, Value::new(ScalarType::U16, 41));
        it.run_outgoing(k, &mut w, &mut st).unwrap();
        assert_eq!(
            w.ext_read(ScalarType::U16, 0),
            Value::new(ScalarType::U16, 42)
        );
    }
}
