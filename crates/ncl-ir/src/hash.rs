//! Deterministic state hashing for schedule exploration.
//!
//! The ncmc bounded model checker dedups its visited set on a hash of
//! the full composed-system state (switch registers + NCP-R sender/
//! receiver machines + in-flight packets). That hash must be *stable* —
//! identical across runs, platforms and exploration orders — or
//! counterexample shrinking stops being reproducible, so `std`'s
//! randomized `DefaultHasher` is out. This module pins the function:
//! FNV-1a, widened to 128 bits by running two independent streams with
//! different offset bases, which keeps accidental collisions across a
//! few hundred thousand visited states negligible without pulling in a
//! crypto dependency.

/// A 128-bit FNV-1a stream hasher with a pinned, platform-independent
/// byte order (`write_u64` feeds little-endian bytes).
#[derive(Clone, Copy, Debug)]
pub struct StableHasher {
    lo: u64,
    hi: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Second stream starts from a different basis so the two 64-bit
/// halves are independent functions of the input.
const FNV_OFFSET_HI: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset bases.
    pub fn new() -> Self {
        StableHasher {
            lo: FNV_OFFSET,
            hi: FNV_OFFSET_HI,
        }
    }

    /// Feeds one byte into both streams.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.lo = (self.lo ^ b as u64).wrapping_mul(FNV_PRIME);
        self.hi = (self.hi ^ b as u64).wrapping_mul(FNV_PRIME.rotate_left(1));
    }

    /// Feeds a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Feeds a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u32` as 4 little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a length-prefixed string (prefix disambiguates
    /// concatenations: `("ab","c")` hashes differently from `("a","bc")`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The 128-bit digest.
    pub fn finish128(&self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }

    /// The low 64 bits (schedule ids, file names).
    pub fn finish64(&self) -> u64 {
        self.lo
    }
}

/// One-shot convenience: 64-bit FNV-1a of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_values_never_drift() {
        // Golden values: if these change, every corpus schedule file
        // name and every recorded certificate hash silently rots.
        assert_eq!(fnv64(b""), FNV_OFFSET);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut h = StableHasher::new();
        h.write_u64(42);
        assert_eq!(h.finish64(), 0xff3a_dd6b_3789_daef);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = StableHasher::new();
        let mut b = StableHasher::new();
        a.write(b"hello");
        b.write(b"hello");
        assert_eq!(a.finish128(), b.finish128());
        b.write_u8(0);
        assert_ne!(a.finish128(), b.finish128());
        // hi and lo must not be the same function of the input.
        assert_ne!(a.finish128() >> 64, a.finish128() & u64::MAX as u128);
    }

    #[test]
    fn length_prefix_disambiguates() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish128(), b.finish128());
    }
}
