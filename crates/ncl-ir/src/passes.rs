//! IR analysis and optimization passes (paper Fig. 6, "Analysis/Opt.").
//!
//! * [`optimize`] — const folding + propagation, copy propagation, GVN-ish
//!   local simplification, dead-code elimination, branch simplification,
//!   unreachable-block removal, iterated to a fixpoint. Propagation is
//!   restricted to *single-definition* registers whose definition
//!   dominates the use — the IR is not SSA, so multi-def registers keep
//!   their loads/stores.
//! * [`conformance`] — the paper's conformance-checking stage: rejects
//!   CFG cycles (loops that failed to unroll), accesses to state not
//!   placed at the module's location, and masks inconsistent with kernel
//!   signatures, with source-free but precise messages.

use crate::ir::*;
use c3::{BinOp, Value};
use ncl_lang::ast::KernelKind;
use ncl_lang::diag::{Diagnostic, Span};
use std::collections::HashMap;

/// Statistics from an [`optimize`] run (used by the compiler bench).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OptStats {
    /// Instructions folded to constants or copies.
    pub folded: usize,
    /// Instructions removed by DCE.
    pub dce_removed: usize,
    /// Branches turned into jumps.
    pub branches_simplified: usize,
    /// Unreachable blocks removed.
    pub blocks_removed: usize,
    /// Fixpoint iterations.
    pub iterations: usize,
}

/// Optimizes every kernel of a module in place.
pub fn optimize(module: &mut Module) -> OptStats {
    let mut stats = OptStats::default();
    for k in &mut module.kernels {
        let s = optimize_kernel(k);
        stats.folded += s.folded;
        stats.dce_removed += s.dce_removed;
        stats.branches_simplified += s.branches_simplified;
        stats.blocks_removed += s.blocks_removed;
        stats.iterations = stats.iterations.max(s.iterations);
    }
    stats
}

/// Optimizes a single kernel to a fixpoint.
pub fn optimize_kernel(k: &mut KernelIr) -> OptStats {
    let mut stats = OptStats::default();
    loop {
        stats.iterations += 1;
        let mut changed = false;
        changed |= propagate_and_fold(k, &mut stats);
        changed |= simplify_branches(k, &mut stats);
        changed |= merge_blocks(k, &mut stats);
        changed |= remove_unreachable(k, &mut stats);
        changed |= dce(k, &mut stats);
        if !changed || stats.iterations > 50 {
            break;
        }
    }
    stats
}

/// Computes immediate dominators over the reachable CFG (Cooper-Harvey-
/// Kennedy). Returns `idom[block] = Some(parent)` with the entry its own
/// dominator; unreachable blocks get `None`.
pub fn dominators(k: &KernelIr) -> Vec<Option<BlockId>> {
    let n = k.blocks.len();
    let rpo = k.rpo();
    let mut order = vec![usize::MAX; n];
    for (i, b) in rpo.iter().enumerate() {
        order[b.0 as usize] = i;
    }
    // Predecessors over reachable blocks.
    let mut preds: Vec<Vec<usize>> = vec![vec![]; n];
    for b in &rpo {
        for s in k.blocks[b.0 as usize].term.successors() {
            preds[s.0 as usize].push(b.0 as usize);
        }
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[0] = Some(0);
    let mut changed = true;
    while changed {
        changed = false;
        for b in rpo.iter().skip(1) {
            let bi = b.0 as usize;
            let mut new_idom: Option<usize> = None;
            for &p in &preds[bi] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(cur, p, &idom, &order),
                });
            }
            if let Some(ni) = new_idom {
                if idom[bi] != Some(ni) {
                    idom[bi] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom.into_iter()
        .map(|o| o.map(|i| BlockId(i as u32)))
        .collect()
}

fn intersect(mut a: usize, mut b: usize, idom: &[Option<usize>], order: &[usize]) -> usize {
    while a != b {
        while order[a] > order[b] {
            a = idom[a].expect("dominator chain reaches entry");
        }
        while order[b] > order[a] {
            b = idom[b].expect("dominator chain reaches entry");
        }
    }
    a
}

/// Whether block `a` dominates block `b`.
fn dominates(a: BlockId, b: BlockId, idom: &[Option<BlockId>]) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.0 as usize] {
            Some(parent) if parent != cur => cur = parent,
            _ => return cur == a,
        }
    }
}

/// Constant/copy propagation restricted to single-def registers with
/// dominating definitions, plus instruction folding.
fn propagate_and_fold(k: &mut KernelIr, stats: &mut OptStats) -> bool {
    let idom = dominators(k);
    // Count defs per register; record defining block and a replacement
    // operand for Copy/const-producing defs.
    let mut def_count: HashMap<RegId, usize> = HashMap::new();
    let mut def_block: HashMap<RegId, BlockId> = HashMap::new();
    let mut replacement: HashMap<RegId, Operand> = HashMap::new();
    for (bi, b) in k.blocks.iter().enumerate() {
        for inst in &b.insts {
            for d in inst.dsts() {
                *def_count.entry(d).or_insert(0) += 1;
                def_block.insert(d, BlockId(bi as u32));
            }
            if let Inst::Copy { dst, a } = inst {
                replacement.insert(*dst, *a);
            }
        }
    }
    // Only single-def regs may be propagated.
    replacement.retain(|r, _| def_count.get(r) == Some(&1));
    // Resolve chains (copy of copy).
    let resolve = |mut op: Operand, repl: &HashMap<RegId, Operand>| -> Operand {
        let mut hops = 0;
        while let Operand::Reg(r) = op {
            match repl.get(&r) {
                Some(next) => {
                    op = *next;
                    hops += 1;
                    if hops > 64 {
                        break;
                    }
                }
                None => break,
            }
        }
        op
    };

    let mut changed = false;
    let nblocks = k.blocks.len();
    for bi in 0..nblocks {
        let block_id = BlockId(bi as u32);
        let ninsts = k.blocks[bi].insts.len();
        for ii in 0..ninsts {
            let mut inst = k.blocks[bi].insts[ii].clone();
            let before = inst.clone();
            inst.map_operands(|op| {
                let new = resolve(op, &replacement);
                match new {
                    Operand::Const(_) => new,
                    Operand::Reg(r) => {
                        // A reg replacement must dominate this use.
                        let src_ok = def_block
                            .get(&r)
                            .map(|db| dominates(*db, block_id, &idom))
                            .unwrap_or(false);
                        if src_ok {
                            new
                        } else {
                            op
                        }
                    }
                }
            });
            // Fold pure ops with constant operands.
            let folded = fold_inst(&inst);
            if let Some(f) = folded {
                if f != inst {
                    stats.folded += 1;
                }
                inst = f;
            }
            if inst != before {
                changed = true;
                k.blocks[bi].insts[ii] = inst;
            }
        }
        // Terminator operands too.
        let term = k.blocks[bi].term.clone();
        if let Terminator::Br { cond, then, els } = term {
            let new_cond = resolve(cond, &replacement);
            let ok = match new_cond {
                Operand::Const(_) => true,
                Operand::Reg(r) => def_block
                    .get(&r)
                    .map(|db| dominates(*db, block_id, &idom))
                    .unwrap_or(false),
            };
            if ok && new_cond != cond {
                k.blocks[bi].term = Terminator::Br {
                    cond: new_cond,
                    then,
                    els,
                };
                changed = true;
            }
        }
    }
    changed
}

/// Folds a single instruction when its operands are constants, and
/// applies a few algebraic identities.
fn fold_inst(inst: &Inst) -> Option<Inst> {
    match inst {
        Inst::Bin { dst, op, a, b } => {
            if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
                return Some(Inst::Copy {
                    dst: *dst,
                    a: Operand::Const(Value::binop(*op, x, y)),
                });
            }
            // x + 0, x - 0, x | 0, x ^ 0 → x ; x * 1 → x ; x * 0, x & 0 → 0.
            if let Some(y) = b.as_const() {
                if y.bits() == 0 && matches!(op, BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor) {
                    return Some(Inst::Copy { dst: *dst, a: *a });
                }
                if y.bits() == 1 && *op == BinOp::Mul {
                    return Some(Inst::Copy { dst: *dst, a: *a });
                }
                if y.bits() == 0 && matches!(op, BinOp::Mul | BinOp::And) {
                    return Some(Inst::Copy {
                        dst: *dst,
                        a: Operand::Const(Value::zero(y.ty())),
                    });
                }
            }
            if let Some(x) = a.as_const() {
                if x.bits() == 0 && matches!(op, BinOp::Add | BinOp::Or | BinOp::Xor) {
                    return Some(Inst::Copy { dst: *dst, a: *b });
                }
            }
            None
        }
        Inst::Un { dst, op, a } => a.as_const().map(|v| Inst::Copy {
            dst: *dst,
            a: Operand::Const(Value::unop(*op, v)),
        }),
        Inst::Cast { dst, ty, a } => a.as_const().map(|v| Inst::Copy {
            dst: *dst,
            a: Operand::Const(v.cast(*ty)),
        }),
        Inst::Select { dst, cond, a, b } => cond.as_const().map(|c| Inst::Copy {
            dst: *dst,
            a: if c.is_truthy() { *a } else { *b },
        }),
        _ => None,
    }
}

/// Br on constant → Jmp.
fn simplify_branches(k: &mut KernelIr, stats: &mut OptStats) -> bool {
    let mut changed = false;
    for b in &mut k.blocks {
        if let Terminator::Br { cond, then, els } = &b.term {
            if let Some(c) = cond.as_const() {
                let target = if c.is_truthy() { *then } else { *els };
                b.term = Terminator::Jmp(target);
                stats.branches_simplified += 1;
                changed = true;
            }
        }
    }
    changed
}

/// Merges straight-line jump chains: a block ending in `Jmp(B)` absorbs
/// `B` when `B` has no other predecessor, and branches through empty
/// forwarding blocks are retargeted.
fn merge_blocks(k: &mut KernelIr, stats: &mut OptStats) -> bool {
    let mut changed = false;
    // Retarget jumps/branches through empty `Jmp`-only blocks.
    let forward_of = |blocks: &[Block], b: BlockId| -> Option<BlockId> {
        let blk = &blocks[b.0 as usize];
        if blk.insts.is_empty() {
            if let Terminator::Jmp(t) = blk.term {
                if t != b {
                    return Some(t);
                }
            }
        }
        None
    };
    for bi in 0..k.blocks.len() {
        let mut term = k.blocks[bi].term.clone();
        let mut local_change = false;
        match &mut term {
            Terminator::Jmp(t) => {
                while let Some(next) = forward_of(&k.blocks, *t) {
                    *t = next;
                    local_change = true;
                }
            }
            Terminator::Br { then, els, .. } => {
                while let Some(next) = forward_of(&k.blocks, *then) {
                    *then = next;
                    local_change = true;
                }
                while let Some(next) = forward_of(&k.blocks, *els) {
                    *els = next;
                    local_change = true;
                }
            }
            Terminator::Ret => {}
        }
        if local_change {
            k.blocks[bi].term = term;
            changed = true;
        }
    }
    // Absorb unique-successor/unique-predecessor pairs.
    let mut pred_count = vec![0usize; k.blocks.len()];
    for b in &k.blocks {
        for s in b.term.successors() {
            pred_count[s.0 as usize] += 1;
        }
    }
    #[allow(clippy::while_let_loop)] // `while let` can't pattern-match a field
    for bi in 0..k.blocks.len() {
        loop {
            let Terminator::Jmp(t) = k.blocks[bi].term else {
                break;
            };
            let ti = t.0 as usize;
            if ti == bi || pred_count[ti] != 1 {
                break;
            }
            let absorbed = std::mem::replace(
                &mut k.blocks[ti],
                Block {
                    insts: vec![],
                    term: Terminator::Ret,
                },
            );
            // `ti` is now an orphan Ret block; unreachable-removal will
            // drop it (its pred count goes to zero).
            pred_count[ti] = 0;
            k.blocks[bi].insts.extend(absorbed.insts);
            k.blocks[bi].term = absorbed.term;
            changed = true;
            stats.blocks_removed += 1;
        }
    }
    changed
}

/// Drops blocks unreachable from the entry (remapping ids).
fn remove_unreachable(k: &mut KernelIr, stats: &mut OptStats) -> bool {
    let reachable = k.rpo();
    if reachable.len() == k.blocks.len() {
        return false;
    }
    let mut keep = vec![false; k.blocks.len()];
    for b in &reachable {
        keep[b.0 as usize] = true;
    }
    let mut remap = vec![BlockId(0); k.blocks.len()];
    let mut new_blocks = Vec::with_capacity(reachable.len());
    for (old, b) in k.blocks.iter().enumerate() {
        if keep[old] {
            remap[old] = BlockId(new_blocks.len() as u32);
            new_blocks.push(b.clone());
        }
    }
    for b in &mut new_blocks {
        match &mut b.term {
            Terminator::Jmp(t) => *t = remap[t.0 as usize],
            Terminator::Br { then, els, .. } => {
                *then = remap[then.0 as usize];
                *els = remap[els.0 as usize];
            }
            Terminator::Ret => {}
        }
    }
    stats.blocks_removed += k.blocks.len() - new_blocks.len();
    k.blocks = new_blocks;
    true
}

/// Removes pure instructions whose results are never read.
fn dce(k: &mut KernelIr, stats: &mut OptStats) -> bool {
    let mut used = vec![false; k.nregs as usize];
    let mark = |op: &Operand, used: &mut Vec<bool>| {
        if let Operand::Reg(r) = op {
            if (r.0 as usize) < used.len() {
                used[r.0 as usize] = true;
            }
        }
    };
    for b in &k.blocks {
        for inst in &b.insts {
            for op in inst.operands() {
                mark(&op, &mut used);
            }
        }
        if let Terminator::Br { cond, .. } = &b.term {
            mark(cond, &mut used);
        }
    }
    let mut changed = false;
    for b in &mut k.blocks {
        let before = b.insts.len();
        b.insts.retain(|inst| {
            if inst.has_effect() {
                return true;
            }
            let dsts = inst.dsts();
            if dsts.is_empty() {
                return true;
            }
            dsts.iter().any(|d| used[d.0 as usize])
        });
        let removed = before - b.insts.len();
        if removed > 0 {
            stats.dce_removed += removed;
            changed = true;
        }
    }
    changed
}

// ---------------------------------------------------------------------
// Conformance checking
// ---------------------------------------------------------------------

/// A conformance violation: the program cannot be mapped to a PISA
/// switch (paper Fig. 6, "Conformance / Reject").
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConformanceError {
    /// A kernel retains a CFG cycle after unrolling.
    LoopNotUnrolled {
        /// Offending kernel.
        kernel: String,
        /// Kernel definition site.
        span: Span,
    },
    /// A kernel accesses a register array placed elsewhere.
    NotPlacedHere {
        /// Offending kernel.
        kernel: String,
        /// The state's name.
        what: String,
        /// Declaration site of the misplaced state.
        span: Span,
    },
    /// A kernel's compile mask does not match its parameter count.
    MaskArity {
        /// Offending kernel.
        kernel: String,
        /// Mask entries.
        mask: usize,
        /// Window-data parameters.
        params: usize,
        /// Kernel definition site.
        span: Span,
    },
    /// An incoming kernel appears in a switch module.
    IncomingOnSwitch {
        /// Offending kernel.
        kernel: String,
        /// Kernel definition site.
        span: Span,
    },
}

impl ConformanceError {
    /// The source span the error anchors to (the kernel definition, or
    /// the misplaced declaration for [`ConformanceError::NotPlacedHere`]).
    pub fn span(&self) -> Span {
        match self {
            ConformanceError::LoopNotUnrolled { span, .. }
            | ConformanceError::NotPlacedHere { span, .. }
            | ConformanceError::MaskArity { span, .. }
            | ConformanceError::IncomingOnSwitch { span, .. } => *span,
        }
    }

    /// The offending kernel's name.
    pub fn kernel(&self) -> &str {
        match self {
            ConformanceError::LoopNotUnrolled { kernel, .. }
            | ConformanceError::NotPlacedHere { kernel, .. }
            | ConformanceError::MaskArity { kernel, .. }
            | ConformanceError::IncomingOnSwitch { kernel, .. } => kernel,
        }
    }

    /// Converts to a renderable [`Diagnostic`] anchored in `file`
    /// (normally [`Module::file`]).
    pub fn to_diagnostic(&self, file: &str) -> Diagnostic {
        Diagnostic::error(self.to_string(), self.span(), file)
    }
}

impl std::fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConformanceError::LoopNotUnrolled { kernel, .. } => write!(
                f,
                "kernel '{kernel}': loop has no provably constant trip count \
                 (PISA pipelines cannot loop)"
            ),
            ConformanceError::NotPlacedHere { kernel, what, .. } => write!(
                f,
                "kernel '{kernel}' accesses '{what}', which is not placed at this location"
            ),
            ConformanceError::MaskArity {
                kernel,
                mask,
                params,
                ..
            } => write!(
                f,
                "kernel '{kernel}': mask has {mask} entries but the kernel \
                 takes {params} window arrays"
            ),
            ConformanceError::IncomingOnSwitch { kernel, .. } => write!(
                f,
                "incoming kernel '{kernel}' cannot be compiled for a switch"
            ),
        }
    }
}

impl std::error::Error for ConformanceError {}

/// Checks that every *outgoing* kernel of the module can map to a PISA
/// pipeline at the module's location. Call after [`optimize`] (and after
/// versioning for placed modules).
pub fn conformance(module: &Module) -> Vec<ConformanceError> {
    let mut errors = Vec::new();
    for k in &module.kernels {
        if k.kind != KernelKind::Outgoing {
            // Versioning strips incoming kernels from switch modules;
            // seeing one here means the module was handed to the switch
            // backend without versioning.
            errors.push(ConformanceError::IncomingOnSwitch {
                kernel: k.name.clone(),
                span: k.span,
            });
            continue;
        }
        if !module.placed_here(&k.at) {
            continue; // not compiled for this switch
        }
        if k.has_loop() {
            errors.push(ConformanceError::LoopNotUnrolled {
                kernel: k.name.clone(),
                span: k.span,
            });
        }
        if !k.mask.is_empty() {
            let params = k.params.iter().filter(|p| !p.ext).count();
            if k.mask.len() != params {
                errors.push(ConformanceError::MaskArity {
                    kernel: k.name.clone(),
                    mask: k.mask.len(),
                    params,
                    span: k.span,
                });
            }
        }
        // Placement of touched state.
        for b in &k.blocks {
            for inst in &b.insts {
                match inst {
                    Inst::LdReg { arr, .. } | Inst::StReg { arr, .. } => {
                        let decl = &module.registers[arr.0 as usize];
                        if !module.placed_here(&decl.at) {
                            errors.push(ConformanceError::NotPlacedHere {
                                kernel: k.name.clone(),
                                what: decl.name.clone(),
                                span: decl.span,
                            });
                        }
                    }
                    Inst::LdCtrl { ctrl, .. } => {
                        let decl = &module.ctrls[ctrl.0 as usize];
                        if !module.placed_here(&decl.at) {
                            errors.push(ConformanceError::NotPlacedHere {
                                kernel: k.name.clone(),
                                what: decl.name.clone(),
                                span: decl.span,
                            });
                        }
                    }
                    Inst::MapGet { map, .. } => {
                        let decl = &module.maps[map.0 as usize];
                        if !module.placed_here(&decl.at) {
                            errors.push(ConformanceError::NotPlacedHere {
                                kernel: k.name.clone(),
                                what: decl.name.clone(),
                                span: decl.span,
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    errors.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    errors.dedup();
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, LoweringConfig};
    use ncl_lang::frontend;

    fn build(src: &str, kernel: &str, mask: &[u16]) -> Module {
        let checked = frontend(src, "t.ncl").expect("frontend");
        lower(&checked, &LoweringConfig::with_mask(kernel, mask.to_vec())).expect("lower")
    }

    #[test]
    fn fold_and_dce_shrink_fig4() {
        let src = r#"
_net_ _at_("s1") int accum[16] = {0};
_net_ _out_ void k(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    _drop();
}
"#;
        let mut m = build(src, "k", &[4]);
        let before = m.kernel("k").unwrap().inst_count();
        let stats = optimize(&mut m);
        let after = m.kernel("k").unwrap().inst_count();
        assert!(
            after < before,
            "optimize should shrink ({before} -> {after})"
        );
        assert!(stats.folded > 0 || stats.dce_removed > 0);
        assert!(conformance(&m).is_empty());
    }

    #[test]
    fn constant_branch_collapses() {
        let src =
            "_net_ _out_ void k(int *d) { int c = 3; if (c > 1) { d[0] = 1; } else { d[0] = 2; } }";
        let mut m = build(src, "k", &[1]);
        optimize(&mut m);
        let k = m.kernel("k").unwrap();
        assert_eq!(k.blocks.len(), 1, "{k}");
        assert!(k.blocks[0].insts.iter().any(|i| matches!(
            i,
            Inst::StWin {
                val: Operand::Const(v),
                ..
            } if v.bits() == 1
        )));
    }

    #[test]
    fn copy_chains_collapse() {
        let src = "_net_ _out_ void k(int *d) { int a = 5; int b = a; int c = b; d[0] = c; }";
        let mut m = build(src, "k", &[1]);
        optimize(&mut m);
        let k = m.kernel("k").unwrap();
        // Everything folds into a single constant store.
        assert_eq!(k.inst_count(), 1, "{k}");
    }

    #[test]
    fn effects_never_removed() {
        let src = r#"
_net_ _at_("s1") int acc[4];
_net_ _out_ void k(int *d) { acc[0] = 1; _drop(); }
"#;
        let mut m = build(src, "k", &[1]);
        optimize(&mut m);
        let k = m.kernel("k").unwrap();
        assert!(k.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::StReg { .. })));
        assert!(k.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Fwd { .. })));
    }

    #[test]
    fn multi_def_regs_not_propagated() {
        // `x` is assigned in both branches; its uses must not collapse to
        // either constant.
        let src = "_net_ _out_ void k(int *d) {\n\
                     int x = 0;\n\
                     if (d[0] > 0) { x = 1; } else { x = 2; }\n\
                     d[0] = x;\n\
                   }";
        let mut m = build(src, "k", &[1]);
        optimize(&mut m);
        let k = m.kernel("k").unwrap();
        // The final store must read a register, not a constant.
        let store_const = k.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::StWin {
                    val: Operand::Const(_),
                    ..
                }
            )
        });
        assert!(!store_const, "{k}");
    }

    #[test]
    fn conformance_rejects_loops() {
        let src = "_net_ _out_ void k(int *d) { while (d[0] > 0) { d[0] -= 1; } }";
        let mut m = build(src, "k", &[1]);
        optimize(&mut m);
        let errs = conformance(&m);
        assert!(matches!(
            errs.first(),
            Some(ConformanceError::LoopNotUnrolled { .. })
        ));
    }

    #[test]
    fn conformance_rejects_misplaced_state() {
        let src = r#"
_net_ _at_("s2") int acc[4];
_net_ _out_ void k(int *d) { acc[0] += d[0]; }
"#;
        let mut m = build(src, "k", &[1]);
        optimize(&mut m);
        m.location = Some(c3::Label::new("s1"));
        let errs = conformance(&m);
        assert!(
            matches!(errs.first(), Some(ConformanceError::NotPlacedHere { what, .. }) if what == "acc"),
            "{errs:?}"
        );
    }

    #[test]
    fn conformance_passes_clean_kernel() {
        let src = r#"
_net_ _at_("s1") int acc[4];
_net_ _out_ void k(int *d) { acc[0] += d[0]; _drop(); }
"#;
        let mut m = build(src, "k", &[1]);
        optimize(&mut m);
        m.location = Some(c3::Label::new("s1"));
        assert!(conformance(&m).is_empty());
    }

    #[test]
    fn dominators_diamond() {
        let src = "_net_ _out_ void k(int *d) { if (d[0] > 0) { d[0] = 1; } else { d[0] = 2; } d[1] = 3; }";
        let m = build(src, "k", &[2]);
        let k = m.kernel("k").unwrap();
        let idom = dominators(k);
        // Entry dominates everything; join's idom is the entry.
        assert_eq!(idom[0], Some(BlockId(0)));
        let join = BlockId((k.blocks.len() - 1) as u32);
        assert_eq!(idom[join.0 as usize], Some(BlockId(0)));
    }

    #[test]
    fn optimize_is_idempotent() {
        let src = r#"
_net_ _at_("s1") int accum[16] = {0};
_net_ _out_ void k(int *data) {
    for (unsigned i = 0; i < window.len; ++i) accum[i] += data[i];
}
"#;
        let mut m = build(src, "k", &[4]);
        optimize(&mut m);
        let snapshot = m.clone();
        optimize(&mut m);
        assert_eq!(m, snapshot);
    }
}
