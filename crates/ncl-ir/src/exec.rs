//! The compiled fast-path executor for NCL kernels.
//!
//! [`CompiledKernel::compile`] flattens the block-structured [`KernelIr`]
//! into a linear micro-op program: jump targets become instruction
//! offsets, window/host parameter types and register/ctrl/map ids are
//! resolved to dense indices at compile time, and a forward type
//! dataflow over the virtual register file proves operand types so the
//! hot loop can run width-specialized ALU ops without the dynamic type
//! dispatch the tree interpreter pays per instruction.
//!
//! The program executes against a reusable [`ExecScratch`] — register
//! file plus the empty host-memory/switch-state views the interpreter
//! allocates fresh on every call — so steady-state window processing
//! performs **zero heap allocations**.
//!
//! The tree interpreter ([`crate::interp::Interpreter`]) stays the
//! semantic oracle: for every kernel, window, and device state,
//! `CompiledKernel` must produce bit-identical windows, switch state,
//! forwarding decisions, and errors. The edge cases this implies are
//! inherited wholesale:
//!
//! * window-data reads out of chunk bounds yield 0; writes are dropped;
//! * register-array indices wrap modulo the array length, and accessing
//!   an array not placed at this location errors *only if the access
//!   executes*;
//! * map misses read as 0 with the hit bit clear, and the value register
//!   keeps its current dynamic type;
//! * the forwarding decision defaults to `_pass()`; the last executed
//!   `Fwd` wins;
//! * `_here()` consults the device state at run time (state location can
//!   change between runs);
//! * the step budget counts instructions plus terminators. Kernels whose
//!   CFG is acyclic and shorter than the budget provably cannot exhaust
//!   it, and for those the counter is elided from the loop entirely.

use crate::interp::{HostMemory, InterpError, SwitchState};
use crate::ir::*;
use c3::{BinOp, Chunk, Forward, Label, ScalarType, UnOp, Value, Window};

/// Default step budget, matching [`crate::interp::Interpreter`].
const DEFAULT_STEP_LIMIT: usize = 1_000_000;

/// A micro-op operand: a dense register index or an immediate.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Opnd {
    Reg(u32),
    Const(Value),
}

impl Opnd {
    #[inline(always)]
    fn read(self, regs: &[Value]) -> Value {
        match self {
            Opnd::Reg(r) => regs[r as usize],
            Opnd::Const(v) => v,
        }
    }
}

/// Signedness-resolved comparison predicates (width handled by the
/// canonical bit representation: `Value` never carries stale high bits).
#[derive(Clone, Copy, PartialEq, Debug)]
enum CmpOp {
    Eq,
    Ne,
    LtU,
    LeU,
    GtU,
    GeU,
    LtS,
    LeS,
    GtS,
    GeS,
}

/// One linear micro-op. Jump targets are instruction offsets.
#[derive(Clone, Debug)]
enum Op {
    // -------- type-specialized ALU (emitted when the dataflow proves
    // both operand types; bit-identical to `Value::binop` on same-typed
    // operands because `Value::new` re-masks and bool-normalizes) -------
    Add {
        dst: u32,
        ty: ScalarType,
        a: Opnd,
        b: Opnd,
    },
    Sub {
        dst: u32,
        ty: ScalarType,
        a: Opnd,
        b: Opnd,
    },
    Mul {
        dst: u32,
        ty: ScalarType,
        a: Opnd,
        b: Opnd,
    },
    BitAnd {
        dst: u32,
        ty: ScalarType,
        a: Opnd,
        b: Opnd,
    },
    BitOr {
        dst: u32,
        ty: ScalarType,
        a: Opnd,
        b: Opnd,
    },
    BitXor {
        dst: u32,
        ty: ScalarType,
        a: Opnd,
        b: Opnd,
    },
    Shl {
        dst: u32,
        ty: ScalarType,
        width: u32,
        a: Opnd,
        b: Opnd,
    },
    ShrU {
        dst: u32,
        ty: ScalarType,
        width: u32,
        a: Opnd,
        b: Opnd,
    },
    ShrS {
        dst: u32,
        ty: ScalarType,
        width: u32,
        a: Opnd,
        b: Opnd,
    },
    Cmp {
        dst: u32,
        op: CmpOp,
        ext: u32,
        a: Opnd,
        b: Opnd,
    },
    // -------- generic ALU fallback (dynamic types) --------
    Bin {
        dst: u32,
        op: BinOp,
        a: Opnd,
        b: Opnd,
    },
    Un {
        dst: u32,
        op: UnOp,
        a: Opnd,
    },
    Cast {
        dst: u32,
        ty: ScalarType,
        a: Opnd,
    },
    Select {
        dst: u32,
        cond: Opnd,
        a: Opnd,
        b: Opnd,
    },
    Copy {
        dst: u32,
        a: Opnd,
    },
    // -------- window data (parameter element type pre-resolved) --------
    LdWin {
        dst: u32,
        param: u32,
        ty: ScalarType,
        index: Opnd,
    },
    StWin {
        param: u32,
        ty: ScalarType,
        index: Opnd,
        val: Opnd,
    },
    /// Constant-index chunk read: element index and the exclusive byte
    /// bound pre-multiplied, so the bounds check is a single compare
    /// (no division) and the load needs no index arithmetic.
    LdWinC {
        dst: u32,
        param: u32,
        ty: ScalarType,
        idx: u32,
        end: u32,
    },
    /// Constant-index chunk write, same precomputation.
    StWinC {
        param: u32,
        ty: ScalarType,
        idx: u32,
        end: u32,
        val: Opnd,
    },
    // -------- metadata (one op per field: no field dispatch in the loop)
    LdSeq {
        dst: u32,
    },
    LdSender {
        dst: u32,
    },
    LdFrom {
        dst: u32,
    },
    LdLen {
        dst: u32,
        ty: ScalarType,
    },
    LdNChunks {
        dst: u32,
    },
    LdLast {
        dst: u32,
    },
    LdExt {
        dst: u32,
        offset: u32,
        ty: ScalarType,
    },
    LdLocationId {
        dst: u32,
    },
    StExt {
        offset: u32,
        ty: ScalarType,
        val: Opnd,
    },
    // -------- switch state --------
    LdReg {
        dst: u32,
        arr: u32,
        index: Opnd,
    },
    StReg {
        arr: u32,
        index: Opnd,
        val: Opnd,
    },
    // Module-resolved register access: the placement check, the array
    // length, and the slot element type are all compile-time facts
    // (`compile_for` only), so the hot loop skips the emptiness check,
    // the modulo (pre-wrapped constant index, or a mask for
    // power-of-two lengths), and the slot-type read.
    /// Constant index, pre-wrapped modulo the array length.
    LdRegC {
        dst: u32,
        arr: u32,
        idx: u32,
    },
    /// Constant index store; `ty` is the proven slot type.
    StRegC {
        arr: u32,
        idx: u32,
        ty: ScalarType,
        val: Opnd,
    },
    /// Dynamic index, power-of-two length: wrap with a mask.
    LdRegM {
        dst: u32,
        arr: u32,
        mask: u32,
        index: Opnd,
    },
    /// Dynamic masked store.
    StRegM {
        arr: u32,
        mask: u32,
        ty: ScalarType,
        index: Opnd,
        val: Opnd,
    },
    /// Dynamic index, arbitrary known length: wrap with `%`.
    LdRegL {
        dst: u32,
        arr: u32,
        len: u32,
        index: Opnd,
    },
    /// Dynamic store with known length.
    StRegL {
        arr: u32,
        len: u32,
        ty: ScalarType,
        index: Opnd,
        val: Opnd,
    },
    LdCtrl {
        dst: u32,
        ctrl: u32,
    },
    MapGet {
        found: u32,
        val: u32,
        map: u32,
        key: Opnd,
    },
    /// Access to state the module provably does not place here: the
    /// placement check hoisted to compile time (fires only if executed).
    NotPlaced {
        what: &'static str,
    },
    // -------- host memory (incoming kernels) --------
    LdHost {
        dst: u32,
        param: u32,
        ty: ScalarType,
        index: Opnd,
    },
    StHost {
        param: u32,
        index: Opnd,
        val: Opnd,
    },
    // -------- forwarding --------
    FwdPass,
    FwdPassTo {
        label: Label,
    },
    FwdReflect,
    FwdBcast,
    FwdDrop,
    Here {
        dst: u32,
        label: Label,
    },
    // -------- fused element-wise runs (see [`VecOp`]) --------
    /// `arr[(base+c) & amask] += win[param][c]` for a run of `n` groups.
    VecAccum(Box<VecOp>),
    /// `win[param][c] = arr[(base+c) & amask]` for a run of `n` groups.
    VecRegToWin(Box<VecOp>),
    /// `arr[(base+c) & amask] = win[param][c]` for a run of `n` groups.
    VecWinToReg(Box<VecOp>),
    // -------- control flow (targets are instruction offsets) --------
    Jmp {
        target: u32,
    },
    Br {
        cond: Opnd,
        then: u32,
        els: u32,
    },
    /// Fused compare-and-branch (one dispatch instead of two). Still
    /// writes `dst`: later blocks may read the compare result.
    CmpBr {
        dst: u32,
        op: CmpOp,
        ext: u32,
        a: Opnd,
        b: Opnd,
        then: u32,
        els: u32,
    },
    Ret,
}

/// A fused run of unrolled element-wise groups, the shape the loop
/// unroller leaves behind for `accum[base+i] += data[i]`-style bodies:
/// repeated `index-add / LdReg / LdWin / Add / StReg` (or the two copy
/// directions) with consecutive constant chunk indices. One dispatch
/// executes the whole run as a tight native loop; the intermediate
/// virtual registers are elided entirely (fusion proves nothing outside
/// the run reads them).
///
/// Iteration `i` touches chunk element `c = idx0 + i` and register slot
/// `((base + c) & imask) & amask`, mirroring the scalar ops bit for
/// bit. When `head_cost < cost`, the first group has no leading index
/// add (the unroller uses the base register directly), so iteration 0
/// uses the base bits unmasked, exactly as the scalar `LdReg`/`StReg`
/// would.
///
/// Step accounting stays exact under `counted`: the run charges the
/// same per-instruction budget the interpreter would, and on exhaustion
/// performs exactly the stores whose scalar counterparts would have
/// executed before the limit hit (each group's store is its last
/// micro-op, and loads/ALU sub-ops only write elided registers).
#[derive(Clone, Debug)]
pub(crate) struct VecOp {
    pub(crate) param: u32,
    /// Chunk element type.
    pub(crate) wty: ScalarType,
    /// First chunk element index.
    pub(crate) idx0: u32,
    /// Number of groups in the run.
    pub(crate) n: u32,
    pub(crate) arr: u32,
    /// Register slot mask (power-of-two array length minus one).
    pub(crate) amask: u32,
    /// Virtual register holding the base index.
    pub(crate) base: u32,
    /// Width mask of the index-add type.
    pub(crate) imask: u64,
    /// Accumulate type (`VecAccum` only; both operands proven).
    pub(crate) aty: ScalarType,
    /// Store cast target: register slot type, or the chunk element type
    /// for `VecRegToWin`.
    pub(crate) sty: ScalarType,
    /// Interpreter steps per full group.
    pub(crate) cost: u32,
    /// Steps of the first group (one less than `cost` when headless).
    pub(crate) head_cost: u32,
}

impl VecOp {
    /// Register slot for iteration `i` (chunk element `idx0 + i`),
    /// mirroring the scalar index add: iteration 0 of a headless run
    /// uses the base bits without the index-type mask, exactly as the
    /// scalar `LdReg`/`StReg` reads the base register directly.
    #[inline(always)]
    pub(crate) fn slot(&self, base_bits: u64, i: u32) -> usize {
        let k = if i == 0 && self.head_cost < self.cost {
            base_bits
        } else {
            base_bits.wrapping_add((self.idx0 + i) as u64) & self.imask
        };
        k as usize & self.amask as usize
    }
}

/// Zero-extended big-endian load of `N` bytes — what [`Value::read_be`]
/// produces for every non-bool scalar, without the type dispatch.
#[inline(always)]
pub(crate) fn be_load<const N: usize>(data: &[u8], off: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw[8 - N..].copy_from_slice(&data[off..off + N]);
    u64::from_be_bytes(raw)
}

/// Big-endian store of the low `N` bytes, mirroring [`Value::write_be`].
#[inline(always)]
pub(crate) fn be_store<const N: usize>(data: &mut [u8], off: usize, bits: u64) {
    data[off..off + N].copy_from_slice(&bits.to_be_bytes()[8 - N..]);
}

/// `arr[slot] += win[c]` over a fused run. With `simd`, the ncvec tier
/// executes the lane-packable body (see [`crate::ncvec`]); otherwise —
/// and for the run's head and ragged tail — the width-specialized
/// scalar loops handle the common case (chunk, accumulate, and slot
/// types all equal and non-bool) and anything else takes the
/// `Value`-typed loop.
fn vec_accum(
    v: &VecOp,
    m: u32,
    base_bits: u64,
    arr: &mut [Value],
    chunk: Option<&Chunk>,
    simd: bool,
) {
    if simd && crate::ncvec::accum(v, m, base_bits, arr, chunk) {
        return;
    }
    vec_accum_scalar(v, 0..m, base_bits, arr, chunk);
}

/// The scalar accumulate loop over iterations `r` of a fused run; the
/// semantic reference the ncvec tier's head/tail epilogues reuse.
pub(crate) fn vec_accum_scalar(
    v: &VecOp,
    r: std::ops::Range<u32>,
    base_bits: u64,
    arr: &mut [Value],
    chunk: Option<&Chunk>,
) {
    if v.wty == v.aty && v.aty == v.sty && v.wty != ScalarType::Bool {
        return match v.wty.size() {
            1 => vec_accum_fast::<1>(v, r, base_bits, arr, chunk),
            2 => vec_accum_fast::<2>(v, r, base_bits, arr, chunk),
            4 => vec_accum_fast::<4>(v, r, base_bits, arr, chunk),
            _ => vec_accum_fast::<8>(v, r, base_bits, arr, chunk),
        };
    }
    let size = v.wty.size();
    for i in r {
        let cc = (v.idx0 + i) as usize;
        let slot = v.slot(base_bits, i);
        let w = chunk
            .filter(|c| (cc + 1) * size <= c.data.len())
            .map(|c| c.get(v.wty, cc))
            .unwrap_or_else(|| Value::zero(v.wty));
        let bits = arr[slot].bits().wrapping_add(w.bits());
        arr[slot] = Value::new(v.aty, bits).cast(v.sty);
    }
}

#[inline(always)]
fn vec_accum_fast<const N: usize>(
    v: &VecOp,
    r: std::ops::Range<u32>,
    base_bits: u64,
    arr: &mut [Value],
    chunk: Option<&Chunk>,
) {
    let mask = v.aty.mask();
    for i in r {
        let off = (v.idx0 + i) as usize * N;
        let w = match chunk {
            Some(c) if off + N <= c.data.len() => be_load::<N>(&c.data, off),
            _ => 0,
        };
        let slot = v.slot(base_bits, i);
        let bits = arr[slot].bits().wrapping_add(w) & mask;
        arr[slot] = Value::new(v.aty, bits);
    }
}

/// `win[c] = arr[slot]` over a fused run. A missing chunk drops every
/// store, exactly like the scalar `StWin`.
fn vec_reg_to_win(
    v: &VecOp,
    m: u32,
    base_bits: u64,
    arr: &[Value],
    chunk: Option<&mut Chunk>,
    simd: bool,
) {
    let Some(c) = chunk else { return };
    if simd && crate::ncvec::reg_to_win(v, m, base_bits, arr, c) {
        return;
    }
    vec_reg_to_win_scalar(v, 0..m, base_bits, arr, c);
}

/// The scalar store loop over iterations `r` of a fused run.
pub(crate) fn vec_reg_to_win_scalar(
    v: &VecOp,
    r: std::ops::Range<u32>,
    base_bits: u64,
    arr: &[Value],
    c: &mut Chunk,
) {
    match v.wty.size() {
        1 => vec_reg_to_win_fast::<1>(v, r, base_bits, arr, c),
        2 => vec_reg_to_win_fast::<2>(v, r, base_bits, arr, c),
        4 => vec_reg_to_win_fast::<4>(v, r, base_bits, arr, c),
        _ => vec_reg_to_win_fast::<8>(v, r, base_bits, arr, c),
    }
}

#[inline(always)]
fn vec_reg_to_win_fast<const N: usize>(
    v: &VecOp,
    r: std::ops::Range<u32>,
    base_bits: u64,
    arr: &[Value],
    c: &mut Chunk,
) {
    for i in r {
        let off = (v.idx0 + i) as usize * N;
        if off + N > c.data.len() {
            continue;
        }
        let d = arr[v.slot(base_bits, i)];
        // Same-type cast is the identity on canonical values (bool
        // included: canonical bool bits are already 0/1).
        let bits = if d.ty() == v.wty {
            d.bits()
        } else {
            d.cast(v.wty).bits()
        };
        be_store::<N>(&mut c.data, off, bits);
    }
}

/// `arr[slot] = win[c]` over a fused run.
fn vec_win_to_reg(
    v: &VecOp,
    m: u32,
    base_bits: u64,
    arr: &mut [Value],
    chunk: Option<&Chunk>,
    simd: bool,
) {
    if simd && crate::ncvec::win_to_reg(v, m, base_bits, arr, chunk) {
        return;
    }
    vec_win_to_reg_scalar(v, 0..m, base_bits, arr, chunk);
}

/// The scalar broadcast-read loop over iterations `r` of a fused run.
pub(crate) fn vec_win_to_reg_scalar(
    v: &VecOp,
    r: std::ops::Range<u32>,
    base_bits: u64,
    arr: &mut [Value],
    chunk: Option<&Chunk>,
) {
    if v.wty == v.sty && v.wty != ScalarType::Bool {
        return match v.wty.size() {
            1 => vec_win_to_reg_fast::<1>(v, r, base_bits, arr, chunk),
            2 => vec_win_to_reg_fast::<2>(v, r, base_bits, arr, chunk),
            4 => vec_win_to_reg_fast::<4>(v, r, base_bits, arr, chunk),
            _ => vec_win_to_reg_fast::<8>(v, r, base_bits, arr, chunk),
        };
    }
    let size = v.wty.size();
    for i in r {
        let cc = (v.idx0 + i) as usize;
        let w = chunk
            .filter(|c| (cc + 1) * size <= c.data.len())
            .map(|c| c.get(v.wty, cc))
            .unwrap_or_else(|| Value::zero(v.wty));
        arr[v.slot(base_bits, i)] = w.cast(v.sty);
    }
}

#[inline(always)]
fn vec_win_to_reg_fast<const N: usize>(
    v: &VecOp,
    r: std::ops::Range<u32>,
    base_bits: u64,
    arr: &mut [Value],
    chunk: Option<&Chunk>,
) {
    for i in r {
        let off = (v.idx0 + i) as usize * N;
        let w = match chunk {
            Some(c) if off + N <= c.data.len() => be_load::<N>(&c.data, off),
            _ => 0,
        };
        arr[v.slot(base_bits, i)] = Value::new(v.sty, w);
    }
}

/// Reusable execution scratch: the per-run state the tree interpreter
/// allocates fresh on every call. Steady-state reuse performs no heap
/// allocation (the register file retains its capacity; the spare
/// state/host views stay empty by construction).
#[derive(Debug, Default)]
pub struct ExecScratch {
    regs: Vec<Value>,
    spare_state: SwitchState,
    spare_host: HostMemory,
}

impl ExecScratch {
    /// A fresh scratch. One per execution site; reuse across runs.
    pub fn new() -> Self {
        ExecScratch::default()
    }
}

/// What the type dataflow knows about a virtual register at a point.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Ty {
    Known(ScalarType),
    Any,
}

impl Ty {
    fn join(self, other: Ty) -> Ty {
        match (self, other) {
            (Ty::Known(a), Ty::Known(b)) if a == b => self,
            _ => Ty::Any,
        }
    }
}

/// A [`KernelIr`] lowered to a linear, slot-resolved micro-op program.
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    /// Kernel name (diagnostics).
    pub name: String,
    ops: Vec<Op>,
    /// Typed-zero image of the register file: the per-run reset is one
    /// memcpy instead of a per-register constructor loop.
    zero_regs: Vec<Value>,
    step_limit: usize,
    has_loop: bool,
    /// Interpreter-visible step count of a full straight-line execution
    /// (fused ops cover several interpreter steps each).
    interp_len: usize,
    /// Elide the step counter when the CFG is acyclic and shorter than
    /// the budget (it provably cannot exhaust it).
    counted: bool,
    /// Offer fused runs to the ncvec SIMD tier (default). The tier still
    /// falls back per run — and bit-identically — when the host has no
    /// usable lanes or the run's slots do not pack (see [`crate::ncvec`]).
    simd: bool,
}

/// Compile-time context resolving state types/placement from a module.
struct ModuleCtx<'a> {
    module: &'a Module,
}

impl CompiledKernel {
    /// Lowers a kernel without module context. State accesses keep
    /// their dynamic placement checks and map/ctrl/array element types
    /// are treated as unknown (the generic ALU ops handle them).
    pub fn compile(kernel: &KernelIr) -> Self {
        Self::build(kernel, None)
    }

    /// Lowers a kernel with its module: array/ctrl element types feed
    /// the type dataflow, and accesses to state the module does not
    /// place at its location compile to a hoisted placement error.
    ///
    /// The caller must run the result against switch state built by
    /// [`SwitchState::from_module`] on the *same* module, which is what
    /// the `(kernel, location)` caches in the runtime do.
    pub fn compile_for(kernel: &KernelIr, module: &Module) -> Self {
        Self::build(kernel, Some(ModuleCtx { module }))
    }

    /// Overrides the step budget (default one million, matching the
    /// interpreter) and recomputes whether the loop needs a counter.
    pub fn with_step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self.counted = self.has_loop || self.interp_len > limit;
        self
    }

    /// Enables or disables the ncvec SIMD tier for this kernel's fused
    /// runs (enabled by default). Disabling pins the scalar micro-op
    /// fast path — the A/B baseline the differential tests and E13 use.
    pub fn with_simd(mut self, simd: bool) -> Self {
        self.simd = simd;
        self
    }

    /// Whether this kernel offers fused runs to the ncvec SIMD tier.
    pub fn simd(&self) -> bool {
        self.simd
    }

    /// Number of fused element-wise runs (`VecAccum`/`VecRegToWin`/
    /// `VecWinToReg`) in the program — the ops the ncvec tier can
    /// accelerate. Zero means the SIMD tier degenerates to the plain
    /// micro-op fast path for this kernel.
    pub fn vec_runs(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    Op::VecAccum(_) | Op::VecRegToWin(_) | Op::VecWinToReg(_)
                )
            })
            .count()
    }

    /// Number of micro-ops in the program.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Interpreter-equivalent step count of a full straight-line
    /// execution: fused runs count every interpreter step they replace,
    /// so this is the number the tree-walking oracle would charge — and
    /// the number every execution tier reports in telemetry (`uops` in
    /// nctel hop records), independent of how many micro-ops the run
    /// fused into or which tier executed it.
    pub fn interp_steps(&self) -> usize {
        self.interp_len
    }

    /// True when the program is empty (never: `Ret` is always present).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Runs an outgoing kernel on a window at a switch; mirrors
    /// [`crate::interp::Interpreter::run_outgoing`].
    pub fn run_outgoing(
        &self,
        window: &mut Window,
        state: &mut SwitchState,
        scratch: &mut ExecScratch,
    ) -> Result<Forward, InterpError> {
        let mut host = std::mem::take(&mut scratch.spare_host);
        let result = self.run(window, state, &mut host, &mut scratch.regs);
        scratch.spare_host = host;
        result
    }

    /// Runs an incoming kernel on a window at a host; mirrors
    /// [`crate::interp::Interpreter::run_incoming`].
    pub fn run_incoming(
        &self,
        window: &mut Window,
        host: &mut HostMemory,
        scratch: &mut ExecScratch,
    ) -> Result<(), InterpError> {
        let mut state = std::mem::take(&mut scratch.spare_state);
        let result = self.run(window, &mut state, host, &mut scratch.regs);
        scratch.spare_state = state;
        result.map(|_| ())
    }

    fn run(
        &self,
        window: &mut Window,
        state: &mut SwitchState,
        host: &mut HostMemory,
        regs: &mut Vec<Value>,
    ) -> Result<Forward, InterpError> {
        // Reset the register file to typed zeros without reallocating.
        regs.clear();
        regs.extend_from_slice(&self.zero_regs);
        let regs = &mut regs[..];

        let mut decision = Forward::Pass;
        let mut pc = 0usize;
        let mut steps = 0usize;
        loop {
            if self.counted {
                steps += 1;
                if steps > self.step_limit {
                    return Err(InterpError::StepLimit);
                }
            }
            match &self.ops[pc] {
                Op::Add { dst, ty, a, b } => {
                    let bits = a.read(regs).bits().wrapping_add(b.read(regs).bits());
                    regs[*dst as usize] = Value::new(*ty, bits);
                }
                Op::Sub { dst, ty, a, b } => {
                    let bits = a.read(regs).bits().wrapping_sub(b.read(regs).bits());
                    regs[*dst as usize] = Value::new(*ty, bits);
                }
                Op::Mul { dst, ty, a, b } => {
                    let bits = a.read(regs).bits().wrapping_mul(b.read(regs).bits());
                    regs[*dst as usize] = Value::new(*ty, bits);
                }
                Op::BitAnd { dst, ty, a, b } => {
                    let bits = a.read(regs).bits() & b.read(regs).bits();
                    regs[*dst as usize] = Value::new(*ty, bits);
                }
                Op::BitOr { dst, ty, a, b } => {
                    let bits = a.read(regs).bits() | b.read(regs).bits();
                    regs[*dst as usize] = Value::new(*ty, bits);
                }
                Op::BitXor { dst, ty, a, b } => {
                    let bits = a.read(regs).bits() ^ b.read(regs).bits();
                    regs[*dst as usize] = Value::new(*ty, bits);
                }
                Op::Shl {
                    dst,
                    ty,
                    width,
                    a,
                    b,
                } => {
                    let sh = b.read(regs).bits() as u32 % width;
                    regs[*dst as usize] = Value::new(*ty, a.read(regs).bits().wrapping_shl(sh));
                }
                Op::ShrU {
                    dst,
                    ty,
                    width,
                    a,
                    b,
                } => {
                    let sh = b.read(regs).bits() as u32 % width;
                    regs[*dst as usize] = Value::new(*ty, a.read(regs).bits() >> sh);
                }
                Op::ShrS {
                    dst,
                    ty,
                    width,
                    a,
                    b,
                } => {
                    let sh = b.read(regs).bits() as u32 % width;
                    let ext = 64 - width;
                    let x = ((a.read(regs).bits() << ext) as i64) >> ext; // sign-extend
                    regs[*dst as usize] = Value::new(*ty, (x >> sh) as u64);
                }
                Op::Cmp { dst, op, ext, a, b } => {
                    let r = cmp_eval(*op, *ext, a.read(regs).bits(), b.read(regs).bits());
                    regs[*dst as usize] = Value::bool(r);
                }
                Op::Bin { dst, op, a, b } => {
                    regs[*dst as usize] = Value::binop(*op, a.read(regs), b.read(regs));
                }
                Op::Un { dst, op, a } => {
                    regs[*dst as usize] = Value::unop(*op, a.read(regs));
                }
                Op::Cast { dst, ty, a } => {
                    regs[*dst as usize] = a.read(regs).cast(*ty);
                }
                Op::Select { dst, cond, a, b } => {
                    regs[*dst as usize] = if cond.read(regs).is_truthy() {
                        a.read(regs)
                    } else {
                        b.read(regs)
                    };
                }
                Op::Copy { dst, a } => {
                    regs[*dst as usize] = a.read(regs);
                }
                Op::LdWin {
                    dst,
                    param,
                    ty,
                    index,
                } => {
                    let idx = index.read(regs).bits() as usize;
                    let v = window
                        .chunks
                        .get(*param as usize)
                        .filter(|c| idx < c.elems(*ty))
                        .map(|c| c.get(*ty, idx))
                        .unwrap_or_else(|| Value::zero(*ty));
                    regs[*dst as usize] = v;
                }
                Op::StWin {
                    param,
                    ty,
                    index,
                    val,
                } => {
                    let idx = index.read(regs).bits() as usize;
                    let v = val.read(regs).cast(*ty);
                    if let Some(c) = window.chunks.get_mut(*param as usize) {
                        if idx < c.elems(*ty) {
                            c.set(*ty, idx, v);
                        }
                    }
                }
                Op::LdWinC {
                    dst,
                    param,
                    ty,
                    idx,
                    end,
                } => {
                    let v = window
                        .chunks
                        .get(*param as usize)
                        .filter(|c| *end as usize <= c.data.len())
                        .map(|c| c.get(*ty, *idx as usize))
                        .unwrap_or_else(|| Value::zero(*ty));
                    regs[*dst as usize] = v;
                }
                Op::StWinC {
                    param,
                    ty,
                    idx,
                    end,
                    val,
                } => {
                    let v = val.read(regs).cast(*ty);
                    if let Some(c) = window.chunks.get_mut(*param as usize) {
                        if *end as usize <= c.data.len() {
                            c.set(*ty, *idx as usize, v);
                        }
                    }
                }
                Op::LdSeq { dst } => regs[*dst as usize] = Value::u32(window.seq),
                Op::LdSender { dst } => {
                    regs[*dst as usize] = Value::new(ScalarType::U16, window.sender.0 as u64);
                }
                Op::LdFrom { dst } => {
                    regs[*dst as usize] = Value::new(ScalarType::U16, window.from.to_wire() as u64);
                }
                Op::LdLen { dst, ty } => {
                    let n = window.chunks.first().map(|c| c.elems(*ty)).unwrap_or(0);
                    regs[*dst as usize] = Value::new(ScalarType::U16, n as u64);
                }
                Op::LdNChunks { dst } => {
                    regs[*dst as usize] = Value::new(ScalarType::U8, window.chunks.len() as u64);
                }
                Op::LdLast { dst } => regs[*dst as usize] = Value::bool(window.last),
                Op::LdExt { dst, offset, ty } => {
                    regs[*dst as usize] = window.ext_read(*ty, *offset as usize);
                }
                Op::LdLocationId { dst } => {
                    regs[*dst as usize] = Value::new(ScalarType::U16, state.location_id as u64);
                }
                Op::StExt { offset, ty, val } => {
                    let v = val.read(regs).cast(*ty);
                    window.ext_write(*offset as usize, v);
                }
                Op::LdReg { dst, arr, index } => {
                    let a = &state.registers[*arr as usize];
                    if a.is_empty() {
                        return Err(InterpError::NotPlacedHere("register array"));
                    }
                    let idx = index.read(regs).bits() as usize % a.len();
                    regs[*dst as usize] = a[idx];
                }
                Op::StReg { arr, index, val } => {
                    let v = val.read(regs);
                    let idx = index.read(regs).bits() as usize;
                    let a = &mut state.registers[*arr as usize];
                    if a.is_empty() {
                        return Err(InterpError::NotPlacedHere("register array"));
                    }
                    let idx = idx % a.len();
                    let ty = a[idx].ty();
                    a[idx] = v.cast(ty);
                }
                Op::LdRegC { dst, arr, idx } => {
                    regs[*dst as usize] = state.registers[*arr as usize][*idx as usize];
                }
                Op::StRegC { arr, idx, ty, val } => {
                    let v = val.read(regs).cast(*ty);
                    state.registers[*arr as usize][*idx as usize] = v;
                }
                Op::LdRegM {
                    dst,
                    arr,
                    mask,
                    index,
                } => {
                    let idx = index.read(regs).bits() as usize & *mask as usize;
                    regs[*dst as usize] = state.registers[*arr as usize][idx];
                }
                Op::StRegM {
                    arr,
                    mask,
                    ty,
                    index,
                    val,
                } => {
                    let v = val.read(regs).cast(*ty);
                    let idx = index.read(regs).bits() as usize & *mask as usize;
                    state.registers[*arr as usize][idx] = v;
                }
                Op::LdRegL {
                    dst,
                    arr,
                    len,
                    index,
                } => {
                    let idx = index.read(regs).bits() as usize % *len as usize;
                    regs[*dst as usize] = state.registers[*arr as usize][idx];
                }
                Op::StRegL {
                    arr,
                    len,
                    ty,
                    index,
                    val,
                } => {
                    let v = val.read(regs).cast(*ty);
                    let idx = index.read(regs).bits() as usize % *len as usize;
                    state.registers[*arr as usize][idx] = v;
                }
                Op::LdCtrl { dst, ctrl } => {
                    regs[*dst as usize] = state.ctrls[*ctrl as usize];
                }
                Op::MapGet {
                    found,
                    val,
                    map,
                    key,
                } => {
                    let k = key.read(regs).bits();
                    let ty = regs[*val as usize].ty();
                    match state.maps[*map as usize].get(&k) {
                        Some(v) => {
                            regs[*found as usize] = Value::bool(true);
                            regs[*val as usize] = v.cast(ty);
                        }
                        None => {
                            regs[*found as usize] = Value::bool(false);
                            regs[*val as usize] = Value::zero(ty);
                        }
                    }
                }
                Op::NotPlaced { what } => {
                    return Err(InterpError::NotPlacedHere(what));
                }
                Op::LdHost {
                    dst,
                    param,
                    ty,
                    index,
                } => {
                    let idx = index.read(regs).bits() as usize;
                    let v = host
                        .arrays
                        .get(*param as usize)
                        .and_then(|a| a.get(idx))
                        .copied()
                        .unwrap_or_else(|| Value::zero(*ty));
                    regs[*dst as usize] = v;
                }
                Op::StHost { param, index, val } => {
                    let v = val.read(regs);
                    let idx = index.read(regs).bits() as usize;
                    if let Some(a) = host.arrays.get_mut(*param as usize) {
                        if let Some(slot) = a.get_mut(idx) {
                            let ty = slot.ty();
                            *slot = v.cast(ty);
                        }
                    }
                }
                Op::FwdPass => decision = Forward::Pass,
                Op::FwdPassTo { label } => decision = Forward::PassTo(label.clone()),
                Op::FwdReflect => decision = Forward::Reflect,
                Op::FwdBcast => decision = Forward::Bcast,
                Op::FwdDrop => decision = Forward::Drop,
                Op::Here { dst, label } => {
                    let here = state.location.as_ref().map(|l| l == label).unwrap_or(false);
                    regs[*dst as usize] = Value::bool(here);
                }
                Op::VecAccum(v) => {
                    let (m, exhausted) = self.vec_iters(v, &mut steps);
                    let base_bits = regs[v.base as usize].bits();
                    vec_accum(
                        v,
                        m,
                        base_bits,
                        &mut state.registers[v.arr as usize],
                        window.chunks.get(v.param as usize),
                        self.simd,
                    );
                    if exhausted {
                        return Err(InterpError::StepLimit);
                    }
                }
                Op::VecRegToWin(v) => {
                    let (m, exhausted) = self.vec_iters(v, &mut steps);
                    let base_bits = regs[v.base as usize].bits();
                    vec_reg_to_win(
                        v,
                        m,
                        base_bits,
                        &state.registers[v.arr as usize],
                        window.chunks.get_mut(v.param as usize),
                        self.simd,
                    );
                    if exhausted {
                        return Err(InterpError::StepLimit);
                    }
                }
                Op::VecWinToReg(v) => {
                    let (m, exhausted) = self.vec_iters(v, &mut steps);
                    let base_bits = regs[v.base as usize].bits();
                    vec_win_to_reg(
                        v,
                        m,
                        base_bits,
                        &mut state.registers[v.arr as usize],
                        window.chunks.get(v.param as usize),
                        self.simd,
                    );
                    if exhausted {
                        return Err(InterpError::StepLimit);
                    }
                }
                Op::Jmp { target } => {
                    pc = *target as usize;
                    continue;
                }
                Op::Br { cond, then, els } => {
                    pc = if cond.read(regs).is_truthy() {
                        *then as usize
                    } else {
                        *els as usize
                    };
                    continue;
                }
                Op::CmpBr {
                    dst,
                    op,
                    ext,
                    a,
                    b,
                    then,
                    els,
                } => {
                    let r = cmp_eval(*op, *ext, a.read(regs).bits(), b.read(regs).bits());
                    regs[*dst as usize] = Value::bool(r);
                    // The fusion covers an instruction plus a terminator:
                    // charge the second step so budget exhaustion stays
                    // bit-identical to the interpreter.
                    if self.counted {
                        steps += 1;
                        if steps > self.step_limit {
                            return Err(InterpError::StepLimit);
                        }
                    }
                    pc = if r { *then as usize } else { *els as usize };
                    continue;
                }
                Op::Ret => return Ok(decision),
            }
            pc += 1;
        }
    }

    /// How many groups of a fused run execute, and whether the step
    /// budget dies inside it. The main loop pre-charged one step for
    /// this op; group `j`'s store (its last micro-op) executes exactly
    /// when the interpreter's budget would have reached it.
    #[inline(always)]
    fn vec_iters(&self, v: &VecOp, steps: &mut usize) -> (u32, bool) {
        if !self.counted {
            return (v.n, false);
        }
        let before = *steps - 1; // loop top pre-charged one step
        let budget = self.step_limit - before;
        let (head, cost, n) = (v.head_cost as usize, v.cost as usize, v.n as usize);
        let total = head + (n - 1) * cost;
        if total <= budget {
            *steps = before + total;
            (v.n, false)
        } else {
            let m = if budget < head {
                0
            } else {
                ((budget - head) / cost + 1).min(n)
            };
            (m as u32, true)
        }
    }

    // -----------------------------------------------------------------
    // Lowering
    // -----------------------------------------------------------------

    fn build(kernel: &KernelIr, ctx: Option<ModuleCtx<'_>>) -> Self {
        // Parameter element types, resolved once (the interpreter
        // rebuilds these Vecs on every run).
        let win_params: Vec<ScalarType> = kernel
            .params
            .iter()
            .filter(|p| !p.ext)
            .map(|p| p.elem)
            .collect();
        let ext_params: Vec<ScalarType> = kernel
            .params
            .iter()
            .filter(|p| p.ext)
            .map(|p| p.elem)
            .collect();

        let entry_tys: Vec<Ty> = kernel.reg_tys.iter().map(|&t| Ty::Known(t)).collect();
        let block_tys = type_dataflow(kernel, &entry_tys, &win_params, ctx.as_ref());

        // Lower per block first (compare+branch fusion changes op
        // counts, so offsets are only known afterwards); jump targets
        // hold block ids until the final patch pass.
        let mut block_ops: Vec<Vec<Op>> = Vec::with_capacity(kernel.blocks.len());
        for (bi, b) in kernel.blocks.iter().enumerate() {
            let mut v: Vec<Op> = Vec::with_capacity(b.insts.len() + 1);
            let mut tys = block_tys[bi].clone();
            for inst in &b.insts {
                v.push(lower_inst(
                    inst,
                    &tys,
                    &win_params,
                    &ext_params,
                    ctx.as_ref(),
                ));
                transfer(inst, &mut tys, &win_params, ctx.as_ref());
            }
            match &b.term {
                Terminator::Ret => v.push(Op::Ret),
                Terminator::Jmp(next) => v.push(Op::Jmp { target: next.0 }),
                Terminator::Br { cond, then, els } => {
                    // Fuse when the branch consumes the compare computed
                    // immediately before it.
                    let fusable = matches!(
                        (cond, v.last()),
                        (Operand::Reg(r), Some(Op::Cmp { dst, .. })) if *dst == r.0
                    );
                    if fusable {
                        let Some(Op::Cmp { dst, op, ext, a, b }) = v.pop() else {
                            unreachable!("just matched")
                        };
                        v.push(Op::CmpBr {
                            dst,
                            op,
                            ext,
                            a,
                            b,
                            then: then.0,
                            els: els.0,
                        });
                    } else {
                        v.push(Op::Br {
                            cond: lower_opnd(cond),
                            then: then.0,
                            els: els.0,
                        });
                    }
                }
            }
            block_ops.push(v);
        }

        // Fuse runs of unrolled element-wise groups into vector ops
        // (within blocks only: jump targets land on block starts).
        fuse_element_runs(&mut block_ops, kernel.reg_tys.len());

        let mut block_start = Vec::with_capacity(block_ops.len());
        let mut off = 0u32;
        for v in &block_ops {
            block_start.push(off);
            off += v.len() as u32;
        }
        let mut ops = Vec::with_capacity(off as usize);
        for v in block_ops {
            for mut op in v {
                match &mut op {
                    Op::Jmp { target } => *target = block_start[*target as usize],
                    Op::Br { then, els, .. } | Op::CmpBr { then, els, .. } => {
                        *then = block_start[*then as usize];
                        *els = block_start[*els as usize];
                    }
                    _ => {}
                }
                ops.push(op);
            }
        }

        // Compact the register file to the registers the program still
        // references: unrolling allocates thousands of virtual registers
        // and fusion elides most of their uses, but the per-run reset
        // memcpys the whole zero image — renumbering to the live set
        // keeps that reset proportional to the fused program, not the
        // unrolled one.
        let mut remap: Vec<u32> = vec![u32::MAX; kernel.reg_tys.len()];
        let mut nlive = 0u32;
        for op in &mut ops {
            op_regs_mut(op, &mut |r: &mut u32| {
                let slot = &mut remap[*r as usize];
                if *slot == u32::MAX {
                    *slot = nlive;
                    nlive += 1;
                }
                *r = *slot;
            });
        }
        let mut zero_regs = vec![Value::zero(ScalarType::U32); nlive as usize];
        for (orig, &new) in remap.iter().enumerate() {
            if new != u32::MAX {
                zero_regs[new as usize] = Value::zero(kernel.reg_tys[orig]);
            }
        }

        let has_loop = kernel.has_loop();
        let interp_len: usize = ops.iter().map(op_cost).sum();
        CompiledKernel {
            name: kernel.name.clone(),
            counted: has_loop || interp_len > DEFAULT_STEP_LIMIT,
            ops,
            zero_regs,
            step_limit: DEFAULT_STEP_LIMIT,
            interp_len,
            has_loop,
            simd: true,
        }
    }
}

/// Evaluates a signedness-resolved comparison over canonical bits.
#[inline(always)]
fn cmp_eval(op: CmpOp, ext: u32, x: u64, y: u64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::LtU => x < y,
        CmpOp::LeU => x <= y,
        CmpOp::GtU => x > y,
        CmpOp::GeU => x >= y,
        CmpOp::LtS => ((x << ext) as i64) < ((y << ext) as i64),
        CmpOp::LeS => ((x << ext) as i64) <= ((y << ext) as i64),
        CmpOp::GtS => ((x << ext) as i64) > ((y << ext) as i64),
        CmpOp::GeS => ((x << ext) as i64) >= ((y << ext) as i64),
    }
}

fn lower_opnd(o: &Operand) -> Opnd {
    match o {
        Operand::Reg(r) => Opnd::Reg(r.0),
        Operand::Const(v) => Opnd::Const(*v),
    }
}

/// Interpreter steps one micro-op accounts for.
fn op_cost(op: &Op) -> usize {
    match op {
        Op::CmpBr { .. } => 2,
        Op::VecAccum(v) | Op::VecRegToWin(v) | Op::VecWinToReg(v) => {
            (v.head_cost + (v.n - 1) * v.cost) as usize
        }
        _ => 1,
    }
}

/// Visits every virtual register a micro-op reads. Exhaustive on
/// purpose: a missed read would let run fusion elide a live register.
/// Visits every virtual-register reference in an op — destinations and
/// reads — mutably, for the post-fusion register-file compaction.
fn op_regs_mut(op: &mut Op, f: &mut impl FnMut(&mut u32)) {
    let o = |x: &mut Opnd, f: &mut dyn FnMut(&mut u32)| {
        if let Opnd::Reg(r) = x {
            f(r)
        }
    };
    match op {
        Op::Add { dst, a, b, .. }
        | Op::Sub { dst, a, b, .. }
        | Op::Mul { dst, a, b, .. }
        | Op::BitAnd { dst, a, b, .. }
        | Op::BitOr { dst, a, b, .. }
        | Op::BitXor { dst, a, b, .. }
        | Op::Shl { dst, a, b, .. }
        | Op::ShrU { dst, a, b, .. }
        | Op::ShrS { dst, a, b, .. }
        | Op::Cmp { dst, a, b, .. }
        | Op::Bin { dst, a, b, .. }
        | Op::CmpBr { dst, a, b, .. } => {
            f(dst);
            o(a, f);
            o(b, f);
        }
        Op::Un { dst, a, .. } | Op::Cast { dst, a, .. } | Op::Copy { dst, a } => {
            f(dst);
            o(a, f);
        }
        Op::Select { dst, cond, a, b } => {
            f(dst);
            o(cond, f);
            o(a, f);
            o(b, f);
        }
        Op::LdWin { dst, index, .. }
        | Op::LdReg { dst, index, .. }
        | Op::LdRegM { dst, index, .. }
        | Op::LdRegL { dst, index, .. }
        | Op::LdHost { dst, index, .. } => {
            f(dst);
            o(index, f);
        }
        Op::StWin { index, val, .. }
        | Op::StReg { index, val, .. }
        | Op::StRegM { index, val, .. }
        | Op::StRegL { index, val, .. }
        | Op::StHost { index, val, .. } => {
            o(index, f);
            o(val, f);
        }
        Op::StWinC { val, .. } | Op::StRegC { val, .. } | Op::StExt { val, .. } => o(val, f),
        Op::LdWinC { dst, .. }
        | Op::LdSeq { dst }
        | Op::LdSender { dst }
        | Op::LdFrom { dst }
        | Op::LdLen { dst, .. }
        | Op::LdNChunks { dst }
        | Op::LdLast { dst }
        | Op::LdExt { dst, .. }
        | Op::LdLocationId { dst }
        | Op::LdRegC { dst, .. }
        | Op::LdCtrl { dst, .. }
        | Op::Here { dst, .. } => f(dst),
        Op::MapGet {
            found, val, key, ..
        } => {
            f(found);
            f(val);
            o(key, f);
        }
        Op::Br { cond, .. } => o(cond, f),
        Op::VecAccum(v) | Op::VecRegToWin(v) | Op::VecWinToReg(v) => f(&mut v.base),
        Op::NotPlaced { .. }
        | Op::FwdPass
        | Op::FwdPassTo { .. }
        | Op::FwdReflect
        | Op::FwdBcast
        | Op::FwdDrop
        | Op::Jmp { .. }
        | Op::Ret => {}
    }
}

fn op_reads(op: &Op, f: &mut impl FnMut(u32)) {
    let mut o = |x: &Opnd| {
        if let Opnd::Reg(r) = x {
            f(*r)
        }
    };
    match op {
        Op::Add { a, b, .. }
        | Op::Sub { a, b, .. }
        | Op::Mul { a, b, .. }
        | Op::BitAnd { a, b, .. }
        | Op::BitOr { a, b, .. }
        | Op::BitXor { a, b, .. }
        | Op::Shl { a, b, .. }
        | Op::ShrU { a, b, .. }
        | Op::ShrS { a, b, .. }
        | Op::Cmp { a, b, .. }
        | Op::Bin { a, b, .. }
        | Op::CmpBr { a, b, .. } => {
            o(a);
            o(b);
        }
        Op::Un { a, .. } | Op::Cast { a, .. } | Op::Copy { a, .. } => o(a),
        Op::Select { cond, a, b, .. } => {
            o(cond);
            o(a);
            o(b);
        }
        Op::LdWin { index, .. }
        | Op::LdReg { index, .. }
        | Op::LdRegM { index, .. }
        | Op::LdRegL { index, .. }
        | Op::LdHost { index, .. } => o(index),
        Op::StWin { index, val, .. }
        | Op::StReg { index, val, .. }
        | Op::StRegM { index, val, .. }
        | Op::StRegL { index, val, .. }
        | Op::StHost { index, val, .. } => {
            o(index);
            o(val);
        }
        Op::StWinC { val, .. } | Op::StRegC { val, .. } | Op::StExt { val, .. } => o(val),
        // MapGet reads the value register's current dynamic type.
        Op::MapGet { key, val, .. } => {
            o(key);
            f(*val);
        }
        Op::Br { cond, .. } => o(cond),
        Op::VecAccum(v) | Op::VecRegToWin(v) | Op::VecWinToReg(v) => f(v.base),
        Op::LdWinC { .. }
        | Op::LdSeq { .. }
        | Op::LdSender { .. }
        | Op::LdFrom { .. }
        | Op::LdLen { .. }
        | Op::LdNChunks { .. }
        | Op::LdLast { .. }
        | Op::LdExt { .. }
        | Op::LdLocationId { .. }
        | Op::LdRegC { .. }
        | Op::LdCtrl { .. }
        | Op::NotPlaced { .. }
        | Op::FwdPass
        | Op::FwdPassTo { .. }
        | Op::FwdReflect
        | Op::FwdBcast
        | Op::FwdDrop
        | Op::Here { .. }
        | Op::Jmp { .. }
        | Op::Ret => {}
    }
}

// ---------------------------------------------------------------------
// Element-wise run fusion
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Debug)]
enum VecKind {
    Accum,
    RegToWin,
    WinToReg,
}

/// One matched unrolled group: the micro-ops for a single element of an
/// `arr[base+c] (op)= win[c]` body.
struct Group {
    len: usize,
    kind: VecKind,
    /// Has a leading index add (all but the first group of a run do).
    headed: bool,
    /// Chunk element index.
    cc: u32,
    base: u32,
    /// Index-add type (meaningful when `headed`).
    ity: ScalarType,
    param: u32,
    wty: ScalarType,
    arr: u32,
    amask: u32,
    /// Accumulate type (`Accum` only).
    aty: ScalarType,
    /// Register-slot store type (`Accum`/`WinToReg`).
    sty: ScalarType,
    /// Intermediate registers the fused run elides.
    elided: [u32; 4],
    nelided: usize,
}

/// Matches one unrolled group at the head of `ops`. The shapes are the
/// three orders the lowering pipeline actually produces; anything else
/// simply stays scalar.
fn match_group(ops: &[Op]) -> Option<Group> {
    // Optional leading index add: `k = base + c` at an integer type.
    let head = match ops.first()? {
        Op::Add {
            dst,
            ty,
            a: Opnd::Reg(base),
            b: Opnd::Const(v),
        } if *ty != ScalarType::Bool => Some((*dst, *base, *ty, v.bits())),
        _ => None,
    };

    // Accum / RegToWin: [add], LdRegM, ...
    if let Some(&Op::LdRegM {
        dst: d,
        arr,
        mask: amask,
        index: Opnd::Reg(ix),
    }) = ops.get(head.is_some() as usize)
    {
        let at = head.is_some() as usize + 1;
        let (k, base, ity, off) = match head {
            Some((k, base, ity, off)) => (k, base, ity, off),
            None => (ix, ix, ScalarType::U32, 0),
        };
        if ix != k || d == base || head.map(|h| h.0 == base) == Some(true) {
            return None;
        }
        match (ops.get(at), ops.get(at + 1)) {
            // ... LdWinC, Add, StRegM  (accumulate)
            (
                Some(&Op::LdWinC {
                    dst: w,
                    param,
                    ty: wty,
                    idx: cc,
                    ..
                }),
                Some(&Op::Add {
                    dst: s,
                    ty: aty,
                    a: Opnd::Reg(x),
                    b: Opnd::Reg(y),
                }),
            ) if (x == d && y == w) || (x == w && y == d) => {
                if head.is_some() && off != cc as u64 {
                    return None;
                }
                match ops.get(at + 2) {
                    Some(&Op::StRegM {
                        arr: arr2,
                        mask: m2,
                        ty: sty,
                        index: Opnd::Reg(ix2),
                        val: Opnd::Reg(v2),
                    }) if arr2 == arr && m2 == amask && ix2 == k && v2 == s => {
                        let elided = [d, w, s, if head.is_some() { k } else { d }];
                        if distinct(&[d, w, s], k, base, head.is_some()) {
                            Some(Group {
                                len: at + 3,
                                kind: VecKind::Accum,
                                headed: head.is_some(),
                                cc,
                                base,
                                ity,
                                param,
                                wty,
                                arr,
                                amask,
                                aty,
                                sty,
                                elided,
                                nelided: if head.is_some() { 4 } else { 3 },
                            })
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            // ... StWinC  (register → window copy)
            (
                Some(&Op::StWinC {
                    param,
                    ty: wty,
                    idx: cc,
                    val: Opnd::Reg(v2),
                    ..
                }),
                _,
            ) if v2 == d => {
                if head.is_some() && off != cc as u64 {
                    return None;
                }
                let elided = [d, if head.is_some() { k } else { d }, 0, 0];
                if distinct(&[d], k, base, head.is_some()) {
                    Some(Group {
                        len: at + 1,
                        kind: VecKind::RegToWin,
                        headed: head.is_some(),
                        cc,
                        base,
                        ity,
                        param,
                        wty,
                        arr,
                        amask,
                        aty: wty,
                        sty: wty,
                        elided,
                        nelided: if head.is_some() { 2 } else { 1 },
                    })
                } else {
                    None
                }
            }
            _ => None,
        }
    }
    // WinToReg: LdWinC, [add], StRegM  (window → register copy)
    else if let Some(&Op::LdWinC {
        dst: w,
        param,
        ty: wty,
        idx: cc,
        ..
    }) = ops.first()
    {
        let head = match ops.get(1) {
            Some(Op::Add {
                dst,
                ty,
                a: Opnd::Reg(base),
                b: Opnd::Const(v),
            }) if *ty != ScalarType::Bool => Some((*dst, *base, *ty, v.bits())),
            _ => None,
        };
        let at = 1 + head.is_some() as usize;
        let (k, base, ity, off) = match head {
            Some((k, base, ity, off)) => (k, base, ity, off),
            None => (u32::MAX, u32::MAX, ScalarType::U32, 0),
        };
        if head.is_some() && (off != cc as u64 || k == base || w == base || w == k) {
            return None;
        }
        match ops.get(at) {
            Some(&Op::StRegM {
                arr,
                mask: amask,
                ty: sty,
                index: Opnd::Reg(ix),
                val: Opnd::Reg(v2),
            }) if v2 == w => {
                let (base, ix_ok) = if head.is_some() {
                    (base, ix == k)
                } else {
                    (ix, ix != w)
                };
                if !ix_ok {
                    return None;
                }
                let elided = [w, if head.is_some() { k } else { w }, 0, 0];
                Some(Group {
                    len: at + 1,
                    kind: VecKind::WinToReg,
                    headed: head.is_some(),
                    cc,
                    base,
                    ity,
                    param,
                    wty,
                    arr,
                    amask,
                    aty: sty,
                    sty,
                    elided,
                    nelided: if head.is_some() { 2 } else { 1 },
                })
            }
            _ => None,
        }
    } else {
        None
    }
}

/// Intermediate registers must be pairwise distinct and distinct from
/// the base/index registers, or the scalar dataflow the vector loop
/// models would be wrong.
fn distinct(dsts: &[u32], k: u32, base: u32, headed: bool) -> bool {
    for (i, &a) in dsts.iter().enumerate() {
        if a == base || (headed && a == k) {
            return false;
        }
        for &b in &dsts[i + 1..] {
            if a == b {
                return false;
            }
        }
    }
    true
}

/// Replaces runs of matched groups with one vector op per run. Sound
/// only when nothing outside the run reads the elided registers, which
/// is checked against whole-kernel read counts.
fn fuse_element_runs(block_ops: &mut [Vec<Op>], nregs: usize) {
    let mut global_reads = vec![0u32; nregs];
    for block in block_ops.iter() {
        for op in block {
            op_reads(op, &mut |r| global_reads[r as usize] += 1);
        }
    }

    for block in block_ops.iter_mut() {
        let mut out: Vec<Op> = Vec::with_capacity(block.len());
        let mut i = 0;
        while i < block.len() {
            match try_fuse_run(&block[i..], &global_reads) {
                Some((op, len)) => {
                    out.push(op);
                    i += len;
                }
                None => {
                    out.push(block[i].clone());
                    i += 1;
                }
            }
        }
        *block = out;
    }
}

/// Attempts to fuse a run starting at `ops[0]`; returns the vector op
/// and how many scalar ops it replaces.
fn try_fuse_run(ops: &[Op], global_reads: &[u32]) -> Option<(Op, usize)> {
    let first = match_group(ops)?;
    let mut groups = vec![first];
    loop {
        let prev = groups.last().expect("non-empty");
        let at: usize = groups.iter().map(|g| g.len).sum();
        match match_group(&ops[at..]) {
            Some(g)
                if g.headed
                    && g.kind == prev.kind
                    && g.cc == prev.cc + 1
                    && g.base == prev.base
                    && g.param == prev.param
                    && g.wty == prev.wty
                    && g.arr == prev.arr
                    && g.amask == prev.amask
                    && g.aty == prev.aty
                    && g.sty == prev.sty
                    && (!prev.headed || g.ity == prev.ity) =>
            {
                groups.push(g)
            }
            _ => break,
        }
    }
    if groups.len() < 2 {
        return None;
    }

    // Trim the run until every elided register is read only inside it.
    loop {
        if groups.len() < 2 {
            return None;
        }
        let len: usize = groups.iter().map(|g| g.len).sum();
        let mut region_reads = std::collections::HashMap::new();
        for op in &ops[..len] {
            op_reads(op, &mut |r| *region_reads.entry(r).or_insert(0u32) += 1);
        }
        let live_outside = groups.iter().any(|g| {
            g.elided[..g.nelided]
                .iter()
                .any(|&r| global_reads[r as usize] != region_reads.get(&r).copied().unwrap_or(0))
        });
        if !live_outside {
            break;
        }
        // The common offender is the final group's destination feeding a
        // later use; dropping tail groups converges quickly.
        groups.pop();
    }

    let first = &groups[0];
    let ity = if first.headed {
        first.ity
    } else {
        groups[1].ity
    };
    let width = ity.bits();
    let imask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let cost = match first.kind {
        VecKind::Accum => 5u32,
        VecKind::RegToWin | VecKind::WinToReg => 3,
    };
    let v = Box::new(VecOp {
        param: first.param,
        wty: first.wty,
        idx0: first.cc,
        n: groups.len() as u32,
        arr: first.arr,
        amask: first.amask,
        base: first.base,
        imask,
        aty: first.aty,
        sty: first.sty,
        cost,
        head_cost: if first.headed { cost } else { cost - 1 },
    });
    let len = groups.iter().map(|g| g.len).sum();
    let op = match first.kind {
        VecKind::Accum => Op::VecAccum(v),
        VecKind::RegToWin => Op::VecRegToWin(v),
        VecKind::WinToReg => Op::VecWinToReg(v),
    };
    Some((op, len))
}

/// The type of an operand under the current dataflow facts.
fn opnd_ty(o: &Operand, tys: &[Ty]) -> Ty {
    match o {
        Operand::Const(v) => Ty::Known(v.ty()),
        Operand::Reg(r) => tys[r.0 as usize],
    }
}

/// The type an instruction writes to its destination, or `Ty::Any` when
/// it cannot be proven. Mirrors the dynamic typing of the interpreter.
fn result_ty(
    inst: &Inst,
    tys: &[Ty],
    win_params: &[ScalarType],
    ctx: Option<&ModuleCtx<'_>>,
) -> Ty {
    match inst {
        Inst::Bin { op, a, b, .. } => {
            if op.is_comparison() {
                return Ty::Known(ScalarType::Bool);
            }
            match (opnd_ty(a, tys), opnd_ty(b, tys)) {
                (Ty::Known(x), Ty::Known(y)) if x == y => Ty::Known(x),
                _ => Ty::Any,
            }
        }
        Inst::Un { op, a, .. } => match op {
            UnOp::Not => Ty::Known(ScalarType::Bool),
            UnOp::Neg | UnOp::BitNot => opnd_ty(a, tys),
        },
        Inst::Cast { ty, .. } => Ty::Known(*ty),
        Inst::Select { a, b, .. } => opnd_ty(a, tys).join(opnd_ty(b, tys)),
        Inst::Copy { a, .. } => opnd_ty(a, tys),
        // Chunk reads always produce the parameter element type (the
        // out-of-bounds fallback is a zero of that same type).
        Inst::LdWin { param, .. } => Ty::Known(win_params[*param as usize]),
        Inst::LdMeta { field, .. } => Ty::Known(field.ty()),
        Inst::LdReg { arr, .. } => match ctx {
            Some(c) => Ty::Known(c.module.registers[arr.0 as usize].elem),
            None => Ty::Any,
        },
        Inst::LdCtrl { ctrl, .. } => match ctx {
            Some(c) => Ty::Known(c.module.ctrls[ctrl.0 as usize].ty),
            None => Ty::Any,
        },
        Inst::LdHost { .. } => Ty::Any, // host array element types are dynamic
        Inst::Here { .. } => Ty::Known(ScalarType::Bool),
        _ => Ty::Any,
    }
}

/// Applies an instruction's type effects to the dataflow state.
fn transfer(inst: &Inst, tys: &mut [Ty], win_params: &[ScalarType], ctx: Option<&ModuleCtx<'_>>) {
    match inst {
        Inst::MapGet { found, .. } => {
            tys[found.0 as usize] = Ty::Known(ScalarType::Bool);
            // The value register keeps its current dynamic type.
        }
        _ => {
            let r = result_ty(inst, tys, win_params, ctx);
            for dst in inst.dsts() {
                tys[dst.0 as usize] = r;
            }
        }
    }
}

/// Forward type dataflow: per-block register types at entry, as a
/// fixpoint over the CFG (join = type equality, else `Any`).
fn type_dataflow(
    kernel: &KernelIr,
    entry: &[Ty],
    win_params: &[ScalarType],
    ctx: Option<&ModuleCtx<'_>>,
) -> Vec<Vec<Ty>> {
    let n = kernel.blocks.len();
    let mut states: Vec<Option<Vec<Ty>>> = vec![None; n];
    states[0] = Some(entry.to_vec());
    let mut work = vec![BlockId(0)];
    while let Some(b) = work.pop() {
        let mut tys = states[b.0 as usize].clone().expect("reachable block");
        for inst in &kernel.blocks[b.0 as usize].insts {
            transfer(inst, &mut tys, win_params, ctx);
        }
        for succ in kernel.blocks[b.0 as usize].term.successors() {
            let slot = &mut states[succ.0 as usize];
            match slot {
                None => {
                    *slot = Some(tys.clone());
                    work.push(succ);
                }
                Some(existing) => {
                    let mut changed = false;
                    for (e, t) in existing.iter_mut().zip(&tys) {
                        let joined = e.join(*t);
                        if joined != *e {
                            *e = joined;
                            changed = true;
                        }
                    }
                    if changed {
                        work.push(succ);
                    }
                }
            }
        }
    }
    // Unreachable blocks still get lowered; give them fully-unknown
    // types so lowering falls back to the generic (always-correct) ops.
    states
        .into_iter()
        .map(|s| s.unwrap_or_else(|| vec![Ty::Any; entry.len()]))
        .collect()
}

/// Lowers one IR instruction to a micro-op under the dataflow facts
/// `tys` (register types at this program point).
fn lower_inst(
    inst: &Inst,
    tys: &[Ty],
    win_params: &[ScalarType],
    ext_params: &[ScalarType],
    ctx: Option<&ModuleCtx<'_>>,
) -> Op {
    match inst {
        Inst::Bin { dst, op, a, b } => {
            let (ta, tb) = (opnd_ty(a, tys), opnd_ty(b, tys));
            let (la, lb) = (lower_opnd(a), lower_opnd(b));
            if let (Ty::Known(x), Ty::Known(y)) = (ta, tb) {
                if x == y {
                    return lower_typed_bin(dst.0, *op, x, la, lb);
                }
            }
            Op::Bin {
                dst: dst.0,
                op: *op,
                a: la,
                b: lb,
            }
        }
        Inst::Un { dst, op, a } => Op::Un {
            dst: dst.0,
            op: *op,
            a: lower_opnd(a),
        },
        Inst::Cast { dst, ty, a } => Op::Cast {
            dst: dst.0,
            ty: *ty,
            a: lower_opnd(a),
        },
        Inst::Select { dst, cond, a, b } => Op::Select {
            dst: dst.0,
            cond: lower_opnd(cond),
            a: lower_opnd(a),
            b: lower_opnd(b),
        },
        Inst::Copy { dst, a } => Op::Copy {
            dst: dst.0,
            a: lower_opnd(a),
        },
        Inst::LdWin { dst, param, index } => {
            let ty = win_params[*param as usize];
            match const_chunk_bounds(index, ty) {
                Some((idx, end)) => Op::LdWinC {
                    dst: dst.0,
                    param: *param as u32,
                    ty,
                    idx,
                    end,
                },
                None => Op::LdWin {
                    dst: dst.0,
                    param: *param as u32,
                    ty,
                    index: lower_opnd(index),
                },
            }
        }
        Inst::StWin { param, index, val } => {
            let ty = win_params[*param as usize];
            match const_chunk_bounds(index, ty) {
                Some((idx, end)) => Op::StWinC {
                    param: *param as u32,
                    ty,
                    idx,
                    end,
                    val: lower_opnd(val),
                },
                None => Op::StWin {
                    param: *param as u32,
                    ty,
                    index: lower_opnd(index),
                    val: lower_opnd(val),
                },
            }
        }
        Inst::LdMeta { dst, field } => match field {
            MetaField::Seq => Op::LdSeq { dst: dst.0 },
            MetaField::Sender => Op::LdSender { dst: dst.0 },
            MetaField::From => Op::LdFrom { dst: dst.0 },
            MetaField::Len => Op::LdLen {
                dst: dst.0,
                ty: win_params.first().copied().unwrap_or(ScalarType::U8),
            },
            MetaField::NChunks => Op::LdNChunks { dst: dst.0 },
            MetaField::Last => Op::LdLast { dst: dst.0 },
            MetaField::Ext(off, ty) => Op::LdExt {
                dst: dst.0,
                offset: *off as u32,
                ty: *ty,
            },
            MetaField::LocationId => Op::LdLocationId { dst: dst.0 },
        },
        Inst::StExt { offset, ty, val } => Op::StExt {
            offset: *offset as u32,
            ty: *ty,
            val: lower_opnd(val),
        },
        Inst::LdReg { dst, arr, index } => match placed(ctx, arr) {
            Some(false) => Op::NotPlaced {
                what: "register array",
            },
            // Placed here: the array's length is a compile-time fact, so
            // resolve the wrap-around and skip the emptiness check.
            Some(true) => {
                let len = reg_len(ctx, arr);
                if len == 0 {
                    // The interpreter reports an empty placed array as
                    // not-placed; preserve that exactly.
                    Op::NotPlaced {
                        what: "register array",
                    }
                } else {
                    match (lower_opnd(index), len) {
                        (Opnd::Const(v), _) => Op::LdRegC {
                            dst: dst.0,
                            arr: arr.0,
                            idx: (v.bits() as usize % len) as u32,
                        },
                        (index, l) if l.is_power_of_two() && l - 1 <= u32::MAX as usize => {
                            Op::LdRegM {
                                dst: dst.0,
                                arr: arr.0,
                                mask: (l - 1) as u32,
                                index,
                            }
                        }
                        (index, l) if l <= u32::MAX as usize => Op::LdRegL {
                            dst: dst.0,
                            arr: arr.0,
                            len: l as u32,
                            index,
                        },
                        (index, _) => Op::LdReg {
                            dst: dst.0,
                            arr: arr.0,
                            index,
                        },
                    }
                }
            }
            None => Op::LdReg {
                dst: dst.0,
                arr: arr.0,
                index: lower_opnd(index),
            },
        },
        Inst::StReg { arr, index, val } => match placed(ctx, arr) {
            Some(false) => Op::NotPlaced {
                what: "register array",
            },
            Some(true) => {
                let len = reg_len(ctx, arr);
                if len == 0 {
                    Op::NotPlaced {
                        what: "register array",
                    }
                } else {
                    // Stores cast into the slot's existing type, which is
                    // fixed at init time (every runtime store preserves
                    // it), so the cast target is a compile-time fact when
                    // the slot types are uniform — or per-slot for a
                    // constant index.
                    let decl = &ctx.expect("placed implies ctx").module.registers[arr.0 as usize];
                    let uniform = decl.init.iter().all(|v| v.ty() == decl.elem);
                    match (lower_opnd(index), len) {
                        (Opnd::Const(v), _) => {
                            let idx = v.bits() as usize % len;
                            let slot_ty = decl.init.get(idx).map(|v| v.ty()).unwrap_or(decl.elem);
                            Op::StRegC {
                                arr: arr.0,
                                idx: idx as u32,
                                ty: slot_ty,
                                val: lower_opnd(val),
                            }
                        }
                        (index, l)
                            if uniform && l.is_power_of_two() && l - 1 <= u32::MAX as usize =>
                        {
                            Op::StRegM {
                                arr: arr.0,
                                mask: (l - 1) as u32,
                                ty: decl.elem,
                                index,
                                val: lower_opnd(val),
                            }
                        }
                        (index, l) if uniform && l <= u32::MAX as usize => Op::StRegL {
                            arr: arr.0,
                            len: l as u32,
                            ty: decl.elem,
                            index,
                            val: lower_opnd(val),
                        },
                        (index, _) => Op::StReg {
                            arr: arr.0,
                            index,
                            val: lower_opnd(val),
                        },
                    }
                }
            }
            None => Op::StReg {
                arr: arr.0,
                index: lower_opnd(index),
                val: lower_opnd(val),
            },
        },
        Inst::LdCtrl { dst, ctrl } => Op::LdCtrl {
            dst: dst.0,
            ctrl: ctrl.0,
        },
        Inst::MapGet {
            found,
            val,
            map,
            key,
        } => Op::MapGet {
            found: found.0,
            val: val.0,
            map: map.0,
            key: lower_opnd(key),
        },
        Inst::LdHost { dst, param, index } => Op::LdHost {
            dst: dst.0,
            param: *param as u32,
            ty: ext_params
                .get(*param as usize)
                .copied()
                .unwrap_or(ScalarType::I32),
            index: lower_opnd(index),
        },
        Inst::StHost { param, index, val } => Op::StHost {
            param: *param as u32,
            index: lower_opnd(index),
            val: lower_opnd(val),
        },
        Inst::Fwd { kind, label } => match (kind, label) {
            (FwdKind::Pass, Some(l)) => Op::FwdPassTo { label: l.clone() },
            (FwdKind::Pass, None) => Op::FwdPass,
            (FwdKind::Reflect, _) => Op::FwdReflect,
            (FwdKind::Bcast, _) => Op::FwdBcast,
            (FwdKind::Drop, _) => Op::FwdDrop,
        },
        Inst::Here { dst, label } => Op::Here {
            dst: dst.0,
            label: label.clone(),
        },
    }
}

/// Whether the module context proves the array placed (Some(true)),
/// proves it absent (Some(false)), or lacks the information (None).
fn placed(ctx: Option<&ModuleCtx<'_>>, arr: &ArrId) -> Option<bool> {
    let c = ctx?;
    let decl = &c.module.registers[arr.0 as usize];
    Some(c.module.placed_here(&decl.at))
}

/// Flattened slot count of a register array (ctx must be present).
fn reg_len(ctx: Option<&ModuleCtx<'_>>, arr: &ArrId) -> usize {
    ctx.expect("placed implies ctx").module.registers[arr.0 as usize].len()
}

/// For a constant chunk index, the pre-multiplied byte bounds used by
/// the division-free window ops: `idx < data.len() / size` is exactly
/// `(idx + 1) * size <= data.len()` (integer arithmetic), so the in-range
/// check reduces to one comparison against the precomputed `end`.
/// Returns None when the bounds overflow `u32` — those indices are out
/// of range of any real chunk, and the generic op handles them.
fn const_chunk_bounds(index: &Operand, ty: ScalarType) -> Option<(u32, u32)> {
    let Operand::Const(v) = index else {
        return None;
    };
    let idx = v.bits();
    let end = idx.checked_add(1)?.checked_mul(ty.size() as u64)?;
    if idx <= u32::MAX as u64 && end <= u32::MAX as u64 {
        Some((idx as u32, end as u32))
    } else {
        None
    }
}

/// Emits the width/signedness-specialized form of a binary op whose
/// operand types are statically proven equal to `ty`.
fn lower_typed_bin(dst: u32, op: BinOp, ty: ScalarType, a: Opnd, b: Opnd) -> Op {
    let width = ty.bits();
    let ext = 64 - width;
    let signed = ty.is_signed();
    match op {
        BinOp::Add => Op::Add { dst, ty, a, b },
        BinOp::Sub => Op::Sub { dst, ty, a, b },
        BinOp::Mul => Op::Mul { dst, ty, a, b },
        BinOp::And => Op::BitAnd { dst, ty, a, b },
        BinOp::Or => Op::BitOr { dst, ty, a, b },
        BinOp::Xor => Op::BitXor { dst, ty, a, b },
        BinOp::Shl => Op::Shl {
            dst,
            ty,
            width,
            a,
            b,
        },
        BinOp::Shr if signed => Op::ShrS {
            dst,
            ty,
            width,
            a,
            b,
        },
        BinOp::Shr => Op::ShrU {
            dst,
            ty,
            width,
            a,
            b,
        },
        BinOp::Eq => Op::Cmp {
            dst,
            op: CmpOp::Eq,
            ext,
            a,
            b,
        },
        BinOp::Ne => Op::Cmp {
            dst,
            op: CmpOp::Ne,
            ext,
            a,
            b,
        },
        BinOp::Lt if signed => Op::Cmp {
            dst,
            op: CmpOp::LtS,
            ext,
            a,
            b,
        },
        BinOp::Le if signed => Op::Cmp {
            dst,
            op: CmpOp::LeS,
            ext,
            a,
            b,
        },
        BinOp::Gt if signed => Op::Cmp {
            dst,
            op: CmpOp::GtS,
            ext,
            a,
            b,
        },
        BinOp::Ge if signed => Op::Cmp {
            dst,
            op: CmpOp::GeS,
            ext,
            a,
            b,
        },
        BinOp::Lt => Op::Cmp {
            dst,
            op: CmpOp::LtU,
            ext,
            a,
            b,
        },
        BinOp::Le => Op::Cmp {
            dst,
            op: CmpOp::LeU,
            ext,
            a,
            b,
        },
        BinOp::Gt => Op::Cmp {
            dst,
            op: CmpOp::GtU,
            ext,
            a,
            b,
        },
        BinOp::Ge => Op::Cmp {
            dst,
            op: CmpOp::GeU,
            ext,
            a,
            b,
        },
        // Division keeps the (rare) generic path: its zero/sign handling
        // is intricate and not hot in any workload we model.
        BinOp::Div | BinOp::Rem => Op::Bin { dst, op, a, b },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::lower::{lower, LoweringConfig};
    use c3::{Chunk, HostId, KernelId, NodeId};
    use ncl_lang::frontend;

    fn build(src: &str, kernel: &str, mask: &[u16]) -> (Module, SwitchState) {
        let checked = frontend(src, "t.ncl").expect("frontend");
        let cfg = LoweringConfig::with_mask(kernel, mask.to_vec());
        let module = lower(&checked, &cfg).expect("lower");
        let state = SwitchState::from_module(&module);
        (module, state)
    }

    fn window_u32(vals: &[u32]) -> Window {
        Window {
            kernel: KernelId(0),
            seq: 0,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: false,
            chunks: vec![Chunk {
                offset: 0,
                data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
            }],
            ext: vec![],
        }
    }

    /// Runs the interpreter and the fast path on identical inputs and
    /// asserts bit-identical windows, switch state, and outcome. Returns
    /// the fast-path outcome and its mutated window/state.
    fn differential(
        kernel: &KernelIr,
        window: &Window,
        state: &SwitchState,
    ) -> (Result<Forward, InterpError>, Window, SwitchState) {
        let (mut wi, mut si) = (window.clone(), state.clone());
        let ri = Interpreter::default().run_outgoing(kernel, &mut wi, &mut si);

        let compiled = CompiledKernel::compile(kernel);
        let mut scratch = ExecScratch::new();
        let (mut wf, mut sf) = (window.clone(), state.clone());
        let rf = compiled.run_outgoing(&mut wf, &mut sf, &mut scratch);

        assert_eq!(ri, rf, "forward decision diverged");
        assert_eq!(wi.chunks, wf.chunks, "window chunks diverged");
        assert_eq!(wi.ext, wf.ext, "window ext diverged");
        assert_eq!(si.registers, sf.registers, "switch registers diverged");
        assert_eq!(si.ctrls, sf.ctrls, "switch ctrls diverged");
        assert_eq!(si.maps, sf.maps, "switch maps diverged");
        (rf, wf, sf)
    }

    #[test]
    fn increment_matches_interpreter() {
        let (m, st) = build(
            "_net_ _out_ void inc(int *data) { data[0] += 1; }",
            "inc",
            &[1],
        );
        let w = window_u32(&[41]);
        let (fwd, wf, _) = differential(m.kernel("inc").unwrap(), &w, &st);
        assert_eq!(fwd.unwrap(), Forward::Pass);
        assert_eq!(wf.chunks[0].get(ScalarType::I32, 0), Value::i32(42));
    }

    #[test]
    fn allreduce_matches_interpreter_across_rounds() {
        let src = r#"
#define DATA_LEN 8
#define WIN_LEN 4
_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN/WIN_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;
_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}
"#;
        let (m, mut st) = build(src, "allreduce", &[4]);
        st.ctrl_write(CtrlId(0), Value::u32(3));
        let k = m.kernel("allreduce").unwrap();
        let compiled = CompiledKernel::compile(k);
        let it = Interpreter::default();
        let mut scratch = ExecScratch::new();
        // Run both executors through three aggregation rounds, diffing
        // the evolving switch state after every window.
        let mut st_f = st.clone();
        for worker in 1..=3u32 {
            let mut wi = window_u32(&[worker; 4]);
            let mut wf = wi.clone();
            let ri = it.run_outgoing(k, &mut wi, &mut st).unwrap();
            let rf = compiled
                .run_outgoing(&mut wf, &mut st_f, &mut scratch)
                .unwrap();
            assert_eq!(ri, rf);
            assert_eq!(wi.chunks, wf.chunks);
            assert_eq!(st.registers, st_f.registers);
        }
        assert_eq!(st_f.registers[0][0], Value::i32(6));
        assert_eq!(st_f.registers[1][0], Value::u32(0));
    }

    /// Perf probe for the ncvec tier (not a gate — E13 is): run with
    /// `cargo test -p ncl-ir --release -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn ncvec_speed_probe() {
        let src = r#"
#define DATA_LEN 8192
#define WIN_LEN 1024
_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN/WIN_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;
_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}
"#;
        let (m, mut st) = build(src, "allreduce", &[1024]);
        st.ctrl_write(CtrlId(0), Value::u32(1_000_000));
        let k = m.kernel("allreduce").unwrap();
        let scalar = CompiledKernel::compile_for(k, &m).with_simd(false);
        let simd = CompiledKernel::compile_for(k, &m).with_simd(true);
        let vals: Vec<u32> = (0..1024).collect();
        let w = window_u32(&vals);
        let mut scratch = ExecScratch::new();
        let reps = 2000usize;
        let mut pool: Vec<Window> = (0..8).map(|_| w.clone()).collect();
        let mut time = |ck: &CompiledKernel, st: &mut SwitchState, pool: &mut [Window]| {
            let t = std::time::Instant::now();
            for i in 0..reps {
                let wx = &mut pool[i & 7];
                std::hint::black_box(ck.run_outgoing(wx, st, &mut scratch).unwrap());
            }
            t.elapsed().as_nanos() as u64 / reps as u64
        };
        let mut st_s = st.clone();
        let mut st_v = st.clone();
        let (mut ns_scalar, mut ns_simd) = (u64::MAX, u64::MAX);
        for _ in 0..7 {
            ns_scalar = ns_scalar.min(time(&scalar, &mut st_s, &mut pool));
            ns_simd = ns_simd.min(time(&simd, &mut st_v, &mut pool));
        }
        assert_eq!(st_s.registers, st_v.registers, "tiers diverged");
        println!(
            "ncvec probe (level {}): vec_runs {}, uops {}, interp {} steps; \
             scalar {} ns/window, simd {} ns/window, {:.2}x",
            crate::ncvec::level(),
            simd.vec_runs(),
            simd.len(),
            simd.interp_steps(),
            ns_scalar,
            ns_simd,
            ns_scalar as f64 / ns_simd.max(1) as f64
        );
    }

    #[test]
    fn map_hit_and_miss_match() {
        let src = r#"
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 4> Idx;
_net_ _at_("s1") bool Valid[4] = {false};
_net_ _out_ void k(uint64_t key) {
    if (auto *i = Idx[key]) { Valid[*i] = true; _reflect(); }
}
"#;
        let (m, mut st) = build(src, "k", &[1]);
        let k = m.kernel("k").unwrap();
        let mut w = window_u32(&[]);
        w.chunks[0].data = 99u64.to_be_bytes().to_vec();
        let (fwd, _, _) = differential(k, &w, &st);
        assert_eq!(fwd.unwrap(), Forward::Pass); // miss
        assert!(st.map_insert(MapId(0), 99, Value::new(ScalarType::U8, 2)));
        let (fwd, _, sf) = differential(k, &w, &st);
        assert_eq!(fwd.unwrap(), Forward::Reflect); // hit
        assert_eq!(sf.registers[0][2], Value::bool(true));
    }

    #[test]
    fn incoming_kernel_matches_on_host_memory() {
        let src = r#"
_net_ _out_ void k(int *data) { _drop(); }
_net_ _in_ void recv(int *data, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    if (window.last) *done = true;
}
"#;
        let checked = frontend(src, "t.ncl").unwrap();
        let mut cfg = LoweringConfig::with_mask("recv", vec![4]);
        cfg.masks.insert("k".into(), vec![4]);
        let m = lower(&checked, &cfg).unwrap();
        let k = m.kernel("recv").unwrap();
        let sizes = [(ScalarType::I32, 8), (ScalarType::Bool, 1)];
        let mut hi = HostMemory::new(&sizes);
        let mut hf = HostMemory::new(&sizes);
        let mut w = window_u32(&[9, 8, 7, 6]);
        w.seq = 1;
        w.last = true;
        let mut wf = w.clone();
        Interpreter::default()
            .run_incoming(k, &mut w, &mut hi)
            .unwrap();
        let compiled = CompiledKernel::compile(k);
        let mut scratch = ExecScratch::new();
        compiled
            .run_incoming(&mut wf, &mut hf, &mut scratch)
            .unwrap();
        assert_eq!(hi.arrays, hf.arrays);
        assert_eq!(hf.arrays[0][4], Value::i32(9));
        assert_eq!(hf.arrays[1][0], Value::bool(true));
    }

    #[test]
    fn register_wrap_and_oob_window_match() {
        let (m, st) = build(
            "_net_ _at_(\"s1\") int acc[4] = {0};\n\
             _net_ _out_ void k(int *data) { acc[data[0]] = 7; data[9] = 5; data[0] = data[8] + 1; _drop(); }",
            "k",
            &[2],
        );
        let k = m.kernel("k").unwrap();
        let w = window_u32(&[6, 4]);
        let (_, wf, sf) = differential(k, &w, &st);
        assert_eq!(sf.registers[0][2], Value::i32(7)); // 6 % 4 == 2
        assert_eq!(wf.chunks[0].get(ScalarType::I32, 0), Value::i32(1));
    }

    #[test]
    fn dynamic_loop_and_step_limit_match() {
        let (m, st) = build(
            "_net_ _out_ void k(int *data) {\n\
               int x = data[0];\n\
               while (x > 0) { x = x - 2; }\n\
               data[0] = x;\n\
             }",
            "k",
            &[1],
        );
        let k = m.kernel("k").unwrap();
        let (_, wf, _) = differential(k, &w7(), &st);
        assert_eq!(wf.chunks[0].get(ScalarType::I32, 0), Value::i32(-1));

        // Runaway loops exhaust the budget at the same instruction count.
        let (m, mut st) = build(
            "_net_ _out_ void k(int *data) { while (true) { data[0] += 1; } }",
            "k",
            &[1],
        );
        let k = m.kernel("k").unwrap();
        let it = Interpreter { step_limit: 10_000 };
        let compiled = CompiledKernel::compile(k).with_step_limit(10_000);
        let mut wi = window_u32(&[0]);
        let mut wf = wi.clone();
        let mut st_f = st.clone();
        let mut scratch = ExecScratch::new();
        assert_eq!(
            it.run_outgoing(k, &mut wi, &mut st),
            Err(InterpError::StepLimit)
        );
        assert_eq!(
            compiled.run_outgoing(&mut wf, &mut st_f, &mut scratch),
            Err(InterpError::StepLimit)
        );
        // Both stop with identical partial effects on the window.
        assert_eq!(wi.chunks, wf.chunks);
    }

    fn w7() -> Window {
        window_u32(&[7])
    }

    #[test]
    fn here_reads_location_dynamically() {
        let (m, mut st) = build(
            r#"_net_ _out_ void k(int *d) { if (_here("s1")) { _drop(); } else { _reflect(); } }"#,
            "k",
            &[1],
        );
        let k = m.kernel("k").unwrap();
        st.location = Some(Label::new("s1"));
        let (fwd, _, _) = differential(k, &w7(), &st);
        assert_eq!(fwd.unwrap(), Forward::Drop);
        st.location = Some(Label::new("s2"));
        let (fwd, _, _) = differential(k, &w7(), &st);
        assert_eq!(fwd.unwrap(), Forward::Reflect);
    }

    #[test]
    fn ext_fields_match() {
        let src = r#"
_wnd_ struct W { uint16_t tag; };
_net_ _out_ void k(int *d) { window.tag = window.tag + 1; }
"#;
        let (m, st) = build(src, "k", &[1]);
        let k = m.kernel("k").unwrap();
        let mut w = window_u32(&[0]);
        w.ext_write(0, Value::new(ScalarType::U16, 41));
        let (_, wf, _) = differential(k, &w, &st);
        assert_eq!(
            wf.ext_read(ScalarType::U16, 0),
            Value::new(ScalarType::U16, 42)
        );
    }

    #[test]
    fn compile_for_hoists_placement_checks() {
        let (mut m, _) = build(
            "_net_ _at_(\"s1\") int acc[4] = {0};\n\
             _net_ _out_ void k(int *data) { if (data[0] > 100) { acc[0] += 1; } }",
            "k",
            &[1],
        );
        // Pretend this module was versioned to a location that does not
        // host `acc`: the access compiles to a hoisted placement error...
        m.location = Some(Label::new("s2"));
        let st = SwitchState::from_module(&m);
        let k = m.kernel("k").unwrap();
        let compiled = CompiledKernel::compile_for(k, &m);
        let mut scratch = ExecScratch::new();
        // ...which fires only if the guarded access actually executes,
        // exactly like the interpreter's dynamic check.
        let mut w = window_u32(&[1]);
        let mut s = st.clone();
        assert_eq!(
            compiled.run_outgoing(&mut w, &mut s, &mut scratch).unwrap(),
            Forward::Pass
        );
        let mut w = window_u32(&[200]);
        let mut s = st.clone();
        assert_eq!(
            compiled.run_outgoing(&mut w, &mut s, &mut scratch),
            Err(InterpError::NotPlacedHere("register array"))
        );
        // The interpreter agrees on both.
        let it = Interpreter::default();
        let mut w = window_u32(&[1]);
        let mut s = st.clone();
        assert_eq!(it.run_outgoing(k, &mut w, &mut s).unwrap(), Forward::Pass);
        let mut w = window_u32(&[200]);
        let mut s = st;
        assert_eq!(
            it.run_outgoing(k, &mut w, &mut s),
            Err(InterpError::NotPlacedHere("register array"))
        );
    }

    #[test]
    fn scratch_reuse_is_clean_across_kernels() {
        // One scratch serving two kernels of different register counts
        // must not leak state between runs.
        let (m1, st1) = build("_net_ _out_ void a(int *data) { data[0] += 1; }", "a", &[1]);
        let (m2, st2) = build(
            "_net_ _out_ void b(int *data) { for (unsigned i = 0; i < window.len; ++i) data[i] = data[i] * 2; }",
            "b",
            &[4],
        );
        let ka = CompiledKernel::compile(m1.kernel("a").unwrap());
        let kb = CompiledKernel::compile(m2.kernel("b").unwrap());
        let mut scratch = ExecScratch::new();
        let (mut sa, mut sb) = (st1.clone(), st2.clone());
        for round in 0..3 {
            let mut w = window_u32(&[round]);
            ka.run_outgoing(&mut w, &mut sa, &mut scratch).unwrap();
            assert_eq!(
                w.chunks[0].get(ScalarType::I32, 0),
                Value::i32(round as i32 + 1)
            );
            let mut w = window_u32(&[1, 2, 3, 4]);
            kb.run_outgoing(&mut w, &mut sb, &mut scratch).unwrap();
            assert_eq!(w.chunks[0].get(ScalarType::I32, 3), Value::i32(8));
        }
    }
}
