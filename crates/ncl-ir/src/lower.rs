//! AST → IR lowering.
//!
//! Lowering consumes a [`CheckedProgram`] plus a [`LoweringConfig`] (the
//! per-kernel window masks the invocation will use — the compiler knows
//! the mask because "a mask is associated with kernel invocations", paper
//! §4.2) and produces a generic [`Module`].
//!
//! Notable decisions, all mirrored by the reference interpreter:
//!
//! * **Loops unroll at lowering time.** A `for` whose init/bound/step are
//!   compile-time constants (possibly via `window.len`, which folds to
//!   `mask[0]`) is expanded inline with the induction variable bound as a
//!   constant. Non-constant loops lower to real CFG back edges, which the
//!   conformance pass rejects for switch kernels — PISA pipelines cannot
//!   loop (paper §5 "loops must have provably constant trip counts").
//! * **Logical operators evaluate eagerly.** `a && b` becomes a bitwise
//!   and of the operand truth values; lowering rejects side effects in
//!   the right operand, where eager evaluation would diverge from C.
//! * **`memcpy` unrolls element-wise** after checking that both sides
//!   share an element width and the byte count is a constant multiple of
//!   it.

use crate::ir::*;
use c3::{BinOp, Label, ScalarType, UnOp, Value};
use ncl_lang::ast::{self, AssignOp, BinaryOp, Expr, Stmt, UnaryOp};
use ncl_lang::diag::{Diagnostic, Span};
use ncl_lang::sema::{const_eval_with, usual_conversion, CheckedProgram, GlobalKind, KernelInfo};
use std::collections::HashMap;

/// Sizing of a per-kernel switch replay filter (NCP-R).
///
/// The filter is lowered as plain IR: a `senders × slots` byte bitmap
/// register (`__nclr_seen_<kernel>`) plus a one-element `u32` duplicate
/// counter (`__nclr_dups_<kernel>`), with a block-0 prologue that marks
/// the arriving `(sender % senders, seq % slots)` cell and exposes the
/// previous mark as the boolean `window.replay` builtin. Because it is
/// ordinary IR, the interpreter, the compiled fast path and the PISA/P4
/// backends all execute it identically — on a PISA target it becomes a
/// real stateful register stage.
///
/// Exactly-once semantics hold as long as a sender has at most `slots`
/// sequence numbers outstanding per kernel (the transport's in-flight
/// window must not exceed `slots`), so cells are recycled only after
/// the slot's earlier sequence number was acknowledged.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReplayFilter {
    /// Distinct senders tracked; cells index by `sender % senders`.
    pub senders: u16,
    /// Sequence slots tracked per sender; cells index by `seq % slots`.
    pub slots: u16,
}

/// Configuration for lowering: the window masks kernels compile against.
#[derive(Clone, Debug)]
pub struct LoweringConfig {
    /// Per-kernel mask (elements per window-data parameter). `window.len`
    /// folds to `mask[0]`; a kernel without an entry keeps `window.len`
    /// dynamic (fine for hosts, rejected by conformance for switches if a
    /// loop bound needs it).
    pub masks: HashMap<String, Vec<u16>>,
    /// Maximum constant trip count a loop may unroll to.
    pub unroll_limit: usize,
    /// Per-kernel replay filters (NCP-R). Only outgoing kernels are
    /// filtered; `window.replay` reads as constant `false` elsewhere.
    pub replay_filters: HashMap<String, ReplayFilter>,
}

impl Default for LoweringConfig {
    fn default() -> Self {
        LoweringConfig {
            masks: HashMap::new(),
            unroll_limit: 4096,
            replay_filters: HashMap::new(),
        }
    }
}

impl LoweringConfig {
    /// Builds a config with a single kernel mask.
    pub fn with_mask(kernel: &str, mask: impl Into<Vec<u16>>) -> Self {
        let mut cfg = LoweringConfig::default();
        cfg.masks.insert(kernel.to_string(), mask.into());
        cfg
    }
}

/// Lowers a checked program to the generic (pre-versioning) module.
pub fn lower(checked: &CheckedProgram, cfg: &LoweringConfig) -> Result<Module, Vec<Diagnostic>> {
    let mut module = Module {
        name: "ncl_program".into(),
        file: checked.file.clone(),
        location: None,
        window_ext: checked.window_ext.clone(),
        ..Module::default()
    };
    // Stable global indices: registers, ctrls, maps in declaration order.
    let mut reg_ids = HashMap::new();
    let mut ctrl_ids = HashMap::new();
    let mut map_ids = HashMap::new();
    for g in &checked.globals {
        match &g.kind {
            GlobalKind::Register { elem, dims, init } => {
                reg_ids.insert(g.name.clone(), ArrId(module.registers.len() as u32));
                module.registers.push(RegisterDecl {
                    name: g.name.clone(),
                    at: g.at.clone(),
                    elem: *elem,
                    dims: dims.clone(),
                    init: init.clone(),
                    span: g.span,
                });
            }
            GlobalKind::Ctrl { ty, init } => {
                ctrl_ids.insert(g.name.clone(), CtrlId(module.ctrls.len() as u32));
                module.ctrls.push(CtrlDecl {
                    name: g.name.clone(),
                    at: g.at.clone(),
                    ty: *ty,
                    init: *init,
                    span: g.span,
                });
            }
            GlobalKind::Map {
                key,
                value,
                capacity,
            } => {
                map_ids.insert(g.name.clone(), MapId(module.maps.len() as u32));
                module.maps.push(MapDecl {
                    name: g.name.clone(),
                    at: g.at.clone(),
                    key: *key,
                    value: *value,
                    capacity: *capacity,
                    span: g.span,
                });
            }
        }
    }

    // NCP-R: synthesize the replay-filter registers for filtered
    // outgoing kernels. They ride the normal register path, so every
    // backend (interpreter, fast path, PISA/P4) gets the stateful
    // filter stage without special cases.
    let mut filter_regs: HashMap<String, (ArrId, ArrId)> = HashMap::new();
    for k in &checked.kernels {
        if k.kind != ast::KernelKind::Outgoing {
            continue;
        }
        let Some(f) = cfg.replay_filters.get(&k.name) else {
            continue;
        };
        let seen = ArrId(module.registers.len() as u32);
        module.registers.push(RegisterDecl {
            name: c3::ncpr::replay_seen_register(&k.name),
            at: k.at.clone(),
            elem: ScalarType::U8,
            dims: vec![(f.senders as usize).max(1) * (f.slots as usize).max(1)],
            init: Vec::new(),
            span: k.span,
        });
        let dups = ArrId(module.registers.len() as u32);
        module.registers.push(RegisterDecl {
            name: c3::ncpr::replay_dups_register(&k.name),
            at: k.at.clone(),
            elem: ScalarType::U32,
            dims: vec![1],
            init: Vec::new(),
            span: k.span,
        });
        filter_regs.insert(k.name.clone(), (seen, dups));
    }

    let mut diags = Vec::new();
    for k in &checked.kernels {
        let mut lw = Lowerer {
            checked,
            cfg,
            kernel: k,
            mask: cfg.masks.get(&k.name).cloned(),
            reg_ids: &reg_ids,
            ctrl_ids: &ctrl_ids,
            map_ids: &map_ids,
            globals_elem: &module,
            blocks: vec![Block {
                insts: vec![],
                term: Terminator::Ret,
            }],
            cur: BlockId(0),
            reg_tys: Vec::new(),
            scope: vec![HashMap::new()],
            diags: Vec::new(),
            done: false,
            replay_reg: None,
        };
        lw.params_into_scope();
        if let Some(&(seen, dups)) = filter_regs.get(&k.name) {
            let f = cfg.replay_filters[&k.name];
            lw.emit_replay_prologue(seen, dups, f);
        }
        lw.lower_block_stmts(&k.body);
        let (blocks, reg_tys, mut kdiags) = (lw.blocks, lw.reg_tys, lw.diags);
        diags.append(&mut kdiags);
        module.kernels.push(KernelIr {
            name: k.name.clone(),
            kind: k.kind,
            at: k.at.clone(),
            params: k.params.clone(),
            mask: cfg.masks.get(&k.name).cloned().unwrap_or_default(),
            nregs: reg_tys.len() as u32,
            reg_tys,
            blocks,
            span: k.span,
        });
    }
    if diags.is_empty() {
        Ok(module)
    } else {
        Err(diags)
    }
}

/// What a name in scope is bound to during lowering.
#[derive(Clone, Debug)]
enum Binding {
    /// A scalar local held in a virtual register.
    Local(RegId, ScalarType),
    /// An unrolled loop induction variable (compile-time constant).
    Const(Value),
    /// A window-data parameter. `param` indexes non-`_ext_` params.
    WinParam {
        param: u16,
        elem: ScalarType,
        is_ptr: bool,
    },
    /// An `_ext_` host parameter of an incoming kernel.
    HostParam { param: u16, elem: ScalarType },
    /// A pointer produced by a map lookup: `(found, value)` registers.
    MapPtr {
        found: RegId,
        val: RegId,
        elem: ScalarType,
    },
}

/// A resolved assignable/readable place.
#[derive(Clone, Debug)]
enum Place {
    Local(RegId, ScalarType),
    WinElem(u16, Operand, ScalarType),
    RegElem(ArrId, Operand, ScalarType),
    HostElem(u16, Operand, ScalarType),
    ExtField(u16, ScalarType),
}

/// A pointer-like value for `memcpy`: base element offset into a linear
/// store.
#[derive(Clone, Debug)]
enum Bulk {
    Win(u16, Operand, ScalarType),
    Reg(ArrId, Operand, ScalarType),
    Host(u16, Operand, ScalarType),
}

struct Lowerer<'a> {
    checked: &'a CheckedProgram,
    cfg: &'a LoweringConfig,
    kernel: &'a KernelInfo,
    mask: Option<Vec<u16>>,
    reg_ids: &'a HashMap<String, ArrId>,
    ctrl_ids: &'a HashMap<String, CtrlId>,
    map_ids: &'a HashMap<String, MapId>,
    globals_elem: &'a Module,
    blocks: Vec<Block>,
    cur: BlockId,
    reg_tys: Vec<ScalarType>,
    scope: Vec<HashMap<String, Binding>>,
    diags: Vec<Diagnostic>,
    /// Set once the current block ended in a `return`.
    done: bool,
    /// Local holding the replay-filter verdict (NCP-R); `window.replay`
    /// reads it, or constant `false` when the kernel has no filter.
    replay_reg: Option<RegId>,
}

impl Lowerer<'_> {
    fn error(&mut self, msg: impl Into<String>, span: Span) {
        self.diags
            .push(Diagnostic::error(msg, span, self.checked.file.clone()));
    }

    fn fresh(&mut self, ty: ScalarType) -> RegId {
        let id = RegId(self.reg_tys.len() as u32);
        self.reg_tys.push(ty);
        id
    }

    fn emit(&mut self, inst: Inst) {
        if self.done {
            return; // unreachable code after return
        }
        self.blocks[self.cur.0 as usize].insts.push(inst);
    }

    /// NCP-R replay-filter prologue (block 0, before the kernel body):
    ///
    /// ```text
    /// idx    = (sender % senders) * slots + (seq % slots)
    /// old    = seen[idx]
    /// seen[idx] = 1
    /// replay = old != 0
    /// dups[0] += (u32) old
    /// ```
    ///
    /// One register array read-modify-write plus one counter bump —
    /// expressible as a single stateful RegisterAction stage on PISA.
    fn emit_replay_prologue(&mut self, seen: ArrId, dups: ArrId, f: ReplayFilter) {
        let senders = (f.senders as u32).max(1);
        let slots = (f.slots as u32).max(1);
        let sender = self.fresh(ScalarType::U16);
        self.emit(Inst::LdMeta {
            dst: sender,
            field: MetaField::Sender,
        });
        let sender32 = self.fresh(ScalarType::U32);
        self.emit(Inst::Cast {
            dst: sender32,
            ty: ScalarType::U32,
            a: Operand::Reg(sender),
        });
        let row = self.fresh(ScalarType::U32);
        self.emit(Inst::Bin {
            dst: row,
            op: BinOp::Rem,
            a: Operand::Reg(sender32),
            b: Operand::Const(Value::u32(senders)),
        });
        let row_base = self.fresh(ScalarType::U32);
        self.emit(Inst::Bin {
            dst: row_base,
            op: BinOp::Mul,
            a: Operand::Reg(row),
            b: Operand::Const(Value::u32(slots)),
        });
        let seq = self.fresh(ScalarType::U32);
        self.emit(Inst::LdMeta {
            dst: seq,
            field: MetaField::Seq,
        });
        let col = self.fresh(ScalarType::U32);
        self.emit(Inst::Bin {
            dst: col,
            op: BinOp::Rem,
            a: Operand::Reg(seq),
            b: Operand::Const(Value::u32(slots)),
        });
        let idx = self.fresh(ScalarType::U32);
        self.emit(Inst::Bin {
            dst: idx,
            op: BinOp::Add,
            a: Operand::Reg(row_base),
            b: Operand::Reg(col),
        });
        let old = self.fresh(ScalarType::U8);
        self.emit(Inst::LdReg {
            dst: old,
            arr: seen,
            index: Operand::Reg(idx),
        });
        self.emit(Inst::StReg {
            arr: seen,
            index: Operand::Reg(idx),
            val: Operand::Const(Value::new(ScalarType::U8, 1)),
        });
        let replay = self.fresh(ScalarType::Bool);
        self.emit(Inst::Bin {
            dst: replay,
            op: BinOp::Ne,
            a: Operand::Reg(old),
            b: Operand::Const(Value::new(ScalarType::U8, 0)),
        });
        let old32 = self.fresh(ScalarType::U32);
        self.emit(Inst::Cast {
            dst: old32,
            ty: ScalarType::U32,
            a: Operand::Reg(old),
        });
        let count = self.fresh(ScalarType::U32);
        self.emit(Inst::LdReg {
            dst: count,
            arr: dups,
            index: Operand::Const(Value::u32(0)),
        });
        let bumped = self.fresh(ScalarType::U32);
        self.emit(Inst::Bin {
            dst: bumped,
            op: BinOp::Add,
            a: Operand::Reg(count),
            b: Operand::Reg(old32),
        });
        self.emit(Inst::StReg {
            arr: dups,
            index: Operand::Const(Value::u32(0)),
            val: Operand::Reg(bumped),
        });
        self.replay_reg = Some(replay);
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            insts: vec![],
            term: Terminator::Ret,
        });
        id
    }

    fn set_term(&mut self, term: Terminator) {
        if self.done {
            return;
        }
        self.blocks[self.cur.0 as usize].term = term;
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
        self.done = false;
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scope.iter().rev().find_map(|f| f.get(name))
    }

    fn declare(&mut self, name: &str, b: Binding) {
        self.scope
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), b);
    }

    fn params_into_scope(&mut self) {
        let mut win = 0u16;
        let mut ext = 0u16;
        for p in &self.kernel.params {
            let b = if p.ext {
                let idx = ext;
                ext += 1;
                Binding::HostParam {
                    param: idx,
                    elem: p.elem,
                }
            } else {
                let idx = win;
                win += 1;
                Binding::WinParam {
                    param: idx,
                    elem: p.elem,
                    is_ptr: p.is_ptr,
                }
            };
            self.declare(&p.name, b);
        }
    }

    /// `window.len` as a constant, when a mask is configured.
    fn window_len_const(&self) -> Option<Value> {
        self.mask
            .as_ref()
            .and_then(|m| m.first())
            .map(|&e| Value::new(ScalarType::U16, e as u64))
    }

    // ------------------------------------------------------------------
    // Constant evaluation during lowering (loop bounds, memcpy lengths)
    // ------------------------------------------------------------------

    fn try_const(&self, e: &Expr) -> Option<Value> {
        match e {
            Expr::Ident(name, _) => match self.lookup(name) {
                Some(Binding::Const(v)) => Some(*v),
                Some(_) => None,
                None => self.checked.consts.get(name).copied(),
            },
            Expr::WindowField(f, _) if f == "len" => self.window_len_const(),
            Expr::WindowField(f, _) if f == "nchunks" => self
                .mask
                .as_ref()
                .map(|m| Value::new(ScalarType::U8, m.len() as u64)),
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self.try_const(lhs)?;
                let b = self.try_const(rhs)?;
                binop_values(*op, a, b)
            }
            Expr::Unary { op, expr, .. } => {
                let v = self.try_const(expr)?;
                let op = match op {
                    UnaryOp::Neg => UnOp::Neg,
                    UnaryOp::BitNot => UnOp::BitNot,
                    UnaryOp::Not => UnOp::Not,
                    _ => return None,
                };
                Some(Value::unop(op, v))
            }
            Expr::Cast { ty, expr, .. } => Some(self.try_const(expr)?.cast(*ty)),
            Expr::Ternary {
                cond, then, els, ..
            } => {
                let c = self.try_const(cond)?;
                if c.is_truthy() {
                    self.try_const(then)
                } else {
                    self.try_const(els)
                }
            }
            _ => const_eval_with(e, &self.checked.consts),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn lower_block_stmts(&mut self, b: &ast::Block) {
        self.scope.push(HashMap::new());
        for s in &b.stmts {
            self.lower_stmt(s);
        }
        self.scope.pop();
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Block(b) => self.lower_block_stmts(b),
            Stmt::Empty(_) => {}
            Stmt::Expr(e) => {
                self.lower_expr_effectful(e);
            }
            Stmt::Decl {
                ty,
                name,
                init,
                auto_ptr,
                span,
            } => self.lower_decl(ty, name, init, *auto_ptr, *span),
            Stmt::If {
                decl,
                cond,
                then,
                els,
                span,
            } => self.lower_if(decl, cond, then, els.as_deref(), *span),
            Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => self.lower_for(init.as_deref(), cond.as_ref(), step.as_ref(), body, *span),
            Stmt::While { cond, body, span } => {
                self.lower_while(cond, body, *span);
            }
            Stmt::Return(_, _) => {
                self.set_term(Terminator::Ret);
                self.done = true;
            }
            Stmt::Break(span) | Stmt::Continue(span) => {
                // Unrolled loops have no run-time break target; a constant
                // `if (...) break;` pattern is future work.
                self.error(
                    "'break'/'continue' are not supported in kernels (loops are fully unrolled)",
                    *span,
                );
            }
        }
    }

    fn lower_decl(
        &mut self,
        ty: &Option<ast::TypeExpr>,
        name: &str,
        init: &Option<Expr>,
        auto_ptr: bool,
        span: Span,
    ) {
        if auto_ptr {
            // `auto *idx = Idx[key];` — unchecked map lookup.
            let Some(Expr::Index { base, index, .. }) = init else {
                self.error("'auto *' requires a map lookup initializer", span);
                return;
            };
            let Some((map, elem)) = self.resolve_map(base) else {
                self.error("'auto *' requires a map lookup initializer", span);
                return;
            };
            let key_ty = self.map_key_ty(map);
            let (key, _) = self.lower_expr_as(index, key_ty);
            let found = self.fresh(ScalarType::Bool);
            let val = self.fresh(elem);
            self.emit(Inst::MapGet {
                found,
                val,
                map,
                key,
            });
            self.declare(name, Binding::MapPtr { found, val, elem });
            return;
        }
        let declared = match ty {
            Some(ast::TypeExpr::Scalar(s)) => Some(*s),
            None => None,
            _ => {
                self.error("unsupported local declaration", span);
                return;
            }
        };
        let (op, ity) = match init {
            Some(e) => self.lower_expr(e),
            None => {
                let t = declared.unwrap_or(ScalarType::I32);
                (Operand::Const(Value::zero(t)), t)
            }
        };
        let final_ty = declared.unwrap_or(ity);
        let op = self.coerce(op, ity, final_ty);
        let dst = self.fresh(final_ty);
        self.emit(Inst::Copy { dst, a: op });
        self.declare(name, Binding::Local(dst, final_ty));
    }

    fn lower_if(
        &mut self,
        decl: &Option<(String, Span)>,
        cond: &Expr,
        then: &Stmt,
        els: Option<&Stmt>,
        _span: Span,
    ) {
        self.scope.push(HashMap::new());
        let cond_op = if let Some((name, dspan)) = decl {
            // `if (auto *p = Map[k])` — branch on the hit bit.
            let (found_op, binding) = self.lower_map_cond(cond, *dspan);
            if let Some(b) = binding {
                self.declare(name, b);
            }
            found_op
        } else {
            self.lower_condition(cond)
        };
        // Constant condition: lower only the taken branch.
        if let Some(c) = cond_op.as_const() {
            if c.is_truthy() {
                self.lower_stmt(then);
            } else if let Some(e) = els {
                self.lower_stmt(e);
            }
            self.scope.pop();
            return;
        }
        let then_bb = self.new_block();
        let els_bb = self.new_block();
        let join_bb = self.new_block();
        self.set_term(Terminator::Br {
            cond: cond_op,
            then: then_bb,
            els: els_bb,
        });
        self.switch_to(then_bb);
        self.lower_stmt(then);
        self.set_term(Terminator::Jmp(join_bb));
        let then_done = self.done;
        self.switch_to(els_bb);
        if let Some(e) = els {
            self.lower_stmt(e);
        }
        self.set_term(Terminator::Jmp(join_bb));
        let els_done = self.done;
        self.switch_to(join_bb);
        self.done = then_done && els_done;
        if self.done {
            self.set_term(Terminator::Ret);
            // join block unreachable; keep Ret terminator.
            self.done = false; // join may still be target of other paths
        }
        self.scope.pop();
    }

    /// Lowers an `if (auto *p = ...)` condition: returns the `found`
    /// operand and the pointer binding.
    fn lower_map_cond(&mut self, cond: &Expr, span: Span) -> (Operand, Option<Binding>) {
        if let Expr::Index { base, index, .. } = cond {
            if let Some((map, elem)) = self.resolve_map(base) {
                let key_ty = self.map_key_ty(map);
                let (key, _) = self.lower_expr_as(index, key_ty);
                let found = self.fresh(ScalarType::Bool);
                let val = self.fresh(elem);
                self.emit(Inst::MapGet {
                    found,
                    val,
                    map,
                    key,
                });
                return (
                    Operand::Reg(found),
                    Some(Binding::MapPtr { found, val, elem }),
                );
            }
        }
        self.error("'if (auto *...)' requires a map lookup", span);
        (Operand::Const(Value::bool(false)), None)
    }

    fn lower_for(
        &mut self,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &Stmt,
        span: Span,
    ) {
        self.scope.push(HashMap::new());
        // Try the unrollable pattern first.
        if let Some(count) = self.try_unroll(init, cond, step, body, span) {
            let _ = count;
            self.scope.pop();
            return;
        }
        // General loop: real CFG back edge (valid for interpreter / host
        // kernels; conformance rejects it for switch kernels).
        if let Some(i) = init {
            self.lower_stmt(i);
        }
        let head = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();
        self.set_term(Terminator::Jmp(head));
        self.switch_to(head);
        let cond_op = match cond {
            Some(c) => self.lower_condition(c),
            None => Operand::Const(Value::bool(true)),
        };
        self.set_term(Terminator::Br {
            cond: cond_op,
            then: body_bb,
            els: exit,
        });
        self.switch_to(body_bb);
        self.lower_stmt(body);
        if let Some(s) = step {
            self.lower_expr_effectful(s);
        }
        self.set_term(Terminator::Jmp(head));
        self.switch_to(exit);
        self.scope.pop();
    }

    /// Recognizes `for (T i = C0; i <cmp> BOUND; ++i / i += C)` with a
    /// constant range and unrolls it. Returns the trip count on success.
    fn try_unroll(
        &mut self,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &Stmt,
        span: Span,
    ) -> Option<usize> {
        let Stmt::Decl {
            name,
            init: Some(ie),
            ..
        } = init?
        else {
            return None;
        };
        let start = self.try_const(ie)?;
        let cond = cond?;
        let Expr::Binary { op, lhs, rhs, .. } = cond else {
            return None;
        };
        let Expr::Ident(cv, _) = &**lhs else {
            return None;
        };
        if cv != name {
            return None;
        }
        let bound = self.try_const(rhs)?;
        let stride: i128 = match step? {
            Expr::IncDec { inc, target, .. } => {
                let Expr::Ident(sv, _) = &**target else {
                    return None;
                };
                if sv != name {
                    return None;
                }
                if *inc {
                    1
                } else {
                    -1
                }
            }
            Expr::Assign {
                op: AssignOp::Add,
                lhs,
                rhs,
                ..
            } => {
                let Expr::Ident(sv, _) = &**lhs else {
                    return None;
                };
                if sv != name {
                    return None;
                }
                self.try_const(rhs)?.as_i128()
            }
            _ => return None,
        };
        if stride == 0 {
            return None;
        }
        let holds = |v: i128, b: i128| match op {
            BinaryOp::Lt => v < b,
            BinaryOp::Le => v <= b,
            BinaryOp::Gt => v > b,
            BinaryOp::Ge => v >= b,
            BinaryOp::Ne => v != b,
            _ => false,
        };
        if !matches!(
            op,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge | BinaryOp::Ne
        ) {
            return None;
        }
        let ity = start.ty();
        let mut v = start.as_i128();
        let b = bound.as_i128();
        let mut iters = 0usize;
        while holds(v, b) {
            iters += 1;
            if iters > self.cfg.unroll_limit {
                self.error(
                    format!(
                        "loop trip count exceeds the unroll limit ({})",
                        self.cfg.unroll_limit
                    ),
                    span,
                );
                return Some(0);
            }
            v += stride;
        }
        // Unroll: bind the induction variable to each constant in turn.
        let mut v = start.as_i128();
        for _ in 0..iters {
            self.scope.push(HashMap::new());
            self.declare(name, Binding::Const(Value::new(ity, v as u64)));
            self.lower_stmt(body);
            self.scope.pop();
            v += stride;
        }
        Some(iters)
    }

    fn lower_while(&mut self, cond: &Expr, body: &Stmt, _span: Span) {
        let head = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();
        self.set_term(Terminator::Jmp(head));
        self.switch_to(head);
        let c = self.lower_condition(cond);
        self.set_term(Terminator::Br {
            cond: c,
            then: body_bb,
            els: exit,
        });
        self.switch_to(body_bb);
        self.lower_stmt(body);
        self.set_term(Terminator::Jmp(head));
        self.switch_to(exit);
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Lowers an expression used as a branch condition into a bool
    /// operand.
    fn lower_condition(&mut self, e: &Expr) -> Operand {
        // A bare map lookup in condition position tests the hit bit.
        if let Expr::Index { base, index, .. } = e {
            if let Some((map, elem)) = self.resolve_map(base) {
                let key_ty = self.map_key_ty(map);
                let (key, _) = self.lower_expr_as(index, key_ty);
                let found = self.fresh(ScalarType::Bool);
                let val = self.fresh(elem);
                self.emit(Inst::MapGet {
                    found,
                    val,
                    map,
                    key,
                });
                return Operand::Reg(found);
            }
        }
        let (op, ty) = self.lower_expr(e);
        self.truthy(op, ty)
    }

    fn truthy(&mut self, op: Operand, ty: ScalarType) -> Operand {
        if ty == ScalarType::Bool {
            return op;
        }
        if let Some(c) = op.as_const() {
            return Operand::Const(Value::bool(c.is_truthy()));
        }
        let dst = self.fresh(ScalarType::Bool);
        self.emit(Inst::Bin {
            dst,
            op: BinOp::Ne,
            a: op,
            b: Operand::Const(Value::zero(ty)),
        });
        Operand::Reg(dst)
    }

    /// Lowers an expression and coerces the result to `want`.
    fn lower_expr_as(&mut self, e: &Expr, want: ScalarType) -> (Operand, ScalarType) {
        let (op, ty) = self.lower_expr(e);
        (self.coerce(op, ty, want), want)
    }

    fn coerce(&mut self, op: Operand, from: ScalarType, to: ScalarType) -> Operand {
        if from == to {
            return op;
        }
        if let Some(c) = op.as_const() {
            return Operand::Const(c.cast(to));
        }
        let dst = self.fresh(to);
        self.emit(Inst::Cast { dst, ty: to, a: op });
        Operand::Reg(dst)
    }

    /// Lowers an expression in statement position (assignments, calls,
    /// inc/dec).
    fn lower_expr_effectful(&mut self, e: &Expr) {
        match e {
            Expr::Assign { op, lhs, rhs, span } => self.lower_assign(*op, lhs, rhs, *span),
            Expr::IncDec { .. } => {
                self.lower_expr(e);
            }
            Expr::Call { .. } => {
                self.lower_expr(e);
            }
            other => {
                self.lower_expr(other);
            }
        }
    }

    fn lower_assign(&mut self, op: AssignOp, lhs: &Expr, rhs: &Expr, span: Span) {
        let Some(place) = self.resolve_place(lhs, span) else {
            return;
        };
        let pty = place_ty(&place);
        let value = if op == AssignOp::Assign {
            let (v, vty) = self.lower_expr(rhs);
            self.coerce(v, vty, pty)
        } else {
            let cur = self.read_place(&place);
            let (rv, rty) = self.lower_expr(rhs);
            let common = usual_conversion(pty, rty);
            let a = self.coerce(cur, pty, common);
            let b = self.coerce(rv, rty, common);
            let bop = assign_binop(op);
            let dst = self.fresh(bin_result_ty(bop, common));
            self.emit(Inst::Bin { dst, op: bop, a, b });
            self.coerce(Operand::Reg(dst), common, pty)
        };
        self.write_place(&place, value);
    }

    /// Lowers a pure (value-producing) expression. Returns the operand
    /// and its scalar type.
    fn lower_expr(&mut self, e: &Expr) -> (Operand, ScalarType) {
        match e {
            Expr::Int(v, unsigned, _) => {
                let ty = int_literal_ty(*v, *unsigned);
                (Operand::Const(Value::new(ty, *v)), ty)
            }
            Expr::Bool(b, _) => (Operand::Const(Value::bool(*b)), ScalarType::Bool),
            Expr::Char(c, _) => (
                Operand::Const(Value::new(ScalarType::I8, *c as u64)),
                ScalarType::I8,
            ),
            Expr::Str(_, span) => {
                self.error("string literal in expression position", *span);
                (Operand::Const(Value::u32(0)), ScalarType::U32)
            }
            Expr::Ident(name, span) => self.lower_ident(name, *span),
            Expr::WindowField(field, span) => self.lower_window_field(field, *span),
            Expr::LocationField(field, span) => {
                if field == "id" {
                    let dst = self.fresh(ScalarType::U16);
                    self.emit(Inst::LdMeta {
                        dst,
                        field: MetaField::LocationId,
                    });
                    (Operand::Reg(dst), ScalarType::U16)
                } else {
                    self.error(format!("unknown location field '{field}'"), *span);
                    (Operand::Const(Value::u32(0)), ScalarType::U32)
                }
            }
            Expr::Index { span, .. } => {
                // Rvalue read through a place (or map lookup value).
                if let Expr::Index { base, index, .. } = e {
                    if let Some((map, elem)) = self.resolve_map(base) {
                        let key_ty = self.map_key_ty(map);
                        let (key, _) = self.lower_expr_as(index, key_ty);
                        let found = self.fresh(ScalarType::Bool);
                        let val = self.fresh(elem);
                        self.emit(Inst::MapGet {
                            found,
                            val,
                            map,
                            key,
                        });
                        // Reading `Idx[k]` as a value yields the mapped
                        // value (0 on miss).
                        return (Operand::Reg(val), elem);
                    }
                }
                match self.resolve_place(e, *span) {
                    Some(place) => {
                        let ty = place_ty(&place);
                        (self.read_place(&place), ty)
                    }
                    None => (Operand::Const(Value::u32(0)), ScalarType::U32),
                }
            }
            Expr::Unary { op, expr, span } => self.lower_unary(*op, expr, *span),
            Expr::Binary { op, lhs, rhs, span } => self.lower_binary(*op, lhs, rhs, *span),
            Expr::Assign { span, .. } => {
                self.error("assignment cannot be nested inside an expression", *span);
                (Operand::Const(Value::u32(0)), ScalarType::U32)
            }
            Expr::IncDec {
                inc,
                prefix,
                target,
                span,
            } => self.lower_incdec(*inc, *prefix, target, *span),
            Expr::Call { callee, args, span } => self.lower_call(callee, args, *span),
            Expr::Cast { ty, expr, .. } => {
                let (v, vty) = self.lower_expr(expr);
                (self.coerce(v, vty, *ty), *ty)
            }
            Expr::Ternary {
                cond,
                then,
                els,
                span,
            } => {
                for arm in [&**then, &**els] {
                    if has_side_effects(arm) {
                        self.error(
                            "ternary arms are evaluated eagerly and must be side-effect free",
                            *span,
                        );
                    }
                }
                let c = self.lower_condition(cond);
                let (a, at) = self.lower_expr(then);
                let (b, bt) = self.lower_expr(els);
                let common = usual_conversion(at, bt);
                let a = self.coerce(a, at, common);
                let b = self.coerce(b, bt, common);
                if let Some(cv) = c.as_const() {
                    return (if cv.is_truthy() { a } else { b }, common);
                }
                let dst = self.fresh(common);
                self.emit(Inst::Select { dst, cond: c, a, b });
                (Operand::Reg(dst), common)
            }
            Expr::SizeOf(ty, _) => (
                Operand::Const(Value::u32(ty.size() as u32)),
                ScalarType::U32,
            ),
        }
    }

    fn lower_ident(&mut self, name: &str, span: Span) -> (Operand, ScalarType) {
        if let Some(b) = self.lookup(name).cloned() {
            return match b {
                Binding::Local(r, ty) => (Operand::Reg(r), ty),
                Binding::Const(v) => (Operand::Const(v), v.ty()),
                Binding::WinParam { param, elem, .. } => {
                    // Scalar param read = chunk element 0; bare pointer
                    // params in value position are a lowering error
                    // (callers use them via memcpy / indexing).
                    let dst = self.fresh(elem);
                    self.emit(Inst::LdWin {
                        dst,
                        param,
                        index: Operand::Const(Value::u32(0)),
                    });
                    (Operand::Reg(dst), elem)
                }
                Binding::HostParam { param, elem } => {
                    let dst = self.fresh(elem);
                    self.emit(Inst::LdHost {
                        dst,
                        param,
                        index: Operand::Const(Value::u32(0)),
                    });
                    (Operand::Reg(dst), elem)
                }
                Binding::MapPtr { found, elem, .. } => {
                    // Pointer truthiness (e.g. `if (idx)`).
                    (Operand::Reg(found), {
                        let _ = elem;
                        ScalarType::Bool
                    })
                }
            };
        }
        if let Some(v) = self.checked.consts.get(name) {
            return (Operand::Const(*v), v.ty());
        }
        // Globals.
        if let Some(&arr) = self.reg_ids.get(name) {
            let decl = &self.globals_elem.registers[arr.0 as usize];
            if decl.dims.is_empty() {
                let elem = decl.elem;
                let dst = self.fresh(elem);
                self.emit(Inst::LdReg {
                    dst,
                    arr,
                    index: Operand::Const(Value::u32(0)),
                });
                return (Operand::Reg(dst), elem);
            }
            self.error(format!("array '{name}' used as a scalar value"), span);
            return (Operand::Const(Value::u32(0)), ScalarType::U32);
        }
        if let Some(&ctrl) = self.ctrl_ids.get(name) {
            let ty = self.globals_elem.ctrls[ctrl.0 as usize].ty;
            let dst = self.fresh(ty);
            self.emit(Inst::LdCtrl { dst, ctrl });
            return (Operand::Reg(dst), ty);
        }
        self.error(format!("unknown identifier '{name}' during lowering"), span);
        (Operand::Const(Value::u32(0)), ScalarType::U32)
    }

    fn lower_window_field(&mut self, field: &str, span: Span) -> (Operand, ScalarType) {
        let meta = match field {
            "seq" => MetaField::Seq,
            "sender" => MetaField::Sender,
            "from" => MetaField::From,
            "nchunks" => {
                if let Some(m) = &self.mask {
                    return (
                        Operand::Const(Value::new(ScalarType::U8, m.len() as u64)),
                        ScalarType::U8,
                    );
                }
                MetaField::NChunks
            }
            "len" => {
                if let Some(v) = self.window_len_const() {
                    return (Operand::Const(v), ScalarType::U16);
                }
                MetaField::Len
            }
            "last" => MetaField::Last,
            "replay" => {
                // NCP-R verdict, computed by the filter prologue.
                // Without a filter (hosts, unfiltered kernels) the
                // window is by definition not a replay.
                return match self.replay_reg {
                    Some(r) => (Operand::Reg(r), ScalarType::Bool),
                    None => (Operand::Const(Value::bool(false)), ScalarType::Bool),
                };
            }
            other => {
                if let Some((ty, off)) = self.checked.window_ext.field(other) {
                    let dst = self.fresh(ty);
                    self.emit(Inst::LdMeta {
                        dst,
                        field: MetaField::Ext(off as u16, ty),
                    });
                    return (Operand::Reg(dst), ty);
                }
                self.error(format!("unknown window field '{other}'"), span);
                return (Operand::Const(Value::u32(0)), ScalarType::U32);
            }
        };
        let ty = meta.ty();
        let dst = self.fresh(ty);
        self.emit(Inst::LdMeta { dst, field: meta });
        (Operand::Reg(dst), ty)
    }

    fn lower_unary(&mut self, op: UnaryOp, expr: &Expr, span: Span) -> (Operand, ScalarType) {
        match op {
            UnaryOp::Deref => {
                // `*p` — map pointer, window pointer param, or host
                // pointer param.
                if let Expr::Ident(name, _) = expr {
                    match self.lookup(name).cloned() {
                        Some(Binding::MapPtr { val, elem, .. }) => {
                            return (Operand::Reg(val), elem);
                        }
                        Some(Binding::WinParam { param, elem, .. }) => {
                            let dst = self.fresh(elem);
                            self.emit(Inst::LdWin {
                                dst,
                                param,
                                index: Operand::Const(Value::u32(0)),
                            });
                            return (Operand::Reg(dst), elem);
                        }
                        Some(Binding::HostParam { param, elem }) => {
                            let dst = self.fresh(elem);
                            self.emit(Inst::LdHost {
                                dst,
                                param,
                                index: Operand::Const(Value::u32(0)),
                            });
                            return (Operand::Reg(dst), elem);
                        }
                        _ => {}
                    }
                }
                self.error("cannot dereference this expression", span);
                (Operand::Const(Value::u32(0)), ScalarType::U32)
            }
            UnaryOp::AddrOf => {
                self.error("'&' is only valid as a memcpy operand", span);
                (Operand::Const(Value::u32(0)), ScalarType::U32)
            }
            UnaryOp::Not => {
                let c = self.lower_condition(expr);
                if let Some(v) = c.as_const() {
                    return (
                        Operand::Const(Value::bool(!v.is_truthy())),
                        ScalarType::Bool,
                    );
                }
                let dst = self.fresh(ScalarType::Bool);
                self.emit(Inst::Un {
                    dst,
                    op: UnOp::Not,
                    a: c,
                });
                (Operand::Reg(dst), ScalarType::Bool)
            }
            UnaryOp::Neg | UnaryOp::BitNot => {
                let (v, ty) = self.lower_expr(expr);
                let pty = ncl_lang::sema::promote(ty);
                let v = self.coerce(v, ty, pty);
                let uop = if op == UnaryOp::Neg {
                    UnOp::Neg
                } else {
                    UnOp::BitNot
                };
                if let Some(c) = v.as_const() {
                    return (Operand::Const(Value::unop(uop, c)), pty);
                }
                let dst = self.fresh(pty);
                self.emit(Inst::Un { dst, op: uop, a: v });
                (Operand::Reg(dst), pty)
            }
        }
    }

    fn lower_binary(
        &mut self,
        op: BinaryOp,
        lhs: &Expr,
        rhs: &Expr,
        span: Span,
    ) -> (Operand, ScalarType) {
        if matches!(op, BinaryOp::LAnd | BinaryOp::LOr) {
            if has_side_effects(rhs) {
                self.error(
                    "the right operand of '&&'/'||' is evaluated eagerly on PISA \
                     and must be side-effect free",
                    span,
                );
            }
            let a = self.lower_condition(lhs);
            let b = self.lower_condition(rhs);
            let bop = if op == BinaryOp::LAnd {
                BinOp::And
            } else {
                BinOp::Or
            };
            if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
                return (Operand::Const(Value::binop(bop, x, y)), ScalarType::Bool);
            }
            let dst = self.fresh(ScalarType::Bool);
            self.emit(Inst::Bin { dst, op: bop, a, b });
            return (Operand::Reg(dst), ScalarType::Bool);
        }
        let (a, at) = self.lower_expr(lhs);
        let (b, bt) = self.lower_expr(rhs);
        let common = usual_conversion(at, bt);
        let a = self.coerce(a, at, common);
        let b = self.coerce(b, bt, common);
        let bop = ast_binop(op);
        let rty = bin_result_ty(bop, common);
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            return (Operand::Const(Value::binop(bop, x, y)), rty);
        }
        let dst = self.fresh(rty);
        self.emit(Inst::Bin { dst, op: bop, a, b });
        (Operand::Reg(dst), rty)
    }

    fn lower_incdec(
        &mut self,
        inc: bool,
        prefix: bool,
        target: &Expr,
        span: Span,
    ) -> (Operand, ScalarType) {
        let Some(place) = self.resolve_place(target, span) else {
            return (Operand::Const(Value::u32(0)), ScalarType::U32);
        };
        let ty = place_ty(&place);
        let mut old = self.read_place(&place);
        if !prefix {
            // Postfix needs the old value after the place is rewritten;
            // for locals `old` aliases the place, so materialize a copy.
            if matches!(place, Place::Local(..)) {
                let keep = self.fresh(ty);
                self.emit(Inst::Copy { dst: keep, a: old });
                old = Operand::Reg(keep);
            }
        }
        let dst = self.fresh(ty);
        self.emit(Inst::Bin {
            dst,
            op: if inc { BinOp::Add } else { BinOp::Sub },
            a: old,
            b: Operand::Const(Value::new(ty, 1)),
        });
        self.write_place(&place, Operand::Reg(dst));
        if prefix {
            (Operand::Reg(dst), ty)
        } else {
            (old, ty)
        }
    }

    fn lower_call(&mut self, callee: &str, args: &[Expr], span: Span) -> (Operand, ScalarType) {
        match callee {
            "_pass" => {
                let label = args.first().and_then(|a| match a {
                    Expr::Str(s, _) => Some(Label::new(s)),
                    _ => None,
                });
                self.emit(Inst::Fwd {
                    kind: FwdKind::Pass,
                    label,
                });
            }
            "_drop" => self.emit(Inst::Fwd {
                kind: FwdKind::Drop,
                label: None,
            }),
            "_reflect" => self.emit(Inst::Fwd {
                kind: FwdKind::Reflect,
                label: None,
            }),
            "_bcast" => self.emit(Inst::Fwd {
                kind: FwdKind::Bcast,
                label: None,
            }),
            "_here" => {
                if let Some(Expr::Str(s, _)) = args.first() {
                    let dst = self.fresh(ScalarType::Bool);
                    self.emit(Inst::Here {
                        dst,
                        label: Label::new(s),
                    });
                    return (Operand::Reg(dst), ScalarType::Bool);
                }
                self.error("_here() requires a label string", span);
            }
            "_hash" => {
                // xorshift-multiply mix (the stage hash unit): salted,
                // well-distributed, and expressible as plain ALU ops so
                // the interpreter and pipeline agree by construction.
                if args.len() != 2 {
                    self.error("_hash() takes (value, salt)", span);
                    return (Operand::Const(Value::u32(0)), ScalarType::U32);
                }
                let (v, vt) = self.lower_expr(&args[0]);
                let v = self.coerce(v, vt, ScalarType::U32);
                let (salt, st) = self.lower_expr(&args[1]);
                let salt = self.coerce(salt, st, ScalarType::U32);
                let mix = |lw: &mut Self, a: Operand, op: BinOp, b: Operand| -> Operand {
                    match (a.as_const(), b.as_const()) {
                        (Some(x), Some(y)) => Operand::Const(Value::binop(op, x, y)),
                        _ => {
                            let d = lw.fresh(ScalarType::U32);
                            lw.emit(Inst::Bin { dst: d, op, a, b });
                            Operand::Reg(d)
                        }
                    }
                };
                let h = mix(self, v, BinOp::Xor, salt);
                let h = mix(self, h, BinOp::Mul, Operand::Const(Value::u32(2654435761)));
                let sh = mix(self, h, BinOp::Shr, Operand::Const(Value::u32(15)));
                let h = mix(self, h, BinOp::Xor, sh);
                let h = mix(self, h, BinOp::Mul, Operand::Const(Value::u32(2246822519)));
                let sh = mix(self, h, BinOp::Shr, Operand::Const(Value::u32(13)));
                let h = mix(self, h, BinOp::Xor, sh);
                return (h, ScalarType::U32);
            }
            "memcpy" => self.lower_memcpy(args, span),
            other => {
                self.error(format!("cannot lower call to '{other}'"), span);
            }
        }
        (Operand::Const(Value::u32(0)), ScalarType::U32)
    }

    fn lower_memcpy(&mut self, args: &[Expr], span: Span) {
        if args.len() != 3 {
            self.error("memcpy takes (dst, src, nbytes)", span);
            return;
        }
        let Some(nbytes) = self.try_const(&args[2]) else {
            self.error(
                "memcpy length must be a compile-time constant \
                 (possibly via window.len with a configured mask)",
                args[2].span(),
            );
            return;
        };
        let nbytes = nbytes.bits() as usize;
        let Some(dst) = self.resolve_bulk(&args[0]) else {
            self.error("unsupported memcpy destination", args[0].span());
            return;
        };
        let Some(src) = self.resolve_bulk(&args[1]) else {
            self.error("unsupported memcpy source", args[1].span());
            return;
        };
        let (dty, sty) = (bulk_ty(&dst), bulk_ty(&src));
        if dty.size() != sty.size() {
            self.error(
                format!(
                    "memcpy between different element widths ({} vs {})",
                    dty, sty
                ),
                span,
            );
            return;
        }
        if !nbytes.is_multiple_of(dty.size()) {
            self.error(
                format!(
                    "memcpy length {nbytes} is not a multiple of the element size {}",
                    dty.size()
                ),
                span,
            );
            return;
        }
        let elems = nbytes / dty.size();
        for k in 0..elems {
            let sv = self.bulk_read(&src, k);
            let sv = self.coerce(sv, sty, dty);
            self.bulk_write(&dst, k, sv);
        }
    }

    // ------------------------------------------------------------------
    // Places
    // ------------------------------------------------------------------

    fn resolve_map(&self, base: &Expr) -> Option<(MapId, ScalarType)> {
        if let Expr::Ident(name, _) = base {
            if let Some(&m) = self.map_ids.get(name) {
                let elem = self.globals_elem.maps[m.0 as usize].value;
                return Some((m, elem));
            }
        }
        None
    }

    fn map_key_ty(&self, map: MapId) -> ScalarType {
        self.globals_elem.maps[map.0 as usize].key
    }

    fn resolve_place(&mut self, e: &Expr, span: Span) -> Option<Place> {
        match e {
            Expr::Ident(name, _) => match self.lookup(name).cloned() {
                Some(Binding::Local(r, ty)) => Some(Place::Local(r, ty)),
                Some(Binding::Const(_)) => {
                    self.error(
                        format!("cannot assign to unrolled loop variable '{name}'"),
                        span,
                    );
                    None
                }
                Some(Binding::WinParam { param, elem, .. }) => {
                    Some(Place::WinElem(param, Operand::Const(Value::u32(0)), elem))
                }
                Some(Binding::HostParam { param, elem }) => {
                    Some(Place::HostElem(param, Operand::Const(Value::u32(0)), elem))
                }
                Some(Binding::MapPtr { .. }) => {
                    self.error("cannot assign to a map pointer", span);
                    None
                }
                None => {
                    if let Some(&arr) = self.reg_ids.get(name) {
                        let decl = &self.globals_elem.registers[arr.0 as usize];
                        if decl.dims.is_empty() {
                            return Some(Place::RegElem(
                                arr,
                                Operand::Const(Value::u32(0)),
                                decl.elem,
                            ));
                        }
                    }
                    self.error(format!("'{name}' is not an assignable place"), span);
                    None
                }
            },
            Expr::Index { base, index, .. } => self.resolve_index_place(base, index, span),
            Expr::Unary {
                op: UnaryOp::Deref,
                expr,
                ..
            } => {
                if let Expr::Ident(name, _) = &**expr {
                    match self.lookup(name).cloned() {
                        Some(Binding::HostParam { param, elem }) => {
                            return Some(Place::HostElem(
                                param,
                                Operand::Const(Value::u32(0)),
                                elem,
                            ));
                        }
                        Some(Binding::WinParam { param, elem, .. }) => {
                            return Some(Place::WinElem(
                                param,
                                Operand::Const(Value::u32(0)),
                                elem,
                            ));
                        }
                        _ => {}
                    }
                }
                self.error("cannot assign through this pointer", span);
                None
            }
            Expr::WindowField(field, span) => {
                if let Some((ty, off)) = self.checked.window_ext.field(field) {
                    Some(Place::ExtField(off as u16, ty))
                } else {
                    self.error(format!("window field '{field}' is not writable"), *span);
                    None
                }
            }
            other => {
                self.error("expression is not an assignable place", other.span());
                None
            }
        }
    }

    fn resolve_index_place(&mut self, base: &Expr, index: &Expr, span: Span) -> Option<Place> {
        match base {
            Expr::Ident(name, _) => match self.lookup(name).cloned() {
                Some(Binding::WinParam {
                    param,
                    elem,
                    is_ptr,
                }) => {
                    if !is_ptr {
                        self.error(format!("cannot index scalar parameter '{name}'"), span);
                        return None;
                    }
                    let (idx, _) = self.lower_expr_as(index, ScalarType::U32);
                    Some(Place::WinElem(param, idx, elem))
                }
                Some(Binding::HostParam { param, elem }) => {
                    let (idx, _) = self.lower_expr_as(index, ScalarType::U32);
                    Some(Place::HostElem(param, idx, elem))
                }
                Some(_) => {
                    self.error(format!("cannot index '{name}'"), span);
                    None
                }
                None => {
                    if let Some(&arr) = self.reg_ids.get(name) {
                        let decl = &self.globals_elem.registers[arr.0 as usize];
                        let elem = decl.elem;
                        match decl.dims.len() {
                            0 | 1 => {
                                let (idx, _) = self.lower_expr_as(index, ScalarType::U32);
                                return Some(Place::RegElem(arr, idx, elem));
                            }
                            2 => {
                                // `Cache[i]` used as a place needs the
                                // second index; only memcpy handles rows.
                                self.error(
                                    format!(
                                        "row '{name}[i]' is not a scalar place; \
                                         use memcpy or a second index"
                                    ),
                                    span,
                                );
                                return None;
                            }
                            _ => {
                                self.error(">2-D arrays unsupported", span);
                                return None;
                            }
                        }
                    }
                    self.error(format!("unknown array '{name}'"), span);
                    None
                }
            },
            // Two-dimensional element: `Cache[i][j]`.
            Expr::Index {
                base: inner_base,
                index: inner_index,
                ..
            } => {
                if let Expr::Ident(name, _) = &**inner_base {
                    if let Some(&arr) = self.reg_ids.get(name) {
                        let decl = self.globals_elem.registers[arr.0 as usize].clone();
                        if decl.dims.len() == 2 {
                            let cols = decl.dims[1] as u64;
                            let (i, _) = self.lower_expr_as(inner_index, ScalarType::U32);
                            let (j, _) = self.lower_expr_as(index, ScalarType::U32);
                            let flat = self.flatten_2d(i, j, cols);
                            return Some(Place::RegElem(arr, flat, decl.elem));
                        }
                    }
                }
                self.error("unsupported nested indexing", span);
                None
            }
            _ => {
                self.error("unsupported indexing base", span);
                None
            }
        }
    }

    fn flatten_2d(&mut self, i: Operand, j: Operand, cols: u64) -> Operand {
        let scaled = if let Some(c) = i.as_const() {
            Operand::Const(Value::u32((c.bits() * cols) as u32))
        } else {
            let dst = self.fresh(ScalarType::U32);
            self.emit(Inst::Bin {
                dst,
                op: BinOp::Mul,
                a: i,
                b: Operand::Const(Value::u32(cols as u32)),
            });
            Operand::Reg(dst)
        };
        match (scaled.as_const(), j.as_const()) {
            (Some(a), Some(b)) => Operand::Const(Value::u32((a.bits() + b.bits()) as u32)),
            _ => {
                let dst = self.fresh(ScalarType::U32);
                self.emit(Inst::Bin {
                    dst,
                    op: BinOp::Add,
                    a: scaled,
                    b: j,
                });
                Operand::Reg(dst)
            }
        }
    }

    fn read_place(&mut self, p: &Place) -> Operand {
        match p {
            Place::Local(r, _) => Operand::Reg(*r),
            Place::WinElem(param, idx, elem) => {
                let dst = self.fresh(*elem);
                self.emit(Inst::LdWin {
                    dst,
                    param: *param,
                    index: *idx,
                });
                Operand::Reg(dst)
            }
            Place::RegElem(arr, idx, elem) => {
                let dst = self.fresh(*elem);
                self.emit(Inst::LdReg {
                    dst,
                    arr: *arr,
                    index: *idx,
                });
                Operand::Reg(dst)
            }
            Place::HostElem(param, idx, elem) => {
                let dst = self.fresh(*elem);
                self.emit(Inst::LdHost {
                    dst,
                    param: *param,
                    index: *idx,
                });
                Operand::Reg(dst)
            }
            Place::ExtField(off, ty) => {
                let dst = self.fresh(*ty);
                self.emit(Inst::LdMeta {
                    dst,
                    field: MetaField::Ext(*off, *ty),
                });
                Operand::Reg(dst)
            }
        }
    }

    fn write_place(&mut self, p: &Place, val: Operand) {
        match p {
            Place::Local(r, _) => self.emit(Inst::Copy { dst: *r, a: val }),
            Place::WinElem(param, idx, _) => self.emit(Inst::StWin {
                param: *param,
                index: *idx,
                val,
            }),
            Place::RegElem(arr, idx, _) => self.emit(Inst::StReg {
                arr: *arr,
                index: *idx,
                val,
            }),
            Place::HostElem(param, idx, _) => self.emit(Inst::StHost {
                param: *param,
                index: *idx,
                val,
            }),
            Place::ExtField(off, ty) => self.emit(Inst::StExt {
                offset: *off,
                ty: *ty,
                val,
            }),
        }
    }

    // ------------------------------------------------------------------
    // memcpy bulk operands
    // ------------------------------------------------------------------

    fn resolve_bulk(&mut self, e: &Expr) -> Option<Bulk> {
        match e {
            // Bare pointer parameter: `data`.
            Expr::Ident(name, _) => match self.lookup(name).cloned() {
                Some(Binding::WinParam {
                    param,
                    elem,
                    is_ptr,
                }) if is_ptr => Some(Bulk::Win(param, Operand::Const(Value::u32(0)), elem)),
                Some(Binding::HostParam { param, elem }) => {
                    Some(Bulk::Host(param, Operand::Const(Value::u32(0)), elem))
                }
                _ => {
                    if let Some(&arr) = self.reg_ids.get(name) {
                        let elem = self.globals_elem.registers[arr.0 as usize].elem;
                        return Some(Bulk::Reg(arr, Operand::Const(Value::u32(0)), elem));
                    }
                    None
                }
            },
            // `&accum[base]` or `&data[i]`.
            Expr::Unary {
                op: UnaryOp::AddrOf,
                expr,
                ..
            } => {
                let Expr::Index { base, index, .. } = &**expr else {
                    return None;
                };
                let Expr::Ident(name, _) = &**base else {
                    return None;
                };
                match self.lookup(name).cloned() {
                    Some(Binding::WinParam {
                        param,
                        elem,
                        is_ptr,
                    }) if is_ptr => {
                        let (idx, _) = self.lower_expr_as(index, ScalarType::U32);
                        Some(Bulk::Win(param, idx, elem))
                    }
                    Some(Binding::HostParam { param, elem }) => {
                        let (idx, _) = self.lower_expr_as(index, ScalarType::U32);
                        Some(Bulk::Host(param, idx, elem))
                    }
                    _ => {
                        let &arr = self.reg_ids.get(name)?;
                        let elem = self.globals_elem.registers[arr.0 as usize].elem;
                        let (idx, _) = self.lower_expr_as(index, ScalarType::U32);
                        Some(Bulk::Reg(arr, idx, elem))
                    }
                }
            }
            // Row of a 2-D array: `Cache[*idx]`.
            Expr::Index { base, index, .. } => {
                let Expr::Ident(name, _) = &**base else {
                    return None;
                };
                let &arr = self.reg_ids.get(name)?;
                let decl = self.globals_elem.registers[arr.0 as usize].clone();
                if decl.dims.len() != 2 {
                    return None;
                }
                let cols = decl.dims[1] as u64;
                let (row, _) = self.lower_expr_as(index, ScalarType::U32);
                let base_off = self.flatten_2d(row, Operand::Const(Value::u32(0)), cols);
                Some(Bulk::Reg(arr, base_off, decl.elem))
            }
            _ => None,
        }
    }

    fn bulk_index(&mut self, base: &Operand, k: usize) -> Operand {
        if k == 0 {
            return *base;
        }
        match base.as_const() {
            Some(c) => Operand::Const(Value::u32((c.bits() as usize + k) as u32)),
            None => {
                let dst = self.fresh(ScalarType::U32);
                self.emit(Inst::Bin {
                    dst,
                    op: BinOp::Add,
                    a: *base,
                    b: Operand::Const(Value::u32(k as u32)),
                });
                Operand::Reg(dst)
            }
        }
    }

    fn bulk_read(&mut self, b: &Bulk, k: usize) -> Operand {
        match b {
            Bulk::Win(param, base, elem) => {
                let idx = self.bulk_index(base, k);
                let dst = self.fresh(*elem);
                self.emit(Inst::LdWin {
                    dst,
                    param: *param,
                    index: idx,
                });
                Operand::Reg(dst)
            }
            Bulk::Reg(arr, base, elem) => {
                let idx = self.bulk_index(base, k);
                let dst = self.fresh(*elem);
                self.emit(Inst::LdReg {
                    dst,
                    arr: *arr,
                    index: idx,
                });
                Operand::Reg(dst)
            }
            Bulk::Host(param, base, elem) => {
                let idx = self.bulk_index(base, k);
                let dst = self.fresh(*elem);
                self.emit(Inst::LdHost {
                    dst,
                    param: *param,
                    index: idx,
                });
                Operand::Reg(dst)
            }
        }
    }

    fn bulk_write(&mut self, b: &Bulk, k: usize, val: Operand) {
        match b {
            Bulk::Win(param, base, _) => {
                let idx = self.bulk_index(base, k);
                self.emit(Inst::StWin {
                    param: *param,
                    index: idx,
                    val,
                });
            }
            Bulk::Reg(arr, base, _) => {
                let idx = self.bulk_index(base, k);
                self.emit(Inst::StReg {
                    arr: *arr,
                    index: idx,
                    val,
                });
            }
            Bulk::Host(param, base, _) => {
                let idx = self.bulk_index(base, k);
                self.emit(Inst::StHost {
                    param: *param,
                    index: idx,
                    val,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

fn place_ty(p: &Place) -> ScalarType {
    match p {
        Place::Local(_, t)
        | Place::WinElem(_, _, t)
        | Place::RegElem(_, _, t)
        | Place::HostElem(_, _, t)
        | Place::ExtField(_, t) => *t,
    }
}

fn bulk_ty(b: &Bulk) -> ScalarType {
    match b {
        Bulk::Win(_, _, t) | Bulk::Reg(_, _, t) | Bulk::Host(_, _, t) => *t,
    }
}

fn assign_binop(op: AssignOp) -> BinOp {
    match op {
        AssignOp::Add => BinOp::Add,
        AssignOp::Sub => BinOp::Sub,
        AssignOp::Mul => BinOp::Mul,
        AssignOp::Div => BinOp::Div,
        AssignOp::Rem => BinOp::Rem,
        AssignOp::And => BinOp::And,
        AssignOp::Or => BinOp::Or,
        AssignOp::Xor => BinOp::Xor,
        AssignOp::Shl => BinOp::Shl,
        AssignOp::Shr => BinOp::Shr,
        AssignOp::Assign => unreachable!("plain assignment handled separately"),
    }
}

fn ast_binop(op: BinaryOp) -> BinOp {
    match op {
        BinaryOp::Add => BinOp::Add,
        BinaryOp::Sub => BinOp::Sub,
        BinaryOp::Mul => BinOp::Mul,
        BinaryOp::Div => BinOp::Div,
        BinaryOp::Rem => BinOp::Rem,
        BinaryOp::And => BinOp::And,
        BinaryOp::Or => BinOp::Or,
        BinaryOp::Xor => BinOp::Xor,
        BinaryOp::Shl => BinOp::Shl,
        BinaryOp::Shr => BinOp::Shr,
        BinaryOp::Eq => BinOp::Eq,
        BinaryOp::Ne => BinOp::Ne,
        BinaryOp::Lt => BinOp::Lt,
        BinaryOp::Le => BinOp::Le,
        BinaryOp::Gt => BinOp::Gt,
        BinaryOp::Ge => BinOp::Ge,
        BinaryOp::LAnd | BinaryOp::LOr => unreachable!("logical ops handled separately"),
    }
}

fn bin_result_ty(op: BinOp, operand_ty: ScalarType) -> ScalarType {
    if op.is_comparison() {
        ScalarType::Bool
    } else {
        operand_ty
    }
}

fn int_literal_ty(v: u64, unsigned: bool) -> ScalarType {
    if unsigned || v > i64::MAX as u64 {
        if v > u32::MAX as u64 {
            ScalarType::U64
        } else {
            ScalarType::U32
        }
    } else if v > i32::MAX as u64 {
        ScalarType::I64
    } else {
        ScalarType::I32
    }
}

fn binop_values(op: BinaryOp, a: Value, b: Value) -> Option<Value> {
    if matches!(op, BinaryOp::LAnd) {
        return Some(Value::bool(a.is_truthy() && b.is_truthy()));
    }
    if matches!(op, BinaryOp::LOr) {
        return Some(Value::bool(a.is_truthy() || b.is_truthy()));
    }
    let vb = ast_binop(op);
    let common = usual_conversion(a.ty(), b.ty());
    Some(Value::binop(vb, a.cast(common), b.cast(common)))
}

/// Whether an expression contains assignments, inc/dec, or calls.
fn has_side_effects(e: &Expr) -> bool {
    match e {
        Expr::Assign { .. } | Expr::IncDec { .. } | Expr::Call { .. } => true,
        Expr::Binary { lhs, rhs, .. } => has_side_effects(lhs) || has_side_effects(rhs),
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => has_side_effects(expr),
        Expr::Index { base, index, .. } => has_side_effects(base) || has_side_effects(index),
        Expr::Ternary {
            cond, then, els, ..
        } => has_side_effects(cond) || has_side_effects(then) || has_side_effects(els),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_lang::frontend;

    fn lower_src(src: &str, cfg: &LoweringConfig) -> Module {
        let checked = frontend(src, "t.ncl").expect("frontend");
        lower(&checked, cfg).unwrap_or_else(|d| {
            panic!("lowering failed: {}", ncl_lang::diag::render(&d));
        })
    }

    #[test]
    fn simple_kernel_lowers() {
        let m = lower_src(
            "_net_ _out_ void inc(int *data) { data[0] += 1; }",
            &LoweringConfig::with_mask("inc", [1]),
        );
        let k = m.kernel("inc").unwrap();
        assert_eq!(k.blocks.len(), 1);
        assert!(k.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::StWin { .. })));
    }

    #[test]
    fn for_loop_unrolls_with_mask() {
        let m = lower_src(
            "_net_ _at_(\"s1\") int acc[64];\n\
             _net_ _out_ void k(int *data) {\n\
               for (unsigned i = 0; i < window.len; ++i) acc[i] += data[i];\n\
             }",
            &LoweringConfig::with_mask("k", [4]),
        );
        let k = m.kernel("k").unwrap();
        assert!(!k.has_loop());
        let stores = k.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::StReg { .. }))
            .count();
        assert_eq!(stores, 4);
    }

    #[test]
    fn for_loop_without_mask_emits_back_edge() {
        let m = lower_src(
            "_net_ _at_(\"s1\") int acc[64];\n\
             _net_ _out_ void k(int *data) {\n\
               for (unsigned i = 0; i < window.len; ++i) acc[i] += data[i];\n\
             }",
            &LoweringConfig::default(),
        );
        assert!(m.kernel("k").unwrap().has_loop());
    }

    #[test]
    fn unroll_limit_enforced() {
        let checked = frontend(
            "_net_ _at_(\"s1\") int acc[100000];\n\
             _net_ _out_ void k(int *data) {\n\
               for (unsigned i = 0; i < 100000; ++i) acc[i] = 0;\n\
             }",
            "t.ncl",
        )
        .unwrap();
        let err = lower(&checked, &LoweringConfig::with_mask("k", [1])).unwrap_err();
        assert!(err[0].message.contains("unroll limit"));
    }

    #[test]
    fn window_len_folds_to_mask() {
        let m = lower_src(
            "_net_ _out_ void k(int *data) { data[0] = window.len; }",
            &LoweringConfig::with_mask("k", [8]),
        );
        let k = m.kernel("k").unwrap();
        // No LdMeta(Len) should remain.
        assert!(!k.blocks.iter().any(|b| b.insts.iter().any(|i| matches!(
            i,
            Inst::LdMeta {
                field: MetaField::Len,
                ..
            }
        ))));
        assert!(k.blocks[0].insts.iter().any(|i| matches!(
            i,
            Inst::StWin {
                val: Operand::Const(v),
                ..
            } if v.bits() == 8
        )));
    }

    #[test]
    fn if_else_produces_diamond() {
        let m = lower_src(
            "_net_ _out_ void k(int *d) { if (d[0] > 0) { d[0] = 1; } else { d[0] = 2; } }",
            &LoweringConfig::with_mask("k", [1]),
        );
        let k = m.kernel("k").unwrap();
        assert_eq!(k.blocks.len(), 4); // entry, then, else, join
        assert!(matches!(k.blocks[0].term, Terminator::Br { .. }));
    }

    #[test]
    fn map_lookup_in_if() {
        let m = lower_src(
            r#"
            _net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 16> Idx;
            _net_ _at_("s1") bool Valid[16];
            _net_ _out_ void k(uint64_t key) {
                if (auto *i = Idx[key]) Valid[*i] = false;
            }
            "#,
            &LoweringConfig::with_mask("k", [1]),
        );
        let k = m.kernel("k").unwrap();
        assert!(k
            .blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| matches!(i, Inst::MapGet { .. }))));
    }

    #[test]
    fn memcpy_unrolls_between_window_and_registers() {
        let m = lower_src(
            "_net_ _at_(\"s1\") int acc[64];\n\
             _net_ _out_ void k(int *data) { memcpy(data, &acc[4], 16); }",
            &LoweringConfig::with_mask("k", [4]),
        );
        let k = m.kernel("k").unwrap();
        let ld = k.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::LdReg { .. }))
            .count();
        let st = k.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::StWin { .. }))
            .count();
        assert_eq!((ld, st), (4, 4));
    }

    #[test]
    fn memcpy_2d_row() {
        let m = lower_src(
            r#"
            _net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 4> Idx;
            _net_ _at_("s1") char Cache[4][8];
            _net_ _out_ void k(uint64_t key, char *val) {
                if (auto *i = Idx[key]) { memcpy(val, Cache[*i], 8); _reflect(); }
            }
            "#,
            &LoweringConfig::with_mask("k", [1, 8]),
        );
        let k = m.kernel("k").unwrap();
        let st_win: usize = k
            .blocks
            .iter()
            .map(|b| {
                b.insts
                    .iter()
                    .filter(|i| matches!(i, Inst::StWin { param: 1, .. }))
                    .count()
            })
            .sum();
        assert_eq!(st_win, 8);
        assert!(k.blocks.iter().any(|b| b.insts.iter().any(|i| matches!(
            i,
            Inst::Fwd {
                kind: FwdKind::Reflect,
                ..
            }
        ))));
    }

    #[test]
    fn incdec_prefix_value() {
        // `if (++count[0] == n)` — the comparison must see the new value.
        let m = lower_src(
            r#"
            _net_ _at_("s1") unsigned count[4];
            _net_ _ctrl_ _at_("s1") unsigned n;
            _net_ _out_ void k(int *d) {
                if (++count[0] == n) { _bcast(); } else { _drop(); }
            }
            "#,
            &LoweringConfig::with_mask("k", [1]),
        );
        let k = m.kernel("k").unwrap();
        // Pattern: LdReg, Add, StReg, LdCtrl, (casts), Eq, Br.
        let entry = &k.blocks[0];
        let add_pos = entry
            .insts
            .iter()
            .position(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .expect("add");
        let st_pos = entry
            .insts
            .iter()
            .position(|i| matches!(i, Inst::StReg { .. }))
            .expect("store");
        assert!(st_pos > add_pos);
    }

    #[test]
    fn fig4_lowers_without_loops() {
        let src = r#"
#define DATA_LEN 64
#define WIN_LEN 4
_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN/WIN_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;
_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}
"#;
        let m = lower_src(src, &LoweringConfig::with_mask("allreduce", [4]));
        let k = m.kernel("allreduce").unwrap();
        assert!(!k.has_loop());
        assert!(k.inst_count() > 20);
        assert_eq!(m.registers.len(), 2);
        assert_eq!(m.ctrls.len(), 1);
    }

    #[test]
    fn eager_logical_rhs_side_effect_rejected() {
        let checked = frontend(
            "_net_ _at_(\"s1\") unsigned c[1];\n\
             _net_ _out_ void k(int *d) { if (d[0] > 0 && ++c[0] > 1) { _drop(); } }",
            "t.ncl",
        )
        .unwrap();
        let err = lower(&checked, &LoweringConfig::with_mask("k", [1])).unwrap_err();
        assert!(err[0].message.contains("side-effect free"), "{err:?}");
    }

    #[test]
    fn constant_condition_folds_branch() {
        let m = lower_src(
            "_net_ _out_ void k(int *d) { if (2 > 1) { d[0] = 7; } else { d[0] = 9; } }",
            &LoweringConfig::with_mask("k", [1]),
        );
        let k = m.kernel("k").unwrap();
        assert_eq!(k.blocks.len(), 1);
        assert!(k.blocks[0].insts.iter().any(|i| matches!(
            i,
            Inst::StWin {
                val: Operand::Const(v),
                ..
            } if v.bits() == 7
        )));
    }

    #[test]
    fn here_lowered() {
        let m = lower_src(
            r#"_net_ _out_ void k(int *d) { if (_here("s1")) { _drop(); } }"#,
            &LoweringConfig::with_mask("k", [1]),
        );
        let k = m.kernel("k").unwrap();
        assert!(k.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Here { .. })));
    }
}
