//! IR type definitions.

use c3::{BinOp, Label, ScalarType, UnOp, Value};
use ncl_lang::ast::KernelKind;
use ncl_lang::diag::Span;
use ncl_lang::sema::{GlobalKind, ParamInfo, WindowExtLayout};
use std::fmt;

/// A virtual register. Registers are mutable scratch slots local to one
/// kernel execution (they become PHV metadata fields after codegen).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

/// A basic block index within a kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Index of a register-array global within [`Module::registers`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrId(pub u32);

/// Index of a control variable within [`Module::ctrls`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtrlId(pub u32);

/// Index of a map within [`Module::maps`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MapId(pub u32);

macro_rules! fmt_delegate {
    ($ty:ident, $prefix:literal) => {
        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

fmt_delegate!(RegId, "%");
fmt_delegate!(BlockId, "bb");
fmt_delegate!(ArrId, "arr");
fmt_delegate!(CtrlId, "ctrl");
fmt_delegate!(MapId, "map");

/// An instruction operand: a virtual register or an immediate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// Register value.
    Reg(RegId),
    /// Immediate constant.
    Const(Value),
}

impl Operand {
    /// The constant, if this operand is immediate.
    pub fn as_const(&self) -> Option<Value> {
        match self {
            Operand::Const(v) => Some(*v),
            Operand::Reg(_) => None,
        }
    }

    /// The register, if this operand is one.
    pub fn as_reg(&self) -> Option<RegId> {
        match self {
            Operand::Reg(r) => Some(*r),
            Operand::Const(_) => None,
        }
    }
}

impl From<Value> for Operand {
    fn from(v: Value) -> Self {
        Operand::Const(v)
    }
}

impl From<RegId> for Operand {
    fn from(r: RegId) -> Self {
        Operand::Reg(r)
    }
}

/// Builtin window/device metadata readable by kernels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetaField {
    /// `window.seq` (u32).
    Seq,
    /// `window.sender` (u16).
    Sender,
    /// `window.from` (u16).
    From,
    /// `window.len` — elements in chunk 0 (u16).
    Len,
    /// `window.nchunks` (u8).
    NChunks,
    /// `window.last` (bool).
    Last,
    /// An extended window-struct field at the given ext-block byte
    /// offset.
    Ext(u16, ScalarType),
    /// `location.id` — the executing device's id (u16).
    LocationId,
}

impl MetaField {
    /// The scalar type the field reads as.
    pub fn ty(self) -> ScalarType {
        match self {
            MetaField::Seq => ScalarType::U32,
            MetaField::Sender | MetaField::From | MetaField::Len | MetaField::LocationId => {
                ScalarType::U16
            }
            MetaField::NChunks => ScalarType::U8,
            MetaField::Last => ScalarType::Bool,
            MetaField::Ext(_, ty) => ty,
        }
    }
}

/// Forwarding decision kinds (mirrors [`c3::Forward`] without the label
/// payload, which lives on the instruction).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FwdKind {
    /// `_pass()` / `_pass(label)`.
    Pass,
    /// `_reflect()`.
    Reflect,
    /// `_bcast()`.
    Bcast,
    /// `_drop()`.
    Drop,
}

/// An IR instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    /// `dst = a <op> b` (operands share a type; comparisons yield bool).
    Bin {
        /// Destination register.
        dst: RegId,
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = <op> a`.
    Un {
        /// Destination register.
        dst: RegId,
        /// Operator.
        op: UnOp,
        /// Operand.
        a: Operand,
    },
    /// `dst = (ty) a`.
    Cast {
        /// Destination register.
        dst: RegId,
        /// Target type.
        ty: ScalarType,
        /// Operand.
        a: Operand,
    },
    /// `dst = cond ? a : b` (eager select; arms are pure).
    Select {
        /// Destination register.
        dst: RegId,
        /// Condition operand (bool).
        cond: Operand,
        /// Value when true.
        a: Operand,
        /// Value when false.
        b: Operand,
    },
    /// `dst = copy a` — materializes an operand (used by predication).
    Copy {
        /// Destination register.
        dst: RegId,
        /// Source operand.
        a: Operand,
    },
    /// Read element `index` of window-data parameter `param`.
    LdWin {
        /// Destination register.
        dst: RegId,
        /// Window parameter index (over non-`_ext_` params).
        param: u16,
        /// Element index within the chunk.
        index: Operand,
    },
    /// Write element `index` of window-data parameter `param`.
    StWin {
        /// Window parameter index.
        param: u16,
        /// Element index within the chunk.
        index: Operand,
        /// Value to store (already the element type).
        val: Operand,
    },
    /// Read builtin metadata.
    LdMeta {
        /// Destination register.
        dst: RegId,
        /// Which field.
        field: MetaField,
    },
    /// Write an extended window-struct field (travels with the window).
    StExt {
        /// Byte offset in the ext block.
        offset: u16,
        /// Field type.
        ty: ScalarType,
        /// Value to store.
        val: Operand,
    },
    /// Read switch register array element (outgoing kernels only).
    LdReg {
        /// Destination register.
        dst: RegId,
        /// Which array.
        arr: ArrId,
        /// Flattened element index.
        index: Operand,
    },
    /// Write switch register array element.
    StReg {
        /// Which array.
        arr: ArrId,
        /// Flattened element index.
        index: Operand,
        /// Value to store.
        val: Operand,
    },
    /// Read a control variable.
    LdCtrl {
        /// Destination register.
        dst: RegId,
        /// Which control variable.
        ctrl: CtrlId,
    },
    /// Map lookup: `found = key present`, `val = value or 0`.
    MapGet {
        /// Receives `true` on hit (bool).
        found: RegId,
        /// Receives the mapped value (or 0 on miss).
        val: RegId,
        /// Which map.
        map: MapId,
        /// Key operand.
        key: Operand,
    },
    /// Read element `index` of `_ext_` host parameter `param`
    /// (incoming kernels only).
    LdHost {
        /// Destination register.
        dst: RegId,
        /// Index over the kernel's `_ext_` parameters.
        param: u16,
        /// Element index.
        index: Operand,
    },
    /// Write element `index` of `_ext_` host parameter `param`.
    StHost {
        /// Index over the kernel's `_ext_` parameters.
        param: u16,
        /// Element index.
        index: Operand,
        /// Value to store.
        val: Operand,
    },
    /// Record a forwarding decision (last writer wins; default `_pass()`).
    Fwd {
        /// Decision kind.
        kind: FwdKind,
        /// Target label for `_pass("label")`.
        label: Option<Label>,
    },
    /// `dst = (current location == label)`; the versioning pass folds
    /// this to a constant per location module.
    Here {
        /// Destination register (bool).
        dst: RegId,
        /// The queried AND label.
        label: Label,
    },
}

impl Inst {
    /// The destination register, if the instruction defines one.
    pub fn dst(&self) -> Option<RegId> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::LdWin { dst, .. }
            | Inst::LdMeta { dst, .. }
            | Inst::LdReg { dst, .. }
            | Inst::LdCtrl { dst, .. }
            | Inst::LdHost { dst, .. }
            | Inst::Here { dst, .. } => Some(*dst),
            Inst::MapGet { .. } => None, // defines two; see `dsts`
            _ => None,
        }
    }

    /// All destination registers.
    pub fn dsts(&self) -> Vec<RegId> {
        match self {
            Inst::MapGet { found, val, .. } => vec![*found, *val],
            other => other.dst().into_iter().collect(),
        }
    }

    /// All operands read by the instruction.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Inst::Bin { a, b, .. } => vec![*a, *b],
            Inst::Un { a, .. } | Inst::Cast { a, .. } | Inst::Copy { a, .. } => vec![*a],
            Inst::Select { cond, a, b, .. } => vec![*cond, *a, *b],
            Inst::LdWin { index, .. } => vec![*index],
            Inst::StWin { index, val, .. } => vec![*index, *val],
            Inst::LdMeta { .. } | Inst::LdCtrl { .. } | Inst::Here { .. } => vec![],
            Inst::StExt { val, .. } => vec![*val],
            Inst::LdReg { index, .. } => vec![*index],
            Inst::StReg { index, val, .. } => vec![*index, *val],
            Inst::MapGet { key, .. } => vec![*key],
            Inst::LdHost { index, .. } => vec![*index],
            Inst::StHost { index, val, .. } => vec![*index, *val],
            Inst::Fwd { .. } => vec![],
        }
    }

    /// Rewrites every read operand through `f` (used by const/copy
    /// propagation).
    pub fn map_operands(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            Inst::Bin { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Inst::Un { a, .. } | Inst::Cast { a, .. } | Inst::Copy { a, .. } => *a = f(*a),
            Inst::Select { cond, a, b, .. } => {
                *cond = f(*cond);
                *a = f(*a);
                *b = f(*b);
            }
            Inst::LdWin { index, .. } => *index = f(*index),
            Inst::StWin { index, val, .. } => {
                *index = f(*index);
                *val = f(*val);
            }
            Inst::StExt { val, .. } => *val = f(*val),
            Inst::LdReg { index, .. } => *index = f(*index),
            Inst::StReg { index, val, .. } => {
                *index = f(*index);
                *val = f(*val);
            }
            Inst::MapGet { key, .. } => *key = f(*key),
            Inst::LdHost { index, .. } => *index = f(*index),
            Inst::StHost { index, val, .. } => {
                *index = f(*index);
                *val = f(*val);
            }
            Inst::LdMeta { .. } | Inst::LdCtrl { .. } | Inst::Here { .. } | Inst::Fwd { .. } => {}
        }
    }

    /// Whether the instruction has effects beyond defining registers
    /// (stores, forwarding). Pure instructions are eligible for DCE.
    pub fn has_effect(&self) -> bool {
        matches!(
            self,
            Inst::StWin { .. }
                | Inst::StExt { .. }
                | Inst::StReg { .. }
                | Inst::StHost { .. }
                | Inst::Fwd { .. }
        )
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Clone, PartialEq, Debug)]
pub struct Block {
    /// Instructions in order.
    pub insts: Vec<Inst>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

/// Block terminators.
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Two-way branch on a boolean operand.
    Br {
        /// Condition.
        cond: Operand,
        /// Target when true.
        then: BlockId,
        /// Target when false.
        els: BlockId,
    },
    /// Kernel exit.
    Ret,
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jmp(b) => vec![*b],
            Terminator::Br { then, els, .. } => vec![*then, *els],
            Terminator::Ret => vec![],
        }
    }
}

/// A kernel in IR form.
#[derive(Clone, PartialEq, Debug)]
pub struct KernelIr {
    /// Kernel name.
    pub name: String,
    /// Outgoing (switch) or incoming (host).
    pub kind: KernelKind,
    /// `_at_` restriction.
    pub at: Option<Label>,
    /// Parameters (window data + `_ext_`), from sema.
    pub params: Vec<ParamInfo>,
    /// Elements per window for each window parameter (the mask used for
    /// compilation; `window.len` folds to `mask[0]`).
    pub mask: Vec<u16>,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
    /// Number of virtual registers.
    pub nregs: u32,
    /// Register types (index = register id).
    pub reg_tys: Vec<ScalarType>,
    /// Declaration site in the source file ([`Module::file`]); default
    /// (all-zero) for hand-built IR.
    pub span: Span,
}

impl KernelIr {
    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Total instruction count (a code-size metric for E3/E4).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Whether the CFG contains a cycle (loops that failed to unroll).
    pub fn has_loop(&self) -> bool {
        // Iterative DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let n = self.blocks.len();
        let mut color = vec![Color::White; n];
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        color[0] = Color::Grey;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs = self.blocks[node].term.successors();
            if *next < succs.len() {
                let s = succs[*next].0 as usize;
                *next += 1;
                match color[s] {
                    Color::Grey => return true,
                    Color::White => {
                        color[s] = Color::Grey;
                        stack.push((s, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
            }
        }
        false
    }

    /// Blocks in reverse post-order from the entry (unreachable blocks
    /// excluded).
    pub fn rpo(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative post-order DFS.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs = self.blocks[node].term.successors();
            if *next < succs.len() {
                let s = succs[*next].0 as usize;
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(BlockId(node as u32));
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

/// A switch register-array declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct RegisterDecl {
    /// Source name.
    pub name: String,
    /// Placement, if `_at_` was given.
    pub at: Option<Label>,
    /// Element type.
    pub elem: ScalarType,
    /// Dimensions (empty = scalar; stored flattened).
    pub dims: Vec<usize>,
    /// Initial contents, flattened.
    pub init: Vec<Value>,
    /// Declaration site in the source file ([`Module::file`]).
    pub span: Span,
}

impl RegisterDecl {
    /// Flattened element count.
    pub fn len(&self) -> usize {
        self.dims.iter().product::<usize>().max(1)
    }

    /// True for zero-dimensional (scalar) registers.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A control-variable declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct CtrlDecl {
    /// Source name.
    pub name: String,
    /// Placement (required by sema).
    pub at: Option<Label>,
    /// Type.
    pub ty: ScalarType,
    /// Initial value.
    pub init: Value,
    /// Declaration site in the source file ([`Module::file`]).
    pub span: Span,
}

/// A map declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct MapDecl {
    /// Source name.
    pub name: String,
    /// Placement (required by sema).
    pub at: Option<Label>,
    /// Key type.
    pub key: ScalarType,
    /// Value type.
    pub value: ScalarType,
    /// Capacity.
    pub capacity: usize,
    /// Declaration site in the source file ([`Module::file`]).
    pub span: Span,
}

/// An IR module: all kernels and device state of one program, optionally
/// specialized to a single AND location by the versioning pass.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Module {
    /// Program name (diagnostics, emitted P4 preamble).
    pub name: String,
    /// Source file the module was lowered from (anchors the spans on
    /// kernels and declarations; empty for hand-built IR).
    pub file: String,
    /// `Some(label)` after versioning; `None` for the generic module.
    pub location: Option<Label>,
    /// Register arrays (stable indices across versions).
    pub registers: Vec<RegisterDecl>,
    /// Control variables.
    pub ctrls: Vec<CtrlDecl>,
    /// Maps.
    pub maps: Vec<MapDecl>,
    /// Kernels.
    pub kernels: Vec<KernelIr>,
    /// Window extension layout (shared with the runtime).
    pub window_ext: WindowExtLayout,
}

impl Module {
    /// Finds a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelIr> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Whether a placed declaration is present at this module's location.
    pub fn placed_here(&self, at: &Option<Label>) -> bool {
        match (at, &self.location) {
            (None, _) => true,
            (Some(_), None) => true, // generic module sees everything
            (Some(a), Some(l)) => a == l,
        }
    }

    /// Builds the global-kind view sema produced, for diagnostics.
    pub fn describe_globals(&self) -> Vec<(String, GlobalKind)> {
        let mut out = Vec::new();
        for r in &self.registers {
            out.push((
                r.name.clone(),
                GlobalKind::Register {
                    elem: r.elem,
                    dims: r.dims.clone(),
                    init: r.init.clone(),
                },
            ));
        }
        for c in &self.ctrls {
            out.push((
                c.name.clone(),
                GlobalKind::Ctrl {
                    ty: c.ty,
                    init: c.init,
                },
            ));
        }
        for m in &self.maps {
            out.push((
                m.name.clone(),
                GlobalKind::Map {
                    key: m.key,
                    value: m.value,
                    capacity: m.capacity,
                },
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Pretty printing (IR dumps for debugging and the compiler bench)
// ---------------------------------------------------------------------

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "module {} @ {}",
            self.name,
            self.location
                .as_ref()
                .map(|l| l.to_string())
                .unwrap_or_else(|| "<generic>".into())
        )?;
        for r in &self.registers {
            writeln!(f, "  register {} : {}x{}", r.name, r.elem, r.len())?;
        }
        for c in &self.ctrls {
            writeln!(f, "  ctrl {} : {}", c.name, c.ty)?;
        }
        for m in &self.maps {
            writeln!(
                f,
                "  map {} : {} -> {} [{}]",
                m.name, m.key, m.value, m.capacity
            )?;
        }
        for k in &self.kernels {
            write!(f, "{k}")?;
        }
        Ok(())
    }
}

impl fmt::Display for KernelIr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  kernel {} ({:?})", self.name, self.kind)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "    bb{i}:")?;
            for inst in &b.insts {
                writeln!(f, "      {inst:?}")?;
            }
            writeln!(f, "      {:?}", b.term)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_kernel(blocks: Vec<Block>) -> KernelIr {
        KernelIr {
            name: "k".into(),
            kind: KernelKind::Outgoing,
            at: None,
            params: vec![],
            mask: vec![],
            blocks,
            nregs: 0,
            reg_tys: vec![],
            span: Span::default(),
        }
    }

    #[test]
    fn loop_detection() {
        let looping = empty_kernel(vec![
            Block {
                insts: vec![],
                term: Terminator::Jmp(BlockId(1)),
            },
            Block {
                insts: vec![],
                term: Terminator::Br {
                    cond: Operand::Const(Value::bool(true)),
                    then: BlockId(0),
                    els: BlockId(2),
                },
            },
            Block {
                insts: vec![],
                term: Terminator::Ret,
            },
        ]);
        assert!(looping.has_loop());

        let acyclic = empty_kernel(vec![
            Block {
                insts: vec![],
                term: Terminator::Br {
                    cond: Operand::Const(Value::bool(true)),
                    then: BlockId(1),
                    els: BlockId(2),
                },
            },
            Block {
                insts: vec![],
                term: Terminator::Jmp(BlockId(2)),
            },
            Block {
                insts: vec![],
                term: Terminator::Ret,
            },
        ]);
        assert!(!acyclic.has_loop());
    }

    #[test]
    fn rpo_orders_entry_first() {
        let k = empty_kernel(vec![
            Block {
                insts: vec![],
                term: Terminator::Br {
                    cond: Operand::Const(Value::bool(true)),
                    then: BlockId(2),
                    els: BlockId(1),
                },
            },
            Block {
                insts: vec![],
                term: Terminator::Jmp(BlockId(3)),
            },
            Block {
                insts: vec![],
                term: Terminator::Jmp(BlockId(3)),
            },
            Block {
                insts: vec![],
                term: Terminator::Ret,
            },
        ]);
        let rpo = k.rpo();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn rpo_skips_unreachable() {
        let k = empty_kernel(vec![
            Block {
                insts: vec![],
                term: Terminator::Ret,
            },
            Block {
                insts: vec![],
                term: Terminator::Ret,
            },
        ]);
        assert_eq!(k.rpo(), vec![BlockId(0)]);
    }

    #[test]
    fn inst_operand_mapping() {
        let mut i = Inst::Bin {
            dst: RegId(0),
            op: BinOp::Add,
            a: Operand::Reg(RegId(1)),
            b: Operand::Const(Value::u32(2)),
        };
        i.map_operands(|o| match o {
            Operand::Reg(RegId(1)) => Operand::Const(Value::u32(7)),
            other => other,
        });
        assert_eq!(
            i.operands(),
            vec![Operand::Const(Value::u32(7)), Operand::Const(Value::u32(2))]
        );
    }

    #[test]
    fn effects_classification() {
        assert!(Inst::Fwd {
            kind: FwdKind::Drop,
            label: None
        }
        .has_effect());
        assert!(!Inst::Copy {
            dst: RegId(0),
            a: Operand::Const(Value::u32(1))
        }
        .has_effect());
        assert!(Inst::StReg {
            arr: ArrId(0),
            index: Operand::Const(Value::u32(0)),
            val: Operand::Const(Value::u32(0)),
        }
        .has_effect());
    }

    #[test]
    fn mapget_defines_two() {
        let i = Inst::MapGet {
            found: RegId(1),
            val: RegId(2),
            map: MapId(0),
            key: Operand::Const(Value::u64(5)),
        };
        assert_eq!(i.dsts(), vec![RegId(1), RegId(2)]);
        assert_eq!(i.dst(), None);
    }

    #[test]
    fn placed_here_semantics() {
        let mut m = Module::default();
        assert!(m.placed_here(&None));
        assert!(m.placed_here(&Some(Label::new("s1"))));
        m.location = Some(Label::new("s1"));
        assert!(m.placed_here(&Some(Label::new("s1"))));
        assert!(!m.placed_here(&Some(Label::new("s2"))));
        assert!(m.placed_here(&None));
    }
}
