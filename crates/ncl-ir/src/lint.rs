//! nclint — IR-level static analysis for switch-state safety.
//!
//! The paper's conformance stage (Fig. 6) rejects programs that cannot
//! be *mapped* to a PISA pipeline; this module rejects programs that
//! map fine but *misbehave* once concurrent windows, packet
//! interleaving, or NCP-R retransmissions enter the picture — the
//! semantic bug classes "Verifying In-Network Computing Systems for
//! Design Risks" found dominating real INC deployments. Three analyses
//! run over every outgoing kernel of a module:
//!
//! * **Switch-state hazards** ([`LintCode::NonAtomicRmw`],
//!   [`LintCode::CrossKernelAlias`]) — a read-modify-write chain on a
//!   `_net_` register array is atomic on RMT chips only when every
//!   access to the bank fuses into one stateful-ALU stage. A store
//!   whose value or reachability depends on a *different* array (or on
//!   a map lookup between the read and the write) spans stages, and a
//!   window arriving between the stages observes — and clobbers —
//!   intermediate state. Two kernels sharing a writable array at one
//!   location interleave the same way. The per-array update behaviour
//!   is classified on a small lattice (see [`UpdateKind`]); see
//!   DESIGN.md §4.8 for the full lattice.
//! * **Replay safety** ([`LintCode::ReplayUnsafe`],
//!   [`LintCode::ReplayUnsafeNoFilter`]) — NCP-R retransmits windows,
//!   so every `_net_` update must be *idempotent* (same window twice →
//!   same state), *replay-guarded* (control-dominated by the
//!   `window.replay == false` edge of a PR-2 replay filter), or it is
//!   unsafe under retransmission. With a replay filter configured the
//!   kernel claims exactly-once effects, so an unsafe update is a hard
//!   error; without one it is a warning (plain NCP never retransmits).
//! * **Value ranges** ([`LintCode::UnguardedOverflow`]) — 32-bit
//!   accumulators that grow monotonically with no reset guarded by
//!   their own value wrap silently at 2³².
//!
//! Findings surface as [`LintDiagnostic`]s carrying the declaration /
//! kernel spans threaded through lowering, so `nclc` renders them with
//! file:line carets like any frontend error.

use crate::ir::*;
use crate::passes::dominators;
use c3::{BinOp, ScalarType, UnOp};
use ncl_lang::ast::KernelKind;
use ncl_lang::diag::{Diagnostic, Severity, Span};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Stable identifier of a lint check (the `--lint allow=<code>` key).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LintCode {
    /// A register-array RMW chain cannot fuse into one stateful-ALU
    /// stage (cross-array dependency, map lookup on the read→write
    /// path, or micro-op budget overflow) and is therefore non-atomic
    /// under packet interleaving.
    NonAtomicRmw,
    /// Two kernels at the same location write a shared register array
    /// with at least one non-commutative update.
    CrossKernelAlias,
    /// A state update is neither idempotent nor replay-guarded while a
    /// replay filter is configured (exactly-once is claimed but not
    /// honoured).
    ReplayUnsafe,
    /// A state update would corrupt state under retransmission, but no
    /// replay filter is configured for the kernel.
    ReplayUnsafeNoFilter,
    /// A 32-bit accumulator grows without a value-guarded reset or
    /// mask; it wraps silently at 2³².
    UnguardedOverflow,
    /// The early resource estimator predicts the kernel exceeds the
    /// chip model (stages, SRAM, PHV, or stateful micro-ops).
    ResourceOverrun,
}

impl LintCode {
    /// All codes, for CLI help and exhaustive tests.
    pub const ALL: &'static [LintCode] = &[
        LintCode::NonAtomicRmw,
        LintCode::CrossKernelAlias,
        LintCode::ReplayUnsafe,
        LintCode::ReplayUnsafeNoFilter,
        LintCode::UnguardedOverflow,
        LintCode::ResourceOverrun,
    ];

    /// The kebab-case name used on the command line.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::NonAtomicRmw => "non-atomic-rmw",
            LintCode::CrossKernelAlias => "cross-kernel-alias",
            LintCode::ReplayUnsafe => "replay-unsafe",
            LintCode::ReplayUnsafeNoFilter => "replay-unsafe-no-filter",
            LintCode::UnguardedOverflow => "unguarded-overflow",
            LintCode::ResourceOverrun => "resource-overrun",
        }
    }

    /// Parses a kebab-case code name.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL.iter().copied().find(|c| c.name() == s)
    }

    /// Deny-by-default severity of the code.
    pub fn default_level(self) -> LintLevel {
        match self {
            LintCode::NonAtomicRmw | LintCode::CrossKernelAlias | LintCode::ReplayUnsafe => {
                LintLevel::Deny
            }
            LintCode::ReplayUnsafeNoFilter
            | LintCode::UnguardedOverflow
            | LintCode::ResourceOverrun => LintLevel::Warn,
        }
    }

    /// Whether the hazard this code describes manifests as a packet
    /// *schedule* — a loss/dup/reorder/interleave pattern the ncmc
    /// bounded model checker can search for. Every checkable verdict
    /// gets a machine-found counterexample or a bounded-absence
    /// certificate; `resource-overrun` is a mapping-feasibility finding
    /// with no execution semantics, so there is nothing to schedule.
    pub fn schedule_checkable(self) -> bool {
        !matches!(self, LintCode::ResourceOverrun)
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What happens when a lint fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LintLevel {
    /// Suppressed entirely.
    Allow,
    /// Reported, compilation proceeds.
    Warn,
    /// Reported, compilation fails.
    Deny,
}

/// Configuration for a lint run.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// Per-code level overrides (`--lint allow=...` / `warn=` / `deny=`).
    pub levels: BTreeMap<LintCode, LintLevel>,
    /// Kernels with an NCP-R replay filter configured (exactly-once
    /// switch effects are claimed for these).
    pub replay_filtered: BTreeSet<String>,
    /// Stateful micro-ops one fused RegisterAction may issue per pass
    /// (mirror of `pisa::ResourceModel::reg_accesses_per_pass`).
    pub reg_accesses_per_pass: usize,
}

impl LintConfig {
    /// Default config against a given stateful micro-op budget.
    pub fn with_budget(reg_accesses_per_pass: usize) -> Self {
        LintConfig {
            reg_accesses_per_pass,
            ..LintConfig::default()
        }
    }

    /// The effective level for a code.
    pub fn level(&self, code: LintCode) -> LintLevel {
        self.levels
            .get(&code)
            .copied()
            .unwrap_or_else(|| code.default_level())
    }
}

/// One lint finding, with enough structure for tooling to act on it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LintDiagnostic {
    /// Which check fired.
    pub code: LintCode,
    /// Resolved level (config applied).
    pub level: LintLevel,
    /// The kernel the finding is about.
    pub kernel: String,
    /// The state (register array) involved, when there is one.
    pub state: Option<String>,
    /// Human-readable explanation.
    pub message: String,
    /// Source anchor (kernel or declaration span).
    pub span: Span,
    /// Source file ([`Module::file`]).
    pub file: String,
}

impl LintDiagnostic {
    /// Whether this finding fails compilation.
    pub fn is_deny(&self) -> bool {
        self.level == LintLevel::Deny
    }

    /// Whether the ncmc model checker can adjudicate this finding with
    /// a concrete schedule (witness or bounded-absence certificate).
    pub fn schedule_checkable(&self) -> bool {
        self.code.schedule_checkable()
    }

    /// Converts to a renderable frontend diagnostic.
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic {
            severity: match self.level {
                LintLevel::Deny => Severity::Error,
                _ => Severity::Warning,
            },
            message: format!("[{}] {}", self.code, self.message),
            span: self.span,
            file: self.file.clone(),
        }
    }
}

impl std::fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_diagnostic())
    }
}

/// How a kernel updates one register array, on the hazard lattice
/// (DESIGN.md §4.8). Order matters: later variants are more hazardous.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum UpdateKind {
    /// Loads only.
    ReadOnly,
    /// Stores whose value/index never depend on switch state: replaying
    /// or reordering windows converges (last-writer-wins per cell).
    Overwrite,
    /// `a[i] op= e` with `op` commutative-associative and `e` state-free:
    /// safe under interleaving (any order sums the same) but not under
    /// replay.
    CommutativeRmw,
    /// A conditional reset/write of the array guarded by a comparison
    /// of the array's own value (the `++c == n → c = 0` counter
    /// pattern): atomic once fused into one stateful-ALU stage.
    GuardedReset,
    /// Anything else: order- and interleaving-sensitive.
    OrderSensitive,
}

/// Per-(kernel, array) access summary, exposed for tests and tooling.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayAccess {
    /// The kernel.
    pub kernel: String,
    /// The array name.
    pub array: String,
    /// Update classification.
    pub kind: UpdateKind,
    /// Whether any store is reachable on a path where the replay filter
    /// did not prove "first delivery" (i.e. not replay-guarded) and is
    /// not idempotent.
    pub replay_unsafe: bool,
    /// Stateful micro-ops (loads + stores) the kernel issues against
    /// the hottest *lane* of the array — accesses at distinct index
    /// expressions land in distinct banks after lane splitting, so only
    /// same-lane accesses compete for one RegisterAction pass.
    pub accesses: usize,
}

/// Runs every analysis over the module's outgoing kernels and returns
/// the findings (all levels; the caller filters `Allow`).
pub fn lint_module(module: &Module, cfg: &LintConfig) -> Vec<LintDiagnostic> {
    let mut out = Vec::new();
    let mut summaries: Vec<KernelSummary> = Vec::new();
    for k in &module.kernels {
        if k.kind != KernelKind::Outgoing || !module.placed_here(&k.at) {
            continue;
        }
        let s = summarize_kernel(module, k, cfg);
        hazard_findings(module, &s, cfg, &mut out);
        replay_findings(module, &s, cfg, &mut out);
        overflow_findings(module, &s, cfg, &mut out);
        summaries.push(s);
    }
    alias_findings(module, &summaries, cfg, &mut out);
    out.retain(|d| d.level != LintLevel::Allow);
    out.sort_by(|a, b| {
        (a.kernel.as_str(), a.code, &a.state).cmp(&(b.kernel.as_str(), b.code, &b.state))
    });
    out.dedup();
    out
}

/// Convenience: the per-array access summaries the hazard analysis
/// computes (used by witness tests to pin classifications).
pub fn access_summary(module: &Module, cfg: &LintConfig) -> Vec<ArrayAccess> {
    let mut out = Vec::new();
    for k in &module.kernels {
        if k.kind != KernelKind::Outgoing || !module.placed_here(&k.at) {
            continue;
        }
        let s = summarize_kernel(module, k, cfg);
        for (_arr, a) in s.arrays {
            out.push(a);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Kernel summaries
// ---------------------------------------------------------------------

/// Dataflow facts about one store instruction.
#[derive(Clone, Debug)]
struct StoreFact {
    block: BlockId,
    /// Arrays the stored value / index transitively read.
    val_deps: BTreeSet<u32>,
    /// Arrays the store's *reachability* (branch conditions on the path
    /// from the entry) depends on.
    guard_deps: BTreeSet<u32>,
    /// A map lookup sits on the value/index dependency path.
    mapget_on_path: bool,
    /// Stored value is `Ld(self) ⊕ state-free` for a commutative ⊕.
    commutative: bool,
    /// Value and index are free of any register-array reads.
    state_free: bool,
    /// Guard condition reads the stored array itself.
    self_guarded: bool,
}

struct ArrayFacts {
    loads: usize,
    stores: Vec<StoreFact>,
    /// Accesses grouped by canonical index form (see [`LaneKey`]): the
    /// backend's lane splitting gives each distinct lane its own bank,
    /// so micro-op budgets apply per lane, not per array.
    lane_accesses: BTreeMap<LaneKey, usize>,
}

/// Canonical form of a register-array index for lane grouping. Mirrors
/// the affine pattern `ncl-p4::lanes` recognizes (`base + k` with a
/// shared dynamic base, or distinct constants): accesses with different
/// keys end up in different physical banks after splitting. Accesses
/// the backend cannot split share a key only when they share a base
/// register, so this under-approximates per-bank pressure — the
/// resource estimator re-checks exactly on the split module.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum LaneKey {
    /// Constant element index.
    Const(u64),
    /// `base_vreg + offset`.
    Dyn(u32, u64),
}

fn lane_key(index: &Operand, defs: &HashMap<RegId, Option<&Inst>>) -> LaneKey {
    match index {
        Operand::Const(v) => LaneKey::Const(v.bits()),
        Operand::Reg(r) => match defs.get(r).copied().flatten() {
            Some(Inst::Bin {
                op: BinOp::Add,
                a,
                b,
                ..
            }) => match (a, b) {
                (Operand::Reg(base), Operand::Const(k))
                | (Operand::Const(k), Operand::Reg(base)) => LaneKey::Dyn(base.0, k.bits()),
                _ => LaneKey::Dyn(r.0, 0),
            },
            Some(Inst::Copy {
                a: Operand::Const(v),
                ..
            }) => LaneKey::Const(v.bits()),
            _ => LaneKey::Dyn(r.0, 0),
        },
    }
}

struct KernelSummary {
    name: String,
    span: Span,
    /// ArrId → facts (synthetic `__nclr_*` arrays excluded).
    facts: BTreeMap<u32, ArrayFacts>,
    /// ArrId → public summary.
    arrays: BTreeMap<u32, ArrayAccess>,
    /// Per-block replay state (see [`ReplayState`]).
    replay: Vec<ReplayState>,
}

/// Whether a block executes only on first delivery, only on replay, or
/// either.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ReplayState {
    Unknown,
    /// Reached only when `window.replay` is true.
    Replay,
    /// Reached only when `window.replay` is false (first delivery).
    FirstDelivery,
}

fn meet(a: Option<ReplayState>, b: ReplayState) -> ReplayState {
    match a {
        None => b,
        Some(x) if x == b => b,
        Some(_) => ReplayState::Unknown,
    }
}

/// Registers holding the replay flag (or its negation). `true` in the
/// map means "register is true ⇔ window is a replay".
fn replay_flags(module: &Module, k: &KernelIr) -> HashMap<RegId, bool> {
    // Single-definition map over the whole kernel.
    let mut defs: HashMap<RegId, Option<&Inst>> = HashMap::new();
    for b in &k.blocks {
        for inst in &b.insts {
            for d in inst.dsts() {
                defs.entry(d)
                    .and_modify(|e| *e = None) // multi-def: give up
                    .or_insert(Some(inst));
            }
        }
    }
    let single = |r: RegId| defs.get(&r).copied().flatten();
    // Seed: registers loaded from a `__nclr_seen_*` array.
    let is_seen_load = |r: RegId| -> bool {
        matches!(
            single(r),
            Some(Inst::LdReg { arr, .. })
                if module.registers[arr.0 as usize]
                    .name
                    .starts_with(c3::ncpr::REPLAY_SEEN_PREFIX)
        )
    };
    let mut flags: HashMap<RegId, bool> = HashMap::new();
    // Iterate to propagate through Copy / Not chains.
    let mut changed = true;
    while changed {
        changed = false;
        for b in &k.blocks {
            for inst in &b.insts {
                let derived: Option<(RegId, bool)> = match inst {
                    Inst::Bin { dst, op, a, b } if matches!(*op, BinOp::Ne | BinOp::Eq) => {
                        // `seen != 0` (replay) / `seen == 0` (first).
                        let mut found = None;
                        for (x, y) in [(a, b), (b, a)] {
                            if let (Operand::Reg(r), Some(v)) = (x, y.as_const()) {
                                if v.bits() == 0 && is_seen_load(*r) {
                                    found = Some((*dst, *op == BinOp::Ne));
                                }
                            }
                        }
                        found
                    }
                    Inst::Copy {
                        dst,
                        a: Operand::Reg(r),
                    } => flags.get(r).map(|p| (*dst, *p)),
                    Inst::Un {
                        dst,
                        op: UnOp::Not,
                        a: Operand::Reg(r),
                    } => flags.get(r).map(|p| (*dst, !*p)),
                    _ => None,
                };
                if let Some((dst, polarity)) = derived {
                    // Only trust single-def registers as stable flags.
                    if single(dst).is_some() && flags.insert(dst, polarity) != Some(polarity) {
                        changed = true;
                    }
                }
            }
        }
    }
    flags
}

/// Forward dataflow over the CFG computing each block's replay state.
fn replay_states(k: &KernelIr, flags: &HashMap<RegId, bool>) -> Vec<ReplayState> {
    let n = k.blocks.len();
    let mut state = vec![ReplayState::Unknown; n];
    if flags.is_empty() {
        return state;
    }
    let rpo = k.rpo();
    // Edge refinements from branches on a replay flag.
    for _ in 0..n + 1 {
        let mut incoming: Vec<Option<ReplayState>> = vec![None; n];
        incoming[rpo[0].0 as usize] = Some(ReplayState::Unknown);
        for &b in &rpo {
            let cur = match incoming[b.0 as usize] {
                Some(s) => s,
                None => state[b.0 as usize],
            };
            match &k.blocks[b.0 as usize].term {
                Terminator::Br {
                    cond: Operand::Reg(c),
                    then,
                    els,
                } if flags.contains_key(c) => {
                    let replay_then = flags[c]; // true-edge means replay?
                    let (t_state, e_state) = if replay_then {
                        (ReplayState::Replay, ReplayState::FirstDelivery)
                    } else {
                        (ReplayState::FirstDelivery, ReplayState::Replay)
                    };
                    // Refine with the branch; a block already known to
                    // be on one side stays there.
                    let refine = |edge: ReplayState| {
                        if cur == ReplayState::Unknown {
                            edge
                        } else {
                            cur
                        }
                    };
                    incoming[then.0 as usize] =
                        Some(meet(incoming[then.0 as usize], refine(t_state)));
                    incoming[els.0 as usize] =
                        Some(meet(incoming[els.0 as usize], refine(e_state)));
                }
                t => {
                    for s in t.successors() {
                        incoming[s.0 as usize] = Some(meet(incoming[s.0 as usize], cur));
                    }
                }
            }
        }
        let next: Vec<ReplayState> = (0..n)
            .map(|i| incoming[i].unwrap_or(ReplayState::Unknown))
            .collect();
        if next == state {
            break;
        }
        state = next;
    }
    state
}

fn summarize_kernel(module: &Module, k: &KernelIr, _cfg: &LintConfig) -> KernelSummary {
    let flags = replay_flags(module, k);
    let replay = replay_states(k, &flags);
    let synthetic = |arr: ArrId| {
        let n = &module.registers[arr.0 as usize].name;
        n.starts_with(c3::ncpr::REPLAY_SEEN_PREFIX) || n.starts_with(c3::ncpr::REPLAY_DUPS_PREFIX)
    };

    // Transitive register-array dependencies of each vreg, plus whether
    // a map lookup contributes. Fixpoint over all defs (non-SSA).
    let nregs = k.nregs as usize;
    let mut reg_deps: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nregs];
    let mut reg_map: Vec<bool> = vec![false; nregs];
    let mut changed = true;
    while changed {
        changed = false;
        for b in &k.blocks {
            for inst in &b.insts {
                let mut deps: BTreeSet<u32> = BTreeSet::new();
                let mut viamap = false;
                for o in inst.operands() {
                    if let Operand::Reg(r) = o {
                        deps.extend(reg_deps[r.0 as usize].iter().copied());
                        viamap |= reg_map[r.0 as usize];
                    }
                }
                if let Inst::LdReg { arr, .. } = inst {
                    if !synthetic(*arr) {
                        deps.insert(arr.0);
                    }
                }
                if matches!(inst, Inst::MapGet { .. }) {
                    viamap = true;
                }
                for d in inst.dsts() {
                    let slot = &mut reg_deps[d.0 as usize];
                    let before = slot.len();
                    slot.extend(deps.iter().copied());
                    if slot.len() != before {
                        changed = true;
                    }
                    if viamap && !reg_map[d.0 as usize] {
                        reg_map[d.0 as usize] = true;
                        changed = true;
                    }
                }
            }
        }
    }
    let operand_deps = |o: &Operand| -> (BTreeSet<u32>, bool) {
        match o {
            Operand::Reg(r) => (reg_deps[r.0 as usize].clone(), reg_map[r.0 as usize]),
            Operand::Const(_) => (BTreeSet::new(), false),
        }
    };

    // Branch conditions controlling each block: union of arrays read by
    // conditions on any entry path. Approximated via dominators — a
    // block inherits the guard deps of its immediate dominator plus the
    // dominator's branch condition if the dominator branches.
    let idom = dominators(k);
    let rpo = k.rpo();
    let mut guard_deps: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); k.blocks.len()];
    for &b in &rpo {
        if b.0 == 0 {
            continue;
        }
        if let Some(d) = idom[b.0 as usize] {
            let mut deps = guard_deps[d.0 as usize].clone();
            if let Terminator::Br {
                cond: Operand::Reg(c),
                ..
            } = &k.blocks[d.0 as usize].term
            {
                deps.extend(reg_deps[c.0 as usize].iter().copied());
            }
            guard_deps[b.0 as usize] = deps;
        }
    }

    // Single-def map for canonicalizing index expressions (non-SSA:
    // multiply-defined vregs map to None).
    let mut defs: HashMap<RegId, Option<&Inst>> = HashMap::new();
    for b in &k.blocks {
        for inst in &b.insts {
            for d in inst.dsts() {
                defs.entry(d)
                    .and_modify(|e| *e = None)
                    .or_insert(Some(inst));
            }
        }
    }

    // Collect per-array facts.
    let mut facts: BTreeMap<u32, ArrayFacts> = BTreeMap::new();
    for (bi, b) in k.blocks.iter().enumerate() {
        for inst in &b.insts {
            match inst {
                Inst::LdReg { arr, index, .. } if !synthetic(*arr) => {
                    let f = facts.entry(arr.0).or_insert_with(|| ArrayFacts {
                        loads: 0,
                        stores: Vec::new(),
                        lane_accesses: BTreeMap::new(),
                    });
                    f.loads += 1;
                    *f.lane_accesses.entry(lane_key(index, &defs)).or_default() += 1;
                }
                Inst::StReg { arr, index, val } if !synthetic(*arr) => {
                    let (vd, vm) = operand_deps(val);
                    let (id, im) = operand_deps(index);
                    let mut val_deps = vd;
                    val_deps.extend(id.iter().copied());
                    let state_free = val_deps.is_empty();
                    let commutative = is_commutative_rmw(k, arr.0, val, &reg_deps);
                    let gd = &guard_deps[bi];
                    let f = facts.entry(arr.0).or_insert_with(|| ArrayFacts {
                        loads: 0,
                        stores: Vec::new(),
                        lane_accesses: BTreeMap::new(),
                    });
                    *f.lane_accesses.entry(lane_key(index, &defs)).or_default() += 1;
                    f.stores.push(StoreFact {
                        block: BlockId(bi as u32),
                        val_deps,
                        guard_deps: gd.clone(),
                        mapget_on_path: vm || im,
                        commutative,
                        state_free,
                        self_guarded: gd.contains(&arr.0),
                    });
                }
                _ => {}
            }
        }
    }

    // Classify each array on the lattice.
    let mut arrays = BTreeMap::new();
    for (arr, f) in &facts {
        let name = module.registers[*arr as usize].name.clone();
        let mut kind = UpdateKind::ReadOnly;
        for s in &f.stores {
            kind = kind.max(classify_store(*arr, s));
        }
        let accesses = f.lane_accesses.values().copied().max().unwrap_or(0);
        let replay_unsafe = f.stores.iter().any(|s| {
            !store_idempotent(*arr, s) && replay[s.block.0 as usize] != ReplayState::FirstDelivery
        });
        arrays.insert(
            *arr,
            ArrayAccess {
                kernel: k.name.clone(),
                array: name,
                kind,
                replay_unsafe,
                accesses,
            },
        );
    }

    KernelSummary {
        name: k.name.clone(),
        span: k.span,
        facts,
        arrays,
        replay,
    }
}

/// `val` computes `Ld(arr) ⊕ state-free-expr` for a commutative-
/// associative ⊕ (possibly through a chain of such ops).
fn is_commutative_rmw(k: &KernelIr, arr: u32, val: &Operand, reg_deps: &[BTreeSet<u32>]) -> bool {
    // Single-def walk from the stored value.
    let mut defs: HashMap<RegId, Option<&Inst>> = HashMap::new();
    for b in &k.blocks {
        for inst in &b.insts {
            for d in inst.dsts() {
                defs.entry(d)
                    .and_modify(|e| *e = None)
                    .or_insert(Some(inst));
            }
        }
    }
    fn walk(
        r: RegId,
        arr: u32,
        defs: &HashMap<RegId, Option<&Inst>>,
        reg_deps: &[BTreeSet<u32>],
        depth: usize,
    ) -> bool {
        if depth > 16 {
            return false;
        }
        match defs.get(&r).copied().flatten() {
            Some(Inst::LdReg { arr: a, .. }) => a.0 == arr,
            Some(Inst::Bin {
                op: BinOp::Add | BinOp::Or | BinOp::And | BinOp::Xor,
                a,
                b,
                ..
            }) => {
                // One side reaches Ld(arr), the other is state-free.
                let side = |x: &Operand, y: &Operand| {
                    x.as_reg()
                        .map(|r| walk(r, arr, defs, reg_deps, depth + 1))
                        .unwrap_or(false)
                        && y.as_reg()
                            .map(|r| reg_deps[r.0 as usize].is_empty())
                            .unwrap_or(true)
                };
                side(a, b) || side(b, a)
            }
            _ => false,
        }
    }
    val.as_reg()
        .map(|r| walk(r, arr, &defs, reg_deps, 0))
        .unwrap_or(false)
}

/// Lattice position of one store.
fn classify_store(arr: u32, s: &StoreFact) -> UpdateKind {
    let depends_on_self = s.val_deps.contains(&arr);
    let depends_on_other =
        s.val_deps.iter().any(|d| *d != arr) || s.guard_deps.iter().any(|d| *d != arr);
    if depends_on_other || (depends_on_self && s.mapget_on_path) {
        return UpdateKind::OrderSensitive;
    }
    if s.state_free && !s.self_guarded {
        return UpdateKind::Overwrite;
    }
    if s.commutative && !s.self_guarded {
        return UpdateKind::CommutativeRmw;
    }
    if s.self_guarded && (s.state_free || s.commutative) {
        // Conditional reset/write guarded by the array's own value —
        // the `++c == n → c = 0` counter pattern, atomic once fused.
        return UpdateKind::GuardedReset;
    }
    UpdateKind::OrderSensitive
}

/// Re-executing the store with identical window input yields the same
/// final state.
fn store_idempotent(arr: u32, s: &StoreFact) -> bool {
    let _ = arr;
    s.state_free && s.guard_deps.is_empty() && !s.mapget_on_path_taints_idempotence()
}

impl StoreFact {
    /// Map lookups are replay-stable (the control plane owns entries),
    /// so a MapGet-derived index does not break idempotence.
    fn mapget_on_path_taints_idempotence(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn push(
    out: &mut Vec<LintDiagnostic>,
    cfg: &LintConfig,
    module: &Module,
    code: LintCode,
    kernel: &str,
    state: Option<String>,
    span: Span,
    message: String,
) {
    out.push(LintDiagnostic {
        code,
        level: cfg.level(code),
        kernel: kernel.to_string(),
        state,
        message,
        span,
        file: module.file.clone(),
    });
}

fn hazard_findings(
    module: &Module,
    s: &KernelSummary,
    cfg: &LintConfig,
    out: &mut Vec<LintDiagnostic>,
) {
    for (arr, f) in &s.facts {
        let decl = &module.registers[*arr as usize];
        let acc = &s.arrays[arr];
        // Multi-stage RMW: store depends on a different array, or on a
        // map lookup between the array's read and write.
        for st in &f.stores {
            let cross: Vec<&str> = st
                .val_deps
                .iter()
                .chain(st.guard_deps.iter())
                .filter(|d| **d != *arr)
                .map(|d| module.registers[*d as usize].name.as_str())
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            if !cross.is_empty() {
                push(
                    out,
                    cfg,
                    module,
                    LintCode::NonAtomicRmw,
                    &s.name,
                    Some(decl.name.clone()),
                    decl.span,
                    format!(
                        "kernel '{}' writes '{}' using the value of '{}': the read and \
                         the write land in different PISA stages, so a window arriving \
                         between them observes intermediate state",
                        s.name,
                        decl.name,
                        cross.join("', '")
                    ),
                );
                break;
            }
            if st.val_deps.contains(arr) && st.mapget_on_path {
                push(
                    out,
                    cfg,
                    module,
                    LintCode::NonAtomicRmw,
                    &s.name,
                    Some(decl.name.clone()),
                    decl.span,
                    format!(
                        "kernel '{}': read-modify-write of '{}' passes through a map \
                         lookup; match tables occupy their own stage, splitting the RMW \
                         across stages (non-atomic under packet interleaving)",
                        s.name, decl.name
                    ),
                );
                break;
            }
        }
        // Micro-op budget: all accesses to one bank must fuse into one
        // stateful-ALU pass.
        if cfg.reg_accesses_per_pass > 0
            && !f.stores.is_empty()
            && acc.accesses > cfg.reg_accesses_per_pass
        {
            push(
                out,
                cfg,
                module,
                LintCode::NonAtomicRmw,
                &s.name,
                Some(decl.name.clone()),
                decl.span,
                format!(
                    "kernel '{}' issues {} stateful micro-ops against one lane of '{}' \
                     but one RegisterAction pass supports {}; the excess spills into \
                     later stages, making the update sequence non-atomic",
                    s.name, acc.accesses, decl.name, cfg.reg_accesses_per_pass
                ),
            );
        }
    }
}

fn alias_findings(
    module: &Module,
    summaries: &[KernelSummary],
    cfg: &LintConfig,
    out: &mut Vec<LintDiagnostic>,
) {
    // arr → kernels writing it (with classification).
    let mut writers: BTreeMap<u32, Vec<(&KernelSummary, UpdateKind)>> = BTreeMap::new();
    for s in summaries {
        for (arr, acc) in &s.arrays {
            if acc.kind > UpdateKind::ReadOnly {
                writers.entry(*arr).or_default().push((s, acc.kind));
            }
        }
    }
    for (arr, ws) in writers {
        if ws.len() < 2 {
            continue;
        }
        let decl = &module.registers[arr as usize];
        // Concurrent writers are fine only when every write commutes
        // (pure commutative RMW from all sides).
        let all_commute = ws.iter().all(|(_, k)| *k == UpdateKind::CommutativeRmw);
        if all_commute {
            continue;
        }
        let names: Vec<&str> = ws.iter().map(|(s, _)| s.name.as_str()).collect();
        for (s, _) in &ws {
            push(
                out,
                cfg,
                module,
                LintCode::CrossKernelAlias,
                &s.name,
                Some(decl.name.clone()),
                decl.span,
                format!(
                    "register array '{}' is written by kernels {} at the same location \
                     with at least one non-commutative update; packets of different \
                     kernels interleave arbitrarily, racing on the shared state",
                    decl.name,
                    names
                        .iter()
                        .map(|n| format!("'{n}'"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            );
        }
    }
}

fn replay_findings(
    module: &Module,
    s: &KernelSummary,
    cfg: &LintConfig,
    out: &mut Vec<LintDiagnostic>,
) {
    let filtered = cfg.replay_filtered.contains(&s.name);
    for (arr, f) in &s.facts {
        let decl = &module.registers[*arr as usize];
        // An update is fine under retransmission if idempotent or
        // dominated by the first-delivery edge of the replay filter.
        let unsafe_stores: Vec<&StoreFact> = f
            .stores
            .iter()
            .filter(|st| {
                !store_idempotent(*arr, st)
                    && s.replay[st.block.0 as usize] != ReplayState::FirstDelivery
            })
            .collect();
        if unsafe_stores.is_empty() {
            continue;
        }
        if filtered {
            push(
                out,
                cfg,
                module,
                LintCode::ReplayUnsafe,
                &s.name,
                Some(decl.name.clone()),
                s.span,
                format!(
                    "kernel '{}' has a replay filter (exactly-once claimed) but updates \
                     '{}' on a path not guarded by `window.replay`; a retransmitted \
                     window re-executes the update and corrupts the state",
                    s.name, decl.name
                ),
            );
        } else {
            push(
                out,
                cfg,
                module,
                LintCode::ReplayUnsafeNoFilter,
                &s.name,
                Some(decl.name.clone()),
                s.span,
                format!(
                    "kernel '{}' updates '{}' non-idempotently with no replay filter \
                     configured; if this kernel is ever driven over NCP-R, \
                     retransmissions will corrupt the state (configure a replay filter \
                     and guard with `window.replay`)",
                    s.name, decl.name
                ),
            );
        }
    }
}

fn overflow_findings(
    module: &Module,
    s: &KernelSummary,
    cfg: &LintConfig,
    out: &mut Vec<LintDiagnostic>,
) {
    for (arr, f) in &s.facts {
        let decl = &module.registers[*arr as usize];
        if !matches!(
            decl.elem,
            ScalarType::U32 | ScalarType::I32 | ScalarType::U64 | ScalarType::I64
        ) {
            continue;
        }
        // A commutative additive accumulator with no reset store guarded
        // by the array's own value wraps unboundedly.
        let accumulates = f.stores.iter().any(|st| st.commutative);
        if !accumulates {
            continue;
        }
        let has_guarded_reset = f.stores.iter().any(|st| st.self_guarded && st.state_free);
        if has_guarded_reset {
            continue;
        }
        push(
            out,
            cfg,
            module,
            LintCode::UnguardedOverflow,
            &s.name,
            Some(decl.name.clone()),
            decl.span,
            format!(
                "kernel '{}' accumulates into {}-bit '{}' with no value-guarded reset; \
                 the accumulator wraps silently at 2^{}",
                s.name,
                decl.elem.bits(),
                decl.name,
                decl.elem.bits(),
            ),
        );
    }
}

/// Splits findings into (denied, warnings).
pub fn partition(diags: Vec<LintDiagnostic>) -> (Vec<LintDiagnostic>, Vec<LintDiagnostic>) {
    diags.into_iter().partition(|d| d.is_deny())
}

/// Renders findings Clang-style, one per line (header only; `nclc`
/// upgrades to caret snippets when it still holds the source).
pub fn render(diags: &[LintDiagnostic]) -> String {
    let mut out = String::new();
    let mut seen = HashSet::new();
    for d in diags {
        let line = d.to_string();
        if seen.insert(line.clone()) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, LoweringConfig, ReplayFilter};
    use ncl_lang::frontend;

    fn module_with(src: &str, cfg: &LoweringConfig) -> Module {
        let checked = frontend(src, "t.ncl").expect("frontend");
        let mut m = lower(&checked, cfg).expect("lower");
        crate::passes::optimize(&mut m);
        m
    }

    fn module(src: &str, kernel: &str, mask: &[u16]) -> Module {
        module_with(src, &LoweringConfig::with_mask(kernel, mask.to_vec()))
    }

    const ALLREDUCE: &str = r#"
_net_ _at_("s1") int accum[8] = {0};
_net_ _at_("s1") unsigned count[2] = {0};
_net_ _ctrl_ _at_("s1") unsigned nworkers = 2;
_net_ _out_ void k(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}
"#;

    #[test]
    fn allreduce_counter_pattern_is_hazard_free() {
        let m = module(ALLREDUCE, "k", &[4]);
        let cfg = LintConfig::default();
        let diags = lint_module(&m, &cfg);
        let (deny, _) = partition(diags);
        assert!(deny.is_empty(), "unexpected denies: {deny:?}");
    }

    #[test]
    fn allreduce_without_filter_warns_replay_unsafe() {
        let m = module(ALLREDUCE, "k", &[4]);
        let diags = lint_module(&m, &LintConfig::default());
        assert!(
            diags
                .iter()
                .any(|d| d.code == LintCode::ReplayUnsafeNoFilter && d.level == LintLevel::Warn),
            "{diags:?}"
        );
    }

    #[test]
    fn replay_guarded_updates_pass_with_filter() {
        // The PR-2 replay-aware allreduce shape: all mutations on the
        // first-delivery edge of `window.replay`.
        let src = r#"
_net_ _at_("s1") int accum[8] = {0};
_net_ _at_("s1") unsigned count[2] = {0};
_net_ _ctrl_ _at_("s1") unsigned nworkers = 2;
_net_ _out_ void k(int *data) {
    unsigned base = window.seq * window.len;
    if (window.replay) {
        _drop();
    } else {
        for (unsigned i = 0; i < window.len; ++i)
            accum[base + i] += data[i];
        if (++count[window.seq] % nworkers == 0) { _bcast(); } else { _drop(); }
    }
}
"#;
        let mut cfg = LoweringConfig::with_mask("k", vec![4]);
        cfg.replay_filters.insert(
            "k".into(),
            ReplayFilter {
                senders: 2,
                slots: 2,
            },
        );
        let m = module_with(src, &cfg);
        let mut lint_cfg = LintConfig::default();
        lint_cfg.replay_filtered.insert("k".into());
        let diags = lint_module(&m, &lint_cfg);
        assert!(
            !diags.iter().any(|d| matches!(
                d.code,
                LintCode::ReplayUnsafe | LintCode::ReplayUnsafeNoFilter
            )),
            "replay-guarded kernel flagged: {diags:?}"
        );
    }

    #[test]
    fn unguarded_update_with_filter_is_denied() {
        // Filter configured but the kernel ignores `window.replay`.
        let src = r#"
_net_ _at_("s1") unsigned count[2] = {0};
_net_ _out_ void k(int *data) { count[window.seq] += data[0]; _drop(); }
"#;
        let mut cfg = LoweringConfig::with_mask("k", vec![1]);
        cfg.replay_filters.insert(
            "k".into(),
            ReplayFilter {
                senders: 2,
                slots: 2,
            },
        );
        let m = module_with(src, &cfg);
        let mut lint_cfg = LintConfig::default();
        lint_cfg.replay_filtered.insert("k".into());
        let diags = lint_module(&m, &lint_cfg);
        assert!(
            diags
                .iter()
                .any(|d| d.code == LintCode::ReplayUnsafe && d.is_deny()),
            "{diags:?}"
        );
    }

    #[test]
    fn idempotent_overwrites_are_replay_safe() {
        let src = r#"
_net_ _at_("s1") bool Valid[4] = {false};
_net_ _out_ void k(unsigned *d) { Valid[window.seq] = true; _reflect(); }
"#;
        let m = module(src, "k", &[1]);
        let diags = lint_module(&m, &LintConfig::default());
        assert!(
            !diags.iter().any(|d| matches!(
                d.code,
                LintCode::ReplayUnsafe | LintCode::ReplayUnsafeNoFilter
            )),
            "{diags:?}"
        );
    }

    #[test]
    fn cross_array_rmw_is_non_atomic() {
        // Writes `mirror` from `counter`: Ld(counter) and St(mirror)
        // land in different stages.
        let src = r#"
_net_ _at_("s1") unsigned counter[1] = {0};
_net_ _at_("s1") unsigned mirror[1] = {0};
_net_ _out_ void k(unsigned *d) {
    counter[0] += d[0];
    mirror[0] = counter[0];
    _drop();
}
"#;
        let m = module(src, "k", &[1]);
        let diags = lint_module(&m, &LintConfig::default());
        let found: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::NonAtomicRmw && d.is_deny())
            .collect();
        assert!(
            found.iter().any(|d| d.state.as_deref() == Some("mirror")),
            "{diags:?}"
        );
    }

    #[test]
    fn cross_array_guard_is_non_atomic() {
        // Test-and-set across two arrays (classic TOCTOU).
        let src = r#"
_net_ _at_("s1") unsigned lock[1] = {0};
_net_ _at_("s1") unsigned owner[1] = {0};
_net_ _out_ void k(unsigned *d) {
    if (lock[0] == 0) { owner[0] = d[0]; }
    _drop();
}
"#;
        let m = module(src, "k", &[1]);
        let diags = lint_module(&m, &LintConfig::default());
        assert!(
            diags
                .iter()
                .any(|d| d.code == LintCode::NonAtomicRmw && d.state.as_deref() == Some("owner")),
            "{diags:?}"
        );
    }

    #[test]
    fn micro_op_budget_overflow_flagged() {
        // Six micro-ops against one cell (one lane), budget four: the
        // fused RegisterAction cannot issue them in one pass.
        let src = r#"
_net_ _at_("s1") unsigned a[8] = {0};
_net_ _out_ void k(unsigned *d) {
    a[0] += d[0];
    a[0] += d[1];
    a[0] += d[2];
    _drop();
}
"#;
        let m = module(src, "k", &[3]);
        let cfg = LintConfig {
            reg_accesses_per_pass: 4,
            ..LintConfig::default()
        };
        let diags = lint_module(&m, &cfg);
        assert!(
            diags
                .iter()
                .any(|d| d.code == LintCode::NonAtomicRmw && d.message.contains("micro-ops")),
            "{diags:?}"
        );
        // Within budget: no finding.
        let cfg = LintConfig {
            reg_accesses_per_pass: 8,
            ..LintConfig::default()
        };
        let diags = lint_module(&m, &cfg);
        assert!(
            !diags.iter().any(|d| d.code == LintCode::NonAtomicRmw),
            "{diags:?}"
        );
    }

    #[test]
    fn distinct_lanes_do_not_pool_micro_ops() {
        // Accesses at distinct constant indices split into per-element
        // banks (the backend's lane pass), so they never compete for
        // one RegisterAction: no budget finding even at budget 2.
        let src = r#"
_net_ _at_("s1") unsigned a[8] = {0};
_net_ _out_ void k(unsigned *d) {
    a[0] += d[0];
    a[1] += d[0];
    a[2] += d[0];
    _drop();
}
"#;
        let m = module(src, "k", &[1]);
        let diags = lint_module(&m, &LintConfig::with_budget(2));
        assert!(
            !diags
                .iter()
                .any(|d| d.code == LintCode::NonAtomicRmw && d.message.contains("micro-ops")),
            "{diags:?}"
        );
        // The lane-split allreduce pattern stays clean under the real
        // default budget even at width 4.
        let m = module(ALLREDUCE, "k", &[4]);
        let diags = lint_module(&m, &LintConfig::with_budget(4));
        let (deny, _) = partition(diags);
        assert!(deny.is_empty(), "{deny:?}");
    }

    #[test]
    fn cross_kernel_alias_flagged() {
        let src = r#"
_net_ _at_("s1") unsigned shared[1] = {0};
_net_ _out_ void writer(unsigned *d) { shared[0] = d[0]; _drop(); }
_net_ _out_ void adder(unsigned *d) { shared[0] += d[0]; _drop(); }
"#;
        let mut cfg = LoweringConfig::with_mask("writer", vec![1]);
        cfg.masks.insert("adder".into(), vec![1]);
        let m = module_with(src, &cfg);
        let diags = lint_module(&m, &LintConfig::default());
        assert!(
            diags
                .iter()
                .any(|d| d.code == LintCode::CrossKernelAlias && d.is_deny()),
            "{diags:?}"
        );
    }

    #[test]
    fn commutative_cross_kernel_writes_allowed() {
        let src = r#"
_net_ _at_("s1") unsigned shared[1] = {0};
_net_ _out_ void a1(unsigned *d) { shared[0] += d[0]; _drop(); }
_net_ _out_ void a2(unsigned *d) { shared[0] += d[0]; _drop(); }
"#;
        let mut cfg = LoweringConfig::with_mask("a1", vec![1]);
        cfg.masks.insert("a2".into(), vec![1]);
        let m = module_with(src, &cfg);
        let diags = lint_module(&m, &LintConfig::default());
        assert!(
            !diags.iter().any(|d| d.code == LintCode::CrossKernelAlias),
            "{diags:?}"
        );
    }

    #[test]
    fn unguarded_accumulator_warns_overflow() {
        let src = r#"
_net_ _at_("s1") unsigned total[1] = {0};
_net_ _out_ void k(unsigned *d) { total[0] += d[0]; _drop(); }
"#;
        let m = module(src, "k", &[1]);
        let diags = lint_module(&m, &LintConfig::default());
        assert!(
            diags
                .iter()
                .any(|d| d.code == LintCode::UnguardedOverflow && !d.is_deny()),
            "{diags:?}"
        );
    }

    #[test]
    fn guarded_reset_suppresses_overflow_warning() {
        let m = module(ALLREDUCE, "k", &[4]);
        let diags = lint_module(&m, &LintConfig::default());
        // `count` resets under its own guard — no overflow warning for
        // it (accum still warns: it grows unboundedly).
        assert!(
            !diags
                .iter()
                .any(|d| d.code == LintCode::UnguardedOverflow
                    && d.state.as_deref() == Some("count")),
            "{diags:?}"
        );
    }

    #[test]
    fn allow_level_suppresses() {
        let src = r#"
_net_ _at_("s1") unsigned counter[1] = {0};
_net_ _at_("s1") unsigned mirror[1] = {0};
_net_ _out_ void k(unsigned *d) {
    counter[0] += d[0];
    mirror[0] = counter[0];
    _drop();
}
"#;
        let m = module(src, "k", &[1]);
        let mut cfg = LintConfig::default();
        cfg.levels.insert(LintCode::NonAtomicRmw, LintLevel::Allow);
        let diags = lint_module(&m, &cfg);
        assert!(
            !diags.iter().any(|d| d.code == LintCode::NonAtomicRmw),
            "{diags:?}"
        );
    }

    #[test]
    fn code_names_roundtrip() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::parse(c.name()), Some(*c));
        }
        assert_eq!(LintCode::parse("nope"), None);
    }

    #[test]
    fn diagnostics_carry_spans_and_file() {
        let src = r#"
_net_ _at_("s1") unsigned counter[1] = {0};
_net_ _at_("s1") unsigned mirror[1] = {0};
_net_ _out_ void k(unsigned *d) {
    counter[0] += d[0];
    mirror[0] = counter[0];
    _drop();
}
"#;
        let m = module(src, "k", &[1]);
        let diags = lint_module(&m, &LintConfig::default());
        let d = diags
            .iter()
            .find(|d| d.code == LintCode::NonAtomicRmw)
            .expect("finding");
        assert_eq!(d.file, "t.ncl");
        assert!(d.span.line > 1, "span not threaded: {:?}", d.span);
        let rendered = d.to_diagnostic().render_snippet(src);
        assert!(rendered.contains("t.ncl:"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
    }

    #[test]
    fn summary_classifies_lattice() {
        let m = module(ALLREDUCE, "k", &[4]);
        let summary = access_summary(&m, &LintConfig::default());
        let count = summary
            .iter()
            .find(|a| a.array == "count")
            .expect("count summarized");
        assert_eq!(count.kind, UpdateKind::GuardedReset);
        let accum = summary
            .iter()
            .find(|a| a.array == "accum")
            .expect("accum summarized");
        assert_eq!(accum.kind, UpdateKind::CommutativeRmw);
    }
}
