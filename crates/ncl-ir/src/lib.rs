#![warn(missing_docs)]

//! # ncl-ir — intermediate representation and passes of the nclc compiler
//!
//! The middle of the compilation trajectory from the paper's Fig. 6:
//!
//! ```text
//! CheckedProgram ──lower──▶ Module ──passes──▶ Module (per location)
//!       (sema)               (IR)    │  conformance checking
//!                                    │  IR versioning (AND locations)
//!                                    │  unrolling / const-fold / DCE
//!                                    ▼
//!                              ncl-p4 codegen
//! ```
//!
//! The IR is a conventional control-flow graph of basic blocks over
//! *mutable virtual registers* (not SSA — predication-based PISA mapping
//! is simpler without φ nodes, and the paper's pipeline targets have no
//! join points anyway). Every instruction is explicit about its effect
//! class: pure ALU ops, window-data accesses, switch-memory accesses, map
//! lookups, host-memory accesses (incoming kernels), and forwarding
//! decisions.
//!
//! The crate also contains the **reference interpreter**
//! ([`interp::Interpreter`]), which executes kernels directly on windows
//! and switch state. The PISA pipeline produced by `ncl-p4` must agree
//! with the interpreter on every window — that differential property is
//! the compiler's correctness argument and is tested with proptest.
//!
//! For production window processing there is additionally the **compiled
//! fast path** ([`exec::CompiledKernel`]): the same semantics lowered to
//! a linear micro-op program executed against reusable scratch with zero
//! steady-state allocations. The interpreter stays the oracle; the fast
//! path must match it bit for bit (see `tests/fastpath_differential.rs`).

pub mod exec;
pub mod hash;
pub mod interp;
pub mod ir;
pub mod lint;
pub mod lower;
pub mod ncvec;
pub mod passes;
pub mod version;

pub use exec::{CompiledKernel, ExecScratch};
pub use interp::{HostMemory, Interpreter, SwitchState};
pub use ir::{
    ArrId, BlockId, CtrlId, Inst, KernelIr, MapId, MetaField, Module, Operand, RegId, Terminator,
};
pub use lint::{LintCode, LintConfig, LintDiagnostic, LintLevel};
pub use lower::{lower, LoweringConfig};
pub use version::version_modules;
