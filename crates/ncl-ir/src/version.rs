//! IR versioning (paper Fig. 6, "Versioning").
//!
//! *"This stage uses location info from kernel signatures and the AND to
//! create multiple IR modules, containing each location's kernels and
//! location struct implementation."*
//!
//! Given the generic module and the list of switch locations (label +
//! numeric id), this pass produces one module per location:
//!
//! * kernels `_at_` another location are dropped; location-less kernels
//!   are kept everywhere (SPMD);
//! * `_here(label)` folds to a boolean constant and `location.id` to the
//!   switch id, after which [`crate::passes::optimize`] re-folds and DCE strips the
//!   dead divergent branches — this implements the paper's "attempt to
//!   split location-less kernels by inspecting top-level branching on
//!   location struct fields";
//! * incoming kernels never appear in switch modules.

use crate::ir::*;
use crate::passes;
use c3::{Label, ScalarType, Value};
use ncl_lang::ast::KernelKind;

/// A switch location the program deploys to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocationInfo {
    /// The AND label.
    pub label: Label,
    /// The numeric id `location.id` reads as.
    pub id: u16,
}

/// Produces one specialized, optimized module per location.
pub fn version_modules(generic: &Module, locations: &[LocationInfo]) -> Vec<Module> {
    locations
        .iter()
        .map(|loc| {
            let mut m = generic.clone();
            m.location = Some(loc.label.clone());
            m.kernels.retain(|k| {
                k.kind == KernelKind::Outgoing
                    && match &k.at {
                        None => true,
                        Some(at) => at == &loc.label,
                    }
            });
            for k in &mut m.kernels {
                specialize_kernel(k, loc);
            }
            passes::optimize(&mut m);
            m
        })
        .collect()
}

fn specialize_kernel(k: &mut KernelIr, loc: &LocationInfo) {
    for b in &mut k.blocks {
        for inst in &mut b.insts {
            match inst {
                Inst::Here { dst, label } => {
                    *inst = Inst::Copy {
                        dst: *dst,
                        a: Operand::Const(Value::bool(*label == loc.label)),
                    };
                }
                Inst::LdMeta {
                    dst,
                    field: MetaField::LocationId,
                } => {
                    *inst = Inst::Copy {
                        dst: *dst,
                        a: Operand::Const(Value::new(ScalarType::U16, loc.id as u64)),
                    };
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, LoweringConfig};
    use ncl_lang::frontend;

    fn generic(src: &str, kernel: &str, mask: &[u16]) -> Module {
        let checked = frontend(src, "t.ncl").expect("frontend");
        lower(&checked, &LoweringConfig::with_mask(kernel, mask.to_vec())).expect("lower")
    }

    fn locs(labels: &[&str]) -> Vec<LocationInfo> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| LocationInfo {
                label: Label::new(l),
                id: i as u16 + 1,
            })
            .collect()
    }

    #[test]
    fn placed_kernels_filtered() {
        let src = r#"
_net_ _at_("s1") int a1[4];
_net_ _at_("s2") int a2[4];
_net_ _out_ _at_("s1") void k(int *d) { a1[0] += d[0]; }
_net_ _out_ _at_("s2") void k(int *d) { a2[0] -= d[0]; }
"#;
        let checked = frontend(src, "t.ncl").unwrap();
        let m = lower(&checked, &LoweringConfig::with_mask("k", vec![1])).unwrap();
        let versions = version_modules(&m, &locs(&["s1", "s2"]));
        assert_eq!(versions.len(), 2);
        assert_eq!(versions[0].kernels.len(), 1);
        assert_eq!(versions[1].kernels.len(), 1);
        // s1's version only touches a1; s2's only a2.
        let touches = |m: &Module, arr: u32| {
            m.kernels[0].blocks.iter().any(|b| {
                b.insts
                    .iter()
                    .any(|i| matches!(i, Inst::StReg { arr: a, .. } if a.0 == arr))
            })
        };
        assert!(touches(&versions[0], 0) && !touches(&versions[0], 1));
        assert!(touches(&versions[1], 1) && !touches(&versions[1], 0));
        assert!(passes::conformance(&versions[0]).is_empty());
        assert!(passes::conformance(&versions[1]).is_empty());
    }

    #[test]
    fn spmd_kernel_splits_on_here() {
        let src = r#"
_net_ _out_ void k(int *d) {
    if (_here("agg")) { d[0] += 1; } else { d[0] -= 1; }
}
"#;
        let m = generic(src, "k", &[1]);
        let versions = version_modules(&m, &locs(&["agg", "edge"]));
        // After specialization + optimization each version is
        // straight-line with the other branch stripped.
        for v in &versions {
            assert_eq!(v.kernels[0].blocks.len(), 1, "{}", v.kernels[0]);
        }
        let has_add = |m: &Module| {
            m.kernels[0].blocks[0].insts.iter().any(
                |i| matches!(i, Inst::Bin { op: c3::BinOp::Add, b: Operand::Const(v), .. } if v.bits() == 1),
            )
        };
        assert!(has_add(&versions[0]));
        assert!(!has_add(&versions[1]));
    }

    #[test]
    fn location_id_folds() {
        let src = "_net_ _out_ void k(int *d) { d[0] = location.id; }";
        let m = generic(src, "k", &[1]);
        let versions = version_modules(&m, &locs(&["s1", "s2"]));
        let stored = |m: &Module| {
            m.kernels[0].blocks[0]
                .insts
                .iter()
                .find_map(|i| match i {
                    Inst::StWin {
                        val: Operand::Const(v),
                        ..
                    } => Some(v.bits()),
                    _ => None,
                })
                .expect("constant store")
        };
        assert_eq!(stored(&versions[0]), 1);
        assert_eq!(stored(&versions[1]), 2);
    }

    #[test]
    fn incoming_kernels_never_on_switches() {
        let src = "_net_ _out_ void k(int *d) { _drop(); }\n\
                   _net_ _in_ void r(int *d) {}";
        let checked = frontend(src, "t.ncl").unwrap();
        let mut cfg = LoweringConfig::with_mask("k", vec![1]);
        cfg.masks.insert("r".into(), vec![1]);
        let m = lower(&checked, &cfg).unwrap();
        let versions = version_modules(&m, &locs(&["s1"]));
        assert_eq!(versions[0].kernels.len(), 1);
        assert_eq!(versions[0].kernels[0].name, "k");
    }

    #[test]
    fn generic_module_unchanged() {
        let src = "_net_ _out_ void k(int *d) { d[0] += 1; }";
        let m = generic(src, "k", &[1]);
        let snapshot = m.clone();
        let _ = version_modules(&m, &locs(&["s1"]));
        assert_eq!(m, snapshot);
    }
}
