#![warn(missing_docs)]

//! # ncl-and — the Abstract Network Description
//!
//! The AND (paper §3.2) is the programmer's declarative view of their
//! application's functional components: an *overlay* of labelled hosts
//! and switches with logical connectivity. Kernels and switch memory
//! reference AND labels through `_at_("label")`; `_bcast()` targets the
//! overlay neighbours of the executing location; `_pass("label")`
//! forwards towards a labelled component.
//!
//! This crate provides:
//!
//! * [`parse`] — the AND file format (line-based, `#` comments):
//!
//!   ```text
//!   # AllReduce: workers around one ToR switch
//!   hosts  worker 4        # worker1..worker4
//!   switch s1
//!   link   worker* s1      # every worker to s1
//!   ```
//!
//! * [`Overlay`] — the validated overlay graph with label→id
//!   assignment (the ids `location.id` reads and `_pass(label)`
//!   encodes);
//! * [`embed`](Overlay::embed) — mapping the overlay onto a physical
//!   topology (the paper defers this to systems like HIRE; we implement
//!   a distance-minimizing greedy embedding for E7).

use c3::Label;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// The kind of an overlay node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AndKind {
    /// An end host.
    Host,
    /// A programmable switch.
    Switch,
}

/// One overlay node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AndNode {
    /// The AND label.
    pub label: Label,
    /// Host or switch.
    pub kind: AndKind,
    /// Numeric id (dense, assigned in declaration order per kind).
    pub id: u16,
}

/// A parsed and validated overlay.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Overlay {
    /// Nodes in declaration order.
    pub nodes: Vec<AndNode>,
    /// Undirected edges as node-index pairs.
    pub edges: Vec<(usize, usize)>,
}

/// AND parse/validation errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AndError {
    /// Malformed line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// Duplicate label.
    Duplicate {
        /// The label.
        label: String,
    },
    /// Edge references an unknown label.
    UnknownLabel {
        /// 1-based line number.
        line: usize,
        /// The label.
        label: String,
    },
    /// The overlay is not connected.
    Disconnected,
    /// Two hosts linked directly (windows are processed by on-path
    /// switches; host-host overlay edges bypass INC and are almost
    /// always a mistake).
    HostToHost {
        /// First host.
        a: String,
        /// Second host.
        b: String,
    },
    /// The overlay cannot embed into the physical topology.
    EmbedFailed {
        /// Why.
        reason: String,
    },
}

impl fmt::Display for AndError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AndError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            AndError::Duplicate { label } => write!(f, "duplicate label '{label}'"),
            AndError::UnknownLabel { line, label } => {
                write!(f, "line {line}: unknown label '{label}'")
            }
            AndError::Disconnected => write!(f, "overlay is not connected"),
            AndError::HostToHost { a, b } => write!(
                f,
                "hosts '{a}' and '{b}' are linked directly; windows need an \
                 on-path switch to be processed"
            ),
            AndError::EmbedFailed { reason } => write!(f, "embedding failed: {reason}"),
        }
    }
}

impl std::error::Error for AndError {}

/// Parses an AND file.
pub fn parse(source: &str) -> Result<Overlay, AndError> {
    let mut overlay = Overlay::default();
    let mut by_label: HashMap<String, usize> = HashMap::new();
    let mut next_host = 0u16;
    let mut next_switch = 0u16;
    let mut pending_links: Vec<(usize, String, String)> = Vec::new();

    let add_node = |overlay: &mut Overlay,
                    by_label: &mut HashMap<String, usize>,
                    label: String,
                    kind: AndKind,
                    next_host: &mut u16,
                    next_switch: &mut u16|
     -> Result<(), AndError> {
        if by_label.contains_key(&label) {
            return Err(AndError::Duplicate { label });
        }
        let id = match kind {
            AndKind::Host => {
                *next_host += 1;
                *next_host
            }
            AndKind::Switch => {
                *next_switch += 1;
                *next_switch
            }
        };
        by_label.insert(label.clone(), overlay.nodes.len());
        overlay.nodes.push(AndNode {
            label: Label::new(label),
            kind,
            id,
        });
        Ok(())
    };

    for (ln, raw) in source.lines().enumerate() {
        let line = ln + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut parts = text.split_whitespace();
        let cmd = parts.next().expect("nonempty");
        let args: Vec<&str> = parts.collect();
        match (cmd, args.as_slice()) {
            ("host", [name]) => add_node(
                &mut overlay,
                &mut by_label,
                name.to_string(),
                AndKind::Host,
                &mut next_host,
                &mut next_switch,
            )?,
            ("switch", [name]) => add_node(
                &mut overlay,
                &mut by_label,
                name.to_string(),
                AndKind::Switch,
                &mut next_host,
                &mut next_switch,
            )?,
            ("hosts", [prefix, count]) => {
                let n: usize = count.parse().map_err(|_| AndError::Syntax {
                    line,
                    message: format!("bad count '{count}'"),
                })?;
                for i in 1..=n {
                    add_node(
                        &mut overlay,
                        &mut by_label,
                        format!("{prefix}{i}"),
                        AndKind::Host,
                        &mut next_host,
                        &mut next_switch,
                    )?;
                }
            }
            ("link", [a, b]) => {
                pending_links.push((line, a.to_string(), b.to_string()));
            }
            _ => {
                return Err(AndError::Syntax {
                    line,
                    message: format!(
                        "expected 'host <name>', 'switch <name>', \
                         'hosts <prefix> <n>' or 'link <a> <b>', found '{text}'"
                    ),
                })
            }
        }
    }

    // Resolve links, expanding `prefix*` wildcards.
    for (line, a, b) in pending_links {
        let resolve = |pat: &str| -> Result<Vec<usize>, AndError> {
            if let Some(prefix) = pat.strip_suffix('*') {
                let matches: Vec<usize> = overlay
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| n.label.as_str().starts_with(prefix))
                    .map(|(i, _)| i)
                    .collect();
                if matches.is_empty() {
                    return Err(AndError::UnknownLabel {
                        line,
                        label: pat.to_string(),
                    });
                }
                Ok(matches)
            } else {
                by_label
                    .get(pat)
                    .map(|&i| vec![i])
                    .ok_or(AndError::UnknownLabel {
                        line,
                        label: pat.to_string(),
                    })
            }
        };
        for ai in resolve(&a)? {
            for bi in resolve(&b)? {
                if ai != bi {
                    overlay.edges.push((ai.min(bi), ai.max(bi)));
                }
            }
        }
    }
    overlay.edges.sort_unstable();
    overlay.edges.dedup();
    overlay.validate()?;
    Ok(overlay)
}

impl Overlay {
    /// Validates connectivity and the no-host-to-host rule.
    pub fn validate(&self) -> Result<(), AndError> {
        for &(a, b) in &self.edges {
            if self.nodes[a].kind == AndKind::Host && self.nodes[b].kind == AndKind::Host {
                return Err(AndError::HostToHost {
                    a: self.nodes[a].label.to_string(),
                    b: self.nodes[b].label.to_string(),
                });
            }
        }
        if self.nodes.len() > 1 {
            let mut seen = vec![false; self.nodes.len()];
            let mut q = VecDeque::from([0usize]);
            seen[0] = true;
            let mut count = 1;
            while let Some(x) = q.pop_front() {
                for &(a, b) in &self.edges {
                    let peer = if a == x {
                        b
                    } else if b == x {
                        a
                    } else {
                        continue;
                    };
                    if !seen[peer] {
                        seen[peer] = true;
                        count += 1;
                        q.push_back(peer);
                    }
                }
            }
            if count != self.nodes.len() {
                return Err(AndError::Disconnected);
            }
        }
        Ok(())
    }

    /// Finds a node by label.
    pub fn node(&self, label: &str) -> Option<&AndNode> {
        self.nodes.iter().find(|n| n.label.as_str() == label)
    }

    /// All switch nodes.
    pub fn switches(&self) -> impl Iterator<Item = &AndNode> {
        self.nodes.iter().filter(|n| n.kind == AndKind::Switch)
    }

    /// All host nodes.
    pub fn hosts(&self) -> impl Iterator<Item = &AndNode> {
        self.nodes.iter().filter(|n| n.kind == AndKind::Host)
    }

    /// Overlay neighbours of a node (the `_bcast()` fan-out set).
    pub fn neighbours(&self, label: &str) -> Vec<&AndNode> {
        let Some(idx) = self.nodes.iter().position(|n| n.label.as_str() == label) else {
            return vec![];
        };
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == idx {
                    Some(&self.nodes[b])
                } else if b == idx {
                    Some(&self.nodes[a])
                } else {
                    None
                }
            })
            .collect()
    }

    /// Label → numeric id map (for `_pass(label)` encoding).
    pub fn label_ids(&self) -> HashMap<Label, u16> {
        self.nodes
            .iter()
            .map(|n| {
                let wire = match n.kind {
                    AndKind::Host => n.id,
                    AndKind::Switch => n.id | 0x8000,
                };
                (n.label.clone(), wire)
            })
            .collect()
    }

    /// Embeds the overlay into a physical topology: assigns each overlay
    /// node a distinct physical node of the same kind, greedily
    /// minimizing the summed physical path length over overlay edges.
    ///
    /// Returns `overlay index → physical index`.
    pub fn embed(&self, phys: &PhysTopology) -> Result<Vec<usize>, AndError> {
        let want_switches = self.switches().count();
        let want_hosts = self.hosts().count();
        let have_switches = phys.nodes.iter().filter(|k| **k == AndKind::Switch).count();
        let have_hosts = phys.nodes.iter().filter(|k| **k == AndKind::Host).count();
        if want_switches > have_switches || want_hosts > have_hosts {
            return Err(AndError::EmbedFailed {
                reason: format!(
                    "overlay needs {want_hosts} hosts / {want_switches} switches; \
                     physical offers {have_hosts} / {have_switches}"
                ),
            });
        }
        let dist = phys.all_pairs_distances();
        let n = self.nodes.len();
        let mut assignment: Vec<Option<usize>> = vec![None; n];
        let mut used: HashSet<usize> = HashSet::new();
        // Order overlay nodes by degree (most constrained first).
        let mut order: Vec<usize> = (0..n).collect();
        let degree = |i: usize| {
            self.edges
                .iter()
                .filter(|&&(a, b)| a == i || b == i)
                .count()
        };
        order.sort_by_key(|&i| std::cmp::Reverse(degree(i)));
        for &ov in &order {
            let kind = self.nodes[ov].kind;
            // Choose the free physical node minimizing distance to the
            // already-placed neighbours.
            let mut best: Option<(u64, usize)> = None;
            for (pi, pk) in phys.nodes.iter().enumerate() {
                if *pk != kind || used.contains(&pi) {
                    continue;
                }
                let mut cost = 0u64;
                let mut feasible = true;
                for &(a, b) in &self.edges {
                    let peer = if a == ov {
                        b
                    } else if b == ov {
                        a
                    } else {
                        continue;
                    };
                    if let Some(pp) = assignment[peer] {
                        match dist[pi][pp] {
                            Some(d) => cost += d as u64,
                            None => {
                                feasible = false;
                                break;
                            }
                        }
                    }
                }
                if !feasible {
                    continue;
                }
                if best.map(|(c, _)| cost < c).unwrap_or(true) {
                    best = Some((cost, pi));
                }
            }
            match best {
                Some((_, pi)) => {
                    assignment[ov] = Some(pi);
                    used.insert(pi);
                }
                None => {
                    return Err(AndError::EmbedFailed {
                        reason: format!("no feasible physical node for '{}'", self.nodes[ov].label),
                    })
                }
            }
        }
        let mut assignment: Vec<usize> = assignment
            .into_iter()
            .map(|a| a.expect("assigned"))
            .collect();
        self.refine_embedding(phys, &dist, &mut assignment, &mut used);
        Ok(assignment)
    }

    /// Local search: relocate each overlay node to any free same-kind
    /// physical node when that lowers the total cost; iterate to a
    /// fixpoint (bounded).
    fn refine_embedding(
        &self,
        phys: &PhysTopology,
        dist: &[Vec<Option<u32>>],
        assignment: &mut [usize],
        used: &mut HashSet<usize>,
    ) {
        let node_cost = |ov: usize, at: usize, assignment: &[usize]| -> u64 {
            self.edges
                .iter()
                .filter_map(|&(a, b)| {
                    let peer = if a == ov {
                        b
                    } else if b == ov {
                        a
                    } else {
                        return None;
                    };
                    Some(dist[at][assignment[peer]].unwrap_or(u32::MAX) as u64)
                })
                .sum()
        };
        for _ in 0..16 {
            let mut improved = false;
            for ov in 0..self.nodes.len() {
                let kind = self.nodes[ov].kind;
                let cur = assignment[ov];
                let cur_cost = node_cost(ov, cur, assignment);
                let mut best = (cur_cost, cur);
                for (pi, pk) in phys.nodes.iter().enumerate() {
                    if *pk != kind || used.contains(&pi) {
                        continue;
                    }
                    let c = node_cost(ov, pi, assignment);
                    if c < best.0 {
                        best = (c, pi);
                    }
                }
                if best.1 != cur {
                    used.remove(&cur);
                    used.insert(best.1);
                    assignment[ov] = best.1;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }

    /// Total physical path length of an embedding (the E7 quality
    /// metric).
    pub fn embedding_cost(&self, phys: &PhysTopology, assignment: &[usize]) -> u64 {
        let dist = phys.all_pairs_distances();
        self.edges
            .iter()
            .map(|&(a, b)| dist[assignment[a]][assignment[b]].unwrap_or(u32::MAX) as u64)
            .sum()
    }
}

/// A physical topology for embedding experiments.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PhysTopology {
    /// Node kinds by index.
    pub nodes: Vec<AndKind>,
    /// Undirected edges.
    pub edges: Vec<(usize, usize)>,
}

impl PhysTopology {
    /// A k=2 spine-leaf fabric: `spines` spine switches, `leaves` leaf
    /// switches (full bipartite), `hosts_per_leaf` hosts per leaf.
    pub fn spine_leaf(spines: usize, leaves: usize, hosts_per_leaf: usize) -> Self {
        let mut t = PhysTopology::default();
        for _ in 0..spines {
            t.nodes.push(AndKind::Switch);
        }
        for l in 0..leaves {
            let leaf = t.nodes.len();
            t.nodes.push(AndKind::Switch);
            for s in 0..spines {
                t.edges.push((s, leaf));
            }
            let _ = l;
            for _ in 0..hosts_per_leaf {
                let h = t.nodes.len();
                t.nodes.push(AndKind::Host);
                t.edges.push((leaf, h));
            }
        }
        t
    }

    /// BFS hop distances between all node pairs.
    pub fn all_pairs_distances(&self) -> Vec<Vec<Option<u32>>> {
        let n = self.nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![vec![]; n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut out = vec![vec![None; n]; n];
        #[allow(clippy::needless_range_loop)] // `s` indexes two dimensions
        for s in 0..n {
            let mut q = VecDeque::from([s]);
            out[s][s] = Some(0);
            while let Some(x) = q.pop_front() {
                for &y in &adj[x] {
                    if out[s][y].is_none() {
                        out[s][y] = Some(out[s][x].expect("visited") + 1);
                        q.push_back(y);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALLREDUCE_AND: &str = "
# AllReduce: four workers around one ToR
hosts  worker 4
switch s1
link   worker* s1
";

    #[test]
    fn parse_allreduce_overlay() {
        let o = parse(ALLREDUCE_AND).unwrap();
        assert_eq!(o.hosts().count(), 4);
        assert_eq!(o.switches().count(), 1);
        assert_eq!(o.edges.len(), 4);
        assert_eq!(o.node("worker1").unwrap().kind, AndKind::Host);
        assert_eq!(o.node("s1").unwrap().kind, AndKind::Switch);
    }

    #[test]
    fn bcast_neighbours() {
        let o = parse(ALLREDUCE_AND).unwrap();
        let n = o.neighbours("s1");
        assert_eq!(n.len(), 4);
        assert!(n.iter().all(|x| x.kind == AndKind::Host));
    }

    #[test]
    fn label_ids_disjoint() {
        let o = parse(ALLREDUCE_AND).unwrap();
        let ids = o.label_ids();
        let mut seen: Vec<u16> = ids.values().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), ids.len());
        // Switch ids carry the wire bit.
        assert!(ids[&Label::new("s1")] & 0x8000 != 0);
    }

    #[test]
    fn kvs_two_tier() {
        let src = "
hosts  client 3
switch s1
host   server
link   client* s1
link   server s1
";
        let o = parse(src).unwrap();
        assert_eq!(o.hosts().count(), 4);
        assert_eq!(o.neighbours("s1").len(), 4);
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = parse("host a\nhost a").unwrap_err();
        assert!(matches!(err, AndError::Duplicate { .. }));
    }

    #[test]
    fn unknown_link_target_rejected() {
        let err = parse("host a\nswitch s\nlink a t").unwrap_err();
        assert!(matches!(err, AndError::UnknownLabel { .. }));
    }

    #[test]
    fn disconnected_rejected() {
        let err = parse("host a\nswitch s\nhost b\nlink a s").unwrap_err();
        assert_eq!(err, AndError::Disconnected);
    }

    #[test]
    fn host_to_host_rejected() {
        let err = parse("host a\nhost b\nlink a b").unwrap_err();
        assert!(matches!(err, AndError::HostToHost { .. }));
    }

    #[test]
    fn syntax_error_reported_with_line() {
        let err = parse("host a\nfrobnicate x").unwrap_err();
        assert!(matches!(err, AndError::Syntax { line: 2, .. }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let o = parse("# header\n\nhost a # trailing\nswitch s\nlink a s\n").unwrap();
        assert_eq!(o.nodes.len(), 2);
    }

    #[test]
    fn embed_into_spine_leaf() {
        let o = parse(ALLREDUCE_AND).unwrap();
        let phys = PhysTopology::spine_leaf(2, 4, 4);
        let assignment = o.embed(&phys).unwrap();
        // Kinds respected.
        for (ov, &pi) in assignment.iter().enumerate() {
            assert_eq!(o.nodes[ov].kind, phys.nodes[pi]);
        }
        // Distinct physical nodes.
        let mut a = assignment.clone();
        a.sort_unstable();
        a.dedup();
        assert_eq!(a.len(), assignment.len());
        // The greedy embedding should co-locate the workers under the
        // chosen switch: cost = #edges when all workers sit on the
        // switch's own leaf... with 4 hosts per leaf and the ToR mapped
        // to their leaf, every edge is 1 hop.
        let cost = o.embedding_cost(&phys, &assignment);
        assert_eq!(cost, 4, "expected 1 hop per worker, got cost {cost}");
    }

    #[test]
    fn embed_fails_when_too_small() {
        let o = parse(ALLREDUCE_AND).unwrap();
        let phys = PhysTopology::spine_leaf(1, 1, 2); // only 2 hosts
        assert!(matches!(o.embed(&phys), Err(AndError::EmbedFailed { .. })));
    }

    #[test]
    fn spine_leaf_distances() {
        let phys = PhysTopology::spine_leaf(2, 2, 1);
        let d = phys.all_pairs_distances();
        // Host under leaf A to host under leaf B: host-leaf-spine-leaf-host = 4.
        let hosts: Vec<usize> = phys
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == AndKind::Host)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(d[hosts[0]][hosts[1]], Some(4));
    }
}
