#![warn(missing_docs)]

//! # ncl — unified programming for in-network computing
//!
//! A from-scratch Rust reproduction of *"Don't You Worry 'Bout a Packet:
//! Unified Programming for In-Network Computing"* (HotNets '21): the
//! **Net Compute Language** (NCL), its **nclc** compiler targeting PISA
//! switch pipelines, the **Net Compute Protocol** (NCP), the **libncrt**
//! runtime, and the simulated substrates (PISA switch, discrete-event
//! network) the system is evaluated on.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | module | crate | what it is |
//! |---|---|---|
//! | [`core`] | `ncl-core` | compiler driver, runtime, deployment, apps |
//! | [`lang`] | `ncl-lang` | lexer, parser, semantic analysis |
//! | [`ir`] | `ncl-ir` | IR, passes, versioning, interpreter |
//! | [`p4`] | `ncl-p4` | lane split, if-conversion, stage allocation, P4 |
//! | [`model`] | `c3` | windows, masks, values, forwarding decisions |
//! | [`and`] | `ncl-and` | abstract network description + embedding |
//! | [`pisa`] | `pisa` | the switch-pipeline simulator |
//! | [`ncp`] | `ncp` | the window transport protocol |
//! | [`netsim`] | `netsim` | the discrete-event network simulator |
//! | [`nctel`] | `nctel` | metrics registry, hop records, traces, spans |
//! | [`ncsched`] | `ncsched` | multi-tenant admission, placement, upgrades |
//! | [`ncmc`] | `ncmc` | bounded model checker for kernel × protocol schedules |
//!
//! Start with [`core::nclc::compile`] and [`core::deploy::deploy`]; the
//! `examples/` directory walks through the paper's use cases.

pub use c3 as model;
pub use ncl_and as and;
pub use ncl_core as core;
pub use ncl_ir as ir;
pub use ncl_lang as lang;
pub use ncl_p4 as p4;
pub use ncmc;
pub use ncp;
pub use ncsched;
pub use nctel;
pub use netsim;
pub use pisa;
