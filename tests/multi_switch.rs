//! Multi-switch deployments: per-location kernel versions (`_at_`),
//! SPMD splitting on `_here()`, and `_pass(label)` routed forwarding —
//! the paper's Fig. 3c scenario where "different switches or hosts have
//! different roles".

use ncl::core::control::ControlPlane;
use ncl::core::deploy::deploy;
use ncl::core::nclc::{compile, CompileConfig};
use ncl::core::runtime::{NclHost, OutInvocation, TypedArray};
use ncl::model::{HostId, NodeId, ScalarType, Value};
use ncl::netsim::{HostApp, LinkSpec};
use std::collections::HashMap;

/// h1 — edge — agg — h2: the edge switch doubles values, the aggregate
/// switch accumulates a running total; both versions of the *same*
/// location-less kernel diverge via `_here()`.
#[test]
fn spmd_kernel_diverges_by_location() {
    let src = r#"
_net_ _at_("agg") int total[1] = {0};
_net_ _out_ void k(int *d) {
    if (_here("edge")) {
        d[0] = d[0] * 2;
    } else {
        total[0] += d[0];
    }
}
_net_ _in_ void recv(int *d, _ext_ int *out) { out[0] = d[0]; }
"#;
    let and = "host h1\nhost h2\nswitch edge\nswitch agg\n\
               link h1 edge\nlink edge agg\nlink agg h2\n";
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("k".into(), vec![1]);
    cfg.masks.insert("recv".into(), vec![1]);
    let program = compile(src, and, &cfg).expect("compiles");
    let kid = program.kernel_ids["k"];

    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    let mut sender = NclHost::new(&program);
    sender
        .out(OutInvocation {
            kernel: "k".into(),
            arrays: vec![TypedArray::from_i32(&[21])],
            dest: NodeId::Host(HostId(2)),
            start: 0,
            gap: 0,
        })
        .unwrap();
    apps.insert("h1".into(), Box::new(sender));
    let mut receiver = NclHost::new(&program);
    receiver
        .bind_incoming(&program, "k", "recv", &[(ScalarType::I32, 1)])
        .unwrap();
    apps.insert("h2".into(), Box::new(receiver));

    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    dep.net.run();

    // The edge doubled 21 → 42; the aggregate added it to its total and
    // passed it on.
    let h2 = dep.net.host_app::<NclHost>(HostId(2)).unwrap();
    assert_eq!(h2.windows_received, 1);
    assert_eq!(h2.memory(kid).unwrap().arrays[0][0], Value::i32(42));
    let agg = dep.switch("agg");
    let total = dep
        .net
        .switch_pipeline_mut(agg)
        .unwrap()
        .register_read("total", 0)
        .expect("total register");
    assert_eq!(total, Value::i32(42));
}

/// Two explicitly versioned kernels with the same name, one per switch
/// (`_at_`-restricted definitions, paper §4.1).
#[test]
fn versioned_kernels_with_same_name() {
    let src = r#"
_net_ _out_ _at_("edge") void k(int *d) { d[0] = d[0] + 100; }
_net_ _out_ _at_("agg") void k(int *d) { d[0] = d[0] + 1; }
_net_ _in_ void recv(int *d, _ext_ int *out) { out[0] = d[0]; }
"#;
    let and = "host h1\nhost h2\nswitch edge\nswitch agg\n\
               link h1 edge\nlink edge agg\nlink agg h2\n";
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("k".into(), vec![1]);
    cfg.masks.insert("recv".into(), vec![1]);
    let program = compile(src, and, &cfg).expect("compiles");
    let kid = program.kernel_ids["k"];

    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    let mut sender = NclHost::new(&program);
    sender
        .out(OutInvocation {
            kernel: "k".into(),
            arrays: vec![TypedArray::from_i32(&[0])],
            dest: NodeId::Host(HostId(2)),
            start: 0,
            gap: 0,
        })
        .unwrap();
    apps.insert("h1".into(), Box::new(sender));
    let mut receiver = NclHost::new(&program);
    receiver
        .bind_incoming(&program, "k", "recv", &[(ScalarType::I32, 1)])
        .unwrap();
    apps.insert("h2".into(), Box::new(receiver));
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    dep.net.run();
    let h2 = dep.net.host_app::<NclHost>(HostId(2)).unwrap();
    // 0 + 100 at the edge, then + 1 at the aggregate.
    assert_eq!(h2.memory(kid).unwrap().arrays[0][0], Value::i32(101));
}

/// `_pass(label)` redirects a window to a labelled component, away from
/// its nominal destination (the key-partitioned-cluster case of §4.3).
#[test]
fn pass_label_redirects() {
    let src = r#"
_net_ _out_ _at_("s1") void k(uint32_t *d) {
    if (d[0] > 100) { _pass("big"); }
}
_net_ _in_ void recv(uint32_t *d, _ext_ uint32_t *out, _ext_ uint32_t *n) {
    out[n[0]] = d[0];
    n[0] = n[0] + 1;
}
"#;
    let and = "host src\nhost small\nhost big\nswitch s1\n\
               link src s1\nlink small s1\nlink big s1\n";
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("k".into(), vec![1]);
    cfg.masks.insert("recv".into(), vec![1]);
    let program = compile(src, and, &cfg).expect("compiles");

    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    let mut sender = NclHost::new(&program);
    for v in [5u32, 500, 7, 700] {
        sender
            .out(OutInvocation {
                kernel: "k".into(),
                arrays: vec![TypedArray::from_u32(&[v])],
                dest: NodeId::Host(HostId(2)), // nominal: "small"
                start: 0,
                gap: 0,
            })
            .unwrap();
    }
    apps.insert("src".into(), Box::new(sender));
    for label in ["small", "big"] {
        let mut r = NclHost::new(&program);
        r.bind_incoming(
            &program,
            "k",
            "recv",
            &[(ScalarType::U32, 8), (ScalarType::U32, 1)],
        )
        .unwrap();
        apps.insert(label.into(), Box::new(r));
    }
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    dep.net.run();

    let kid = program.kernel_ids["k"];
    let small = dep.net.host_app::<NclHost>(dep.host("small")).unwrap();
    let big = dep.net.host_app::<NclHost>(dep.host("big")).unwrap();
    assert_eq!(small.windows_received, 2, "values ≤100 stay on course");
    assert_eq!(big.windows_received, 2, "values >100 diverted");
    let big_vals: Vec<u64> = (0..2)
        .map(|i| big.memory(kid).unwrap().arrays[0][i].bits())
        .collect();
    assert!(big_vals.contains(&500) && big_vals.contains(&700));
}

/// Per-location control variables: the same program deployed on two
/// switches keeps independent switch state.
#[test]
fn per_switch_state_is_independent() {
    let src = r#"
_net_ int seen[1] = {0};
_net_ _out_ void k(int *d) { seen[0] += 1; }
"#;
    let and = "host h1\nhost h2\nswitch sa\nswitch sb\n\
               link h1 sa\nlink sa sb\nlink sb h2\n";
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("k".into(), vec![1]);
    let program = compile(src, and, &cfg).expect("compiles");
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    let mut sender = NclHost::new(&program);
    for _ in 0..3 {
        sender
            .out(OutInvocation {
                kernel: "k".into(),
                arrays: vec![TypedArray::from_i32(&[1])],
                dest: NodeId::Host(HostId(2)),
                start: 0,
                gap: 0,
            })
            .unwrap();
    }
    apps.insert("h1".into(), Box::new(sender));
    apps.insert("h2".into(), Box::new(NclHost::new(&program)));
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    dep.net.run();
    // Location-less memory exists on all switches; modifications are
    // local (paper §4.1: "NCL makes no consistency guarantees").
    for label in ["sa", "sb"] {
        let sw = dep.switch(label);
        let seen = dep
            .net
            .switch_pipeline_mut(sw)
            .unwrap()
            .register_read("seen", 0)
            .unwrap();
        assert_eq!(seen, Value::i32(3), "{label}");
    }
    let _ = ControlPlane::new(program.switch("sa").unwrap());
}
