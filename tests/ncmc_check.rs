//! Integration tests for `ncmc` via the `core::mc` driver: scenario
//! construction from compiled programs, witness/certificate
//! adjudication for the shipped apps, shrink determinism under random
//! exploration orders, byte-stable corpus entries, corpus replay
//! against a deliberately broken kernel, and the deploy-time
//! model-check gate.
//!
//! Corpus files live in `tests/corpus/ncmc/*.schedule` (see the
//! retention policy in `tests/corpus/shared.proptest-regressions`).
//! Regenerate them after an intentional checker change with:
//!
//! ```text
//! cargo test --test ncmc_check mint_corpus -- --ignored
//! ```

use ncl::core::apps::{allreduce_source, kvs_source};
use ncl::core::deploy::{deploy_opts, DeployError, DeployOptions};
use ncl::core::mc::{self, McConfig, McItem};
use ncl::core::nclc::{compile, CompileConfig, CompiledProgram, LintCode, LintLevel, ReplayFilter};
use ncl::core::runtime::NclHost;
use ncl::ncmc::{
    corpus_entry, corpus_file_name, replay_violates, Outcome, Schedule, WitnessReport,
};
use ncl::netsim::HostApp;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

const AND: &str = "hosts worker 2\nswitch s1\nlink worker* s1\n";

// The flagged kernels the hand-written lint witnesses use
// (tests/lint_witness.rs) — the corpus schedules are minted on these.

const WRAPPING: &str = r#"
_net_ _at_("s1") unsigned total[1] = {0};
_net_ _out_ void tally(unsigned *data) {
    total[0] += data[0];
    _reflect();
}
"#;

const GUARDED: &str = r#"
_net_ _at_("s1") unsigned total[1] = {0};
_net_ _out_ void tally(unsigned *data) {
    if (total[0] > 1000) total[0] = 0;
    total[0] += data[0];
    _reflect();
}
"#;

const UNSAFE_ACCUM: &str = r#"
_net_ _at_("s1") unsigned total[4] = {0};
_net_ _out_ void tally(unsigned *data) {
    for (unsigned i = 0; i < window.len; ++i)
        total[i] += data[i];
    _reflect();
}
"#;

const ALIASED: &str = r#"
_net_ _at_("s1") unsigned shared[4] = {0};
_net_ _out_ void bump(unsigned *data) {
    shared[0] += data[0];
    _reflect();
}
_net_ _out_ void setv(unsigned *data) {
    shared[0] = data[0];
    _reflect();
}
"#;

const STALE_MIRROR: &str = r#"
_net_ _at_("s1") unsigned a[4] = {0};
_net_ _at_("s1") unsigned b[4] = {0};
_net_ _out_ void mirror(unsigned *data) {
    a[0] = b[0];
    b[0] = data[0];
    _reflect();
}
"#;

fn compile_allowing(src: &str, masks: &[(&str, Vec<u16>)]) -> CompiledProgram {
    let mut cfg = CompileConfig::default();
    for (k, m) in masks {
        cfg.masks.insert((*k).to_string(), m.clone());
    }
    for &c in LintCode::ALL {
        cfg.lint_levels.insert(c, LintLevel::Allow);
    }
    compile(src, AND, &cfg).expect("compiles with lints allowed")
}

/// The shipped AllReduce (Fig. 4), replay-filtered as deployed.
fn allreduce_program(filtered: bool) -> CompiledProgram {
    let src = allreduce_source(8, 4);
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![4]);
    cfg.masks.insert("result".into(), vec![4]);
    if filtered {
        cfg.replay_filters.insert(
            "allreduce".into(),
            ReplayFilter {
                senders: 4,
                slots: 4,
            },
        );
    } else {
        // Unfiltered accumulation is replay-hazardous by design: keep
        // compiling (the deploy gate is what must refuse it).
        cfg.lint_levels
            .insert(LintCode::ReplayUnsafeNoFilter, LintLevel::Warn);
    }
    compile(&src, AND, &cfg).expect("allreduce compiles")
}

/// The shipped KVS (Fig. 5).
fn kvs_program() -> CompiledProgram {
    let src = kvs_source(3, 4, 2);
    let and = "hosts client 2\nswitch s1\nhost server\nlink client* s1\nlink server s1\n";
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("query".into(), vec![1, 2, 1]);
    compile(&src, and, &cfg).expect("kvs compiles")
}

/// The four corpus scenarios: (file-kernel source, masks, code, kernel,
/// array).
type Scenario = (
    &'static str,
    Vec<(&'static str, Vec<u16>)>,
    LintCode,
    &'static str,
    &'static str,
);

fn corpus_scenarios() -> Vec<Scenario> {
    vec![
        (
            WRAPPING,
            vec![("tally", vec![1])],
            LintCode::UnguardedOverflow,
            "tally",
            "total",
        ),
        (
            UNSAFE_ACCUM,
            vec![("tally", vec![4])],
            LintCode::ReplayUnsafeNoFilter,
            "tally",
            "total",
        ),
        (
            ALIASED,
            vec![("bump", vec![1]), ("setv", vec![1])],
            LintCode::CrossKernelAlias,
            "bump",
            "shared",
        ),
        (
            STALE_MIRROR,
            vec![("mirror", vec![1])],
            LintCode::NonAtomicRmw,
            "mirror",
            "a",
        ),
    ]
}

fn adjudicate(program: &CompiledProgram, code: LintCode, kernel: &str, state: &str) -> McItem {
    mc::check_code(
        program,
        "s1",
        code,
        kernel,
        Some(state),
        &McConfig::default(),
    )
    .expect("scenario builds")
    .expect("schedule-checkable")
}

fn expect_witness(item: &McItem) -> WitnessReport {
    match &item.result.outcome {
        Outcome::Witness(w) => w.clone(),
        _ => panic!("expected a counterexample, got: {}", item.summary()),
    }
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/ncmc")
}

// ---------------------------------------------------------------------
// Shipped apps: both get bounded-absence convergence certificates.
// ---------------------------------------------------------------------

#[test]
fn allreduce_filtered_is_certified_convergent() {
    let program = allreduce_program(true);
    let report = mc::model_check_switch(&program, "s1", &McConfig::default()).expect("runs");
    let conv = report.convergence().expect("convergence item");
    assert!(
        conv.result.outcome.is_certificate(),
        "filtered allreduce must converge: {}",
        conv.summary()
    );
    assert!(report.conclusive(), "no check may hit the state cap");
    // The surviving unguarded-overflow warning on `accum` is real: the
    // checker finds the wrap schedule the lint predicted.
    let wrap = report
        .items
        .iter()
        .find(|i| i.code == Some(LintCode::UnguardedOverflow) && i.result.outcome.is_witness())
        .expect("overflow warning gets a machine witness");
    assert_eq!(expect_witness(wrap).deliveries, 2);
}

#[test]
fn kvs_is_certified_convergent() {
    let program = kvs_program();
    let report = mc::model_check_switch(&program, "s1", &McConfig::default()).expect("runs");
    let conv = report.convergence().expect("convergence item");
    assert!(
        conv.result.outcome.is_certificate(),
        "kvs must converge: {}",
        conv.summary()
    );
}

// ---------------------------------------------------------------------
// Shrink determinism: the canonical minimal witness is independent of
// the exploration order that discovered the (non-minimal) first one.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn shrunk_witness_independent_of_exploration_order(seed in any::<u64>()) {
        let program = compile_allowing(WRAPPING, &[("tally", vec![1])]);
        let base = adjudicate(&program, LintCode::UnguardedOverflow, "tally", "total");
        let canonical = expect_witness(&base).schedule.render();
        let cfg = McConfig {
            order_seed: Some(seed),
            ..McConfig::default()
        };
        let seeded = mc::check_code(
            &program, "s1", LintCode::UnguardedOverflow, "tally", Some("total"), &cfg,
        )
        .expect("scenario builds")
        .expect("checkable");
        let shuffled = expect_witness(&seeded).schedule.render();
        prop_assert_eq!(canonical, shuffled);
    }
}

// ---------------------------------------------------------------------
// Corpus: byte-stable entries, hash-deduped names, replay semantics.
// ---------------------------------------------------------------------

/// Every committed corpus entry is regenerated bit-for-bit from a fresh
/// model-checking run — file name (schedule-hash-keyed) and contents.
#[test]
fn corpus_entries_are_byte_stable() {
    let mut names = Vec::new();
    for (src, masks, code, kernel, state) in corpus_scenarios() {
        let program = compile_allowing(src, &masks);
        let item = adjudicate(&program, code, kernel, state);
        let w = expect_witness(&item);
        let name = corpus_file_name(Some(code), kernel, &w.schedule);
        let entry = corpus_entry("program@s1", Some(code), kernel, item.property, &w);
        let path = corpus_dir().join(&name);
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "corpus entry {} missing ({e}); regenerate with \
                 `cargo test --test ncmc_check mint_corpus -- --ignored`",
                path.display()
            )
        });
        assert_eq!(
            committed, entry,
            "corpus entry {name} drifted from the checker's output"
        );
        names.push(name);
    }
    names.sort();
    names.dedup();
    assert_eq!(names.len(), 4, "scenario witnesses must not collide");
}

/// Re-discovery under a shuffled exploration order mints the *same*
/// file name: corpus dedup is by schedule hash, not by discovery path.
#[test]
fn corpus_names_dedup_by_schedule_hash() {
    let program = compile_allowing(UNSAFE_ACCUM, &[("tally", vec![4])]);
    let code = LintCode::ReplayUnsafeNoFilter;
    let base = adjudicate(&program, code, "tally", "total");
    let cfg = McConfig {
        order_seed: Some(0xDEAD_BEEF),
        ..McConfig::default()
    };
    let seeded = mc::check_code(&program, "s1", code, "tally", Some("total"), &cfg)
        .expect("scenario builds")
        .expect("checkable");
    let a = corpus_file_name(Some(code), "tally", &expect_witness(&base).schedule);
    let b = corpus_file_name(Some(code), "tally", &expect_witness(&seeded).schedule);
    assert_eq!(a, b, "same minimal schedule must dedup to one file");
}

/// A committed schedule keeps failing on the kernel it was minted
/// against and does *not* fail on the fixed twin: the corpus is a
/// regression suite, not a souvenir.
#[test]
fn corpus_schedule_fails_on_broken_kernel_and_passes_on_fixed() {
    let broken = compile_allowing(WRAPPING, &[("tally", vec![1])]);
    let code = LintCode::UnguardedOverflow;
    let item = adjudicate(&broken, code, "tally", "total");
    let name = corpus_file_name(Some(code), "tally", &expect_witness(&item).schedule);
    let text = std::fs::read_to_string(corpus_dir().join(&name)).expect("committed entry");
    let schedule = Schedule::parse(&text).expect("parses");

    let cfg = McConfig::default();
    let (mut sys, check) = mc::scenario_for(&broken, "s1", code, "tally", Some("total"), &cfg)
        .expect("builds")
        .expect("checkable");
    assert!(
        replay_violates(&mut sys, &check, &schedule),
        "corpus schedule no longer breaks the flagged kernel"
    );

    // The value-guarded twin under the *identical* schedule: bounded.
    let fixed = compile_allowing(GUARDED, &[("tally", vec![1])]);
    let (mut sys, check) = mc::scenario_for(&fixed, "s1", code, "tally", Some("total"), &cfg)
        .expect("builds")
        .expect("checkable");
    assert!(
        !replay_violates(&mut sys, &check, &schedule),
        "guarded kernel must survive the broken kernel's schedule"
    );
}

/// Regenerates every committed corpus entry (run explicitly after an
/// intentional checker change; CI asserts byte-stability against the
/// committed files).
#[test]
#[ignore = "corpus minting tool, not a test: writes tests/corpus/ncmc"]
fn mint_corpus() {
    std::fs::create_dir_all(corpus_dir()).expect("corpus dir");
    for (src, masks, code, kernel, state) in corpus_scenarios() {
        let program = compile_allowing(src, &masks);
        let item = adjudicate(&program, code, kernel, state);
        let w = expect_witness(&item);
        let name = corpus_file_name(Some(code), kernel, &w.schedule);
        let entry = corpus_entry("program@s1", Some(code), kernel, item.property, &w);
        std::fs::write(corpus_dir().join(&name), entry).expect("write entry");
        println!("minted {name}");
    }
}

// ---------------------------------------------------------------------
// Deploy gate: a convergence witness refuses deployment; a certified
// program deploys with the reports on record.
// ---------------------------------------------------------------------

fn worker_apps(program: &CompiledProgram) -> HashMap<String, Box<dyn HostApp>> {
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=2 {
        apps.insert(format!("worker{w}"), Box::new(NclHost::new(program)));
    }
    apps
}

#[test]
fn deploy_gate_refuses_divergent_program() {
    let program = allreduce_program(false);
    let opts = DeployOptions {
        model_check: Some(McConfig::default()),
        ..DeployOptions::default()
    };
    match deploy_opts(&program, worker_apps(&program), opts) {
        Err(DeployError::ModelCheck {
            label, schedule, ..
        }) => {
            assert_eq!(label, "s1");
            assert!(
                schedule.lines().count() >= 2,
                "refusal must carry the counterexample schedule:\n{schedule}"
            );
        }
        Err(other) => panic!("expected ModelCheck refusal, got: {other}"),
        Ok(_) => panic!("unfiltered allreduce must not pass the model-check gate"),
    }
}

#[test]
fn deploy_gate_passes_certified_program_and_records_reports() {
    let program = allreduce_program(true);
    let opts = DeployOptions {
        model_check: Some(McConfig::default()),
        ..DeployOptions::default()
    };
    let dep = deploy_opts(&program, worker_apps(&program), opts).expect("certified deploys");
    assert_eq!(dep.mc_reports.len(), 1);
    let report = &dep.mc_reports[0];
    assert_eq!(report.location, "s1");
    assert!(report
        .convergence()
        .expect("convergence item")
        .result
        .outcome
        .is_certificate());
}
