//! Differential witnesses for every `ncl-lint` verdict.
//!
//! A static analyzer earns trust by showing its work: for each hazard
//! class this file compiles a *flagged* kernel (downgrading the lint so
//! the backend accepts it), drives the compiled pipeline through a
//! schedule that NCP-R retransmission or RMT packet interleaving can
//! produce, and demonstrates the state corruption the lint predicted —
//! then runs the *accepted* twin kernel under the identical schedule
//! and shows it stays consistent. The estimator's verdicts are
//! witnessed the other way around: its pre-mapping predictions are
//! checked against the actual PISA mapping on every example kernel.
//!
//! The hand-written schedules double as regression seeds for the ncmc
//! bounded model checker (§ncmc rediscovery below): for every flagged
//! kernel the checker must *rediscover* a counterexample at most as
//! long as the hand-written one (2 pipeline deliveries), and for every
//! accepted twin it must produce a bounded-absence certificate — the
//! static verdict, the hand-picked witness, and the exhaustive search
//! all agree.

use c3::{Chunk, HostId, KernelId, NodeId, Window};
use ncl::core::apps::{allreduce_source, kvs_source};
use ncl::core::mc::McConfig;
use ncl::core::nclc::{compile, CompileConfig, CompiledProgram, LintCode, LintLevel, NclcError};
use ncl::ncmc::Outcome;
use ncl_ir::lower::ReplayFilter;
use ncl_p4::codegen::encode_window_for_test;
use pisa::{Phv, Pipeline, ResourceModel};

const AND: &str = "hosts worker 2\nswitch s1\nlink worker* s1\n";

/// Compiles with the given masks, downgrading `allows` to `allow`.
fn compile_allowing(src: &str, masks: &[(&str, Vec<u16>)], allows: &[LintCode]) -> CompiledProgram {
    let mut cfg = CompileConfig::default();
    for (k, m) in masks {
        cfg.masks.insert((*k).to_string(), m.clone());
    }
    for &c in allows {
        cfg.lint_levels.insert(c, LintLevel::Allow);
    }
    compile(src, AND, &cfg).expect("compiles once the lint is allowed")
}

fn pipeline(program: &CompiledProgram) -> Pipeline {
    let compiled = program.switch("s1").expect("s1 compiled");
    Pipeline::load(compiled.pipeline.clone(), ResourceModel::default()).expect("loads")
}

/// Encodes a one-chunk window of u32 values for `kernel`.
fn window_u32(program: &CompiledProgram, kernel: &str, seq: u32, vals: &[u32]) -> Vec<u8> {
    let w = Window {
        kernel: KernelId(program.kernel_ids[kernel]),
        seq,
        sender: HostId(1),
        from: NodeId::Host(HostId(1)),
        last: false,
        chunks: vec![Chunk {
            offset: 0,
            data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
        }],
        ext: vec![],
    };
    encode_window_for_test(&w, program.checked.window_ext.size())
}

/// Sums every cell of every lane bank compiled from `array`.
fn state_sum(program: &CompiledProgram, pipe: &Pipeline, array: &str) -> u64 {
    let compiled = program.switch("s1").expect("s1");
    let mut sum = 0u64;
    for bank in &compiled.lane_banks[array] {
        let mut idx = 0;
        while let Some(v) = pipe.register_read(bank, idx) {
            sum = sum.wrapping_add(v.bits());
            idx += 1;
        }
    }
    sum
}

fn has_warning(program: &CompiledProgram, code: LintCode) -> bool {
    program.lint_warnings().any(|d| d.code == code)
}

fn denied_with(src: &str, masks: &[(&str, Vec<u16>)], code: LintCode) -> bool {
    let mut cfg = CompileConfig::default();
    for (k, m) in masks {
        cfg.masks.insert((*k).to_string(), m.clone());
    }
    match compile(src, AND, &cfg) {
        Err(NclcError::Lint { diagnostics, .. }) => diagnostics.iter().any(|d| d.code == code),
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Replay safety: retransmission corrupts unfiltered accumulators and
// leaves replay-guarded ones exactly-once.
// ---------------------------------------------------------------------

const UNSAFE_ACCUM: &str = r#"
_net_ _at_("s1") unsigned total[4] = {0};
_net_ _out_ void tally(unsigned *data) {
    for (unsigned i = 0; i < window.len; ++i)
        total[i] += data[i];
    _reflect();
}
"#;

/// NCP-R replay trace: the same window delivered twice double-counts on
/// the lint-flagged kernel...
#[test]
fn replay_witness_unfiltered_kernel_double_counts() {
    let program = compile_allowing(
        UNSAFE_ACCUM,
        &[("tally", vec![4])],
        &[LintCode::UnguardedOverflow],
    );
    assert!(has_warning(&program, LintCode::ReplayUnsafeNoFilter));

    let mut pipe = pipeline(&program);
    let pkt = window_u32(&program, "tally", 0, &[1, 2, 3, 4]);
    pipe.process(&pkt).expect("first delivery");
    let once = state_sum(&program, &pipe, "total");
    pipe.process(&pkt).expect("retransmission");
    let twice = state_sum(&program, &pipe, "total");
    assert_eq!(once, 10);
    // The witness: a retransmitted window re-executes the update.
    assert_eq!(twice, 20, "retransmission corrupted the accumulator");
}

/// ...and claiming exactly-once (configuring a replay filter) for that
/// same kernel is a hard error, not a warning.
#[test]
fn replay_witness_filter_on_oblivious_kernel_denied() {
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("tally".into(), vec![4]);
    cfg.replay_filters.insert(
        "tally".into(),
        ReplayFilter {
            senders: 4,
            slots: 4,
        },
    );
    match compile(UNSAFE_ACCUM, AND, &cfg) {
        Err(NclcError::Lint { diagnostics, .. }) => {
            assert!(diagnostics.iter().any(|d| d.code == LintCode::ReplayUnsafe));
        }
        other => panic!("expected replay-unsafe denial, got {:?}", other.is_ok()),
    }
}

/// The replay-guarded AllReduce under the identical retransmission
/// trace: the filter detects the duplicate and the guarded kernel does
/// not re-accumulate. Zero `allow` annotations.
#[test]
fn replay_witness_guarded_allreduce_is_exactly_once() {
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![4]);
    cfg.masks.insert("result".into(), vec![4]);
    cfg.replay_filters.insert(
        "allreduce".into(),
        ReplayFilter {
            senders: 4,
            slots: 4,
        },
    );
    let src = allreduce_source(16, 4);
    let program = compile(&src, AND, &cfg).expect("replay-aware kernel passes deny-by-default");
    // Replay-safe with zero allows (the unbounded `accum`/`count`
    // growth warning is real and orthogonal — §overflow below).
    assert!(!has_warning(&program, LintCode::ReplayUnsafe));
    assert!(!has_warning(&program, LintCode::ReplayUnsafeNoFilter));

    let compiled = program.switch("s1").expect("s1");
    let mut pipe = pipeline(&program);
    // Control plane: nworkers = 2, on every compiled copy.
    for copy in &compiled.ctrl_regs["nworkers"] {
        assert!(pipe.register_write(copy, 0, c3::Value::new(c3::ScalarType::U32, 2)));
    }
    let pkt = window_u32(&program, "allreduce", 0, &[1, 2, 3, 4]);
    pipe.process(&pkt).expect("first delivery");
    let once = state_sum(&program, &pipe, "accum");
    assert_eq!(once, 10);
    pipe.process(&pkt).expect("retransmission");
    let twice = state_sum(&program, &pipe, "accum");
    // The witness twin: same trace, no double-count.
    assert_eq!(twice, once, "replay filter let a duplicate re-accumulate");
}

// ---------------------------------------------------------------------
// Cross-kernel aliasing: packets of different kernels interleave
// arbitrarily; a shared array with one non-commutative writer races.
// ---------------------------------------------------------------------

const ALIASED: &str = r#"
_net_ _at_("s1") unsigned shared[4] = {0};
_net_ _out_ void bump(unsigned *data) {
    shared[0] += data[0];
    _reflect();
}
_net_ _out_ void setv(unsigned *data) {
    shared[0] = data[0];
    _reflect();
}
"#;

const COMMUTING: &str = r#"
_net_ _at_("s1") unsigned shared[4] = {0};
_net_ _out_ void bump(unsigned *data) {
    shared[0] += data[0];
    _reflect();
}
_net_ _out_ void bump2(unsigned *data) {
    shared[0] += data[0];
    _reflect();
}
"#;

/// Netsim schedule divergence: delivery order of two kernels' packets
/// decides the final state of the flagged pair, while the all-
/// commutative twin converges under both orders.
#[test]
fn alias_witness_delivery_order_diverges() {
    let masks: &[(&str, Vec<u16>)] = &[("bump", vec![1]), ("setv", vec![1])];
    assert!(denied_with(ALIASED, masks, LintCode::CrossKernelAlias));
    let program = compile_allowing(
        ALIASED,
        masks,
        &[
            LintCode::CrossKernelAlias,
            LintCode::ReplayUnsafeNoFilter,
            LintCode::UnguardedOverflow,
        ],
    );
    let run = |first: &str, second: &str| {
        let mut pipe = pipeline(&program);
        pipe.process(&window_u32(&program, first, 0, &[10]))
            .unwrap();
        pipe.process(&window_u32(&program, second, 0, &[100]))
            .unwrap();
        state_sum(&program, &pipe, "shared")
    };
    let ab = run("bump", "setv");
    let ba = run("setv", "bump");
    // The witness: 10 then =100 leaves 100; =10... here setv(100) first
    // then bump(10)?  Orders carry different payloads; recompute both
    // ways with symmetric payloads to isolate ordering.
    assert_eq!(ab, 100);
    assert_eq!(ba, 110);
    assert_ne!(ab, ba, "delivery order decided the shared state");

    // The accepted twin: both updates commute, both orders agree.
    let masks2: &[(&str, Vec<u16>)] = &[("bump", vec![1]), ("bump2", vec![1])];
    let clean = compile_allowing(
        COMMUTING,
        masks2,
        &[LintCode::ReplayUnsafeNoFilter, LintCode::UnguardedOverflow],
    );
    assert!(!has_warning(&clean, LintCode::CrossKernelAlias));
    let run2 = |first: &str, second: &str| {
        let mut pipe = pipeline(&clean);
        pipe.process(&window_u32(&clean, first, 0, &[10])).unwrap();
        pipe.process(&window_u32(&clean, second, 0, &[100]))
            .unwrap();
        state_sum(&clean, &pipe, "shared")
    };
    assert_eq!(run2("bump", "bump2"), run2("bump2", "bump"));
}

// ---------------------------------------------------------------------
// Non-atomic RMW: a store whose value crosses register banks spans
// PISA stages; a window slipping between the stages (recirculation on
// real chips) observes — and propagates — stale state.
// ---------------------------------------------------------------------

const STALE_MIRROR: &str = r#"
_net_ _at_("s1") unsigned a[4] = {0};
_net_ _at_("s1") unsigned b[4] = {0};
_net_ _out_ void mirror(unsigned *data) {
    a[0] = b[0];
    b[0] = data[0];
    _reflect();
}
"#;

const SELF_CONTAINED: &str = r#"
_net_ _at_("s1") unsigned a[4] = {0};
_net_ _out_ void bump(unsigned *data) {
    a[0] += data[0];
    _reflect();
}
"#;

/// Runs P2 to completion between stage `k-1` and stage `k` of P1 —
/// the interleaving a recirculating packet experiences on real RMT —
/// and returns the final per-array sums.
fn interleave_at(
    program: &CompiledProgram,
    kernel: &str,
    split: usize,
    arrays: &[&str],
) -> Vec<u64> {
    let mut pipe = pipeline(program);
    let cfg = pipe.config().clone();
    let p1 = window_u32(program, kernel, 0, &[10]);
    let p2 = window_u32(program, kernel, 0, &[100]);
    let (mut phv1, _): (Phv, usize) = cfg.parser.parse(&cfg.layout, &p1).expect("parses");
    for s in 0..split {
        pipe.run_stage(&mut phv1, s);
    }
    pipe.process(&p2).expect("interloper");
    for s in split..pipe.stage_count() {
        pipe.run_stage(&mut phv1, s);
    }
    arrays
        .iter()
        .map(|a| state_sum(program, &pipe, a))
        .collect()
}

/// Stage-interleaved schedule divergence: for the flagged kernel some
/// split point yields a state no serial delivery order can produce;
/// the single-bank twin is schedule-invariant.
#[test]
fn rmw_witness_stage_interleaving_observes_stale_state() {
    let masks: &[(&str, Vec<u16>)] = &[("mirror", vec![1])];
    assert!(denied_with(STALE_MIRROR, masks, LintCode::NonAtomicRmw));
    let program = compile_allowing(
        STALE_MIRROR,
        masks,
        &[LintCode::NonAtomicRmw, LintCode::ReplayUnsafeNoFilter],
    );
    // Serial outcomes, both orders (split at 0 = P2 first, split at end
    // = P2 after P1 — both fully serial).
    let serial12 = interleave_at(
        &program,
        "mirror",
        pipeline(&program).stage_count(),
        &["a", "b"],
    );
    let serial21 = interleave_at(&program, "mirror", 0, &["a", "b"]);
    assert_eq!(serial12, vec![10, 100]);
    assert_eq!(serial21, vec![100, 10]);

    // The witness: some mid-pipeline split produces a third state —
    // P1 wrote `a` from the value of `b` it read before P2 ran.
    let diverged = (1..pipeline(&program).stage_count()).any(|k| {
        let s = interleave_at(&program, "mirror", k, &["a", "b"]);
        s != serial12 && s != serial21
    });
    assert!(
        diverged,
        "no interleaving diverged; the RMW did not span stages"
    );

    // The accepted twin: one bank, one stage, every schedule serializes.
    let clean = compile_allowing(
        SELF_CONTAINED,
        &[("bump", vec![1])],
        &[LintCode::ReplayUnsafeNoFilter, LintCode::UnguardedOverflow],
    );
    assert!(!has_warning(&clean, LintCode::NonAtomicRmw));
    let total = pipeline(&clean).stage_count();
    for k in 0..=total {
        assert_eq!(
            interleave_at(&clean, "bump", k, &["a"]),
            vec![110],
            "commutative single-bank update must be schedule-invariant"
        );
    }
}

// ---------------------------------------------------------------------
// Unguarded overflow: monotonic 32-bit accumulators wrap silently; a
// value-guarded reset keeps them bounded.
// ---------------------------------------------------------------------

const WRAPPING: &str = r#"
_net_ _at_("s1") unsigned total[1] = {0};
_net_ _out_ void tally(unsigned *data) {
    total[0] += data[0];
    _reflect();
}
"#;

const GUARDED: &str = r#"
_net_ _at_("s1") unsigned total[1] = {0};
_net_ _out_ void tally(unsigned *data) {
    if (total[0] > 1000) total[0] = 0;
    total[0] += data[0];
    _reflect();
}
"#;

#[test]
fn overflow_witness_accumulator_wraps_backwards() {
    let masks: &[(&str, Vec<u16>)] = &[("tally", vec![1])];
    let program = compile_allowing(WRAPPING, masks, &[]);
    assert!(has_warning(&program, LintCode::UnguardedOverflow));
    let mut pipe = pipeline(&program);
    let big = window_u32(&program, "tally", 0, &[0xC000_0000]);
    pipe.process(&big).unwrap();
    let once = state_sum(&program, &pipe, "total");
    pipe.process(&big).unwrap();
    let twice = state_sum(&program, &pipe, "total");
    assert_eq!(once, 0xC000_0000);
    // The witness: the monotonic counter went *backwards*.
    assert_eq!(twice, 0x8000_0000);
    assert!(twice < once, "wrap must be observable as regression");

    let guarded = compile_allowing(GUARDED, masks, &[]);
    assert!(!has_warning(&guarded, LintCode::UnguardedOverflow));
    let mut pipe = pipeline(&guarded);
    let step = window_u32(&guarded, "tally", 0, &[600]);
    let mut prev = 0u64;
    for _ in 0..5 {
        pipe.process(&step).unwrap();
        let now = state_sum(&guarded, &pipe, "total");
        assert!(now <= 1600, "guarded accumulator stays bounded");
        // Bounded, and any decrease is the guard firing, not a wrap.
        if now < prev {
            assert_eq!(now, 600);
        }
        prev = now;
    }
}

// ---------------------------------------------------------------------
// ncmc rediscovery: the bounded model checker re-finds every
// hand-written witness above (no longer than 2 deliveries, the length
// of the hand-picked schedules) and certifies every accepted twin.
// The kernels compile with the lint allowed, so the checker is driven
// by `(code, kernel, array)` directly via `mc::check_code`.
// ---------------------------------------------------------------------

fn adjudicate(
    program: &CompiledProgram,
    code: LintCode,
    kernel: &str,
    state: Option<&str>,
) -> ncl::core::mc::McItem {
    ncl::core::mc::check_code(program, "s1", code, kernel, state, &McConfig::default())
        .expect("scenario builds")
        .expect("code is schedule-checkable")
}

fn expect_witness(item: &ncl::core::mc::McItem) -> ncl::ncmc::WitnessReport {
    match &item.result.outcome {
        Outcome::Witness(w) => w.clone(),
        _ => panic!("expected a counterexample, got: {}", item.summary()),
    }
}

fn expect_certificate(item: &ncl::core::mc::McItem) -> ncl::ncmc::Certificate {
    match &item.result.outcome {
        Outcome::Certificate(c) => c.clone(),
        _ => panic!("expected a certificate, got: {}", item.summary()),
    }
}

/// Replay hazard: ncmc re-finds the retransmission double-count on the
/// unfiltered accumulator with a schedule no longer than the
/// hand-written one (deliver, retransmit, deliver again).
#[test]
fn ncmc_rediscovers_replay_witness() {
    let program = compile_allowing(
        UNSAFE_ACCUM,
        &[("tally", vec![4])],
        &[LintCode::UnguardedOverflow],
    );
    let item = adjudicate(
        &program,
        LintCode::ReplayUnsafeNoFilter,
        "tally",
        Some("total"),
    );
    let w = expect_witness(&item);
    assert!(
        w.deliveries <= 2,
        "machine witness ({} deliveries) must not exceed the hand-written schedule (2)",
        w.deliveries
    );
    assert!(
        !w.expected.contains(&w.got),
        "witness terminal state must lie outside every serial reference"
    );
}

/// Cross-kernel alias: ncmc re-finds the order divergence between
/// `bump` and `setv`, and certifies the all-commutative twin.
#[test]
fn ncmc_rediscovers_alias_witness_and_certifies_commuting_twin() {
    let masks: &[(&str, Vec<u16>)] = &[("bump", vec![1]), ("setv", vec![1])];
    let program = compile_allowing(
        ALIASED,
        masks,
        &[
            LintCode::CrossKernelAlias,
            LintCode::ReplayUnsafeNoFilter,
            LintCode::UnguardedOverflow,
        ],
    );
    let item = adjudicate(&program, LintCode::CrossKernelAlias, "bump", Some("shared"));
    let w = expect_witness(&item);
    assert_eq!(
        w.deliveries, 2,
        "order divergence needs exactly the two hand-written deliveries"
    );

    let masks2: &[(&str, Vec<u16>)] = &[("bump", vec![1]), ("bump2", vec![1])];
    let clean = compile_allowing(
        COMMUTING,
        masks2,
        &[LintCode::ReplayUnsafeNoFilter, LintCode::UnguardedOverflow],
    );
    let item = adjudicate(&clean, LintCode::CrossKernelAlias, "bump", Some("shared"));
    let cert = expect_certificate(&item);
    assert_eq!(cert.property, "order-invariant");
    assert!(cert.stats.schedules > 0);
}

/// Non-atomic RMW: ncmc re-finds the stage-interleaving on the
/// two-bank `mirror` kernel — the witness must contain a `split` step —
/// and certifies the single-bank twin schedule-invariant.
#[test]
fn ncmc_rediscovers_rmw_witness_and_certifies_single_bank_twin() {
    let masks: &[(&str, Vec<u16>)] = &[("mirror", vec![1])];
    let program = compile_allowing(
        STALE_MIRROR,
        masks,
        &[LintCode::NonAtomicRmw, LintCode::ReplayUnsafeNoFilter],
    );
    let item = adjudicate(&program, LintCode::NonAtomicRmw, "mirror", Some("a"));
    let w = expect_witness(&item);
    assert!(w.deliveries <= 2, "hand-written witness uses 2 deliveries");
    assert!(
        w.schedule.render().contains("split"),
        "a non-atomic RMW witness must tear a delivery mid-pipeline:\n{}",
        w.schedule.render()
    );

    let clean = compile_allowing(
        SELF_CONTAINED,
        &[("bump", vec![1])],
        &[LintCode::ReplayUnsafeNoFilter, LintCode::UnguardedOverflow],
    );
    let item = adjudicate(&clean, LintCode::NonAtomicRmw, "bump", Some("a"));
    expect_certificate(&item);
}

/// Unguarded overflow: ncmc re-finds the backwards wrap with two
/// near-max deliveries and certifies the value-guarded twin.
#[test]
fn ncmc_rediscovers_overflow_witness_and_certifies_guarded_twin() {
    let masks: &[(&str, Vec<u16>)] = &[("tally", vec![1])];
    let program = compile_allowing(WRAPPING, masks, &[]);
    let item = adjudicate(
        &program,
        LintCode::UnguardedOverflow,
        "tally",
        Some("total"),
    );
    let w = expect_witness(&item);
    assert_eq!(
        w.deliveries, 2,
        "wrap needs the two hand-written deliveries"
    );

    let guarded = compile_allowing(GUARDED, masks, &[]);
    let item = adjudicate(
        &guarded,
        LintCode::UnguardedOverflow,
        "tally",
        Some("total"),
    );
    let cert = expect_certificate(&item);
    assert_eq!(cert.property, "no-regression");
}

/// The replay-guarded AllReduce is certified exactly-once under the
/// same duplication domain that breaks the unfiltered accumulator.
#[test]
fn ncmc_certifies_filtered_allreduce_replay_safe() {
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![4]);
    cfg.masks.insert("result".into(), vec![4]);
    cfg.replay_filters.insert(
        "allreduce".into(),
        ReplayFilter {
            senders: 4,
            slots: 4,
        },
    );
    let src = allreduce_source(16, 4);
    let program = compile(&src, AND, &cfg).expect("compiles");
    let item = adjudicate(&program, LintCode::ReplayUnsafe, "allreduce", Some("accum"));
    let cert = expect_certificate(&item);
    assert_eq!(cert.property, "serializable");
    assert!(
        cert.stats.schedules > 1,
        "duplication domain must cover retransmission schedules"
    );
}

// ---------------------------------------------------------------------
// Resource estimator: pre-mapping predictions vs the actual mapping,
// on every example kernel (acceptance bound: ±1 stage, ±10% SRAM).
// ---------------------------------------------------------------------

/// Recomputes the actual per-physical-stage SRAM of a loaded pipeline
/// exactly as `PipelineConfig::report` accounts it.
fn actual_sram(cfgp: &pisa::PipelineConfig, model: &ResourceModel) -> Vec<usize> {
    let mut sram = vec![0usize; model.stages.max(1)];
    for (i, s) in cfgp.stages.iter().enumerate() {
        let phys = i % model.stages.max(1);
        for t in &s.tables {
            for a in &t.actions {
                for op in &a.ops {
                    if let Some(r) = op.register() {
                        if let Some(def) = cfgp.registers.get(r as usize) {
                            sram[phys] += def.len * def.elem.size();
                        }
                    }
                }
            }
        }
    }
    sram
}

#[test]
fn estimator_agrees_with_actual_mapping_on_example_kernels() {
    type Masks = Vec<(&'static str, Vec<u16>)>;
    let allreduce_masks: Masks = vec![("allreduce", vec![8]), ("result", vec![8])];
    let kvs_masks: Masks = vec![("query", vec![1, 8, 1])];
    let cases: Vec<(String, Masks, Option<ReplayFilter>)> = vec![
        (
            allreduce_source(64, 8),
            allreduce_masks,
            Some(ReplayFilter {
                senders: 4,
                slots: 8,
            }),
        ),
        (kvs_source(2, 8, 1), kvs_masks, None),
        (UNSAFE_ACCUM.to_string(), vec![("tally", vec![4])], None),
        (GUARDED.to_string(), vec![("tally", vec![1])], None),
    ];
    for (src, masks, filter) in cases {
        let mut cfg = CompileConfig::default();
        let first = masks[0].0;
        for (k, m) in &masks {
            cfg.masks.insert((*k).to_string(), m.clone());
        }
        if let Some(f) = filter {
            cfg.replay_filters.insert(first.to_string(), f);
        }
        // Witness tests above cover the hazards; here only feasibility.
        for &c in LintCode::ALL {
            cfg.lint_levels.insert(c, LintLevel::Allow);
        }
        let program = compile(&src, AND, &cfg).expect("compiles");
        let est = program.estimate("s1").expect("estimate for s1");
        let actual = program.switch("s1").expect("s1");

        // ±1 stage on the full pipeline.
        let (e, a) = (est.pipeline_stages as i64, actual.report.stages_used as i64);
        assert!(
            (e - a).abs() <= 1,
            "kernel set '{first}': estimated {e} stages, actual {a}"
        );
        // PHV prediction is byte-exact (same layout replayed).
        assert_eq!(est.phv_header_bytes, actual.report.phv_header_bytes);
        assert_eq!(est.phv_metadata_bytes, actual.report.phv_metadata_bytes);
        // ±10% SRAM, per stage and in total.
        let model = ResourceModel::default();
        let real = actual_sram(&actual.pipeline, &model);
        let (esum, rsum): (usize, usize) = (est.sram_by_stage.iter().sum(), real.iter().sum());
        assert!(
            (esum as f64 - rsum as f64).abs() <= 0.10 * (rsum.max(1) as f64),
            "kernel set '{first}': estimated {esum}B SRAM, actual {rsum}B"
        );
    }
}
