//! Property-based differential testing of the compiler.
//!
//! The correctness argument for nclc: for *generated* kernels and
//! *random* windows, the reference interpreter (direct IR execution) and
//! the compiled PISA pipeline (windows encoded to NCP packets, parsed,
//! pushed through match-action stages, deparsed) must agree on the
//! output window bytes and the forwarding decision — across arithmetic,
//! branching, switch-memory updates and forwarding primitives.

use c3::{Chunk, Forward, HostId, KernelId, NodeId, ScalarType, Value, Window};
use ncl_ir::lower::{lower, LoweringConfig};
use ncl_ir::{Interpreter, SwitchState};
use ncl_p4::codegen::{decode_window_for_test, encode_window_for_test};
use ncl_p4::{compile_module, CompileOptions};
use pisa::{Pipeline, ResourceModel};
use proptest::prelude::*;

#[path = "common/corpus.rs"]
mod corpus;

/// A randomly generated straight-line/branching kernel over one int
/// array parameter and one switch array.
#[derive(Clone, Debug)]
struct GenKernel {
    stmts: Vec<String>,
    src: String,
}

/// Expression atoms over `data[0..w]`, the loop-free subset.
fn gen_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0..4usize).prop_map(|i| format!("data[{i}]")),
        (-20i32..20).prop_map(|c| format!("({c})")),
        Just("window.seq".to_string()),
        Just("(int)window.len".to_string()),
        (0..4usize, 1..64u32).prop_map(|(i, salt)| format!("(int)_hash(data[{i}], {salt})")),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("&"),
                    Just("|"),
                    Just("^")
                ]
            )
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            (inner.clone(), 1..5u32).prop_map(|(a, s)| format!("({a} >> {s})")),
        ]
    })
    .boxed()
}

fn gen_cond() -> BoxedStrategy<String> {
    (
        gen_expr(1),
        gen_expr(1),
        prop_oneof![Just("<"), Just("=="), Just(">"), Just("!=")],
    )
        .prop_map(|(a, b, op)| format!("{a} {op} {b}"))
        .boxed()
}

fn gen_stmt() -> BoxedStrategy<String> {
    prop_oneof![
        (0..4usize, gen_expr(2)).prop_map(|(i, e)| format!("data[{i}] = {e};")),
        (0..8usize, gen_expr(1)).prop_map(|(i, e)| format!("mem[{i}] += {e};")),
        (gen_cond(), 0..4usize, gen_expr(1), 0..4usize, gen_expr(1)).prop_map(
            |(c, i, a, j, b)| format!(
                "if ({c}) {{ data[{i}] = {a}; }} else {{ data[{j}] = {b}; }}"
            )
        ),
        (gen_cond(), 0..8usize, gen_expr(1))
            .prop_map(|(c, i, e)| format!("if ({c}) {{ mem[{i}] = {e}; }}")),
        gen_cond().prop_map(|c| format!("if ({c}) {{ _reflect(); }} else {{ _drop(); }}")),
        // Map lookup (entries installed by the harness on both sides).
        (0..4usize, 0..4usize).prop_map(|(i, j)| format!(
            "if (auto *p = Idx[(uint64_t)data[{i}]]) {{ data[{j}] = (int)*p; }}"
        )),
        // Window-extension traffic.
        gen_expr(1).prop_map(|e| format!("window.tag = (uint16_t)({e});")),
        (0..4usize).prop_map(|i| format!("data[{i}] = (int)window.tag;")),
    ]
    .boxed()
}

fn gen_kernel() -> BoxedStrategy<GenKernel> {
    proptest::collection::vec(gen_stmt(), 1..6)
        .prop_map(|stmts| {
            let body = stmts.join("\n    ");
            let src = format!(
                "_wnd_ struct W {{ uint16_t tag; }};\n\
                 _net_ _at_(\"s1\") ncl::Map<uint64_t, uint8_t, 16> Idx;\n\
                 _net_ _at_(\"s1\") int mem[8] = {{0}};\n\
                 _net_ _out_ void k(int *data) {{\n    {body}\n}}\n"
            );
            GenKernel { stmts, src }
        })
        .boxed()
}

fn gen_window() -> BoxedStrategy<Window> {
    (
        proptest::collection::vec(any::<i32>(), 4),
        0..4u32,
        any::<u16>(),
    )
        .prop_map(|(vals, seq, tag)| {
            let mut w = Window {
                kernel: KernelId(1),
                seq,
                sender: HostId(1),
                from: NodeId::Host(HostId(1)),
                last: false,
                chunks: vec![Chunk {
                    offset: 0,
                    data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
                }],
                ext: vec![],
            };
            w.ext_write(0, Value::new(ScalarType::U16, tag as u64));
            w
        })
        .boxed()
}

/// Installs the same `key → val` map entries on the interpreter state
/// and the compiled pipeline's lookup tables.
fn sync_map_entries(
    state: &mut SwitchState,
    pipe: &mut Pipeline,
    map_tables: &std::collections::HashMap<String, Vec<String>>,
) {
    for key in 0..8u64 {
        let val = Value::new(ScalarType::U8, key.wrapping_mul(3) & 0xFF);
        state.map_insert(ncl_ir::MapId(0), key, val);
        if let Some(tables) = map_tables.get("Idx") {
            for t in tables {
                pipe.table_insert(
                    t,
                    pisa::Entry {
                        patterns: vec![
                            pisa::MatchPattern::exact(1),
                            pisa::MatchPattern::exact(key),
                        ],
                        action: pisa::ActionRef(1),
                        args: vec![val],
                        priority: 0,
                    },
                )
                .expect("inserts");
            }
        }
    }
}

fn fwd_of(code: u8) -> Forward {
    match code {
        1 => Forward::Reflect,
        2 => Forward::Bcast,
        3 => Forward::Drop,
        _ => Forward::Pass,
    }
}

/// The differential property, callable from both the proptest and the
/// shared-corpus replay: interpreter ≡ compiled pipeline on the given
/// kernel source × window sequence, including persistent switch state.
fn check_kernel_vs_interpreter(src: &str, windows: &[Window]) {
    let checked = ncl_lang::frontend(src, "gen.ncl")
        .unwrap_or_else(|d| panic!("frontend: {}\n{}", ncl_lang::diag::render(&d), src));
    let mut module = lower(&checked, &LoweringConfig::with_mask("k", vec![4]))
        .unwrap_or_else(|d| panic!("lower: {}", ncl_lang::diag::render(&d)));
    ncl_ir::passes::optimize(&mut module);
    let mut opts = CompileOptions::default();
    opts.kernel_ids.insert("k".into(), 1);
    let compiled = match compile_module(&module, &ResourceModel::default(), &opts) {
        Ok(c) => c,
        Err(ncl_p4::CompileError::Resources(_)) => {
            // Random kernels may legitimately exceed the chip (e.g.
            // too many stateful micro-ops on one array). Rejection
            // is correct behaviour, not a miscompile.
            return;
        }
        Err(e) => panic!("compile: {e}\n{src}"),
    };
    let map_tables = compiled.map_tables.clone();
    let mut pipe = Pipeline::load(compiled.pipeline, ResourceModel::default()).expect("loads");
    let mut state = SwitchState::from_module(&module);
    // Corpus kernels predate the Map prelude and declare no maps; a
    // kernel that looks one up always has lookup tables to fill.
    if !map_tables.is_empty() {
        sync_map_entries(&mut state, &mut pipe, &map_tables);
    }
    let it = Interpreter::default();
    let kir = module.kernel("k").unwrap();
    let ext_total = module.window_ext.size();
    for (wi, w) in windows.iter().enumerate() {
        let mut w_interp = w.clone();
        let fwd_i = it
            .run_outgoing(kir, &mut w_interp, &mut state)
            .expect("interp");
        let pkt = encode_window_for_test(w, ext_total);
        let out = pipe.process(&pkt).expect("pipeline parses");
        let w_pipe = decode_window_for_test(&out.packet, 1, ext_total);
        let mut w_interp_ext = w_interp.ext.clone();
        w_interp_ext.resize(ext_total, 0);
        assert_eq!(
            &w_interp_ext, &w_pipe.ext,
            "ext diverged, window {wi} of kernel:\n{src}"
        );
        assert_eq!(
            fwd_i,
            fwd_of(out.fwd_code),
            "fwd diverged, window {wi} of kernel:\n{src}"
        );
        assert_eq!(
            &w_interp.chunks, &w_pipe.chunks,
            "chunks diverged, window {wi} of kernel:\n{src}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Interpreter ≡ compiled pipeline on random kernels × random
    /// windows, including persistent switch state across a window
    /// sequence.
    #[test]
    fn compiled_pipeline_matches_interpreter(
        kernel in gen_kernel(),
        windows in proptest::collection::vec(gen_window(), 1..4),
    ) {
        check_kernel_vs_interpreter(&kernel.src, &windows);
        let _ = kernel.stmts;
    }

    /// NCP encode/decode is the identity over arbitrary windows.
    #[test]
    fn ncp_codec_roundtrip(
        seq in any::<u32>(),
        sender in 1u16..100,
        last in any::<bool>(),
        chunks in proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..64)),
            0..4
        ),
        ext in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let w = Window {
            kernel: KernelId(3),
            seq,
            sender: HostId(sender),
            from: NodeId::Host(HostId(sender)),
            last,
            chunks: chunks
                .into_iter()
                .map(|(offset, data)| Chunk { offset, data })
                .collect(),
            ext: ext.clone(),
        };
        let bytes = ncp::codec::encode_window(&w, ext.len());
        let back = ncp::codec::decode_window(&bytes).expect("decodes");
        prop_assert_eq!(back, w);
    }

    /// Fragmentation + reassembly is the identity for any window and
    /// any viable MTU.
    #[test]
    fn fragmentation_roundtrip(
        nvals in 1usize..200,
        seed in any::<u32>(),
        mtu in 64usize..600,
    ) {
        let vals: Vec<u32> = (0..nvals as u32).map(|i| i.wrapping_mul(seed)).collect();
        let w = Window {
            kernel: KernelId(1),
            seq: 9,
            sender: HostId(2),
            from: NodeId::Host(HostId(2)),
            last: true,
            chunks: vec![Chunk {
                offset: 16,
                data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
            }],
            ext: vec![],
        };
        let frags = ncp::codec::fragment_window(&w, 0, mtu);
        for f in &frags {
            prop_assert!(f.len() <= mtu.max(f.len().min(mtu)));
        }
        let mut r = ncp::codec::Reassembler::new();
        let mut got = None;
        for f in &frags {
            got = r.push(f).expect("valid fragments");
        }
        let got = got.expect("completes");
        prop_assert_eq!(&got.chunks[0].data, &w.chunks[0].data);
        prop_assert_eq!(got.chunks[0].offset, w.chunks[0].offset);
        prop_assert_eq!(got.last, w.last);
    }

    /// Window split + reassemble over random masks is the identity.
    #[test]
    fn window_split_identity(
        elems_per_window in 1u16..16,
        nwindows in 1usize..16,
        seed in any::<u64>(),
    ) {
        use c3::{Mask, WindowSpec};
        let total = elems_per_window as usize * nwindows;
        let vals: Vec<u32> = (0..total as u64)
            .map(|i| (i.wrapping_mul(seed) >> 7) as u32)
            .collect();
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_be_bytes()).collect();
        let spec = WindowSpec::new(
            vec![ScalarType::U32],
            Mask::new([elems_per_window]),
        ).expect("valid spec");
        let ws = spec.split(&[&bytes]).expect("splits");
        prop_assert_eq!(ws.len(), nwindows);
        let back = spec.reassemble(&ws, &[bytes.len()]).expect("reassembles");
        prop_assert_eq!(&back[0], &bytes);
    }
}

/// Deterministic regression cases distilled from earlier proptest runs
/// and hand-picked edge cases.
#[test]
fn differential_edge_cases() {
    let cases = [
        // Signed overflow wrapping through the pipeline.
        "_net_ _at_(\"s1\") int mem[8] = {0};\n_net_ _out_ void k(int *data) { data[0] = data[1] * data[2]; }",
        // Shift by data-dependent-looking constant.
        "_net_ _at_(\"s1\") int mem[8] = {0};\n_net_ _out_ void k(int *data) { data[0] = (data[1] >> 3) ^ data[0]; }",
        // Nested branches both writing the same element.
        "_net_ _at_(\"s1\") int mem[8] = {0};\n_net_ _out_ void k(int *data) {\n  if (data[0] > 0) { if (data[1] > 0) { data[2] = 1; } else { data[2] = 2; } } else { data[2] = 3; }\n}",
        // Forwarding decided in a branch, state write in the other.
        "_net_ _at_(\"s1\") int mem[8] = {0};\n_net_ _out_ void k(int *data) {\n  if (data[0] == 0) { mem[0] += 1; _drop(); } else { _reflect(); }\n}",
    ];
    for src in cases {
        let checked = ncl_lang::frontend(src, "edge.ncl").expect("frontend");
        let mut module = lower(&checked, &LoweringConfig::with_mask("k", vec![4])).expect("lower");
        ncl_ir::passes::optimize(&mut module);
        let mut opts = CompileOptions::default();
        opts.kernel_ids.insert("k".into(), 1);
        let compiled = compile_module(&module, &ResourceModel::default(), &opts).expect("compiles");
        let mut pipe = Pipeline::load(compiled.pipeline, ResourceModel::default()).expect("loads");
        let mut state = SwitchState::from_module(&module);
        let it = Interpreter::default();
        let kir = module.kernel("k").unwrap();
        for vals in [
            [i32::MIN, -1, i32::MAX, 0],
            [0, 0, 0, 0],
            [1, -1, 1, -1],
            [7, 1024, -7, 3],
        ] {
            let w = Window {
                kernel: KernelId(1),
                seq: 0,
                sender: HostId(1),
                from: NodeId::Host(HostId(1)),
                last: false,
                chunks: vec![Chunk {
                    offset: 0,
                    data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
                }],
                ext: vec![],
            };
            let mut wi = w.clone();
            let f = it.run_outgoing(kir, &mut wi, &mut state).unwrap();
            let out = pipe
                .process(&encode_window_for_test(&w, 0))
                .expect("parses");
            let wp = decode_window_for_test(&out.packet, 1, 0);
            assert_eq!(f, fwd_of(out.fwd_code), "{src}\n{vals:?}");
            assert_eq!(wi.chunks, wp.chunks, "{src}\n{vals:?}");
        }
    }
    let _ = Value::u32(0);
}

/// Replays this file's section of the shared regression corpus
/// (tests/corpus/shared.proptest-regressions). Both recorded shrunk
/// kernels exposed real miscompiles once: a data→data copy chain whose
/// second write read the first's stale PHV field, and a double
/// same-cell `+=` followed by a predicated overwrite whose stage
/// fusion dropped one micro-op. They must stay interpreter-identical.
#[test]
fn corpus_kernel_cases_match_interpreter() {
    let entries =
        corpus::entries_for("tests/differential.rs::compiled_pipeline_matches_interpreter");
    let window = |vals: [i32; 4]| Window {
        kernel: KernelId(1),
        seq: 0,
        sender: HostId(1),
        from: NodeId::Host(HostId(1)),
        last: false,
        chunks: vec![Chunk {
            offset: 0,
            data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
        }],
        ext: vec![],
    };
    // (corpus hash, kernel body, window payload) — the GenKernel debug
    // payloads in the corpus record exactly these cases; the hash
    // check keeps the hard-coded replay and the file in sync.
    let cases: [(&str, &str, [i32; 4]); 2] = [
        (
            "6b0894be8d6466ae6c1ec024559e65af2675c254416ddaf046586c28762d40a5",
            "data[0] = (data[0] + data[0]);\n    data[0] = data[1];",
            [0, 1, 0, 0],
        ),
        (
            "cd6efca7da8e6ed33e826b5f7a621f86c37be94342a18a240dc7256db7a50f65",
            "mem[5] += data[0];\n    mem[5] += data[0];\n    \
             if (data[0] < data[0]) { mem[5] = data[0]; }",
            [0, 0, 0, 0],
        ),
    ];
    assert_eq!(entries.len(), cases.len(), "corpus section out of sync");
    for (hash, body, vals) in cases {
        assert!(
            entries.iter().any(|e| e.hash == hash),
            "corpus entry {hash} was pruned without removing its replay"
        );
        let src = format!(
            "_net_ _at_(\"s1\") int mem[8] = {{0}};\n\
             _net_ _out_ void k(int *data) {{\n    {body}\n}}\n"
        );
        check_kernel_vs_interpreter(&src, &[window(vals)]);
    }
}

/// The in-band telemetry differential (DESIGN.md §4.9): the same window
/// crossing the same two-switch chain must yield *bit-identical* hop
/// records whether each switch runs the modeled PISA pipeline, the
/// compiled fast-path executor, or the IR interpreter. Everything in a
/// hop record — switch id, kernel id/version, stage count, micro-op
/// count, dup flag, sim-time ticks — comes from deploy-time metadata
/// and simulated time, so a tier that drifted in timing, versioning, or
/// section handling shows up as a byte diff here.
#[test]
fn telemetry_hop_records_identical_across_tiers() {
    use ncl::core::deploy::{deploy_with, SwitchBackend};
    use ncl::core::nclc::{compile, CompileConfig};
    use ncl::core::runtime::{NclHost, OutInvocation, TypedArray};
    use ncl::netsim::{HostApp, LinkSpec};
    use std::collections::HashMap;

    let src = r#"
_net_ _at_("agg") int total[1] = {0};
_net_ _out_ void k(int *d) {
    if (_here("edge")) {
        d[0] = d[0] * 2;
    } else {
        total[0] += d[0];
    }
}
_net_ _in_ void recv(int *d, _ext_ int *out) { out[0] = d[0]; }
"#;
    let and = "host h1\nhost h2\nswitch edge\nswitch agg\n\
               link h1 edge\nlink edge agg\nlink agg h2\n";
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("k".into(), vec![1]);
    cfg.masks.insert("recv".into(), vec![1]);
    let program = compile(src, and, &cfg).expect("compiles");

    let run = |backend: SwitchBackend| {
        let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
        let mut sender = NclHost::new(&program);
        sender.enable_telemetry(1.0, 64);
        sender
            .out(OutInvocation {
                kernel: "k".into(),
                arrays: vec![TypedArray::from_i32(&[21, 4, -3])],
                dest: NodeId::Host(HostId(2)),
                start: 0,
                gap: 0,
            })
            .unwrap();
        apps.insert("h1".into(), Box::new(sender));
        let mut receiver = NclHost::new(&program);
        receiver.enable_telemetry(1.0, 64);
        receiver
            .bind_incoming(&program, "k", "recv", &[(ScalarType::I32, 1)])
            .unwrap();
        apps.insert("h2".into(), Box::new(receiver));
        let mut dep = deploy_with(
            &program,
            apps,
            LinkSpec::default(),
            pisa::ResourceModel::default(),
            backend,
        )
        .expect("deploys");
        dep.net.run();
        let h2 = dep.net.host_app_mut::<NclHost>(HostId(2)).unwrap();
        let traces = h2.take_traces();
        assert_eq!(traces.len(), 3, "{backend:?}: every window traced");
        traces
    };

    let pisa = run(SwitchBackend::Pisa);
    let fast = run(SwitchBackend::FastPath);
    let simd = run(SwitchBackend::Simd);
    let interp = run(SwitchBackend::Interp);

    for t in &pisa {
        assert_eq!(t.hops.len(), 2, "both on-path switches stamped");
        assert_ne!(t.hops[0].switch, t.hops[1].switch);
        for h in &t.hops {
            assert!(h.version >= 1, "deploy-time version present");
            assert!(h.stages >= 1, "stage count present");
            assert!(h.uops >= 1, "micro-op count present");
            assert!(h.ticks_out > h.ticks_in, "execution takes sim time");
        }
    }
    let encode = |traces: &[ncl::nctel::WindowTrace]| -> Vec<Vec<u8>> {
        traces
            .iter()
            .map(|t| t.hops.iter().flat_map(|h| h.encode()).collect::<Vec<u8>>())
            .collect()
    };
    assert_eq!(
        encode(&pisa),
        encode(&fast),
        "PISA and fast-path hop records diverge"
    );
    assert_eq!(
        encode(&pisa),
        encode(&simd),
        "PISA and SIMD-tier hop records diverge"
    );
    assert_eq!(
        encode(&pisa),
        encode(&interp),
        "PISA and interpreter hop records diverge"
    );
}
