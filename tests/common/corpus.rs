//! Loader for the shared proptest regression corpus
//! (`tests/corpus/shared.proptest-regressions`).
//!
//! The devstub proptest runner is deterministic and never reads
//! failure-persistence files, so recorded shrunk cases stay alive by
//! being replayed explicitly: each owning test file pulls its section
//! out of the corpus with [`entries_for`] and re-runs every entry. A
//! replay test should assert its section is non-empty and that the
//! hash of each hard-coded case is still present, so the corpus file
//! and the replay code cannot drift apart.

// Each test target includes this module via `#[path]` and uses only
// the helpers its own payloads need.
#![allow(dead_code)]

use std::fmt::Debug;
use std::path::Path;
use std::str::FromStr;

/// One `cc` line from the corpus.
pub struct Entry {
    /// The sha256-of-payload token after `cc` — an opaque identity.
    pub hash: String,
    /// The text after `# shrinks to`, i.e. the recorded case.
    pub payload: String,
}

/// Returns every corpus entry recorded under `# test: <test_id>`.
pub fn entries_for(test_id: &str) -> Vec<Entry> {
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/shared.proptest-regressions");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("shared corpus at {}: {e}", path.display()));
    let mut section = String::new();
    let mut out = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# test: ") {
            section = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("cc ") {
            if section == test_id {
                let (hash, payload) = rest.split_once(" # shrinks to ").unwrap_or((rest, ""));
                out.push(Entry {
                    hash: hash.trim().to_string(),
                    payload: payload.trim().to_string(),
                });
            }
        }
    }
    out
}

/// Extracts the raw text of `key = <value>` from a payload. Bracketed
/// list values run to the closing `]`; scalars run to the next comma.
pub fn field<'a>(payload: &'a str, key: &str) -> &'a str {
    let pat = format!("{key} = ");
    let start = payload
        .find(&pat)
        .unwrap_or_else(|| panic!("no field `{key}` in corpus payload: {payload}"))
        + pat.len();
    let rest = &payload[start..];
    let end = if let Some(tail) = rest.strip_prefix('[') {
        tail.find(']').map(|i| i + 2).unwrap_or(rest.len())
    } else {
        rest.find(',').unwrap_or(rest.len())
    };
    rest[..end].trim()
}

/// Parses a scalar `key = <value>` field.
pub fn num<T>(payload: &str, key: &str) -> T
where
    T: FromStr,
    T::Err: Debug,
{
    field(payload, key).parse().expect(key)
}

/// Parses a `key = true|false` field.
pub fn boolean(payload: &str, key: &str) -> bool {
    num(payload, key)
}

/// Parses a `key = [a, b, c]` field.
pub fn list<T>(payload: &str, key: &str) -> Vec<T>
where
    T: FromStr,
    T::Err: Debug,
{
    let raw = field(payload, key);
    let inner = raw
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .unwrap_or_else(|| panic!("field `{key}` is not a list: {raw}"));
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect(key))
        .collect()
}
