//! Failure injection: packet loss and reordering against the full
//! system. NCP's prototype transport is unreliable (Sockets/UDP, paper
//! §6), so the properties to check are *integrity* ones: lost windows
//! may stall progress but never corrupt results.

use ncl::core::apps::{allreduce_source, kvs_source, KvsClient, KvsOp, KvsServer};
use ncl::core::control::ControlPlane;
use ncl::core::deploy::deploy;
use ncl::core::nclc::{compile, CompileConfig};
use ncl::core::runtime::{NclHost, OutInvocation, TypedArray};
use ncl::model::{HostId, NodeId, ScalarType, Value};
use ncl::netsim::{HostApp, LinkSpec};
use std::collections::HashMap;

#[test]
fn lost_contributions_stall_but_never_corrupt() {
    // Drop every 5th packet on the links: some aggregation slots never
    // fill, so their results are never broadcast — but every broadcast
    // that *does* arrive carries a correct full sum.
    let n = 4usize;
    let data_len = 64usize;
    let win = 8usize;
    let src = allreduce_source(data_len, win);
    let and = format!("hosts worker {n}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    let program = compile(&src, &and, &cfg).expect("compiles");
    let kid = program.kernel_ids["allreduce"];
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=n as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = vec![w as i32; data_len];
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % n as u16 + 1)),
            start: 0,
            gap: 0,
        })
        .unwrap();
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, data_len), (ScalarType::Bool, 1)],
        )
        .unwrap();
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let lossy = LinkSpec {
        drop_every: 5,
        ..LinkSpec::default()
    };
    let mut dep = deploy(&program, apps, lossy, pisa::ResourceModel::default()).expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(n as u32),
    );
    dep.net.run();
    assert!(dep.net.stats.link_drops > 0, "loss injection must fire");
    // Integrity: every received slot element is either untouched (0) or
    // the exact full sum 1+2+3+4 = 10.
    let expected = (1..=n as i32).sum::<i32>();
    let mut any_received = false;
    for w in 1..=n as u16 {
        let host = dep.net.host_app::<NclHost>(HostId(w)).unwrap();
        let mem = host.memory(kid).unwrap();
        for i in 0..data_len {
            let v = mem.arrays[0][i].as_i128() as i32;
            assert!(
                v == 0 || v == expected,
                "worker {w} element {i} has partial sum {v}"
            );
            any_received |= v == expected;
        }
    }
    assert!(any_received, "some slots should still complete");
}

#[test]
fn kvs_loss_reduces_throughput_not_integrity() {
    let val_words = 4usize;
    let server_id = 2u16;
    let src = kvs_source(server_id, 8, val_words);
    let and = "hosts client 1\nswitch s1\nhost server\nlink client* s1\nlink server s1\n";
    let mut cfg = CompileConfig::default();
    cfg.masks
        .insert("query".into(), vec![1, val_words as u16, 1]);
    let program = compile(&src, and, &cfg).expect("compiles");
    let kernel = program.kernel_ids["query"];

    let mut schedule = vec![KvsOp {
        at: 0,
        key: 4,
        put: true,
    }];
    for i in 1..=30u64 {
        schedule.push(KvsOp {
            at: i * 1_000_000,
            key: 4,
            put: false,
        });
    }
    let nops = schedule.len();
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    apps.insert(
        "client1".into(),
        Box::new(KvsClient::new(
            NodeId::Host(HostId(server_id)),
            HostId(server_id),
            kernel,
            val_words,
            schedule,
        )),
    );
    apps.insert(
        "server".into(),
        Box::new(KvsServer::new(
            kernel,
            val_words,
            None,
            Some(ControlPlane::new(program.switch("s1").unwrap())),
            8,
        )),
    );
    let lossy = LinkSpec {
        drop_every: 7,
        ..LinkSpec::default()
    };
    let mut dep = deploy(&program, apps, lossy, pisa::ResourceModel::default()).expect("deploys");
    let s1 = dep.switch("s1");
    dep.net
        .host_app_mut::<KvsServer>(HostId(server_id))
        .unwrap()
        .cache_switch = Some(s1);
    dep.net.run();
    let client = dep.net.host_app::<KvsClient>(HostId(1)).unwrap();
    assert!(dep.net.stats.link_drops > 0);
    assert!(
        client.samples.len() < nops,
        "some operations should be lost"
    );
    assert!(!client.samples.is_empty(), "some should complete");
    assert_eq!(client.corrupt, 0, "no completed GET may be corrupt");
}

#[test]
fn reordered_fragments_reassemble() {
    // Multi-packet windows with adversarial fragment ordering (beyond
    // the netsim FIFO model): push fragments in reverse and shuffled
    // orders through the reassembler.
    use ncl::model::{Chunk, KernelId, Window};
    let vals: Vec<u32> = (0..256).collect();
    let w = Window {
        kernel: KernelId(1),
        seq: 3,
        sender: HostId(1),
        from: NodeId::Host(HostId(1)),
        last: true,
        chunks: vec![Chunk {
            offset: 128,
            data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
        }],
        ext: vec![],
    };
    let frags = ncl::ncp::codec::fragment_window(&w, 0, 200);
    assert!(frags.len() >= 4);
    for perm in 0..4u64 {
        let mut order: Vec<usize> = (0..frags.len()).collect();
        // Simple deterministic shuffles.
        match perm {
            1 => order.reverse(),
            2 => order.rotate_left(frags.len() / 2),
            3 => {
                order.reverse();
                order.rotate_left(1);
            }
            _ => {}
        }
        let mut r = ncl::ncp::codec::Reassembler::new();
        let mut got = None;
        for &i in &order {
            if let Some(win) = r.push(&frags[i]).unwrap() {
                got = Some(win);
            }
        }
        let got = got.unwrap_or_else(|| panic!("permutation {perm} failed to complete"));
        assert_eq!(got.chunks[0].data, w.chunks[0].data, "permutation {perm}");
        assert_eq!(got.chunks[0].offset, w.chunks[0].offset);
    }
}

#[test]
fn lost_fragment_keeps_window_pending() {
    use ncl::model::{Chunk, KernelId, Window};
    let vals: Vec<u32> = (0..64).collect();
    let w = Window {
        kernel: KernelId(1),
        seq: 0,
        sender: HostId(1),
        from: NodeId::Host(HostId(1)),
        last: false,
        chunks: vec![Chunk {
            offset: 0,
            data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
        }],
        ext: vec![],
    };
    let frags = ncl::ncp::codec::fragment_window(&w, 0, 100);
    assert!(frags.len() >= 3);
    let mut r = ncl::ncp::codec::Reassembler::new();
    // Drop the middle fragment.
    for (i, f) in frags.iter().enumerate() {
        if i == 1 {
            continue;
        }
        assert!(r.push(f).unwrap().is_none(), "incomplete window completed");
    }
    assert_eq!(r.pending(), 1);
    // The late fragment finally completes it.
    let got = r.push(&frags[1]).unwrap().expect("completes");
    assert_eq!(got.chunks[0].data, w.chunks[0].data);
}
