//! Failure injection: packet loss, reordering and duplication against
//! the full system. Without NCP-R the properties are *integrity* ones
//! (lost windows may stall progress but never corrupt results); with
//! NCP-R enabled the properties are *completion* ones — both paper
//! applications must finish under loss + reordering + duplication with
//! results bit-identical to a lossless run, while the compiler-lowered
//! replay filter keeps switch state at single-delivery semantics.

use ncl::core::apps::{allreduce_source, kvs_source, KvsClient, KvsOp, KvsServer};
use ncl::core::control::ControlPlane;
use ncl::core::deploy::deploy;
use ncl::core::fastpath::FastPathSwitch;
use ncl::core::nclc::{compile, CompileConfig, ReplayFilter};
use ncl::core::runtime::{NclHost, OutInvocation, TypedArray};
use ncl::model::{HostId, NodeId, ScalarType, Value};
use ncl::ncp::reliable::ReliableConfig;
use ncl::netsim::{HostApp, LinkSpec};
use proptest::prelude::*;
use std::collections::HashMap;

#[path = "common/corpus.rs"]
mod corpus;

#[test]
fn lost_contributions_stall_but_never_corrupt() {
    // Drop every 5th packet on the links: some aggregation slots never
    // fill, so their results are never broadcast — but every broadcast
    // that *does* arrive carries a correct full sum.
    let n = 4usize;
    let data_len = 64usize;
    let win = 8usize;
    let src = allreduce_source(data_len, win);
    let and = format!("hosts worker {n}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    let program = compile(&src, &and, &cfg).expect("compiles");
    let kid = program.kernel_ids["allreduce"];
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=n as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = vec![w as i32; data_len];
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % n as u16 + 1)),
            start: 0,
            gap: 0,
        })
        .unwrap();
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, data_len), (ScalarType::Bool, 1)],
        )
        .unwrap();
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let lossy = LinkSpec {
        drop_every: 5,
        ..LinkSpec::default()
    };
    let mut dep = deploy(&program, apps, lossy, pisa::ResourceModel::default()).expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(n as u32),
    );
    dep.net.run();
    assert!(dep.net.stats().link_drops > 0, "loss injection must fire");
    // Integrity: every received slot element is either untouched (0) or
    // the exact full sum 1+2+3+4 = 10.
    let expected = (1..=n as i32).sum::<i32>();
    let mut any_received = false;
    for w in 1..=n as u16 {
        let host = dep.net.host_app::<NclHost>(HostId(w)).unwrap();
        let mem = host.memory(kid).unwrap();
        for i in 0..data_len {
            let v = mem.arrays[0][i].as_i128() as i32;
            assert!(
                v == 0 || v == expected,
                "worker {w} element {i} has partial sum {v}"
            );
            any_received |= v == expected;
        }
    }
    assert!(any_received, "some slots should still complete");
}

#[test]
fn kvs_loss_reduces_throughput_not_integrity() {
    let val_words = 4usize;
    let server_id = 2u16;
    let src = kvs_source(server_id, 8, val_words);
    let and = "hosts client 1\nswitch s1\nhost server\nlink client* s1\nlink server s1\n";
    let mut cfg = CompileConfig::default();
    cfg.masks
        .insert("query".into(), vec![1, val_words as u16, 1]);
    let program = compile(&src, and, &cfg).expect("compiles");
    let kernel = program.kernel_ids["query"];

    let mut schedule = vec![KvsOp {
        at: 0,
        key: 4,
        put: true,
    }];
    for i in 1..=30u64 {
        schedule.push(KvsOp {
            at: i * 1_000_000,
            key: 4,
            put: false,
        });
    }
    let nops = schedule.len();
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    apps.insert(
        "client1".into(),
        Box::new(KvsClient::new(
            NodeId::Host(HostId(server_id)),
            HostId(server_id),
            kernel,
            val_words,
            schedule,
        )),
    );
    apps.insert(
        "server".into(),
        Box::new(KvsServer::new(
            kernel,
            val_words,
            None,
            Some(ControlPlane::new(program.switch("s1").unwrap())),
            8,
        )),
    );
    let lossy = LinkSpec {
        drop_every: 7,
        ..LinkSpec::default()
    };
    let mut dep = deploy(&program, apps, lossy, pisa::ResourceModel::default()).expect("deploys");
    let s1 = dep.switch("s1");
    dep.net
        .host_app_mut::<KvsServer>(HostId(server_id))
        .unwrap()
        .cache_switch = Some(s1);
    dep.net.run();
    let client = dep.net.host_app::<KvsClient>(HostId(1)).unwrap();
    assert!(dep.net.stats().link_drops > 0);
    assert!(
        client.samples.len() < nops,
        "some operations should be lost"
    );
    assert!(!client.samples.is_empty(), "some should complete");
    assert_eq!(client.corrupt, 0, "no completed GET may be corrupt");
}

/// The 10% loss + burst + duplication + reordering link used by the
/// NCP-R completion tests. Fully deterministic: probabilistic loss uses
/// per-link seeded PRNGs, the other knobs are counters.
fn hostile_link() -> LinkSpec {
    LinkSpec {
        loss: 0.10,
        burst_len: 2,
        dup_every: 6,
        jitter_every: 5,
        jitter: 30_000,
        ..LinkSpec::default()
    }
}

/// One reliable allreduce run: returns per-worker result memories, the
/// switch's accum/count registers, the replay-filter duplicate count
/// and the total retransmissions.
#[allow(clippy::type_complexity)]
fn run_reliable_allreduce(link: LinkSpec) -> (Vec<Vec<i64>>, Vec<u64>, u64, u64) {
    let n = 4usize;
    let data_len = 64usize;
    let win = 8usize;
    let slots = data_len / win;
    let src = allreduce_source(data_len, win);
    let and = format!("hosts worker {n}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    cfg.replay_filters.insert(
        "allreduce".into(),
        ReplayFilter {
            senders: 8,
            slots: slots as u16,
        },
    );
    let program = compile(&src, &and, &cfg).expect("compiles");
    let kid = program.kernel_ids["allreduce"];
    let rcfg = ReliableConfig {
        filter_slots: slots,
        ..ReliableConfig::default()
    };
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=n as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = vec![w as i32; data_len];
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % n as u16 + 1)),
            start: 0,
            gap: 0,
        })
        .unwrap();
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, data_len), (ScalarType::Bool, 1)],
        )
        .unwrap();
        host.done_on_flag(kid, 1);
        host.enable_reliability(rcfg);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let mut dep = deploy(&program, apps, link, pisa::ResourceModel::default()).expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(n as u32),
    );
    dep.net.run();
    let dups = dep.net.switch_dup_suppressed(s1);
    let mut memories = Vec::new();
    let mut retransmits = 0;
    for w in 1..=n as u16 {
        let host = dep.net.host_app::<NclHost>(HostId(w)).unwrap();
        assert!(
            host.done_at.is_some(),
            "worker {w} must complete exactly-once delivery (in flight: {:?})",
            host.sender_stats()
        );
        retransmits += host
            .sender_stats()
            .expect("reliability enabled")
            .retransmits;
        let mem = host.memory(kid).unwrap();
        memories.push(
            (0..data_len)
                .map(|i| mem.arrays[0][i].as_i128() as i64)
                .collect(),
        );
    }
    let pipe = dep.net.switch_pipeline_mut(s1).unwrap();
    let mut regs = Vec::new();
    for i in 0..data_len {
        regs.push(cp.read_register(pipe, "accum", i).unwrap().bits());
    }
    for i in 0..slots {
        regs.push(cp.read_register(pipe, "count", i).unwrap().bits());
    }
    (memories, regs, dups, retransmits)
}

#[test]
fn reliable_allreduce_completes_bit_identical_under_loss() {
    let (clean_mem, clean_regs, clean_dups, clean_rtx) =
        run_reliable_allreduce(LinkSpec::default());
    assert_eq!(clean_dups, 0, "lossless run sees no replays");
    assert_eq!(clean_rtx, 0, "lossless run never retransmits");
    let expected = (1..=4i64).sum::<i64>();
    assert!(clean_mem.iter().all(|m| m.iter().all(|&v| v == expected)));

    let (lossy_mem, lossy_regs, lossy_dups, lossy_rtx) = run_reliable_allreduce(hostile_link());
    // Completion under 10% loss + bursts + duplication + reordering,
    // bit-identical to the lossless run.
    assert_eq!(lossy_mem, clean_mem, "results must be bit-identical");
    assert_eq!(
        lossy_regs, clean_regs,
        "switch state must match single-delivery semantics"
    );
    assert!(lossy_rtx > 0, "loss must force retransmissions");
    assert!(
        lossy_dups > 0,
        "the replay filter must suppress duplicates (retransmits: {lossy_rtx})"
    );
}

/// One reliable KVS run: returns the completed `(key, put)` samples,
/// the server's final store, the corrupt count and the retransmissions.
#[allow(clippy::type_complexity)]
fn run_reliable_kvs(link: LinkSpec) -> (Vec<(u64, bool)>, Vec<(u64, Vec<u32>)>, u64, u64) {
    let val_words = 4usize;
    let server_id = 2u16;
    let src = kvs_source(server_id, 8, val_words);
    let and = "hosts client 1\nswitch s1\nhost server\nlink client* s1\nlink server s1\n";
    let mut cfg = CompileConfig::default();
    cfg.masks
        .insert("query".into(), vec![1, val_words as u16, 1]);
    let program = compile(&src, and, &cfg).expect("compiles");
    let kernel = program.kernel_ids["query"];

    let mut schedule = vec![
        KvsOp {
            at: 0,
            key: 4,
            put: true,
        },
        KvsOp {
            at: 0,
            key: 9,
            put: true,
        },
    ];
    for i in 1..=30u64 {
        schedule.push(KvsOp {
            at: i * 1_000_000,
            key: if i % 3 == 0 { 9 } else { 4 },
            put: i == 15, // a mid-stream PUT exercises invalidation too
        });
    }
    let nops = schedule.len();
    let mut client = KvsClient::new(
        NodeId::Host(HostId(server_id)),
        HostId(server_id),
        kernel,
        val_words,
        schedule,
    );
    // A short RTO (well under the 1 ms op spacing) so the initial PUT
    // lands before the first dependent GET even when it is lost.
    client.enable_retransmit(ReliableConfig {
        rto: 200_000,
        max_rto: 1_600_000,
        ..ReliableConfig::default()
    });
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    apps.insert("client1".into(), Box::new(client));
    apps.insert(
        "server".into(),
        Box::new(KvsServer::new(
            kernel,
            val_words,
            None,
            Some(ControlPlane::new(program.switch("s1").unwrap())),
            8,
        )),
    );
    let mut dep = deploy(&program, apps, link, pisa::ResourceModel::default()).expect("deploys");
    let s1 = dep.switch("s1");
    dep.net
        .host_app_mut::<KvsServer>(HostId(server_id))
        .unwrap()
        .cache_switch = Some(s1);
    dep.net.run();
    let client = dep.net.host_app::<KvsClient>(HostId(1)).unwrap();
    assert_eq!(
        client.samples.len(),
        nops,
        "every operation must complete ({} outstanding, {} retransmits)",
        client.outstanding(),
        client.retransmits()
    );
    let mut samples: Vec<(u64, bool)> = client.samples.iter().map(|s| (s.key, s.put)).collect();
    samples.sort_unstable();
    let retransmits = client.retransmits();
    let corrupt = client.corrupt;
    let server = dep.net.host_app::<KvsServer>(HostId(server_id)).unwrap();
    let mut store: Vec<(u64, Vec<u32>)> =
        server.store.iter().map(|(k, v)| (*k, v.clone())).collect();
    store.sort_unstable();
    (samples, store, corrupt, retransmits)
}

#[test]
fn reliable_kvs_completes_bit_identical_under_loss() {
    let (clean_samples, clean_store, clean_corrupt, clean_rtx) =
        run_reliable_kvs(LinkSpec::default());
    assert_eq!(clean_corrupt, 0);
    assert_eq!(clean_rtx, 0, "lossless run never retransmits");

    let (lossy_samples, lossy_store, lossy_corrupt, lossy_rtx) = run_reliable_kvs(hostile_link());
    assert_eq!(lossy_corrupt, 0, "no completed GET may be corrupt");
    assert_eq!(
        lossy_samples, clean_samples,
        "the completed operation set must be bit-identical"
    );
    assert_eq!(
        lossy_store, clean_store,
        "the server store must be bit-identical"
    );
    assert!(lossy_rtx > 0, "loss must force retransmissions");
}

#[test]
fn reordered_fragments_reassemble() {
    // Multi-packet windows with adversarial fragment ordering (beyond
    // the netsim FIFO model): push fragments in reverse and shuffled
    // orders through the reassembler.
    use ncl::model::{Chunk, KernelId, Window};
    let vals: Vec<u32> = (0..256).collect();
    let w = Window {
        kernel: KernelId(1),
        seq: 3,
        sender: HostId(1),
        from: NodeId::Host(HostId(1)),
        last: true,
        chunks: vec![Chunk {
            offset: 128,
            data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
        }],
        ext: vec![],
    };
    let frags = ncl::ncp::codec::fragment_window(&w, 0, 200);
    assert!(frags.len() >= 4);
    for perm in 0..4u64 {
        let mut order: Vec<usize> = (0..frags.len()).collect();
        // Simple deterministic shuffles.
        match perm {
            1 => order.reverse(),
            2 => order.rotate_left(frags.len() / 2),
            3 => {
                order.reverse();
                order.rotate_left(1);
            }
            _ => {}
        }
        let mut r = ncl::ncp::codec::Reassembler::new();
        let mut got = None;
        for &i in &order {
            if let Some(win) = r.push(&frags[i]).unwrap() {
                got = Some(win);
            }
        }
        let got = got.unwrap_or_else(|| panic!("permutation {perm} failed to complete"));
        assert_eq!(got.chunks[0].data, w.chunks[0].data, "permutation {perm}");
        assert_eq!(got.chunks[0].offset, w.chunks[0].offset);
    }
}

#[test]
fn lost_fragment_keeps_window_pending() {
    use ncl::model::{Chunk, KernelId, Window};
    let vals: Vec<u32> = (0..64).collect();
    let w = Window {
        kernel: KernelId(1),
        seq: 0,
        sender: HostId(1),
        from: NodeId::Host(HostId(1)),
        last: false,
        chunks: vec![Chunk {
            offset: 0,
            data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
        }],
        ext: vec![],
    };
    let frags = ncl::ncp::codec::fragment_window(&w, 0, 100);
    assert!(frags.len() >= 3);
    let mut r = ncl::ncp::codec::Reassembler::new();
    // Drop the middle fragment.
    for (i, f) in frags.iter().enumerate() {
        if i == 1 {
            continue;
        }
        assert!(r.push(f).unwrap().is_none(), "incomplete window completed");
    }
    assert_eq!(r.pending(), 1);
    // The late fragment finally completes it.
    let got = r.push(&frags[1]).unwrap().expect("completes");
    assert_eq!(got.chunks[0].data, w.chunks[0].data);
}

/// Exactly-once switch execution, callable from both the proptest and
/// the shared-corpus replay: for the given duplication pattern over
/// the worker windows, the compiler-lowered replay filter leaves the
/// source-level switch state identical to a single-delivery run, and
/// counts every suppressed duplicate.
fn check_replay_filter_single_delivery(dups: &[usize]) {
    use ncl::model::{Chunk, KernelId, Window};
    use ncl::netsim::FastDatapath;
    let src = allreduce_source(16, 4);
    let and = "hosts worker 3\nswitch s1\nlink worker* s1\n";
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![4]);
    cfg.masks.insert("result".into(), vec![4]);
    cfg.replay_filters.insert(
        "allreduce".into(),
        ReplayFilter {
            senders: 4,
            slots: 4,
        },
    );
    let program = compile(&src, and, &cfg).expect("compiles");
    let kid = program.kernel_ids["allreduce"];
    let ext = program.checked.window_ext.size();
    let mut noisy = FastPathSwitch::from_program(&program, "s1").unwrap();
    let mut clean = FastPathSwitch::from_program(&program, "s1").unwrap();
    assert!(noisy.ctrl_wr("nworkers", Value::u32(3)));
    assert!(clean.ctrl_wr("nworkers", Value::u32(3)));
    let window = |worker: u16, seq: u32| Window {
        kernel: KernelId(kid),
        seq,
        sender: HostId(worker),
        from: NodeId::Host(HostId(worker)),
        last: seq == 3,
        chunks: vec![Chunk {
            offset: seq * 16,
            data: (0..4i32)
                .map(|i| worker as i32 * 10 + i)
                .flat_map(|v| v.to_be_bytes())
                .collect(),
        }],
        ext: vec![],
    };
    let mut expected_dups = 0u64;
    for (i, &extra) in dups.iter().enumerate() {
        let worker = (i % 3) as u16 + 1;
        let seq = (i / 3) as u32;
        let bytes = ncl::ncp::codec::encode_window(&window(worker, seq), ext);
        clean.process_window(&bytes).expect("clean processes");
        for _ in 0..=extra {
            noisy.process_window(&bytes).expect("noisy processes");
        }
        expected_dups += extra as u64;
    }
    for i in 0..16 {
        assert_eq!(
            noisy.register_read("accum", i),
            clean.register_read("accum", i),
            "accum[{i}]"
        );
    }
    for i in 0..4 {
        assert_eq!(
            noisy.register_read("count", i),
            clean.register_read("count", i),
            "count[{i}]"
        );
    }
    assert_eq!(noisy.register_prefix_sum("__nclr_dups_"), expected_dups);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replay_filter_preserves_single_delivery_state(
        dups in proptest::collection::vec(0usize..3, 12),
    ) {
        check_replay_filter_single_delivery(&dups);
    }
}

/// Replays this file's section of the shared regression corpus
/// (tests/corpus/shared.proptest-regressions): the pinned duplication
/// patterns — no duplicates (the filter must not suppress first
/// deliveries), every window tripled (maximum pressure on the filter
/// slots), and a mixed schedule — run before any generated case would,
/// exactly as upstream proptest's failure persistence would replay
/// them.
#[test]
fn corpus_duplication_patterns_keep_single_delivery_state() {
    let entries = corpus::entries_for(
        "tests/failure_injection.rs::replay_filter_preserves_single_delivery_state",
    );
    assert!(!entries.is_empty(), "corpus section must not be pruned");
    for e in &entries {
        let dups: Vec<usize> = corpus::list(&e.payload, "dups");
        assert_eq!(dups.len(), 12, "recorded pattern covers 3 workers × 4 seqs");
        check_replay_filter_single_delivery(&dups);
    }
}

/// The unified metrics registry must account for *every* frame under
/// failure injection: the registry counters are the same atomics the
/// legacy `SenderStats`/`ReceiverStats`/`SimStats` snapshots read, so
/// snapshot and registry can never disagree — and the transport-level
/// conservation law `windows_sent = tracked + retransmits` holds
/// exactly (every tracked window gets one first transmission; every
/// retransmit is counted; abandoned windows were already sent).
#[test]
fn metrics_registry_accounts_for_every_frame() {
    let n = 4usize;
    let data_len = 64usize;
    let win = 8usize;
    let slots = data_len / win;
    let src = allreduce_source(data_len, win);
    let and = format!("hosts worker {n}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    cfg.replay_filters.insert(
        "allreduce".into(),
        ReplayFilter {
            senders: 8,
            slots: slots as u16,
        },
    );
    let program = compile(&src, &and, &cfg).expect("compiles");
    let kid = program.kernel_ids["allreduce"];
    let rcfg = ReliableConfig {
        filter_slots: slots,
        ..ReliableConfig::default()
    };
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=n as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = vec![w as i32; data_len];
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % n as u16 + 1)),
            start: 0,
            gap: 0,
        })
        .unwrap();
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, data_len), (ScalarType::Bool, 1)],
        )
        .unwrap();
        host.done_on_flag(kid, 1);
        host.enable_reliability(rcfg);
        host.enable_telemetry(1.0, 1024);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let mut dep = deploy(
        &program,
        apps,
        hostile_link(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(n as u32),
    );
    dep.net.run();

    // The simulator's registry mirrors its legacy snapshot exactly.
    let sim = dep.net.stats();
    let reg = dep.net.metrics().clone();
    let c = |name: &str| reg.counter_value(name).unwrap_or(0);
    assert_eq!(c("sim.delivered"), sim.delivered);
    assert_eq!(c("sim.link_drops"), sim.link_drops);
    assert_eq!(c("sim.link_dups"), sim.link_dups);
    assert_eq!(c("sim.unroutable"), sim.unroutable);
    assert_eq!(c("sim.events"), sim.events);
    assert_eq!(c("sim.bytes_sent"), sim.bytes_sent);
    assert!(sim.link_drops > 0, "loss injection must fire");
    // The deployment gate counters registered on the same registry.
    assert_eq!(c("deploy.hosts_loaded"), n as u64);
    assert_eq!(c("deploy.switches_loaded"), 1);
    assert_eq!(c("deploy.lint_denied"), 0);

    let mut total_rtx = 0u64;
    for w in 1..=n as u16 {
        let host = dep.net.host_app_mut::<NclHost>(HostId(w)).unwrap();
        assert!(host.done_at.is_some(), "worker {w} completes under loss");
        let sstats = host.sender_stats().expect("reliability enabled");
        let rstats = host.receiver_stats().expect("reliability enabled");
        let hreg = host.metrics().clone();
        let hc = |name: &str| hreg.counter_value(name).unwrap_or(u64::MAX);
        // Registry == snapshot, counter for counter.
        assert_eq!(hc("ncpr.sender.tracked"), sstats.tracked, "worker {w}");
        assert_eq!(hc("ncpr.sender.retransmits"), sstats.retransmits);
        assert_eq!(hc("ncpr.sender.acked"), sstats.acked);
        assert_eq!(hc("ncpr.sender.abandoned"), sstats.abandoned);
        assert_eq!(hc("ncpr.sender.cwnd_cuts"), sstats.cwnd_cuts);
        assert_eq!(hc("ncpr.receiver.delivered"), rstats.delivered);
        assert_eq!(hc("ncpr.receiver.duplicates"), rstats.duplicates);
        assert_eq!(hc("host.windows_sent"), host.windows_sent);
        assert_eq!(hc("host.windows_received"), host.windows_received);
        // Conservation: every frame this host put on the wire is a
        // first transmission of a tracked window or a counted
        // retransmit — nothing leaks, nothing is double-counted.
        assert_eq!(
            host.windows_sent,
            sstats.tracked + sstats.retransmits,
            "worker {w}: sent = tracked + retransmits"
        );
        // Every window counted received was a fresh delivery.
        assert_eq!(host.windows_received, rstats.delivered, "worker {w}");
        // Telemetry at sampling 1.0: every delivered window of the
        // exactly-once run carries an assembled trace.
        let traces = host.take_traces();
        assert_eq!(
            traces.len() as u64,
            host.windows_received,
            "worker {w}: every received window traced"
        );
        assert!(traces.iter().all(|t| t.hops.len() == 1));
        total_rtx += sstats.retransmits;
    }
    assert!(total_rtx > 0, "the hostile link must force retransmissions");
}

/// One reliable allreduce run with the ncscope event log attached to
/// every layer and telemetry at sampling 1.0, with per-link fault
/// injection. Returns the diagnosis (run against the deployed AND path
/// and kernel versions) plus the switch's wire id.
fn run_diagnosed_allreduce(
    overrides: Vec<(String, String, LinkSpec)>,
) -> (ncl::nctel::scope::analysis::Diagnosis, u16) {
    use ncl::core::deploy::{and_switch_path, deploy_opts, deployed_versions, DeployOptions};
    use ncl::nctel::scope::analysis::{diagnose, DiagnosisConfig};
    use ncl::nctel::Scope;
    let n = 3usize;
    let data_len = 64usize;
    let win = 8usize;
    let slots = data_len / win;
    let src = allreduce_source(data_len, win);
    let and = format!("hosts worker {n}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    cfg.replay_filters.insert(
        "allreduce".into(),
        ReplayFilter {
            senders: 8,
            slots: slots as u16,
        },
    );
    let program = compile(&src, &and, &cfg).expect("compiles");
    let kid = program.kernel_ids["allreduce"];
    let rcfg = ReliableConfig {
        filter_slots: slots,
        ..ReliableConfig::default()
    };
    let scope = Scope::new(1 << 15);
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=n as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = vec![w as i32; data_len];
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % n as u16 + 1)),
            start: 0,
            gap: 0,
        })
        .unwrap();
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, data_len), (ScalarType::Bool, 1)],
        )
        .unwrap();
        host.done_on_flag(kid, 1);
        host.enable_reliability(rcfg);
        host.enable_telemetry(1.0, 1024);
        host.enable_scope(&scope);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let opts = DeployOptions {
        link_overrides: overrides,
        scope: Some(scope.clone()),
        ..DeployOptions::default()
    };
    let mut dep = deploy_opts(&program, apps, opts).expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(n as u32),
    );
    dep.net.run();
    let mut traces = Vec::new();
    for w in 1..=n as u16 {
        let host = dep.net.host_app_mut::<NclHost>(HostId(w)).unwrap();
        assert!(host.done_at.is_some(), "worker {w} completes under NCP-R");
        traces.extend(host.take_traces());
    }
    // The star topology gives every worker pair the same one-switch
    // path, so one lookup serves all senders.
    let expected_path = and_switch_path(&program, "worker1", "worker2");
    assert_eq!(expected_path.len(), 1, "star topology crosses s1 only");
    let s1_wire = expected_path[0];
    let dcfg = DiagnosisConfig {
        expected_path,
        deployed_versions: deployed_versions(&program),
    };
    (diagnose(&scope.decoded(), &traces, &dcfg), s1_wire)
}

/// Ground truth for the tentpole acceptance criterion: for *every*
/// choice of injected single-link deterministic loss, the diagnosis
/// engine must name exactly the injected link as the primary loss
/// locus — from drop-event evidence, with the run still completing
/// under NCP-R.
#[test]
fn diagnosis_names_the_injected_faulty_link() {
    use ncl::nctel::scope::analysis::WindowOutcome;
    for faulty in 1..=3u16 {
        let overrides = vec![(
            format!("worker{faulty}"),
            "s1".to_string(),
            LinkSpec {
                drop_every: 4,
                ..LinkSpec::default()
            },
        )];
        let (d, s1_wire) = run_diagnosed_allreduce(overrides);
        assert!(
            d.count(WindowOutcome::Delivered) > 0,
            "faulty worker{faulty}: NCP-R still delivers"
        );
        assert_eq!(
            d.count(WindowOutcome::Abandoned),
            0,
            "faulty worker{faulty}: nothing abandoned at 25% deterministic loss"
        );
        // Every observed drop touches the injected link's endpoints…
        for (&(from, to), &count) in &d.link_drops {
            assert!(
                (from == faulty && to == s1_wire) || (from == s1_wire && to == faulty),
                "faulty worker{faulty}: unexpected drop row {from:#x} -> {to:#x} ({count})"
            );
        }
        // …and the verdict names exactly that link.
        assert_eq!(
            d.primary_loss_locus(),
            Some((faulty, s1_wire)),
            "faulty worker{faulty}: diagnosis must blame worker{faulty} <-> s1"
        );
        // Deployed-version cross-check: no window raced a redeploy.
        assert!(
            d.verdicts.iter().all(|v| !v.stale_version),
            "no stale kernel versions in a static deployment"
        );
    }
}

/// Duplication (not loss) on one link: the heatmap localizes the
/// suppressions at the switch replay filter, the loss analysis stays
/// silent, and every window still delivers exactly once.
#[test]
fn diagnosis_dup_heatmap_localizes_duplication() {
    use ncl::nctel::scope::analysis::WindowOutcome;
    let overrides = vec![(
        "worker2".to_string(),
        "s1".to_string(),
        LinkSpec {
            dup_every: 3,
            ..LinkSpec::default()
        },
    )];
    let (d, s1_wire) = run_diagnosed_allreduce(overrides);
    assert!(
        d.primary_loss_locus().is_none(),
        "pure duplication must not produce a loss locus"
    );
    assert_eq!(d.count(WindowOutcome::Abandoned), 0);
    assert!(d.count(WindowOutcome::Delivered) > 0);
    let at_switch = d.dup_by_node.get(&s1_wire).copied().unwrap_or(0);
    assert!(
        at_switch > 0,
        "duplicated windows must be suppressed at the s1 replay filter \
         (heatmap: {:?})",
        d.dup_by_node
    );
    // Duplicates never came from the clean workers' access links.
    assert!(
        d.dup_by_node
            .keys()
            .all(|&node| node == s1_wire || node == 2),
        "dup suppressions localize to s1 and the duplicated path \
         (heatmap: {:?})",
        d.dup_by_node
    );
}
