//! Full-system integration test of the paper's Fig. 5 KVS cache:
//! clients and a storage server around one programmable switch, the
//! compiled `query` kernel serving GETs from switch registers, cache
//! fills and invalidations through the control plane, and the
//! server-only baseline for comparison.

use ncl::core::apps::{kvs_source, KvsClient, KvsOp, KvsServer};
use ncl::core::control::ControlPlane;
use ncl::core::deploy::deploy;
use ncl::core::nclc::{compile, CompileConfig, CompiledProgram};
use ncl::model::{HostId, NodeId};
use ncl::netsim::{HostApp, LinkSpec};
use std::collections::HashMap;

const VAL_WORDS: usize = 8;
const SLOTS: usize = 16;
const AND: &str = "hosts client 2\nswitch s1\nhost server\nlink client* s1\nlink server s1\n";
const SERVER_ID: u16 = 3; // declared after two clients

fn program() -> CompiledProgram {
    let src = kvs_source(SERVER_ID, SLOTS, VAL_WORDS);
    let mut cfg = CompileConfig::default();
    cfg.masks
        .insert("query".into(), vec![1, VAL_WORDS as u16, 1]);
    compile(&src, AND, &cfg).expect("KVS program compiles")
}

struct Setup {
    dep: ncl::core::deploy::Deployment,
    kernel: u16,
}

/// Builds the deployed system. `with_cache` loads the compiled pipeline
/// onto s1; otherwise s1 plain-forwards (the baseline).
fn setup(with_cache: bool, client_ops: Vec<Vec<KvsOp>>) -> Setup {
    let program = program();
    let kernel = program.kernel_ids["query"];
    let server_node = NodeId::Host(HostId(SERVER_ID));
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for (i, ops) in client_ops.into_iter().enumerate() {
        apps.insert(
            format!("client{}", i + 1),
            Box::new(KvsClient::new(
                server_node,
                HostId(SERVER_ID),
                kernel,
                VAL_WORDS,
                ops,
            )),
        );
    }
    let control = if with_cache {
        Some(ControlPlane::new(program.switch("s1").unwrap()))
    } else {
        None
    };
    apps.insert(
        "server".to_string(),
        Box::new(KvsServer::new(
            kernel,
            VAL_WORDS,
            None, // patched below once the switch id is known
            control.clone(),
            SLOTS,
        )),
    );
    let mut stripped = program.clone();
    if !with_cache {
        stripped.switches.clear(); // deploy a plain forwarder
    }
    let mut dep = deploy(
        &stripped,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    if with_cache {
        let s1 = dep.switch("s1");
        let server = dep
            .net
            .host_app_mut::<KvsServer>(HostId(SERVER_ID))
            .expect("server app");
        server.cache_switch = Some(s1);
    }
    Setup { dep, kernel }
}

fn ms(n: u64) -> u64 {
    n * 1_000_000
}

#[test]
fn gets_and_puts_roundtrip_without_cache() {
    // Baseline sanity: pure client/server operation through a plain
    // forwarding switch.
    let ops = vec![
        KvsOp {
            at: 0,
            key: 7,
            put: true,
        },
        KvsOp {
            at: ms(1),
            key: 7,
            put: false,
        },
        KvsOp {
            at: ms(2),
            key: 99,
            put: false,
        }, // never written: zeros... counted corrupt
    ];
    let mut s = setup(false, vec![ops, vec![]]);
    s.dep.net.run();
    let client = s.dep.net.host_app::<KvsClient>(HostId(1)).unwrap();
    assert_eq!(client.samples.len(), 3);
    // The GET of key 7 returned the PUT value.
    let get7 = client
        .samples
        .iter()
        .find(|x| !x.put && x.key == 7)
        .unwrap();
    assert!(!get7.from_cache);
    // key 99 was never written: its zeros don't match the pattern.
    assert_eq!(client.corrupt, 1);
    let server = s.dep.net.host_app::<KvsServer>(HostId(SERVER_ID)).unwrap();
    assert_eq!(server.served, 3);
}

#[test]
fn hot_keys_get_cached_and_served_by_the_switch() {
    // Repeated GETs of one key: the first two go to the server (and
    // trip the hot threshold), later ones reflect from the switch.
    let mut ops = vec![KvsOp {
        at: 0,
        key: 5,
        put: true,
    }];
    for i in 1..=12u64 {
        ops.push(KvsOp {
            at: ms(i),
            key: 5,
            put: false,
        });
    }
    let mut s = setup(true, vec![ops, vec![]]);
    s.dep.net.run();
    let client = s.dep.net.host_app::<KvsClient>(HostId(1)).unwrap();
    assert_eq!(client.corrupt, 0, "cached values must match the store");
    let hits = client.samples.iter().filter(|x| x.from_cache).count();
    assert!(hits >= 8, "expected most GETs cached, got {hits}/12");
    // Cache hits are faster than server round trips.
    let hit_lat: Vec<u64> = client
        .samples
        .iter()
        .filter(|x| x.from_cache)
        .map(|x| x.latency)
        .collect();
    let miss_lat: Vec<u64> = client
        .samples
        .iter()
        .filter(|x| !x.put && !x.from_cache)
        .map(|x| x.latency)
        .collect();
    let avg = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
    assert!(
        avg(&hit_lat) < avg(&miss_lat),
        "hits {:?} should beat misses {:?}",
        avg(&hit_lat),
        avg(&miss_lat)
    );
    // Server load dropped: it saw the PUT, the first few GETs, nothing
    // after the fill.
    let server = s.dep.net.host_app::<KvsServer>(HostId(SERVER_ID)).unwrap();
    assert!(
        server.served < 13,
        "server served {} of 13 ops",
        server.served
    );
    let stats = s.dep.net.switch_stats(s.dep.switch("s1")).unwrap();
    assert!(stats.reflected >= hits as u64);
    let _ = s.kernel;
}

#[test]
fn puts_invalidate_the_cached_value() {
    // Cache key 5, then PUT a new value, then GET again: the response
    // must be the new value (the kernel invalidates on the PUT's way to
    // the server; the server refreshes the cache afterwards).
    let mut ops = vec![KvsOp {
        at: 0,
        key: 5,
        put: true,
    }];
    for i in 1..=4u64 {
        ops.push(KvsOp {
            at: ms(i),
            key: 5,
            put: false,
        });
    }
    // Overwrite at 6 ms, read at 7.. the value pattern is keyed so the
    // second PUT writes the same pattern; to detect staleness we rely on
    // the Valid bit: after invalidation, the GET must come from the
    // server until the refresh lands.
    ops.push(KvsOp {
        at: ms(6),
        key: 5,
        put: true,
    });
    ops.push(KvsOp {
        at: ms(6) + 50_000, // between invalidation and cache refresh
        key: 5,
        put: false,
    });
    let mut s = setup(true, vec![ops, vec![]]);
    s.dep.net.run();
    let client = s.dep.net.host_app::<KvsClient>(HostId(1)).unwrap();
    assert_eq!(client.corrupt, 0);
    // The GET right after the PUT was a miss (Valid=false).
    let after_put = client
        .samples
        .iter()
        .find(|x| !x.put && x.latency > 0 && !x.from_cache)
        .expect("at least one server-served GET after invalidation");
    assert!(!after_put.from_cache);
}

#[test]
fn two_clients_share_the_cache() {
    let c1: Vec<KvsOp> = std::iter::once(KvsOp {
        at: 0,
        key: 9,
        put: true,
    })
    .chain((1..=6u64).map(|i| KvsOp {
        at: ms(i),
        key: 9,
        put: false,
    }))
    .collect();
    // Client 2 starts reading after the cache is warm.
    let c2: Vec<KvsOp> = (8..=12u64)
        .map(|i| KvsOp {
            at: ms(i),
            key: 9,
            put: false,
        })
        .collect();
    let mut s = setup(true, vec![c1, c2]);
    s.dep.net.run();
    let c2app = s.dep.net.host_app::<KvsClient>(HostId(2)).unwrap();
    assert_eq!(c2app.corrupt, 0);
    let hits = c2app.samples.iter().filter(|x| x.from_cache).count();
    assert_eq!(
        hits,
        c2app.samples.len(),
        "client 2 should be fully cache-served"
    );
}

#[test]
fn cache_mode_beats_baseline_on_hot_traffic() {
    // The E2 headline shape, asserted end to end: same hot-key workload,
    // with and without the in-network cache.
    let workload: Vec<KvsOp> = std::iter::once(KvsOp {
        at: 0,
        key: 3,
        put: true,
    })
    .chain((1..=20u64).map(|i| KvsOp {
        at: ms(i),
        key: 3,
        put: false,
    }))
    .collect();

    let run = |with_cache: bool| -> (f64, u64) {
        let mut s = setup(with_cache, vec![workload.clone(), vec![]]);
        s.dep.net.run();
        let client = s.dep.net.host_app::<KvsClient>(HostId(1)).unwrap();
        assert_eq!(client.corrupt, 0);
        let server = s.dep.net.host_app::<KvsServer>(HostId(SERVER_ID)).unwrap();
        (client.mean_latency(), server.served)
    };
    let (lat_cache, served_cache) = run(true);
    let (lat_base, served_base) = run(false);
    assert!(
        lat_cache < lat_base,
        "cache latency {lat_cache} ≥ baseline {lat_base}"
    );
    assert!(
        served_cache < served_base / 2,
        "server load {served_cache} not well below baseline {served_base}"
    );
}

#[test]
fn cache_eviction_replaces_cold_keys() {
    // A tiny 2-slot cache (program compiled with 8 — the server's
    // policy limit is what matters): keys 1 and 2 warm the cache, then
    // key 3 becomes much hotter and must displace the colder of the
    // two; correctness holds throughout.
    let mut ops = Vec::new();
    for key in [1u64, 2, 3] {
        ops.push(KvsOp {
            at: ms(key),
            key,
            put: true,
        });
    }
    // Warm keys 1 and 2 just past the hot threshold.
    for (i, key) in [1u64, 1, 2, 2].iter().enumerate() {
        ops.push(KvsOp {
            at: ms(10 + i as u64),
            key: *key,
            put: false,
        });
    }
    // Key 3 becomes the hottest by far.
    for i in 0..12u64 {
        ops.push(KvsOp {
            at: ms(20 + i),
            key: 3,
            put: false,
        });
    }
    let mut s = setup(true, vec![ops, vec![]]);
    // Shrink the server's cache policy to 2 slots.
    s.dep
        .net
        .host_app_mut::<KvsServer>(HostId(SERVER_ID))
        .unwrap()
        .cache_slots = 2;
    s.dep.net.run();
    let client = s.dep.net.host_app::<KvsClient>(HostId(1)).unwrap();
    assert_eq!(client.corrupt, 0);
    let server = s.dep.net.host_app::<KvsServer>(HostId(SERVER_ID)).unwrap();
    assert!(
        server.evictions >= 1,
        "the hot key must displace a cold one"
    );
    assert!(
        server.cached.contains_key(&3),
        "key 3 ends up cached: {:?}",
        server.cached
    );
    // Late GETs of key 3 are served by the switch.
    let late_hits = client
        .samples
        .iter()
        .filter(|x| x.key == 3 && !x.put && x.from_cache)
        .count();
    assert!(late_hits >= 4, "got {late_hits} cached GETs of the hot key");
}
