//! Prometheus export ↔ parse round-trip: `Registry::render_prometheus`
//! and the strict parser (`nctel::metrics::parse_prometheus`) must be
//! exact inverses on `labeled()` families, including label values that
//! carry every character the text format escapes (`\`, `"`, newline)
//! and the structural characters a naive splitter chokes on (`,`, `}`,
//! `{`, `=`). The property is byte-level: export → parse → rebuild a
//! fresh registry from the parsed samples → re-export must reproduce
//! the original text exactly.

use nctel::metrics::{labeled, parse_prometheus, Registry};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Characters label values are drawn from. The first row is what the
/// exposition format escapes; the second row breaks non-quote-aware
/// label-set scanners; the rest is filler.
const VALUE_CHARS: &[char] = &[
    '\\', '"', '\n', //
    ',', '}', '{', '=', //
    'a', 'b', 'z', '0', '9', '_', ' ', '.', '-',
];

/// Pre-sanitized family bases (already legal Prometheus names), so the
/// export→re-export comparison is not confounded by name rewriting.
const BASES: &[&str] = &["rt_m_a", "rt_m_b", "rt_m_c"];
const LABEL_NAMES: &[&str] = &["tenant", "host", "link"];

fn roundtrip(series: &[(usize, Vec<String>, u64)]) -> Result<(), TestCaseError> {
    // Build the source registry. Get-or-create semantics mean two
    // identical generated names would share one cell, so accumulate
    // into a map first and keep the summed value as the expectation.
    let mut want: BTreeMap<String, u64> = BTreeMap::new();
    for (base_idx, values, count) in series {
        let pairs: Vec<(&str, &str)> = values
            .iter()
            .enumerate()
            .map(|(i, v)| (LABEL_NAMES[i % LABEL_NAMES.len()], v.as_str()))
            .collect();
        // Duplicate label names within one sample are illegal; dedupe.
        let mut seen = std::collections::BTreeSet::new();
        let pairs: Vec<(&str, &str)> = pairs.into_iter().filter(|(k, _)| seen.insert(*k)).collect();
        let name = labeled(BASES[base_idx % BASES.len()], &pairs);
        *want.entry(name).or_insert(0) += count;
    }
    let r = Registry::new();
    for (name, v) in &want {
        r.counter(name).add(*v);
    }
    let text = r.render_prometheus();

    // The strict parser must accept its own exporter's output.
    let families = match parse_prometheus(&text) {
        Ok(f) => f,
        Err(e) => return Err(TestCaseError::fail(format!("parse failed: {e}\n{text}"))),
    };

    // Rebuild an identical registry from the *parsed* samples: base
    // name + decoded label pairs fed back through `labeled()`. Any
    // escaping asymmetry (encode ≠ decode⁻¹) breaks byte equality.
    let r2 = Registry::new();
    for fam in &families {
        for s in &fam.samples {
            let pairs: Vec<(&str, &str)> = s
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            r2.counter(&labeled(&s.name, &pairs)).add(s.value as u64);
        }
    }
    let text2 = r2.render_prometheus();
    prop_assert_eq!(text, text2);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn prometheus_export_parse_reexport_is_identity(
        series in proptest::collection::vec(
            (
                0usize..3,
                proptest::collection::vec(
                    proptest::collection::vec(
                        proptest::sample::select(VALUE_CHARS.to_vec()),
                        0..8,
                    ).prop_map(|cs| cs.into_iter().collect::<String>()),
                    1..3,
                ),
                1u64..1000,
            ),
            1..6,
        ),
    ) {
        roundtrip(&series)?;
    }
}

/// The shrunk cases that historically broke the parser: `}` ended the
/// label set early and `,` split a single pair in two. Pinned here so
/// the quote-aware scan never regresses.
#[test]
fn structural_characters_in_label_values_roundtrip() {
    for v in ["}", ",", "a}b", "x,y", "{t=\"u\"}", "\\}", "\"}", "\n,"] {
        let series = vec![(0usize, vec![v.to_string()], 7u64)];
        roundtrip(&series).unwrap_or_else(|e| panic!("value {v:?}: {e:?}"));
    }
}
