//! Robustness: the frontend must never panic, whatever bytes it is
//! fed; the simulator must model congestion honestly under incast.

use ncl::model::{HostId, NodeId};
use ncl::netsim::{HostApp, HostCtx, LinkSpec, NetworkBuilder, Packet, SwitchCfg};
use proptest::prelude::*;
use std::any::Any;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable garbage: parse + sema return diagnostics,
    /// never panic.
    #[test]
    fn frontend_never_panics_on_garbage(src in "[ -~\\n]{0,300}") {
        let _ = ncl_lang::frontend(&src, "fuzz.ncl");
    }

    /// Structured-looking garbage built from NCL token fragments.
    #[test]
    fn frontend_never_panics_on_token_soup(
        parts in proptest::collection::vec(
            prop::sample::select(vec![
                "_net_", "_out_", "_in_", "_ctrl_", "_at_(\"s1\")", "_ext_",
                "int", "void", "unsigned", "bool", "uint64_t", "*", "d",
                "(", ")", "{", "}", "[", "]", ";", ",", "=", "+=", "++",
                "if", "else", "for", "while", "return", "window", ".",
                "seq", "len", "memcpy", "_drop", "_pass", "_hash", "0",
                "1", "255", "ncl", "::", "Map", "<", ">", "auto", "#define X 1",
            ]),
            0..60,
        )
    ) {
        let src = parts.join(" ");
        let _ = ncl_lang::frontend(&src, "fuzz.ncl");
    }

    /// The NCP packet parser never panics on arbitrary bytes.
    #[test]
    fn ncp_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ncl::ncp::codec::decode_window(&bytes);
        let mut r = ncl::ncp::codec::Reassembler::new();
        let _ = r.push(&bytes);
    }

    /// The AND parser never panics on arbitrary text.
    #[test]
    fn and_parser_never_panics(src in "[ -~\\n]{0,200}") {
        let _ = ncl::and::parse(&src);
    }
}

/// A sender that blasts `n` fixed-size packets at t=0.
struct Blaster {
    dst: NodeId,
    n: usize,
    size: usize,
}

impl HostApp for Blaster {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        for _ in 0..self.n {
            ctx.send(self.dst, vec![0u8; self.size]);
        }
    }
    fn on_packet(&mut self, _: &mut HostCtx, _: &Packet) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Records the arrival time of the last packet.
struct Sink {
    received: usize,
    last_at: u64,
}

impl HostApp for Sink {
    fn on_packet(&mut self, ctx: &mut HostCtx, _: &Packet) {
        self.received += 1;
        self.last_at = ctx.now;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Incast: N senders × M packets into one receiver link. The bottleneck
/// is the switch→receiver link; completion must scale with the total
/// byte count over that link's bandwidth (store-and-forward queueing),
/// not with the per-sender time.
#[test]
fn incast_congestion_scales_with_fan_in() {
    let run = |senders: usize| -> (u64, usize) {
        let pkts_per_sender = 64usize;
        let size = 1024usize;
        let mut b = NetworkBuilder::new();
        let sink_id = HostId((senders + 1) as u16);
        for _ in 0..senders {
            b.add_host(Box::new(Blaster {
                dst: NodeId::Host(sink_id),
                n: pkts_per_sender,
                size,
            }));
        }
        b.add_host(Box::new(Sink {
            received: 0,
            last_at: 0,
        }));
        let sw = b.add_switch(SwitchCfg::default());
        let spec = LinkSpec {
            bandwidth_bps: 1_000_000_000, // 1 Gb/s bottleneck
            latency: 1_000,
            ..LinkSpec::default()
        };
        for h in 1..=senders as u16 + 1 {
            b.link(HostId(h), sw, spec);
        }
        let mut net = b.build();
        net.run();
        let sink = net.host_app::<Sink>(sink_id).unwrap();
        (sink.last_at, sink.received)
    };
    let (t2, r2) = run(2);
    let (t8, r8) = run(8);
    assert_eq!(r2, 2 * 64);
    assert_eq!(r8, 8 * 64);
    // 4× the bytes through the same bottleneck ≈ 4× the finish time.
    let ratio = t8 as f64 / t2 as f64;
    assert!(
        (3.0..5.0).contains(&ratio),
        "expected ~4× completion scaling, got {ratio:.2} ({t2} → {t8})"
    );
}

/// Equal-cost paths: BFS routing is deterministic, so repeated builds
/// route identically (no flapping between runs).
#[test]
fn routing_is_deterministic_across_builds() {
    let build_trace = || {
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host(Box::new(Blaster {
            dst: NodeId::Host(HostId(2)),
            n: 4,
            size: 64,
        }));
        let h2 = b.add_host(Box::new(Sink {
            received: 0,
            last_at: 0,
        }));
        // Diamond: two equal-cost paths h1-sa-h2 / h1-sb-h2.
        let sa = b.add_switch(SwitchCfg::default());
        let sb = b.add_switch(SwitchCfg::default());
        b.link(h1, sa, LinkSpec::default());
        b.link(h1, sb, LinkSpec::default());
        b.link(sa, h2, LinkSpec::default());
        b.link(sb, h2, LinkSpec::default());
        let mut net = b.build();
        net.run();
        (
            net.switch_stats(sa).unwrap().forwarded,
            net.switch_stats(sb).unwrap().forwarded,
            net.host_app::<Sink>(h2).unwrap().received,
        )
    };
    let a = build_trace();
    let b = build_trace();
    assert_eq!(a, b);
    assert_eq!(a.2, 4);
    // All packets took one deterministic path.
    assert!(a.0 == 4 && a.1 == 0 || a.0 == 0 && a.1 == 4);
}
