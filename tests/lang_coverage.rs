//! Additional frontend coverage through the public API: `_hash` typing,
//! diagnostics quality, and grammar corners the unit tests don't reach.

use ncl_lang::frontend;

fn ok(src: &str) {
    frontend(src, "t.ncl")
        .unwrap_or_else(|d| panic!("should compile: {}", ncl_lang::diag::render(&d)));
}

fn err_containing(src: &str, needle: &str) {
    let diags = frontend(src, "t.ncl").expect_err("should be rejected");
    assert!(
        diags.iter().any(|d| d.message.contains(needle)),
        "no diagnostic containing '{needle}' in: {}",
        ncl_lang::diag::render(&diags)
    );
}

#[test]
fn hash_builtin_types() {
    ok("_net_ _out_ void k(uint32_t *d) { d[0] = _hash(d[0], 7); }");
    // Result is uint32_t; assigning into narrower places needs no cast
    // (C truncation), wider is fine too.
    ok("_net_ _out_ void k(uint64_t *d) { d[0] = _hash((uint32_t)d[0], 1); }");
    err_containing(
        "_net_ _out_ void k(uint32_t *d) { d[0] = _hash(d[0]); }",
        "_hash() takes (value, salt)",
    );
    err_containing(
        "_net_ _out_ void k(uint32_t *d) { d[0] = _hash(d, 1); }",
        "_hash value must be a scalar",
    );
}

#[test]
fn chained_else_if_ladder() {
    ok(r#"
_net_ _out_ void k(int *d) {
    if (d[0] > 10) { d[1] = 1; }
    else if (d[0] > 5) { d[1] = 2; }
    else if (d[0] > 0) { d[1] = 3; }
    else { d[1] = 4; }
}
"#);
}

#[test]
fn hex_binary_char_literals_in_kernels() {
    ok(r#"
_net_ _out_ void k(uint32_t *d) {
    d[0] = (d[0] & 0xFF00FF00) | (d[1] & 0b1010);
    d[2] = (uint32_t)'A';
}
"#);
}

#[test]
fn deeply_nested_expression_parses() {
    let mut e = String::from("d[0]");
    for _ in 0..40 {
        e = format!("({e} + 1)");
    }
    ok(&format!("_net_ _out_ void k(int *d) {{ d[0] = {e}; }}"));
}

#[test]
fn shadowing_in_nested_blocks() {
    ok(r#"
_net_ _out_ void k(int *d) {
    int x = 1;
    { int y = x + 1; d[0] = y; }
    { int y = x + 2; d[1] = y; }
}
"#);
    err_containing(
        "_net_ _out_ void k(int *d) { int x = 1; int x = 2; }",
        "redeclaration",
    );
}

#[test]
fn sizeof_in_const_contexts() {
    ok(r#"
const unsigned WORDS = 32 / sizeof(uint32_t);
_net_ _at_("s1") int a[WORDS];
_net_ _out_ void k(int *d) { a[0] += d[0]; }
"#);
}

#[test]
fn comparison_chain_is_rejected_sanely() {
    // `a < b < c` parses as `(a < b) < c` (bool < int) — C would allow
    // it after promotion; we do too via promotion to int.
    ok("_net_ _out_ void k(int *d) { if ((d[0] < d[1]) != (d[1] < d[2])) { _drop(); } }");
}

#[test]
fn ext_specifier_position_enforced() {
    err_containing(
        "_net_ _out_ void a(int *d) { _drop(); }\n\
         _net_ _in_ void r(_ext_ int *h, int *d) {}",
        "extend the list at the end",
    );
}

#[test]
fn window_ext_shadowing_builtin_rejected() {
    err_containing(
        "_wnd_ struct W { uint32_t seq; };\n_net_ _out_ void k(int *d) {}",
        "shadows a builtin",
    );
}

#[test]
fn diagnostics_carry_positions() {
    let diags = frontend(
        "_net_ _out_ void k(int *d) {\n    d[0] = unknown_name;\n}",
        "pos.ncl",
    )
    .unwrap_err();
    let d = &diags[0];
    assert_eq!(d.span.line, 2);
    assert!(d.to_string().starts_with("pos.ncl:2:"));
}

#[test]
fn division_and_modulo_by_parameter() {
    ok("_net_ _out_ void k(int *d) { d[0] = d[1] / d[2] + d[1] % d[2]; }");
}

#[test]
fn empty_kernel_is_fine() {
    ok("_net_ _out_ void noop(int *d) { }");
}

#[test]
fn keywords_cannot_name_kernels() {
    let diags = frontend("_net_ _out_ void for(int *d) {}", "t.ncl").unwrap_err();
    assert!(!diags.is_empty());
}

#[test]
fn unsigned_long_and_short_types() {
    ok(r#"
_net_ _out_ void k(int *d) {
    unsigned long big = 5000000000ul;
    short small = (short)d[0];
    d[1] = (int)(big % 1000) + small;
}
"#);
}

// ---------------------------------------------------------------------
// Exhaustive conformance coverage: every `ConformanceError` variant,
// triggered from NCL source, rendered with file:line and a caret
// snippet into that source.
// ---------------------------------------------------------------------

mod conformance_coverage {
    use ncl_ir::ir::Module;
    use ncl_ir::lower::{lower, LoweringConfig};
    use ncl_ir::passes::{conformance, optimize, ConformanceError};
    use ncl_ir::version::{version_modules, LocationInfo};
    use ncl_lang::frontend;

    fn lowered(src: &str, cfg: &LoweringConfig) -> Module {
        let checked = frontend(src, "t.ncl")
            .unwrap_or_else(|d| panic!("frontend: {}", ncl_lang::diag::render(&d)));
        let mut m = lower(&checked, cfg)
            .unwrap_or_else(|d| panic!("lower: {}", ncl_lang::diag::render(&d)));
        optimize(&mut m);
        m
    }

    fn s1_version(src: &str, cfg: &LoweringConfig) -> Module {
        let locs = [LocationInfo {
            label: c3::Label::new("s1"),
            id: 1,
        }];
        version_modules(&lowered(src, cfg), &locs)
            .into_iter()
            .next()
            .expect("s1 module")
    }

    /// Asserts one error of the expected shape whose rendered
    /// diagnostic carries position and caret into `src`.
    fn expect_error(
        errs: &[ConformanceError],
        src: &str,
        want: impl Fn(&ConformanceError) -> bool,
        message: &str,
    ) {
        let e = errs
            .iter()
            .find(|e| want(e))
            .unwrap_or_else(|| panic!("no matching error in {errs:?}"));
        assert!(
            e.to_string().contains(message),
            "'{e}' does not contain '{message}'"
        );
        let rendered = e.to_diagnostic("t.ncl").render_snippet(src);
        assert!(rendered.starts_with("t.ncl:"), "no position: {rendered}");
        assert!(rendered.contains('^'), "no caret snippet: {rendered}");
    }

    #[test]
    fn loop_not_unrolled() {
        // No mask for `k`: `window.len` stays dynamic, the loop keeps
        // its back edge, and the switch version cannot map.
        let src = r#"
_net_ _at_("s1") int a[8] = {0};
_net_ _out_ void k(int *d) {
    for (unsigned i = 0; i < window.len; ++i) a[i] += d[i];
}
"#;
        let m = s1_version(src, &LoweringConfig::default());
        expect_error(
            &conformance(&m),
            src,
            |e| matches!(e, ConformanceError::LoopNotUnrolled { kernel, .. } if kernel == "k"),
            "loop has no provably constant trip count",
        );
    }

    #[test]
    fn not_placed_here() {
        // `k` carries no `_at_` (the frontend rejects an explicit
        // mismatch outright), so every switch version includes it —
        // and the s1 version touches state living at s2. The caret
        // lands on the misplaced declaration, not the kernel.
        let src = r#"
_net_ _at_("s2") int remote[4] = {0};
_net_ _out_ void k(int *d) { remote[0] += d[0]; }
"#;
        let m = s1_version(src, &LoweringConfig::with_mask("k", vec![1]));
        expect_error(
            &conformance(&m),
            src,
            |e| {
                matches!(e, ConformanceError::NotPlacedHere { kernel, what, .. }
                         if kernel == "k" && what == "remote")
            },
            "accesses 'remote', which is not placed at this location",
        );
    }

    #[test]
    fn mask_arity() {
        let src = r#"
_net_ _at_("s1") int a[4] = {0};
_net_ _out_ void k(int *d) { a[0] += d[0]; }
"#;
        let m = s1_version(src, &LoweringConfig::with_mask("k", vec![1, 1]));
        expect_error(
            &conformance(&m),
            src,
            |e| {
                matches!(
                    e,
                    ConformanceError::MaskArity {
                        mask: 2,
                        params: 1,
                        ..
                    }
                )
            },
            "mask has 2 entries but the kernel takes 1 window arrays",
        );
    }

    #[test]
    fn incoming_on_switch() {
        // Handing an un-versioned module (incoming kernels intact) to
        // the switch checker is a pipeline-misuse bug; conformance
        // reports rather than silently compiling the host kernel.
        let src = r#"
_net_ _out_ void k(int *d) { _drop(); }
_net_ _in_ void recv(int *d, _ext_ int *h) { h[0] = d[0]; }
"#;
        let m = lowered(src, &LoweringConfig::with_mask("k", vec![1]));
        expect_error(
            &conformance(&m),
            src,
            |e| matches!(e, ConformanceError::IncomingOnSwitch { kernel, .. } if kernel == "recv"),
            "incoming kernel 'recv' cannot be compiled for a switch",
        );
    }
}

// ---------------------------------------------------------------------
// Exhaustive lint coverage: every `LintCode` variant, triggered from
// NCL source through the full `nclc` driver, with the rendered
// diagnostic matched snapshot-style.
// ---------------------------------------------------------------------

mod lint_coverage {
    use ncl::core::nclc::{compile, CompileConfig, LintCode, LintLevel, NclcError};
    use ncl_ir::lower::ReplayFilter;

    const AND: &str = "hosts worker 2\nswitch s1\nlink worker* s1\n";

    fn cfg_with(masks: &[(&str, Vec<u16>)]) -> CompileConfig {
        let mut cfg = CompileConfig::default();
        for (k, m) in masks {
            cfg.masks.insert((*k).to_string(), m.clone());
        }
        cfg
    }

    /// Compiles expecting a lint denial; returns the rendered report.
    fn denied(src: &str, cfg: &CompileConfig, code: LintCode) -> String {
        match compile(src, AND, cfg) {
            Err(e @ NclcError::Lint { .. }) => {
                let rendered = e.to_string();
                let NclcError::Lint { diagnostics, .. } = e else {
                    unreachable!()
                };
                assert!(
                    diagnostics.iter().any(|d| d.code == code),
                    "no {code} in: {rendered}"
                );
                rendered
            }
            Err(other) => panic!("expected lint denial, got: {other}"),
            Ok(_) => panic!("expected lint denial, program compiled"),
        }
    }

    /// Compiles expecting success; returns the rendered warnings.
    fn warned(src: &str, cfg: &CompileConfig, code: LintCode) -> String {
        let program = compile(src, AND, cfg).expect("should compile with warnings");
        let warns: Vec<_> = program.lint_warnings().cloned().collect();
        assert!(
            warns.iter().any(|d| d.code == code),
            "no {code} warning in: {}",
            ncl_ir::lint::render(&warns)
        );
        ncl_ir::lint::render(&warns)
    }

    #[test]
    fn non_atomic_rmw_cross_array() {
        let src = r#"
_net_ _at_("s1") unsigned a[4] = {0};
_net_ _at_("s1") unsigned b[4] = {0};
_net_ _out_ void k(unsigned *d) { a[0] = a[0] + b[0]; b[0] = d[0]; _reflect(); }
"#;
        let r = denied(src, &cfg_with(&[("k", vec![1])]), LintCode::NonAtomicRmw);
        assert!(r.contains("[non-atomic-rmw]"), "{r}");
        assert!(
            r.contains("writes 'a' using the value of 'b'"),
            "unexpected wording: {r}"
        );
        assert!(r.contains("different PISA stages"), "{r}");
    }

    #[test]
    fn non_atomic_rmw_micro_op_budget() {
        // Six micro-ops against one lane of `a`; a RegisterAction pass
        // supports four (default model).
        let src = r#"
_net_ _at_("s1") unsigned a[4] = {0};
_net_ _out_ void k(unsigned *d) {
    a[0] += d[0]; a[0] += d[1]; a[0] += d[2];
    _reflect();
}
"#;
        let r = denied(src, &cfg_with(&[("k", vec![3])]), LintCode::NonAtomicRmw);
        assert!(
            r.contains("issues 6 stateful micro-ops against one lane of 'a'"),
            "unexpected wording: {r}"
        );
        assert!(r.contains("the excess spills into later stages"), "{r}");
    }

    #[test]
    fn cross_kernel_alias() {
        let src = r#"
_net_ _at_("s1") unsigned shared[4] = {0};
_net_ _out_ void add(unsigned *d) { shared[0] += d[0]; _reflect(); }
_net_ _out_ void put(unsigned *d) { shared[0] = d[0]; _reflect(); }
"#;
        let r = denied(
            src,
            &cfg_with(&[("add", vec![1]), ("put", vec![1])]),
            LintCode::CrossKernelAlias,
        );
        assert!(r.contains("[cross-kernel-alias]"), "{r}");
        assert!(
            r.contains("'shared' is written by kernels 'add', 'put'"),
            "unexpected wording: {r}"
        );
        assert!(r.contains("at least one non-commutative update"), "{r}");
    }

    #[test]
    fn replay_unsafe_with_filter() {
        let src = r#"
_net_ _at_("s1") unsigned total[4] = {0};
_net_ _out_ void k(unsigned *d) { total[0] += d[0]; _reflect(); }
"#;
        let mut cfg = cfg_with(&[("k", vec![1])]);
        cfg.replay_filters.insert(
            "k".into(),
            ReplayFilter {
                senders: 2,
                slots: 2,
            },
        );
        let r = denied(src, &cfg, LintCode::ReplayUnsafe);
        assert!(r.contains("[replay-unsafe]"), "{r}");
        assert!(
            r.contains("has a replay filter (exactly-once claimed) but updates 'total'"),
            "unexpected wording: {r}"
        );
        assert!(r.contains("not guarded by `window.replay`"), "{r}");
    }

    #[test]
    fn replay_unsafe_no_filter() {
        let src = r#"
_net_ _at_("s1") unsigned long total[4] = {0};
_net_ _out_ void k(unsigned *d) { total[0] += d[0]; _reflect(); }
"#;
        let r = warned(
            src,
            &cfg_with(&[("k", vec![1])]),
            LintCode::ReplayUnsafeNoFilter,
        );
        assert!(r.contains("[replay-unsafe-no-filter]"), "{r}");
        assert!(
            r.contains("updates 'total' non-idempotently with no replay filter"),
            "unexpected wording: {r}"
        );
        assert!(r.contains("retransmissions will corrupt the state"), "{r}");
    }

    #[test]
    fn unguarded_overflow() {
        let src = r#"
_net_ _at_("s1") unsigned total[1] = {0};
_net_ _out_ void k(unsigned *d) { total[0] += d[0]; _reflect(); }
"#;
        let r = warned(
            src,
            &cfg_with(&[("k", vec![1])]),
            LintCode::UnguardedOverflow,
        );
        assert!(r.contains("[unguarded-overflow]"), "{r}");
        assert!(
            r.contains("accumulates into 32-bit 'total' with no value-guarded reset"),
            "unexpected wording: {r}"
        );
        assert!(r.contains("wraps silently at 2^32"), "{r}");
    }

    #[test]
    fn resource_overrun() {
        // Deny the estimator's verdict on a tiny chip model: the lint
        // gate fires before PISA mapping ever runs.
        let src = r#"
_net_ _at_("s1") unsigned acc[32] = {0};
_net_ _out_ void k(unsigned *d) {
    for (unsigned i = 0; i < window.len; ++i) { acc[i] += d[i]; d[i] = acc[i]; }
    _reflect();
}
"#;
        let mut cfg = cfg_with(&[("k", vec![8])]);
        cfg.model = pisa::ResourceModel::tiny();
        cfg.lint_levels
            .insert(LintCode::ResourceOverrun, LintLevel::Deny);
        // Keep the hazard lints out of the way; this test is about the
        // estimator path.
        for &c in LintCode::ALL {
            if c != LintCode::ResourceOverrun {
                cfg.lint_levels.insert(c, LintLevel::Allow);
            }
        }
        let r = denied(src, &cfg, LintCode::ResourceOverrun);
        assert!(r.contains("[resource-overrun]"), "{r}");
        assert!(r.contains("estimated resource overrun"), "{r}");
    }
}
