//! Additional frontend coverage through the public API: `_hash` typing,
//! diagnostics quality, and grammar corners the unit tests don't reach.

use ncl_lang::frontend;

fn ok(src: &str) {
    frontend(src, "t.ncl")
        .unwrap_or_else(|d| panic!("should compile: {}", ncl_lang::diag::render(&d)));
}

fn err_containing(src: &str, needle: &str) {
    let diags = frontend(src, "t.ncl").expect_err("should be rejected");
    assert!(
        diags.iter().any(|d| d.message.contains(needle)),
        "no diagnostic containing '{needle}' in: {}",
        ncl_lang::diag::render(&diags)
    );
}

#[test]
fn hash_builtin_types() {
    ok("_net_ _out_ void k(uint32_t *d) { d[0] = _hash(d[0], 7); }");
    // Result is uint32_t; assigning into narrower places needs no cast
    // (C truncation), wider is fine too.
    ok("_net_ _out_ void k(uint64_t *d) { d[0] = _hash((uint32_t)d[0], 1); }");
    err_containing(
        "_net_ _out_ void k(uint32_t *d) { d[0] = _hash(d[0]); }",
        "_hash() takes (value, salt)",
    );
    err_containing(
        "_net_ _out_ void k(uint32_t *d) { d[0] = _hash(d, 1); }",
        "_hash value must be a scalar",
    );
}

#[test]
fn chained_else_if_ladder() {
    ok(r#"
_net_ _out_ void k(int *d) {
    if (d[0] > 10) { d[1] = 1; }
    else if (d[0] > 5) { d[1] = 2; }
    else if (d[0] > 0) { d[1] = 3; }
    else { d[1] = 4; }
}
"#);
}

#[test]
fn hex_binary_char_literals_in_kernels() {
    ok(r#"
_net_ _out_ void k(uint32_t *d) {
    d[0] = (d[0] & 0xFF00FF00) | (d[1] & 0b1010);
    d[2] = (uint32_t)'A';
}
"#);
}

#[test]
fn deeply_nested_expression_parses() {
    let mut e = String::from("d[0]");
    for _ in 0..40 {
        e = format!("({e} + 1)");
    }
    ok(&format!("_net_ _out_ void k(int *d) {{ d[0] = {e}; }}"));
}

#[test]
fn shadowing_in_nested_blocks() {
    ok(r#"
_net_ _out_ void k(int *d) {
    int x = 1;
    { int y = x + 1; d[0] = y; }
    { int y = x + 2; d[1] = y; }
}
"#);
    err_containing(
        "_net_ _out_ void k(int *d) { int x = 1; int x = 2; }",
        "redeclaration",
    );
}

#[test]
fn sizeof_in_const_contexts() {
    ok(r#"
const unsigned WORDS = 32 / sizeof(uint32_t);
_net_ _at_("s1") int a[WORDS];
_net_ _out_ void k(int *d) { a[0] += d[0]; }
"#);
}

#[test]
fn comparison_chain_is_rejected_sanely() {
    // `a < b < c` parses as `(a < b) < c` (bool < int) — C would allow
    // it after promotion; we do too via promotion to int.
    ok("_net_ _out_ void k(int *d) { if ((d[0] < d[1]) != (d[1] < d[2])) { _drop(); } }");
}

#[test]
fn ext_specifier_position_enforced() {
    err_containing(
        "_net_ _out_ void a(int *d) { _drop(); }\n\
         _net_ _in_ void r(_ext_ int *h, int *d) {}",
        "extend the list at the end",
    );
}

#[test]
fn window_ext_shadowing_builtin_rejected() {
    err_containing(
        "_wnd_ struct W { uint32_t seq; };\n_net_ _out_ void k(int *d) {}",
        "shadows a builtin",
    );
}

#[test]
fn diagnostics_carry_positions() {
    let diags = frontend(
        "_net_ _out_ void k(int *d) {\n    d[0] = unknown_name;\n}",
        "pos.ncl",
    )
    .unwrap_err();
    let d = &diags[0];
    assert_eq!(d.span.line, 2);
    assert!(d.to_string().starts_with("pos.ncl:2:"));
}

#[test]
fn division_and_modulo_by_parameter() {
    ok("_net_ _out_ void k(int *d) { d[0] = d[1] / d[2] + d[1] % d[2]; }");
}

#[test]
fn empty_kernel_is_fine() {
    ok("_net_ _out_ void noop(int *d) { }");
}

#[test]
fn keywords_cannot_name_kernels() {
    let diags = frontend("_net_ _out_ void for(int *d) {}", "t.ncl").unwrap_err();
    assert!(!diags.is_empty());
}

#[test]
fn unsigned_long_and_short_types() {
    ok(r#"
_net_ _out_ void k(int *d) {
    unsigned long big = 5000000000ul;
    short small = (short)d[0];
    d[1] = (int)(big % 1000) + small;
}
"#);
}
