//! The Sockets/UDP backend (the paper's first prototype target) over
//! real loopback sockets: two hosts and a *software switch* — a thread
//! running the compiled PISA pipeline against real UDP datagrams —
//! reproducing Fig. 3b outside the simulator.

use ncl::core::control::ControlPlane;
use ncl::core::nclc::{compile, CompileConfig};
use ncl::model::{Chunk, HostId, KernelId, NodeId, ScalarType, Value, Window};
use ncl::ncp::udp::UdpEndpoint;
use ncl::pisa::{Pipeline, ResourceModel};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

const AND: &str = "host h1\nhost h2\nswitch s1\nlink h1 s1\nlink h2 s1\n";

/// A software switch: receives NCP-over-UDP packets, runs the pipeline,
/// and forwards per the kernel's decision. Registered host addresses
/// play the routing table.
struct SoftSwitch {
    endpoint: UdpEndpoint,
    pipeline: Pipeline,
    hosts: Vec<(HostId, SocketAddr)>,
    my_wire: u16,
}

impl SoftSwitch {
    fn addr_of(&self, wire: u16) -> Option<SocketAddr> {
        let node = NodeId::from_wire(wire);
        self.hosts
            .iter()
            .find(|(h, _)| NodeId::Host(*h) == node)
            .map(|(_, a)| *a)
    }

    /// Processes packets until `stop` fires.
    fn run(mut self, stop: mpsc::Receiver<()>) -> Pipeline {
        loop {
            if stop.try_recv().is_ok() {
                return self.pipeline;
            }
            let Ok(Some((bytes, src))) = self.endpoint.recv_raw() else {
                continue;
            };
            let Some(out) = self.pipeline.process(&bytes) else {
                // Not NCP for us: flood to the other host (L2 fallback).
                for (_, a) in &self.hosts {
                    if *a != src {
                        let _ = self.endpoint.send_raw(*a, &bytes);
                    }
                }
                continue;
            };
            let mut payload = out.packet;
            if out.parsed_bytes < bytes.len() {
                payload.extend_from_slice(&bytes[out.parsed_bytes..]);
            }
            let incoming_from = ncl::ncp::NcpPacket::new_checked(&bytes[..])
                .ok()
                .map(|p| p.from());
            {
                let mut p = ncl::ncp::NcpPacket::new_unchecked(&mut payload[..]);
                p.set_from(self.my_wire);
            }
            match out.fwd_code {
                1 => {
                    // reflect: back to the previous hop.
                    if let Some(a) = incoming_from.and_then(|f| self.addr_of(f)) {
                        let _ = self.endpoint.send_raw(a, &payload);
                    }
                }
                2 => {
                    for (_, a) in &self.hosts {
                        let _ = self.endpoint.send_raw(*a, &payload);
                    }
                }
                3 => {}
                _ => {
                    // pass: to every host except the sender (star
                    // topology; the real dst is the IP header we don't
                    // model here).
                    for (_, a) in &self.hosts {
                        if *a != src {
                            let _ = self.endpoint.send_raw(*a, &payload);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn compiled_kernel_runs_over_real_udp() {
    // Compile the increment kernel.
    let src = r#"
_net_ _at_("s1") int total[1] = {0};
_net_ _out_ void bump(int *d) { d[0] += 1; total[0] += d[0]; }
"#;
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("bump".into(), vec![1]);
    let program = compile(src, AND, &cfg).expect("compiles");
    let compiled = program.switch("s1").unwrap();
    let kid = program.kernel_ids["bump"];
    let pipeline = Pipeline::load(compiled.pipeline.clone(), ResourceModel::default()).unwrap();

    // Endpoints on loopback.
    let mut h1 = UdpEndpoint::bind("127.0.0.1:0").unwrap();
    let mut h2 = UdpEndpoint::bind("127.0.0.1:0").unwrap();
    let sw_ep = UdpEndpoint::bind("127.0.0.1:0").unwrap();
    let sw_addr = sw_ep.local_addr().unwrap();
    let soft = SoftSwitch {
        endpoint: sw_ep,
        pipeline,
        hosts: vec![
            (HostId(1), h1.local_addr().unwrap()),
            (HostId(2), h2.local_addr().unwrap()),
        ],
        my_wire: NodeId::Switch(c3::SwitchId(1)).to_wire(),
    };
    let (stop_tx, stop_rx) = mpsc::channel();
    let handle = thread::spawn(move || soft.run(stop_rx));

    // h1 sends three windows "to h2" through the switch.
    for v in [10i32, 20, 30] {
        let w = Window {
            kernel: KernelId(kid),
            seq: 0,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: false,
            chunks: vec![Chunk {
                offset: 0,
                data: v.to_be_bytes().to_vec(),
            }],
            ext: vec![],
        };
        h1.send_window(sw_addr, &w).unwrap();
    }
    // h2 receives the incremented values, from the switch.
    let mut got = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while got.len() < 3 && std::time::Instant::now() < deadline {
        if let Some((w, _)) = h2.recv_window().unwrap() {
            got.push(w.chunks[0].get(ScalarType::I32, 0).as_i128() as i32);
            assert_eq!(w.from, NodeId::Switch(c3::SwitchId(1)));
        }
    }
    got.sort_unstable();
    assert_eq!(got, vec![11, 21, 31]);

    // Stop the switch and check its persistent state: 11+21+31 = 63.
    stop_tx.send(()).unwrap();
    let pipeline = handle.join().unwrap();
    assert_eq!(pipeline.register_read("total", 0), Some(Value::i32(63)));
    let _ = ControlPlane::new(compiled);
}

#[test]
fn non_ncp_traffic_coexists() {
    // Garbage datagrams pass the switch untouched (Fig. 3b "NCP? no →
    // forwarding"), NCP windows still execute.
    let src = r#"_net_ _out_ void k(int *d) { d[0] = d[0] * 2; }"#;
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("k".into(), vec![1]);
    let program = compile(src, AND, &cfg).expect("compiles");
    let kid = program.kernel_ids["k"];
    let pipeline = Pipeline::load(
        program.switch("s1").unwrap().pipeline.clone(),
        ResourceModel::default(),
    )
    .unwrap();
    let mut h1 = UdpEndpoint::bind("127.0.0.1:0").unwrap();
    let mut h2 = UdpEndpoint::bind("127.0.0.1:0").unwrap();
    let sw_ep = UdpEndpoint::bind("127.0.0.1:0").unwrap();
    let sw_addr = sw_ep.local_addr().unwrap();
    let soft = SoftSwitch {
        endpoint: sw_ep,
        pipeline,
        hosts: vec![
            (HostId(1), h1.local_addr().unwrap()),
            (HostId(2), h2.local_addr().unwrap()),
        ],
        my_wire: 0x8001,
    };
    let (stop_tx, stop_rx) = mpsc::channel();
    let handle = thread::spawn(move || soft.run(stop_rx));

    h1.send_raw(sw_addr, b"hello not ncp").unwrap();
    let w = Window {
        kernel: KernelId(kid),
        seq: 0,
        sender: HostId(1),
        from: NodeId::Host(HostId(1)),
        last: false,
        chunks: vec![Chunk {
            offset: 0,
            data: 7i32.to_be_bytes().to_vec(),
        }],
        ext: vec![],
    };
    h1.send_window(sw_addr, &w).unwrap();

    let mut saw_raw = false;
    let mut saw_window = false;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while (!saw_raw || !saw_window) && std::time::Instant::now() < deadline {
        if let Some((bytes, _)) = h2.recv_raw().unwrap() {
            if bytes == b"hello not ncp" {
                saw_raw = true;
            } else if let Ok(w) = ncl::ncp::codec::decode_window(&bytes) {
                assert_eq!(w.chunks[0].get(ScalarType::I32, 0), Value::i32(14));
                saw_window = true;
            }
        }
    }
    stop_tx.send(()).unwrap();
    handle.join().unwrap();
    assert!(saw_raw, "plain datagram should pass through");
    assert!(saw_window, "NCP window should be processed");
}
