//! ncscope acceptance (DESIGN §4.10): a sampled reliable AllReduce run
//! whose scope snapshot, telemetry traces and compile spans merge into
//! a valid Chrome `trace_event` timeline; the flight-recorder artifact
//! round-trips through the parser into the diagnosis engine; and the
//! live beacon answers the `ncscope --live` query path over real UDP.

use ncl::core::apps::allreduce_source;
use ncl::core::control::ControlPlane;
use ncl::core::deploy::{and_switch_path, deploy_opts, deployed_versions, DeployOptions};
use ncl::core::nclc::{compile, CompileConfig, CompiledProgram, ReplayFilter};
use ncl::core::runtime::{NclHost, OutInvocation, TypedArray};
use ncl::model::{HostId, NodeId, ScalarType, Value};
use ncl::ncp::reliable::ReliableConfig;
use ncl::nctel::scope::{analysis, chrome_trace, json, parse_flight, Json, SnapshotReason};
use ncl::nctel::{Scope, WindowTrace};
use ncl::netsim::HostApp;
use std::collections::HashMap;

const NWORKERS: usize = 3;
const DATA_LEN: usize = 64;
const WIN: usize = 8;

/// A clean scoped + telemetry-sampled reliable AllReduce: returns the
/// compiled program, the shared scope, and the assembled window traces.
fn run_sampled_allreduce() -> (CompiledProgram, Scope, Vec<WindowTrace>) {
    let slots = DATA_LEN / WIN;
    let src = allreduce_source(DATA_LEN, WIN);
    let and = format!("hosts worker {NWORKERS}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![WIN as u16]);
    cfg.masks.insert("result".into(), vec![WIN as u16]);
    cfg.replay_filters.insert(
        "allreduce".into(),
        ReplayFilter {
            senders: 8,
            slots: slots as u16,
        },
    );
    let program = compile(&src, &and, &cfg).expect("compiles");
    let kid = program.kernel_ids["allreduce"];
    let rcfg = ReliableConfig {
        filter_slots: slots,
        ..ReliableConfig::default()
    };
    let scope = Scope::new(1 << 15);
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=NWORKERS as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = vec![w as i32; DATA_LEN];
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % NWORKERS as u16 + 1)),
            start: 0,
            gap: 0,
        })
        .unwrap();
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, DATA_LEN), (ScalarType::Bool, 1)],
        )
        .unwrap();
        host.done_on_flag(kid, 1);
        host.enable_reliability(rcfg);
        host.enable_telemetry(1.0, 1024);
        host.enable_scope(&scope);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let opts = DeployOptions {
        scope: Some(scope.clone()),
        ..DeployOptions::default()
    };
    let mut dep = deploy_opts(&program, apps, opts).expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(NWORKERS as u32),
    );
    dep.net.run();
    let mut traces = Vec::new();
    for w in 1..=NWORKERS as u16 {
        let host = dep.net.host_app_mut::<NclHost>(HostId(w)).unwrap();
        assert!(host.done_at.is_some(), "worker {w} completes");
        traces.extend(host.take_traces());
    }
    (program, scope, traces)
}

/// The tentpole acceptance: the Chrome trace built from compile spans,
/// the scope snapshot and the hop records of a sampled AllReduce run is
/// valid `trace_event` JSON and carries all three layers — compile
/// slices (pid 0), window lifecycles (pid 1), per-hop switch slices
/// (pid 2).
#[test]
fn sampled_allreduce_exports_a_three_layer_chrome_timeline() {
    let (program, scope, traces) = run_sampled_allreduce();
    assert!(!traces.is_empty(), "sampling 1.0 assembles traces");
    let events = scope.decoded();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, ncl::nctel::ScopeEvent::WindowSent { .. })),
        "host layer emitted sends"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, ncl::nctel::ScopeEvent::SwitchExecuted { .. })),
        "switch layer emitted executions"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, ncl::nctel::ScopeEvent::WindowCompleted)),
        "receiver layer emitted completions"
    );

    let doc = chrome_trace(program.timings.spans(), &events, &traces);
    let parsed = json::parse(&doc).expect("valid trace_event JSON");
    let evs = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let pid_of = |e: &Json| e.get("pid").and_then(Json::as_u64);
    let cat_of = |e: &Json| e.get("cat").and_then(Json::as_str).map(str::to_string);
    assert!(
        !program.timings.spans().is_empty()
            && evs
                .iter()
                .any(|e| pid_of(e) == Some(0) && cat_of(e).as_deref() == Some("compile")),
        "compile spans present on pid 0"
    );
    let window_slices = evs
        .iter()
        .filter(|e| pid_of(e) == Some(1) && cat_of(e).as_deref() == Some("window"))
        .count();
    // One lifecycle slice per first-sent window: data windows from
    // every worker plus the broadcast result windows.
    assert!(
        window_slices >= NWORKERS * (DATA_LEN / WIN),
        "window lifecycles present on pid 1 (got {window_slices})"
    );
    let switch_slices = evs
        .iter()
        .filter(|e| pid_of(e) == Some(2) && cat_of(e).as_deref() == Some("switch"))
        .count();
    assert_eq!(
        switch_slices,
        traces.iter().map(|t| t.hops.len()).sum::<usize>(),
        "one switch slice per hop record on pid 2"
    );
    // Mandatory trace_event fields on every record.
    for e in evs {
        assert!(e.get("ph").is_some() && e.get("pid").is_some());
    }
}

/// The on-demand flight snapshot of a clean run round-trips through the
/// artifact parser and diagnoses clean: everything delivered, no loss
/// loci, no stale versions against the real deployment facts.
#[test]
fn on_demand_flight_snapshot_diagnoses_clean() {
    let (program, scope, traces) = run_sampled_allreduce();
    let doc = scope.flight_json(SnapshotReason::OnDemand, 0, None, &traces);
    let art = parse_flight(&doc).expect("round-trips");
    assert_eq!(art.reason, "on_demand");
    assert_eq!(art.events.len() as u64, scope.logged() - scope.dropped());
    let dcfg = analysis::DiagnosisConfig {
        expected_path: and_switch_path(&program, "worker1", "worker2"),
        deployed_versions: deployed_versions(&program),
    };
    let d = analysis::diagnose(&art.events, &art.traces, &dcfg);
    assert!(d.count(analysis::WindowOutcome::Delivered) > 0);
    assert_eq!(d.count(analysis::WindowOutcome::Abandoned), 0);
    assert!(d.primary_loss_locus().is_none(), "clean run has no loss");
    assert!(d.verdicts.iter().all(|v| !v.stale_version));
    assert!(d.hops_seen > 0, "hop records fed the latency attribution");
    let report = d.render_report();
    assert!(report.contains("delivered"), "report renders: {report}");
}

/// `diagnose()` invoked programmatically mid-run — the ncwatch incident
/// pipeline's path: every few microseconds of simulated time the scope
/// ring and the hosts' non-draining trace snapshots are handed to the
/// diagnosis engine while the simulation keeps advancing. Snapshots
/// must be internally consistent (no torn events), monotone in
/// coverage, and converge to the end-of-run diagnosis.
#[test]
fn mid_run_diagnosis_is_consistent_while_sim_advances() {
    let slots = DATA_LEN / WIN;
    let src = allreduce_source(DATA_LEN, WIN);
    let and = format!("hosts worker {NWORKERS}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![WIN as u16]);
    cfg.masks.insert("result".into(), vec![WIN as u16]);
    let program = compile(&src, &and, &cfg).expect("compiles");
    let kid = program.kernel_ids["allreduce"];
    let rcfg = ReliableConfig {
        filter_slots: slots,
        ..ReliableConfig::default()
    };
    let scope = Scope::new(1 << 15);
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=NWORKERS as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = vec![w as i32; DATA_LEN];
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % NWORKERS as u16 + 1)),
            start: 0,
            gap: 0,
        })
        .unwrap();
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, DATA_LEN), (ScalarType::Bool, 1)],
        )
        .unwrap();
        host.done_on_flag(kid, 1);
        host.enable_reliability(rcfg);
        host.enable_telemetry(1.0, 1024);
        host.enable_scope(&scope);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let opts = DeployOptions {
        scope: Some(scope.clone()),
        ..DeployOptions::default()
    };
    let mut dep = deploy_opts(&program, apps, opts).expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(NWORKERS as u32),
    );

    let dcfg = analysis::DiagnosisConfig {
        expected_path: and_switch_path(&program, "worker1", "worker2"),
        deployed_versions: deployed_versions(&program),
    };
    let mut last_events = 0usize;
    let mut last_delivered = 0usize;
    let mut snapshots = 0;
    let mut t = 0u64;
    while t < 400_000 {
        t += 2_000;
        dep.net.run_until(t);
        // Live capture exactly as the incident pipeline takes it: the
        // decoded ring plus non-draining trace snapshots.
        let events = scope.decoded();
        let mut traces = Vec::new();
        for w in 1..=NWORKERS as u16 {
            let host = dep.net.host_app::<NclHost>(HostId(w)).unwrap();
            traces.extend(host.trace_snapshot());
        }
        let d = analysis::diagnose(&events, &traces, &dcfg);
        snapshots += 1;
        assert!(
            d.events_seen >= last_events,
            "event coverage regressed mid-run: {} < {last_events}",
            d.events_seen
        );
        let delivered = d.count(analysis::WindowOutcome::Delivered);
        assert!(
            delivered >= last_delivered,
            "delivered count regressed mid-run: {delivered} < {last_delivered}"
        );
        assert!(d.primary_loss_locus().is_none(), "clean run, no loss");
        last_events = d.events_seen;
        last_delivered = delivered;
        let all_done = (1..=NWORKERS as u16).all(|w| {
            dep.net
                .host_app::<NclHost>(HostId(w))
                .unwrap()
                .done_at
                .is_some()
        });
        if all_done {
            break;
        }
    }
    assert!(snapshots >= 3, "the run spanned several capture points");
    assert!(last_delivered > 0, "mid-run capture saw deliveries");
    // The final mid-run capture converged to the end-of-run view, and
    // the non-draining snapshots left the application's traces intact.
    dep.net.run();
    let mut traces = Vec::new();
    for w in 1..=NWORKERS as u16 {
        let host = dep.net.host_app_mut::<NclHost>(HostId(w)).unwrap();
        assert!(host.done_at.is_some(), "worker {w} completes");
        traces.extend(host.take_traces());
    }
    assert!(!traces.is_empty(), "snapshots did not drain the traces");
    let d = analysis::diagnose(&scope.decoded(), &traces, &dcfg);
    assert!(d.count(analysis::WindowOutcome::Delivered) >= last_delivered);
    assert_eq!(d.count(analysis::WindowOutcome::Abandoned), 0);
}

/// The event ring's seqlock under real contention: writer threads
/// hammer the ring while the main thread repeatedly snapshots and
/// diagnoses. Every decoded event must be internally consistent — a
/// torn slot (one writer's key with another's payload) would break the
/// redundant encoding each writer stamps across all fields.
#[test]
fn concurrent_decode_never_observes_torn_events() {
    use ncl::nctel::{ScopeEvent, WindowKey};
    // Small ring so writers wrap it constantly — maximum slot reuse.
    let scope = Scope::new(256);
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (1u16..=4)
        .map(|w| {
            let scope = scope.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut seq = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    // Redundant encoding: node, key and payload all
                    // derive from (w, seq), so any cross-writer or
                    // cross-iteration mix is detectable.
                    scope.emit(
                        (w as u64) << 32 | seq as u64,
                        w,
                        WindowKey::new(w, w, seq),
                        ScopeEvent::SwitchExecuted {
                            switch: 0x8000 | w,
                            version: (seq % 7 + 1) as u16,
                            fwd: 0,
                        },
                    );
                    seq = seq.wrapping_add(1);
                }
            })
        })
        .collect();
    let dcfg = analysis::DiagnosisConfig::default();
    let mut decoded_total = 0usize;
    for _ in 0..200 {
        let events = scope.decoded();
        decoded_total += events.len();
        for e in &events {
            assert_eq!(e.key.sender, e.node, "torn: key/node mismatch");
            assert_eq!(e.key.kernel, e.node, "torn: key halves mixed");
            assert_eq!(
                e.t,
                (e.node as u64) << 32 | e.key.seq as u64,
                "torn: time from a different iteration"
            );
            match e.event {
                ScopeEvent::SwitchExecuted {
                    switch, version, ..
                } => {
                    assert_eq!(switch, 0x8000 | e.node, "torn: payload/key mix");
                    assert_eq!(version as u32, e.key.seq % 7 + 1, "torn: stale payload");
                }
                ref other => panic!("decoded a kind nobody emitted: {other:?}"),
            }
        }
        // The analysis engine accepts every mid-write snapshot.
        let d = analysis::diagnose(&events, &[], &dcfg);
        assert_eq!(d.events_seen, events.len());
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    assert!(decoded_total > 0, "snapshots observed live traffic");
    assert!(scope.logged() > 256, "the ring wrapped during the test");
}

/// The `ncscope --live` path end to end over real UDP: a beacon serving
/// the run's scope + registry answers the probe with a parseable flight
/// snapshot.
#[test]
fn beacon_serves_live_snapshot_over_udp() {
    let (_, scope, _) = run_sampled_allreduce();
    let registry = std::sync::Arc::new(ncl::nctel::Registry::new());
    registry.counter("test.alive").add(1);
    let beacon = ncl::nctel::scope::beacon::spawn_beacon("127.0.0.1:0", registry, scope)
        .expect("beacon binds loopback");
    let reply = ncl::nctel::scope::beacon::query(beacon.addr(), std::time::Duration::from_secs(5))
        .expect("beacon answers");
    let art = parse_flight(&reply).expect("live snapshot parses");
    assert!(!art.events.is_empty(), "live snapshot carries events");
    let metrics = art.metrics.expect("registry attached");
    assert_eq!(
        metrics.get("test.alive").and_then(Json::as_u64),
        Some(1),
        "registry metrics ride along"
    );
    beacon.shutdown();
}
