//! Assorted cross-crate edge cases: window metadata visible to kernels,
//! wire-id round trips, reflected windows carrying rewritten hops, and
//! zero-work deployments.

use ncl::core::deploy::deploy;
use ncl::core::nclc::{compile, CompileConfig};
use ncl::core::runtime::{NclHost, OutInvocation, TypedArray};
use ncl::model::{HostId, Label, NodeId, ScalarType, SwitchId};
use ncl::netsim::{HostApp, LinkSpec};
use std::collections::HashMap;

const AND: &str = "host a\nhost b\nswitch s1\nlink a s1\nlink b s1\n";

/// `window.sender` and `window.seq` are usable switch-side: the kernel
/// tags each window with both.
#[test]
fn kernels_observe_window_metadata() {
    let src = r#"
_net_ _out_ void tag(uint32_t *d) {
    d[0] = (uint32_t)window.sender;
    d[1] = window.seq;
}
_net_ _in_ void recv(uint32_t *d, _ext_ uint32_t *log, _ext_ uint32_t *n) {
    log[(n[0] * 2) & 63] = d[0];
    log[(n[0] * 2 + 1) & 63] = d[1];
    n[0] = n[0] + 1;
}
"#;
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("tag".into(), vec![2]);
    cfg.masks.insert("recv".into(), vec![2]);
    let program = compile(src, AND, &cfg).expect("compiles");
    let kid = program.kernel_ids["tag"];
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    let mut sender = NclHost::new(&program);
    sender
        .out(OutInvocation {
            kernel: "tag".into(),
            arrays: vec![TypedArray::from_u32(&[0, 0, 0, 0, 0, 0])], // 3 windows
            dest: NodeId::Host(HostId(2)),
            start: 0,
            gap: 0,
        })
        .unwrap();
    apps.insert("a".into(), Box::new(sender));
    let mut recv = NclHost::new(&program);
    recv.bind_incoming(
        &program,
        "tag",
        "recv",
        &[(ScalarType::U32, 64), (ScalarType::U32, 1)],
    )
    .unwrap();
    apps.insert("b".into(), Box::new(recv));
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .unwrap();
    dep.net.run();
    let recv = dep.net.host_app::<NclHost>(HostId(2)).unwrap();
    let mem = recv.memory(kid).unwrap();
    assert_eq!(mem.arrays[1][0].bits(), 3, "three windows delivered");
    // Window 0: sender=1, seq=0; window 2: sender=1, seq=2.
    assert_eq!(mem.arrays[0][0].bits(), 1);
    assert_eq!(mem.arrays[0][1].bits(), 0);
    assert_eq!(mem.arrays[0][5].bits(), 2);
}

/// Wire ids: host/switch ranges survive AND → deployment → NCP.
#[test]
fn label_wire_ids_roundtrip() {
    let overlay = ncl::and::parse("hosts h 3\nswitch sw\nlink h* sw\n").unwrap();
    let ids = overlay.label_ids();
    for (label, &wire) in &ids {
        let node = NodeId::from_wire(wire);
        match node {
            NodeId::Host(HostId(i)) => {
                assert_eq!(label, &Label::new(format!("h{i}")));
            }
            NodeId::Switch(SwitchId(1)) => assert_eq!(label.as_str(), "sw"),
            other => panic!("unexpected node {other}"),
        }
        assert_eq!(node.to_wire(), wire);
    }
}

/// A reflected window arrives with `from` rewritten to the switch —
/// what the KVS client keys its hit detection on.
#[test]
fn reflection_rewrites_previous_hop() {
    let src = r#"_net_ _out_ void bounce(uint32_t *d) { d[0] += 1; _reflect(); }"#;
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("bounce".into(), vec![1]);
    let program = compile(src, AND, &cfg).expect("compiles");
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    let mut sender = NclHost::new(&program);
    sender
        .out(OutInvocation {
            kernel: "bounce".into(),
            arrays: vec![TypedArray::from_u32(&[41])],
            dest: NodeId::Host(HostId(2)),
            start: 0,
            gap: 0,
        })
        .unwrap();
    sender.log_windows = true;
    apps.insert("a".into(), Box::new(sender));
    apps.insert("b".into(), Box::new(NclHost::new(&program)));
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .unwrap();
    dep.net.run();
    // The reflection went back to the sender, not the destination.
    let a = dep.net.host_app::<NclHost>(HostId(1)).unwrap();
    let b = dep.net.host_app::<NclHost>(HostId(2)).unwrap();
    assert_eq!(a.windows_received, 1);
    assert_eq!(b.windows_received, 0);
    let w = &a.window_log[0];
    assert_eq!(w.from, NodeId::Switch(dep.switch("s1")));
    assert_eq!(w.chunks[0].get(ScalarType::U32, 0).bits(), 42);
}

/// Deploying a program with no invocations runs to quiescence
/// immediately — no stray events.
#[test]
fn idle_deployment_terminates() {
    let src = "_net_ _out_ void k(int *d) { d[0] += 1; }";
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("k".into(), vec![1]);
    let program = compile(src, AND, &cfg).unwrap();
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    apps.insert("a".into(), Box::new(NclHost::new(&program)));
    apps.insert("b".into(), Box::new(NclHost::new(&program)));
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .unwrap();
    let end = dep.net.run();
    assert_eq!(end, 0, "nothing to simulate");
    assert_eq!(dep.net.stats().delivered, 0);
}

/// The kernel-id namespace is shared program-wide: a host binding an
/// incoming handler for kernel A never sees kernel B's windows.
#[test]
fn kernel_dispatch_isolates_handlers() {
    let src = r#"
_net_ _out_ void ka(uint32_t *d) { d[0] += 1; }
_net_ _out_ void kb(uint32_t *d) { d[0] += 100; }
_net_ _in_ void ra(uint32_t *d, _ext_ uint32_t *n) { n[0] = n[0] + 1; }
"#;
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("ka".into(), vec![1]);
    cfg.masks.insert("kb".into(), vec![1]);
    cfg.masks.insert("ra".into(), vec![1]);
    let program = compile(src, AND, &cfg).expect("compiles");
    let ka = program.kernel_ids["ka"];
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    let mut sender = NclHost::new(&program);
    for k in ["ka", "kb"] {
        sender
            .out(OutInvocation {
                kernel: k.into(),
                arrays: vec![TypedArray::from_u32(&[0])],
                dest: NodeId::Host(HostId(2)),
                start: 0,
                gap: 0,
            })
            .unwrap();
    }
    apps.insert("a".into(), Box::new(sender));
    let mut recv = NclHost::new(&program);
    recv.bind_incoming(&program, "ka", "ra", &[(ScalarType::U32, 1)])
        .unwrap();
    apps.insert("b".into(), Box::new(recv));
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .unwrap();
    dep.net.run();
    let recv = dep.net.host_app::<NclHost>(HostId(2)).unwrap();
    assert_eq!(recv.windows_received, 2, "both windows arrive");
    // But only ka's ran the handler.
    assert_eq!(recv.memory(ka).unwrap().arrays[0][0].bits(), 1);
}
