//! Paced invocations: `ncl::out` with a per-window gap spreads the
//! transmission in time (the knob that avoids incast at the aggregation
//! switch); results stay identical to blasting.

use ncl::core::apps::allreduce_source;
use ncl::core::control::ControlPlane;
use ncl::core::deploy::deploy;
use ncl::core::nclc::{compile, CompileConfig};
use ncl::core::runtime::{NclHost, OutInvocation, TypedArray};
use ncl::model::{HostId, NodeId, ScalarType, Value};
use ncl::netsim::{HostApp, LinkSpec};
use std::collections::HashMap;

fn run(gap: u64) -> (u64, Vec<i64>) {
    let n = 3usize;
    let data_len = 64usize;
    let win = 8usize;
    let src = allreduce_source(data_len, win);
    let and = format!("hosts worker {n}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    let program = compile(&src, &and, &cfg).expect("compiles");
    let kid = program.kernel_ids["allreduce"];
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=n as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = vec![w as i32; data_len];
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % n as u16 + 1)),
            start: 0,
            gap,
        })
        .unwrap();
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, data_len), (ScalarType::Bool, 1)],
        )
        .unwrap();
        host.done_on_flag(kid, 1);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(n as u32),
    );
    dep.net.run();
    let host = dep.net.host_app::<NclHost>(HostId(1)).unwrap();
    let done = host.done_at.expect("completes");
    let result: Vec<i64> = (0..data_len)
        .map(|i| host.memory(kid).unwrap().arrays[0][i].as_i128() as i64)
        .collect();
    (done, result)
}

#[test]
fn paced_and_blast_agree_on_results() {
    let (t_blast, r_blast) = run(0);
    let (t_paced, r_paced) = run(50_000); // 50 µs between windows
    assert_eq!(r_blast, r_paced, "pacing must not change the reduction");
    assert_eq!(r_blast, vec![1 + 2 + 3; 64]);
    // Pacing stretches completion by roughly (windows-1) × gap.
    assert!(
        t_paced > t_blast + 3 * 50_000,
        "pacing should stretch completion: {t_blast} → {t_paced}"
    );
}

#[test]
fn delayed_start_defers_first_packet() {
    let n = 2usize;
    let src = allreduce_source(16, 8);
    let and = format!("hosts worker {n}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![8]);
    cfg.masks.insert("result".into(), vec![8]);
    let program = compile(&src, &and, &cfg).expect("compiles");
    let kid = program.kernel_ids["allreduce"];
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=n as u16 {
        let mut host = NclHost::new(&program);
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&[1; 16])],
            dest: NodeId::Host(HostId(w % n as u16 + 1)),
            start: 2_000_000, // 2 ms in
            gap: 0,
        })
        .unwrap();
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, 16), (ScalarType::Bool, 1)],
        )
        .unwrap();
        host.done_on_flag(kid, 1);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(n as u32),
    );
    dep.net.run();
    let done = dep
        .net
        .host_app::<NclHost>(HostId(1))
        .unwrap()
        .done_at
        .expect("completes");
    assert!(
        done >= 2_000_000,
        "completion {done} precedes the start time"
    );
}
